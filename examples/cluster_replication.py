"""Cluster replication planning: choosing k from a guarantee target.

A Hadoop-style cluster replicates data blocks anyway (the paper notes
replication is already paid for fault tolerance); the operator's question
is *how much* replication the scheduler needs to survive bad runtime
estimates.  This example answers it the way Section 5.4 suggests:

1. read off the guarantee curve (Theorem 4) to find the cheapest group
   count meeting a target competitive ratio,
2. sanity-check the choice by simulating the cluster under adversarial
   and random realizations,
3. compare against the two extremes (no replication / replicate all).

Run:  python examples/cluster_replication.py
"""

from __future__ import annotations

import repro
from repro.core.bounds import divisors, min_groups_for_ratio, ub_ls_group


def main() -> None:
    m, alpha = 30, 1.8
    target_ratio = 2.6
    print(f"cluster: {m} machines, runtime estimates within x{alpha}")
    print(f"operator target: guaranteed makespan <= {target_ratio} x OPT\n")

    # 1. Plan from the guarantee curve.
    print("guarantee per group count (Theorem 4):")
    rows = [
        {
            "k groups": k,
            "replicas/task (m/k)": m // k,
            "guaranteed ratio": ub_ls_group(alpha, m, k),
            "meets target": ub_ls_group(alpha, m, k) <= target_ratio,
        }
        for k in divisors(m)
    ]
    print(repro.format_table(rows))

    k = min_groups_for_ratio(alpha, m, target_ratio)
    if k is None:
        print("\nno group count meets the target; falling back to full replication")
        chosen = repro.LPTNoRestriction()
        replicas = m
    else:
        chosen = repro.LSGroup(k)
        replicas = m // k
        print(
            f"\ncheapest plan meeting the target: k={k} groups "
            f"-> {replicas} replicas per block "
            f"(guarantee {ub_ls_group(alpha, m, k):.3f})"
        )

    # 2. Validate by simulation against extremes.
    strategies = [repro.LPTNoChoice(), chosen, repro.LPTNoRestriction()]
    results = []
    for strategy in strategies:
        ratios = []
        for seed in range(8):
            # Enough tasks that the average load (not one long task)
            # determines the makespan — the regime where placement matters.
            inst = repro.generate("bimodal", 600, m, alpha, seed, long=8.0)
            real = repro.sample_realization(inst, "bimodal_extreme", 50 + seed)
            rec = repro.measured_ratio(strategy, inst, real)
            ratios.append(rec.ratio)  # vs combined lower bound at this size
        s = repro.summarize(ratios)
        results.append(
            {
                "strategy": strategy.name,
                "replicas/task": strategy.replication_of(inst),
                "mean measured ratio (vs LB)": s.mean,
                "worst": s.maximum,
            }
        )
    print()
    print(
        repro.format_table(
            results,
            title="simulated cluster under extreme estimate misses "
            "(ratios vs lower bound, so pessimistic):",
        )
    )
    print(
        "\nnote: measured ratios are far below the worst-case guarantees —"
        "\nthe guarantee buys insurance, the simulation shows the premium."
    )


if __name__ == "__main__":
    main()
