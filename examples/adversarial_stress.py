"""Adversarial stress test: watching the lower bound bite.

Demonstrates the heart of Theorem 1: against a no-replication placement an
adversary who controls actual durations (inside the band!) can force a
competitive ratio approaching α²m/(α²+m−1), while the *same adversary
budget* barely hurts the replicated strategies.

The example (1) replays the proof's construction at growing λ, (2) runs a
local-search adversary against every strategy on a realistic workload, and
(3) prints both, showing the gap between pinned and replicated placements
under worst-case uncertainty.

It doubles as the observability demo: the whole run executes under an
enabled tracer (`repro.observed`), each section is a span, and the final
metrics table shows the engine's exact dispatch/completion/event counters
for the hundreds of simulations the adversary search performs.

Run:  python examples/adversarial_stress.py
"""

from __future__ import annotations

import repro
from repro.core.adversary import greedy_worst_case, theorem1_instance, theorem1_realization
from repro.core.bounds import lb_no_replication


def proof_construction(m: int, alpha: float) -> None:
    print(f"Theorem-1 construction: m={m}, alpha={alpha}")
    bound = lb_no_replication(alpha, m)
    rows = []
    for lam in (1, 2, 4, 8, 16):
        inst = theorem1_instance(lam, m, alpha)
        strategy = repro.LPTNoChoice()
        placement = strategy.place(inst)
        real = theorem1_realization(placement)
        outcome = repro.run_strategy(strategy, inst, real)
        opt = repro.optimal_makespan(real.actuals, m, exact_limit=0)  # LB fallback
        # For this structured instance the combined lower bound is tight
        # enough to show convergence; exact solves confirm at small lambda.
        rows.append(
            {
                "lambda": lam,
                "tasks": inst.n,
                "forced ratio (>=)": outcome.makespan / opt.value
                if not opt.optimal
                else outcome.makespan / opt.value,
                "Theorem-1 bound": bound,
            }
        )
    print(repro.format_table(rows))
    print()


def adversary_vs_strategies(seed: int = 5) -> None:
    inst = repro.generate("uniform", 10, 2, 2.0, seed)
    print(
        f"local-search adversary vs every strategy "
        f"({inst.name}, alpha={inst.alpha}):"
    )
    rows = []
    for strategy in repro.full_sweep(inst.m):
        def run(real, s=strategy):
            return repro.run_strategy(s, inst, real).makespan

        _, worst_ratio = greedy_worst_case(inst, run, passes=4)
        rows.append(
            {
                "strategy": strategy.name,
                "replicas/task": strategy.replication_of(inst),
                "worst found ratio": worst_ratio,
                "guarantee": strategy.guarantee(inst),
            }
        )
    print(repro.format_table(rows))
    print(
        "\nthe adversary hurts the pinned placement most; every ratio stays "
        "below its theorem's guarantee."
    )


def main() -> None:
    with repro.observed(repro.MemorySink(capacity=100_000)) as tracer:
        with tracer.span("proof_construction", m=6, alpha=2.0):
            proof_construction(m=6, alpha=2.0)
        with tracer.span("adversary_vs_strategies"):
            adversary_vs_strategies()

        counters = tracer.registry.summary()["counters"]
        print(
            f"\nobservability: {counters.get('sim.events_processed', 0)} engine "
            f"events across {counters.get('phase1.placements', 0)} placements "
            f"({counters.get('sim.dispatches', 0)} dispatches, "
            f"{counters.get('sim.completions', 0)} completions)"
        )
        print()
        print(repro.format_table(tracer.registry.rows(), title="metrics summary"))


if __name__ == "__main__":
    main()
