"""Out-of-core iterative solver: the paper's motivating scenario.

The introduction motivates the model with out-of-core sparse linear
algebra: each task is an operation over a matrix block whose data must be
resident on the executing machine, runtime models predict durations only
within a factor (the paper cites analytic bounds for SpMV-style kernels),
and an iterative solver executes the *same* task set every iteration — so
the one-time cost of replicating blocks amortizes across iterations.

This example builds that scenario end to end:

* blocks of a sparse matrix with skewed nonzero counts (bounded-Pareto),
  runtime estimate proportional to nnz, actual runtime varying per
  iteration inside the alpha band (machine noise + cache effects);
* Phase 1 once: place (and replicate) blocks per strategy;
* Phase 2 per iteration: schedule under that iteration's realization;
* report the per-iteration makespan distribution and the replication
  (memory) cost each strategy paid.

Run:  python examples/out_of_core_solver.py
"""

from __future__ import annotations

import numpy as np

import repro


def make_solver_workload(
    n_blocks: int, m: int, alpha: float, seed: int
) -> repro.Instance:
    """Blocks with heavy-tailed nonzero counts; time ∝ nnz, memory ∝ nnz."""
    rng = np.random.default_rng(seed)
    # Moderately skewed nonzero counts: a realistic block partitioner caps
    # block size, so the tail is bounded well below the average machine load
    # (otherwise the single biggest block trivially dominates the makespan
    # and no placement policy matters).
    base = repro.bounded_pareto_instance(
        n_blocks, m, alpha, seed=rng, shape=1.8, lo=1.0, hi=15.0
    )
    # A block's data footprint tracks its nonzero count (~ its runtime).
    sizes = [0.8 * t.estimate for t in base]
    return base.with_sizes(sizes)


def main() -> None:
    m, alpha, iterations = 8, 1.6, 12
    instance = make_solver_workload(160, m, alpha, seed=11)
    print(
        f"out-of-core solver: {instance.n} matrix blocks on {m} machines, "
        f"runtime model accurate within x{alpha}, {iterations} iterations\n"
    )

    strategies = [
        repro.LPTNoChoice(),
        repro.LSGroup(k=4),
        repro.LSGroup(k=2),
        repro.LPTNoRestriction(),
    ]

    rows = []
    for strategy in strategies:
        # Phase 1 happens once — data movement is the expensive step.
        placement = strategy.place(instance)
        makespans = []
        for it in range(iterations):
            # Each iteration realizes different actual durations (cache
            # state, NUMA placement, I/O contention) inside the band.
            realization = repro.sample_realization(instance, "lognormal", seed=100 + it)
            policy = strategy.make_policy(instance, placement)
            from repro import simulate

            trace = simulate(placement, realization, policy)
            makespans.append(trace.makespan)
        s = repro.summarize(makespans)
        rows.append(
            {
                "strategy": strategy.name,
                "replicas/block": placement.max_replication(),
                "memory footprint": placement.total_memory(),
                "mean iter makespan": s.mean,
                "worst iter": s.maximum,
                "best iter": s.minimum,
            }
        )

    print(
        repro.format_table(
            rows,
            title="Per-iteration makespan vs replication cost "
            "(Phase 1 paid once, amortized over iterations):",
        )
    )
    pinned = rows[0]
    full = rows[-1]
    print(
        f"\nfull replication vs pinned placement: mean iteration "
        f"{pinned['mean iter makespan']:.2f} -> {full['mean iter makespan']:.2f} "
        f"({1 - full['mean iter makespan'] / pinned['mean iter makespan']:.1%} faster), "
        f"worst iteration {pinned['worst iter']:.2f} -> {full['worst iter']:.2f}"
    )
    print(
        "the group strategies buy most of that improvement at a fraction of "
        "the memory footprint — the paper's tradeoff, measured."
    )


if __name__ == "__main__":
    main()
