"""Quickstart: the two-phase replicated-placement workflow in ~40 lines.

Builds a workload with uncertain estimates, places data with each of the
paper's strategies, executes Phase 2 in the discrete-event simulator under
a random admissible realization, and compares measured makespans against
the clairvoyant optimum and each strategy's proven guarantee.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import repro


def main() -> None:
    # A cluster of 6 machines; runtime estimates are accurate within a
    # multiplicative factor alpha = 1.5 (Eq. 1 of the paper).
    instance = repro.uniform_instance(n=40, m=6, alpha=1.5, seed=7)
    print(f"instance: {instance.name}, alpha={instance.alpha}")
    print(f"total estimated work {instance.total_estimate:.1f}, "
          f"average load {instance.average_estimated_load():.1f}\n")

    # Nature draws actual durations inside the band (log-uniform here).
    realization = repro.sample_realization(instance, "log_uniform", seed=3)

    strategies = [
        repro.LPTNoChoice(),       # |M_j| = 1   (Theorem 2)
        repro.LSGroup(k=3),        # |M_j| = m/k (Theorem 4)
        repro.LSGroup(k=2),
        repro.LPTNoRestriction(),  # |M_j| = m   (Theorem 3)
    ]

    rows = []
    for strategy in strategies:
        record = repro.measured_ratio(strategy, instance, realization)
        rows.append(
            {
                "strategy": record.outcome.strategy_name,
                "replicas/task": record.outcome.replication,
                "makespan": record.outcome.makespan,
                "ratio vs OPT/LB": record.ratio,
                "guarantee": record.guarantee,
            }
        )
    print(repro.format_table(rows, title="More replication -> better ratio:"))

    # Phase-2 schedules are full traces; render one as a Gantt chart.
    best = repro.run_strategy(repro.LPTNoRestriction(), instance, realization)
    print("\nLPT-No Restriction schedule:")
    print(repro.render_gantt(best.trace, instance.m, width=66, show_ids=False))


if __name__ == "__main__":
    main()
