"""Calibrating α from history — making the model's one free parameter honest.

The paper assumes the uncertainty factor α "is a quantity known to the
scheduler".  Where does it come from?  From history: pairs of (estimated,
actual) durations from previous runs.  This example walks the calibration
workflow end to end:

1. generate a synthetic history from a runtime model with lognormal
   residuals (the shape prediction papers report);
2. fit α at several coverage levels and read the guarantee each buys;
3. pick the pragmatic band (95% coverage), plan replication with it,
   and *validate* the choice by simulating future workloads drawn from
   the same residual model — counting how often the band holds and what
   the measured ratios look like.

Run:  python examples/calibrating_alpha.py
"""

from __future__ import annotations

import numpy as np

import repro
from repro.analysis.calibration import calibration_report, fit_alpha


def synth_history(n: int, sigma: float, rng: np.random.Generator):
    estimates = rng.uniform(1.0, 20.0, size=n)
    actuals = estimates * np.exp(rng.normal(0.0, sigma, size=n))
    return estimates.tolist(), actuals.tolist()


def main() -> None:
    rng = np.random.default_rng(11)
    sigma = 0.25  # log-residual of the runtime model
    m = 8
    est_hist, act_hist = synth_history(500, sigma, rng)

    print("step 1 — calibration report from 500 historical runs:\n")
    rows = calibration_report(est_hist, act_hist, m)
    print(repro.format_table(rows))

    alpha = fit_alpha(est_hist, act_hist, coverage=0.95)
    print(
        f"\nstep 2 — choosing the 95% band: alpha = {alpha:.3f} "
        f"(full-coverage band would be {fit_alpha(est_hist, act_hist):.3f})"
    )

    print("\nstep 3 — validate on 20 future workloads from the same model:")
    strategies = [repro.LPTNoChoice(), repro.LSGroup(2), repro.LPTNoRestriction()]
    in_band_total = 0
    tasks_total = 0
    ratio_sums = {s.name: 0.0 for s in strategies}
    for trial in range(20):
        ests = rng.uniform(1.0, 20.0, size=40)
        actual_factors = np.exp(rng.normal(0.0, sigma, size=40))
        in_band = (actual_factors <= alpha) & (actual_factors >= 1.0 / alpha)
        in_band_total += int(in_band.sum())
        tasks_total += 40
        # Out-of-band misses get clamped — the price of the 95% band.
        clipped = np.clip(actual_factors, 1.0 / alpha, alpha)
        inst = repro.make_instance(ests.tolist(), m, alpha)
        real = repro.factors_realization(inst, clipped.tolist(), label="future")
        for s in strategies:
            ratio_sums[s.name] += repro.measured_ratio(s, inst, real).ratio
    print(f"  band coverage on future tasks: {in_band_total / tasks_total:.1%}")
    for s in strategies:
        print(
            f"  {s.name:22s} mean measured ratio {ratio_sums[s.name] / 20:.3f} "
            f"(guarantee {getattr(s, 'guarantee')(inst):.3f})"
        )
    print(
        "\nthe 95% band keeps the guarantees meaningful at a fraction of the "
        "full-coverage alpha; the clamped 5% is the modelling debt you accept."
    )


if __name__ == "__main__":
    main()
