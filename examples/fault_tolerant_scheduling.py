"""Fault tolerance: replication keeps the batch alive when machines die.

The paper notes that Hadoop-style systems already replicate data for fault
tolerance, and uses that as evidence replication is affordable.  This
example turns the argument around with the failure-injection extension:
the *same* replicas that insure against bad runtime estimates also insure
against machine loss.

We run a batch under every strategy while killing machines mid-run:

* pinned placements (**LPT-No Choice**) lose whatever the dead machine
  exclusively held — the batch cannot finish;
* group placements survive any failure that leaves each group partly
  alive, restarting interrupted tasks on the group's survivors;
* full replication survives anything short of total loss.

Run:  python examples/fault_tolerant_scheduling.py
"""

from __future__ import annotations

import repro
from repro.simulation.engine import SimulationError, simulate


def run_with_failures(strategy, instance, realization, failures):
    placement = strategy.place(instance)
    policy = strategy.make_policy(instance, placement)
    baseline = simulate(placement, realization, strategy.make_policy(instance, placement))
    try:
        degraded = simulate(placement, realization, policy, failures=failures)
        return {
            "strategy": strategy.name,
            "replicas/task": placement.max_replication(),
            "outcome": "completed",
            "makespan": degraded.makespan,
            "vs healthy": degraded.makespan / baseline.makespan,
            "restarts": len(degraded.aborted),
        }
    except SimulationError as exc:
        reason = "data lost" if "lost to machine failures" in str(exc) else "stuck"
        return {
            "strategy": strategy.name,
            "replicas/task": placement.max_replication(),
            "outcome": reason,
            "makespan": float("nan"),
            "vs healthy": float("nan"),
            "restarts": 0,
        }


def main() -> None:
    m = 6
    instance = repro.uniform_instance(n=30, m=m, alpha=1.5, seed=2)
    realization = repro.sample_realization(instance, "log_uniform", seed=3)
    failures = {1: 4.0, 4: 9.0}  # two machines die mid-run
    print(
        f"batch of {instance.n} tasks on {m} machines; machines "
        f"{sorted(failures)} fail at t={sorted(failures.values())}\n"
    )

    strategies = [
        repro.LPTNoChoice(),
        repro.LSGroup(3),
        repro.LSGroup(2),
        repro.SelectiveReplication(0.5, by_work=True),
        repro.LPTNoRestriction(),
    ]
    rows = [run_with_failures(s, instance, realization, failures) for s in strategies]
    print(repro.format_table(rows, title="surviving two machine failures:"))
    print(
        "\nthe same replicas that hedge against wrong runtime estimates keep "
        "the batch alive when hardware dies — the paper's Hadoop motivation, "
        "simulated."
    )

    # Show one surviving schedule with its restart visible.
    strategy = repro.LSGroup(2)
    placement = strategy.place(instance)
    trace = simulate(
        placement,
        realization,
        strategy.make_policy(instance, placement),
        failures=failures,
    )
    print("\nLS-Group(k=2) schedule under failures (restarted tasks rerun later):")
    print(repro.render_gantt(trace, m, width=66, show_ids=False))
    if trace.aborted:
        aborted = ", ".join(
            f"task {r.tid} on M{r.machine} at t={r.end:.2f}" for r in trace.aborted
        )
        print(f"aborted attempts: {aborted}")


if __name__ == "__main__":
    main()
