"""Fault tolerance: replication keeps the batch alive when machines die.

The paper notes that Hadoop-style systems already replicate data for fault
tolerance, and uses that as evidence replication is affordable.  This
example turns the argument around with the unified fault-injection
subsystem (:mod:`repro.faults`): the *same* replicas that insure against
bad runtime estimates also insure against machine loss.

Three fault regimes, all described by :class:`repro.FaultPlan`:

* **crash-stop** — two machines die mid-run and stay dead; pinned
  placements (**LPT-No Choice**) lose whatever the dead machines
  exclusively held, group placements restart interrupted tasks on the
  group's survivors, full replication survives anything short of total
  loss;
* **crash-recover + rack loss** — a whole rack fails together but rejoins
  after a downtime; even pinned placements can finish, late;
* **stragglers** — nobody dies, machines just degrade to a fraction of
  their speed for a while; every strategy survives and the interesting
  number is makespan inflation.

Run:  python examples/fault_tolerant_scheduling.py
"""

from __future__ import annotations

import numpy as np

import repro
from repro.simulation.engine import simulate


def scenario_table(strategies, instance, realization, plan):
    """One row per strategy under one fault plan (via the robustness layer)."""
    rows = []
    for strategy in strategies:
        rec = repro.run_under_faults(strategy, instance, realization, plan)
        rows.append(
            {
                "strategy": rec.strategy,
                "replicas/task": rec.replication,
                "outcome": "completed" if rec.survived else _reason(rec.error),
                "makespan": rec.makespan,
                "vs healthy": rec.inflation,
                "restarts": rec.restarts,
            }
        )
    return rows


def _reason(error: str) -> str:
    return "data lost" if "lost to machine failures" in error else "stuck"


def main() -> None:
    m = 6
    instance = repro.uniform_instance(n=30, m=m, alpha=1.5, seed=2)
    realization = repro.sample_realization(instance, "log_uniform", seed=3)
    strategies = [
        repro.LPTNoChoice(),
        repro.LSGroup(3),
        repro.LSGroup(2),
        repro.SelectiveReplication(0.5, by_work=True),
        repro.LPTNoRestriction(),
    ]

    # -- regime 1: permanent crashes --------------------------------------
    crashes = repro.FaultPlan.of(
        repro.CrashStop(machine=1, at=4.0),
        repro.CrashStop(machine=4, at=9.0),
    )
    print(f"batch of {instance.n} tasks on {m} machines; {crashes.describe()}\n")
    print(
        repro.format_table(
            scenario_table(strategies, instance, realization, crashes),
            title="surviving two permanent machine crashes:",
        )
    )

    # -- regime 2: a rack dies together, then recovers ---------------------
    rack = repro.FaultPlan.of(
        repro.CorrelatedFailure(machines=(0, 1, 2), at=3.0, downtime=6.0)
    )
    print()
    print(
        repro.format_table(
            scenario_table(strategies, instance, realization, rack),
            title="rack {0,1,2} down from t=3 to t=9 (crash-recover):",
        )
    )
    print(
        "\nwith recovery even pinned tasks eventually run — availability "
        "becomes a *latency* cost instead of a lost batch."
    )

    # -- regime 3: stragglers ----------------------------------------------
    stragglers = repro.StragglerSlowdowns(m, prob=0.5, factors=(0.3, 0.6)).sample(
        np.random.default_rng(7)
    )
    print()
    print(
        repro.format_table(
            scenario_table(strategies, instance, realization, stragglers),
            title=f"degraded-speed stragglers ({stragglers.describe()}):",
        )
    )

    # -- the replication-vs-availability curve ------------------------------
    model = repro.RandomCrashes(m, count=(0, 2), window=(0.0, 12.0))
    rng = np.random.default_rng(11)
    scenarios = 12
    records = repro.run_fault_grid(
        strategies,
        [instance] * scenarios,
        [realization] * scenarios,
        [model.sample(rng) for _ in range(scenarios)],
    )
    print()
    print(
        repro.format_table(
            repro.availability_curve(records),
            title=f"replication vs availability ({scenarios} random 0-2 crash scenarios):",
        )
    )
    print(
        "\nthe same replicas that hedge against wrong runtime estimates keep "
        "the batch alive when hardware dies — the paper's Hadoop motivation, "
        "simulated."
    )

    # Show one surviving schedule with its restart visible.
    strategy = repro.LSGroup(2)
    placement = strategy.place(instance)
    trace = simulate(
        placement,
        realization,
        strategy.make_policy(instance, placement),
        faults=crashes,
    )
    print("\nLS-Group(k=2) schedule under the crash plan (restarted tasks rerun later):")
    print(repro.render_gantt(trace, m, width=66, show_ids=False))
    if trace.aborted:
        aborted = ", ".join(
            f"task {r.tid} on M{r.machine} at t={r.end:.2f}" for r in trace.aborted
        )
        print(f"aborted attempts: {aborted}")


if __name__ == "__main__":
    main()
