"""Online arrivals: replication under realistic release patterns.

The paper's model releases all tasks at time 0; real clusters see work
arrive over time.  The engine's release-time extension lets us ask whether
the paper's conclusion — replication hedges estimate uncertainty — still
holds when tasks trickle in.

We compare the strategies under three arrival shapes (Poisson stream,
periodic batches, front-loaded with stragglers), measuring makespan under
uncertain estimates.  The result: the replication gain persists across all
arrival shapes (the conclusion is not an artifact of the all-at-zero
model), peaking slightly when work lands in bursts.

Run:  python examples/online_arrivals.py
"""

from __future__ import annotations

import repro
from repro.simulation.engine import simulate
from repro.workloads.arrivals import (
    batched_arrivals,
    front_loaded_arrivals,
    poisson_arrivals,
)


def measure(strategy, inst, releases, realization):
    placement = strategy.place(inst)
    policy = strategy.make_policy(inst, placement)
    trace = simulate(placement, realization, policy, release_times=releases)
    return trace.makespan


def main() -> None:
    m, alpha, n = 6, 1.8, 48
    patterns = {
        "all at t=0": lambda seed: (
            repro.uniform_instance(n, m, alpha, seed),
            [0.0] * n,
        ),
        "poisson (duty 0.9)": lambda seed: poisson_arrivals(
            n, m, alpha, seed, duty=0.9
        ),
        "batched waves": lambda seed: batched_arrivals(
            n, m, alpha, seed, batch_size=16, period=12.0
        ),
        "front-loaded + stragglers": lambda seed: front_loaded_arrivals(
            n, m, alpha, seed, late_fraction=0.25, late_time=20.0
        ),
    }
    strategies = [repro.LPTNoChoice(), repro.LSGroup(2), repro.LPTNoRestriction()]

    print(f"online arrivals: n={n}, m={m}, alpha={alpha} (mean over 5 seeds)\n")
    rows = []
    for label, gen in patterns.items():
        row: dict[str, object] = {"arrival pattern": label}
        for strategy in strategies:
            total = 0.0
            for seed in range(5):
                inst, releases = gen(seed)
                real = repro.sample_realization(inst, "bimodal_extreme", 40 + seed)
                total += measure(strategy, inst, releases, real)
            row[strategy.name] = total / 5
        pinned = row["lpt_no_choice"]
        full = row["lpt_no_restriction"]
        row["replication gain"] = f"{(1 - full / pinned):.1%}"
        rows.append(row)
    print(repro.format_table(rows))
    print(
        "\nthe replication gain survives every arrival pattern — the paper's "
        "conclusion is not an artifact of releasing all tasks at t=0."
    )


if __name__ == "__main__":
    main()
