"""Memory/makespan tradeoff explorer (the Section-6 designer workflow).

The paper ends Section 6 with advice for the system designer: pick
SABO_Δ or ABO_Δ — and the Δ — from the guarantee curves, depending on
whether the deployment is makespan-centric or memory-centric.  This
example walks that workflow:

1. plot both guarantee curves for the deployment's (m, α, ρ) and the
   impossibility frontier;
2. answer two designer queries: "best memory given makespan <= T" and
   "best makespan given memory <= B";
3. verify the chosen configurations by simulation on a memory-aware
   workload, reporting where the measured points actually land.

Run:  python examples/memory_tradeoff_explorer.py
"""

from __future__ import annotations

import repro
from repro.core.bounds import (
    abo_memory_guarantee,
    sabo_memory_guarantee,
)
from repro.memory.frontier import delta_for_makespan_target


def main() -> None:
    m, alpha, rho = 5, 3**0.5, 1.0  # Figure-6 panel (b)
    print(f"deployment: m={m}, alpha^2={alpha**2:.0f}, rho1=rho2={rho}\n")

    # 1. Guarantee curves (printed as a compact table of anchor Deltas).
    rows = []
    for delta in (0.25, 0.5, 1.0, 2.0, 4.0):
        sabo, abo = repro.SABO(delta), repro.ABO(delta)
        rows.append(
            {
                "Delta": delta,
                "SABO makespan": (1 + delta) * alpha**2 * rho,
                "SABO memory": sabo_memory_guarantee(rho, delta),
                "ABO makespan": 2 - 1 / m + delta * alpha**2 * rho,
                "ABO memory": abo_memory_guarantee(rho, delta, m),
            }
        )
    print(repro.format_table(rows, title="guarantee curves (Theorems 5-8):"))

    # 2. Designer queries.
    target = 3.0
    print(f"\nquery A: best memory guarantee with makespan <= {target} x OPT")
    for algo in ("sabo", "abo"):
        d = delta_for_makespan_target(target, alpha, rho, m, algorithm=algo)
        if d is None:
            print(f"  {algo.upper()}: target unachievable at any Delta")
        else:
            mem = (
                sabo_memory_guarantee(rho, d)
                if algo == "sabo"
                else abo_memory_guarantee(rho, d, m)
            )
            print(f"  {algo.upper()}: Delta={d:.3f} -> memory <= {mem:.2f} x OPT")
    print("  -> matches the paper: 'if you want makespan less than 3 ... use ABO'")

    # 3. Verify by simulation.
    print("\nsimulated check (anticorrelated sizes, extreme realizations):")
    inst = repro.planted_two_class(8, 12, m, alpha)
    real = repro.sample_realization(inst, "bimodal_extreme", 21)
    results = []
    for strategy in (repro.SABO(1.0), repro.ABO(0.4)):
        outcome = repro.run_strategy(strategy, inst, real)
        opt = repro.optimal_makespan(real.actuals, m, exact_limit=20)
        mem_lb = repro.memory_lower_bound(inst.sizes, m)
        results.append(
            {
                "strategy": strategy.name,
                "measured makespan ratio": outcome.makespan / opt.value,
                "makespan guarantee": strategy.makespan_guarantee(inst),
                "measured memory ratio": outcome.memory_max / mem_lb,
                "memory guarantee": strategy.memory_guarantee(inst),
            }
        )
    print(repro.format_table(results))


if __name__ == "__main__":
    main()
