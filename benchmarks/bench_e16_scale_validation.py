"""E16 — scale validation: the full strategy sweep at cluster size.

The exact-optimum benches run small instances; this bench confirms the
story survives scale: the medium suite (n ∈ {60, 200}, m up to 30 — the
divisor-rich cluster size), every strategy, ratios measured against the
combined lower bound (sound for upper-bounding the true ratio).

Expected shape (asserted): every measured ratio-vs-LB stays below the
strategy's guarantee (a fortiori, since the denominator is a lower
bound); the replication ordering of the means holds at both sizes; and
full replication's online dispatch sits within ~1% of the lower bound at
cluster scale — the strategies keep their story when the exact solver is
far out of reach.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from benchmarks.conftest import emit
from repro.analysis.csvio import results_dir, write_csv
from repro.analysis.ratios import measured_ratio
from repro.analysis.tables import format_table
from repro.core.strategies import LPTNoChoice, LPTNoRestriction, LSGroup
from repro.uncertainty.stochastic import sample_realization
from repro.workloads.suites import medium_suite


def _run_e16():
    strategies = [LPTNoChoice(), LSGroup(5), LSGroup(2), LPTNoRestriction()]
    cases = [
        c
        for c in medium_suite(alphas=(1.5,), seeds=1)
        if c.m == 30 and c.family in ("uniform", "bounded_pareto")
    ]
    raw = []
    per = defaultdict(lambda: defaultdict(list))
    for case in cases:
        real = sample_realization(case.instance, "bimodal_extreme", 1234 + case.seed)
        for strategy in strategies:
            rec = measured_ratio(strategy, case.instance, real, exact_limit=0)
            per[strategy.name][case.n].append((rec.ratio, rec.guarantee))
            raw.append(
                {
                    "family": case.family,
                    "n": case.n,
                    "strategy": strategy.name,
                    "ratio_vs_lb": rec.ratio,
                    "guarantee": rec.guarantee,
                }
            )
    rows = []
    for name, by_n in per.items():
        row = {"strategy": name}
        for n, pairs in sorted(by_n.items()):
            row[f"mean ratio n={n}"] = float(np.mean([p[0] for p in pairs]))
        row["guarantee"] = by_n[200][0][1]
        rows.append(row)
    return rows, raw


def bench_e16_scale_validation(benchmark):
    rows, raw = benchmark.pedantic(_run_e16, rounds=1, iterations=1)

    # Every ratio-vs-LB below its guarantee.
    for r in raw:
        assert r["ratio_vs_lb"] <= r["guarantee"] * (1 + 1e-9), r
    by = {r["strategy"]: r for r in rows}
    # Replication ordering of the means, at both sizes.
    for col in ("mean ratio n=60", "mean ratio n=200"):
        assert by["lpt_no_restriction"][col] <= by["lpt_no_choice"][col] + 1e-9
    # Full replication's online dispatch hugs the lower bound at scale.
    assert by["lpt_no_restriction"]["mean ratio n=200"] <= 1.02
    assert by["lpt_no_restriction"]["mean ratio n=60"] <= 1.02

    write_csv(results_dir() / "e16_scale_validation.csv", raw)
    emit(
        "e16_scale_validation",
        format_table(
            rows,
            title="E16 — full sweep at cluster scale (m=30, alpha=1.5, "
            "ratios vs combined lower bound)",
        ),
    )
