"""E13 — min-max regret over scenario sets (the Daniels–Kouvelis lens).

The related work frames robustness as *min-max regret over scenarios*;
this bench evaluates the paper's strategies through that lens: a shared
scenario set (truthful corner + extreme and stochastic draws) per
instance, per-strategy maximum relative regret, and the min-max-regret
winner.

Expected shape (asserted): the scenario viewpoint agrees with the paper's
worst-case viewpoint — max regret decreases with replication, full
replication is the min-max-regret choice on a clear majority of instances,
and every measured regret respects its theorem (max rel regret ≤
guarantee − 1).
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import emit
from repro.analysis.csvio import results_dir, write_csv
from repro.analysis.regret import build_scenarios, evaluate_scenarios, minmax_regret_choice
from repro.analysis.tables import format_table
from repro.core.strategies import LPTNoChoice, LPTNoRestriction, LSGroup
from repro.workloads.generators import generate

SEEDS = 3


def _run_e13():
    strategies = [LPTNoChoice(), LSGroup(2), LPTNoRestriction()]
    per_strategy: dict[str, list[float]] = {s.name: [] for s in strategies}
    winners: list[str] = []
    raw = []
    for family in ("uniform", "bimodal"):
        for seed in range(SEEDS):
            inst = generate(family, 14, 4, 2.0, seed)
            scenarios = build_scenarios(
                inst, models=("bimodal_extreme", "log_uniform"), seeds=(0, 1, 2)
            )
            evals = evaluate_scenarios(strategies, inst, scenarios, exact_limit=16)
            winners.append(minmax_regret_choice(evals).strategy)
            for e in evals:
                per_strategy[e.strategy].append(e.max_rel_regret)
                raw.append(
                    {
                        "family": family,
                        "seed": seed,
                        "strategy": e.strategy,
                        "max_rel_regret": e.max_rel_regret,
                        "mean_rel_regret": e.mean_rel_regret,
                        "worst_scenario": e.worst_scenario,
                        "optima_exact": e.all_optima_exact,
                    }
                )
    rows = []
    guarantee_minus_one = {
        "lpt_no_choice": LPTNoChoice().guarantee(generate("uniform", 14, 4, 2.0, 0)) - 1,
        "ls_group[k=2]": LSGroup(2).guarantee(generate("uniform", 14, 4, 2.0, 0)) - 1,
        "lpt_no_restriction": LPTNoRestriction().guarantee(
            generate("uniform", 14, 4, 2.0, 0)
        )
        - 1,
    }
    for name, regrets in per_strategy.items():
        rows.append(
            {
                "strategy": name,
                "mean of max rel regret": float(np.mean(regrets)),
                "worst max rel regret": float(np.max(regrets)),
                "guarantee - 1": guarantee_minus_one[name],
                "minmax wins": winners.count(name),
            }
        )
    rows.sort(key=lambda r: r["mean of max rel regret"], reverse=True)
    return rows, raw, winners


def bench_e13_minmax_regret(benchmark):
    rows, raw, winners = benchmark.pedantic(_run_e13, rounds=1, iterations=1)

    by = {r["strategy"]: r for r in rows}
    # Regret within the theorem's room on exact instances.
    for r in raw:
        if r["optima_exact"]:
            assert r["max_rel_regret"] <= by[r["strategy"]]["guarantee - 1"] + 1e-9
    # Replication reduces worst-case regret.
    assert (
        by["lpt_no_restriction"]["mean of max rel regret"]
        <= by["lpt_no_choice"]["mean of max rel regret"] + 1e-9
    )
    # Full replication is the min-max-regret choice on a clear majority of
    # instances (on an occasional instance the pinned LPT placement is
    # already scenario-proof and ties or wins).
    assert winners.count("lpt_no_restriction") >= (2 * len(winners)) // 3, winners

    write_csv(results_dir() / "e13_minmax_regret.csv", raw)
    emit(
        "e13_minmax_regret",
        format_table(
            rows,
            title="E13 — min-max regret over scenario sets "
            "(truthful + extreme + stochastic; m=4, alpha=2)",
        ),
    )
