"""Figure 4 — a SABO_Δ two-phase schedule.

Regenerates the paper's Figure 4: the SBO_Δ split routes memory-intensive
tasks through π₂ (uncolored in the paper's figure) and time-intensive
tasks through π₁ (colored), all pinned.  Asserts the split is the planted
one and the placement replicates nothing.
"""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.memory.sabo import SABO
from repro.reporting import _memory_example_instance, fig4_report


def bench_fig4_sabo_schedule(benchmark):
    out = benchmark(fig4_report)
    inst = _memory_example_instance()
    placement = SABO(1.0).place(inst)
    assert placement.is_no_replication()
    s1, s2 = placement.meta["s1"], placement.meta["s2"]
    # The example instance plants 6 time-heavy and 10 memory-heavy tasks.
    assert set(s1) == set(range(6))
    assert set(s2) == set(range(6, 16))
    emit("fig4_sabo_schedule", out)
