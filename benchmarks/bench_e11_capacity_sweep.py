"""E11 — the memory-capacity sweep (the bounded-memory reading of §3).

Section 3 frames memory as an objective "rather than bounding the
available memory"; operators provision the bound.  This bench sweeps a
hard per-machine capacity from the minimum feasible value to "everything
fits everywhere" and measures what each gigabyte buys: replicas placed and
makespan achieved under extreme realizations.

Expected shape (asserted): replicas and performance are monotone in
capacity; the curve saturates — most of the makespan improvement arrives
well before full-replication capacity, the bounded-memory cousin of the
paper's "even a small amount of replication improves the guarantee
significantly".
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import emit
from repro.analysis.csvio import results_dir, write_csv
from repro.analysis.ratios import run_strategy
from repro.analysis.tables import format_table
from repro.memory.capped import CappedReplication, min_feasible_capacity
from repro.uncertainty.stochastic import sample_realization
from repro.workloads.memory_workloads import independent_sizes

SEEDS = 4
CAP_FACTORS = (1.0, 1.25, 1.5, 2.0, 3.0, 5.0)


def _run_e11():
    rows = []
    raw = []
    for factor in CAP_FACTORS:
        makespans = []
        replicas = []
        mems = []
        for seed in range(SEEDS):
            inst = independent_sizes(24, 6, alpha=2.0, seed=seed)
            cap = factor * min_feasible_capacity(inst)
            strategy = CappedReplication(cap)
            real = sample_realization(inst, "bimodal_extreme", 700 + seed)
            outcome = run_strategy(strategy, inst, real)
            makespans.append(outcome.makespan)
            replicas.append(outcome.placement.total_replicas())
            mems.append(outcome.memory_max / cap)
            raw.append(
                {
                    "cap_factor": factor,
                    "seed": seed,
                    "capacity": cap,
                    "total_replicas": replicas[-1],
                    "makespan": makespans[-1],
                    "memory_utilization": mems[-1],
                }
            )
        rows.append(
            {
                "capacity (x feasible min)": factor,
                "avg replicas": float(np.mean(replicas)),
                "mean makespan": float(np.mean(makespans)),
                "mean memory utilization": float(np.mean(mems)),
            }
        )
    return rows, raw


def bench_e11_capacity_sweep(benchmark):
    rows, raw = benchmark.pedantic(_run_e11, rounds=1, iterations=1)

    reps = [r["avg replicas"] for r in rows]
    makes = [r["mean makespan"] for r in rows]
    # Monotone: more capacity, more replicas, no worse makespan.
    assert reps == sorted(reps)
    assert all(a >= b - 1e-9 for a, b in zip(makes, makes[1:]))
    # Saturation: going 1.0 -> 2.0x buys at least as much improvement as
    # 2.0 -> 5.0x.
    first_gain = makes[0] - makes[3]
    tail_gain = makes[3] - makes[-1]
    assert first_gain >= tail_gain - 1e-9
    # Utilization never exceeds the cap.
    assert all(r["mean memory utilization"] <= 1.0 + 1e-9 for r in rows)

    write_csv(results_dir() / "e11_capacity_sweep.csv", raw)
    emit(
        "e11_capacity_sweep",
        format_table(
            rows,
            title="E11 — what a unit of memory capacity buys "
            "(m=6, alpha=2, hard per-machine cap, extreme realizations)",
        ),
    )
