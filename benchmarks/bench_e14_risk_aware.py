"""E14 — risk-aware replication under heterogeneous uncertainty.

The paper's homogeneous α makes "replicate the biggest tasks" and
"replicate the most uncertain work" the same policy.  With per-task
uncertainty they diverge; this bench quantifies the gap on
mixed-certainty workloads (30% novel tasks at α=2, the rest profiled at
α=1.05), comparing at matched replica budgets:

* size-based :class:`SelectiveReplication` (the homogeneous heuristic),
* risk-based :class:`RiskAwareReplication` (score ``p̃·(α−1/α)``),
* the paper's endpoints (pin everything / replicate everything).

Expected shape (asserted): at matched budgets risk-aware beats size-based
in mean makespan (and on most individual seeds), and captures a large
share of full replication's benefit at ~60% of the replicas —
uncertainty, not size, is what replication should insure.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import emit
from repro.analysis.csvio import results_dir, write_csv
from repro.analysis.ratios import run_strategy
from repro.analysis.tables import format_table
from repro.core.strategies import LPTNoChoice, LPTNoRestriction, SelectiveReplication
from repro.hetero import RiskAwareReplication, hetero_realization, hetero_workload

SEEDS = 10
N, M = 30, 5


def _run_e14():
    raw = []
    agg: dict[str, list[tuple[int, float]]] = {}
    for seed in range(SEEDS):
        h = hetero_workload(N, M, novel_fraction=0.3, seed=seed)
        inst = h.instance
        real = hetero_realization(h, seed=400 + seed, extreme=True)

        risk = RiskAwareReplication(h, 0.9)
        risk_placement = risk.place(inst)
        budget = risk_placement.total_replicas()
        frac = (budget - N) / (N * (M - 1))
        size = SelectiveReplication(min(max(frac, 0.0), 1.0))

        for strategy in (LPTNoChoice(), size, risk, LPTNoRestriction()):
            outcome = run_strategy(strategy, inst, real)
            label = (
                "size-based selective"
                if strategy is size
                else "risk-aware selective"
                if strategy is risk
                else strategy.name
            )
            agg.setdefault(label, []).append(
                (outcome.placement.total_replicas(), outcome.makespan)
            )
            raw.append(
                {
                    "seed": seed,
                    "strategy": label,
                    "total_replicas": outcome.placement.total_replicas(),
                    "makespan": outcome.makespan,
                }
            )
    rows = []
    for label, pairs in agg.items():
        reps = [p[0] for p in pairs]
        makes = [p[1] for p in pairs]
        rows.append(
            {
                "strategy": label,
                "avg replicas": float(np.mean(reps)),
                "mean makespan": float(np.mean(makes)),
                "max makespan": float(np.max(makes)),
            }
        )
    rows.sort(key=lambda r: r["avg replicas"])
    return rows, raw


def bench_e14_risk_aware(benchmark):
    rows, raw = benchmark.pedantic(_run_e14, rounds=1, iterations=1)
    by = {r["strategy"]: r for r in rows}

    # Matched budgets: risk-aware and size-based use similar replica counts.
    assert (
        abs(by["risk-aware selective"]["avg replicas"] - by["size-based selective"]["avg replicas"])
        <= 0.15 * by["risk-aware selective"]["avg replicas"]
    )
    # Risk beats size at equal budget, in mean and on most seeds.
    assert (
        by["risk-aware selective"]["mean makespan"]
        <= by["size-based selective"]["mean makespan"] * (1 + 1e-9)
    )
    per_seed: dict[int, dict[str, float]] = {}
    for r in raw:
        per_seed.setdefault(r["seed"], {})[r["strategy"]] = r["makespan"]
    risk_wins = sum(
        1
        for v in per_seed.values()
        if v["risk-aware selective"] <= v["size-based selective"] + 1e-9
    )
    assert risk_wins >= (3 * SEEDS) // 5, risk_wins
    # Risk-aware captures a large share of full replication's benefit.
    pinned = by["lpt_no_choice"]["mean makespan"]
    full = by["lpt_no_restriction"]["mean makespan"]
    risk = by["risk-aware selective"]["mean makespan"]
    if pinned > full:
        captured = (pinned - risk) / (pinned - full)
        assert captured >= 0.35, captured

    write_csv(results_dir() / "e14_risk_aware.csv", raw)
    emit(
        "e14_risk_aware",
        format_table(
            rows,
            title=f"E14 — replicate by risk, not size "
            f"(n={N}, m={M}, 30% novel tasks at alpha=2, rest at 1.05)",
        ),
    )
