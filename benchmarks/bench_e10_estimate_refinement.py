"""E10 — estimate refinement across iterations (adaptive-α extension).

The paper amortizes replication cost over iterative applications; this
bench closes the loop: iterating also *teaches* the scheduler.  With a
persistent-bias + noise realization model (70% of the log-error is a
learnable per-task bias), we compare three schedulers over 8 iterations:

* pinned placement, no learning,
* pinned placement + estimate refinement (geometric smoothing),
* full replication (no learning needed — it adapts at runtime).

Expected shape (asserted): refinement drives the pinned strategy's
effective α down toward the noise floor and its late-iteration ratio to
(or below) full replication's — i.e. *learning substitutes for
replication when the error is persistent*, while replication remains the
only fix for irreducible run-to-run noise.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import emit
from repro.adaptive import IterativeSession
from repro.analysis.csvio import results_dir, write_csv
from repro.analysis.tables import format_table
from repro.core.strategies import LPTNoChoice, LPTNoRestriction
from repro.workloads.generators import uniform_instance

ITERATIONS = 8
SEEDS = 5


def _run_e10():
    configs = [
        ("pinned, no refinement", LPTNoChoice(), False),
        ("pinned + refinement", LPTNoChoice(), True),
        ("full replication", LPTNoRestriction(), False),
    ]
    per_iter: dict[str, list[list[float]]] = {name: [] for name, _, _ in configs}
    alphas: dict[str, list[float]] = {name: [] for name, _, _ in configs}
    raw = []
    for seed in range(SEEDS):
        inst = uniform_instance(36, 6, alpha=2.0, seed=seed)
        for name, strategy, refine in configs:
            session = IterativeSession(inst, strategy, bias_fraction=0.7, seed=200 + seed)
            results = session.run(ITERATIONS, refine=refine, eta=0.7)
            per_iter[name].append([r.ratio_vs_lb for r in results])
            alphas[name].append(results[-1].effective_alpha)
            for r in results:
                raw.append(
                    {
                        "config": name,
                        "seed": seed,
                        "iteration": r.iteration,
                        "makespan": r.makespan,
                        "ratio_vs_lb": r.ratio_vs_lb,
                        "effective_alpha": r.effective_alpha,
                    }
                )
    rows = []
    for name, _, _ in configs:
        series = np.asarray(per_iter[name])  # seeds x iterations
        rows.append(
            {
                "config": name,
                "iter 0 ratio": float(series[:, 0].mean()),
                "iter 3 ratio": float(series[:, 3].mean()),
                f"iter {ITERATIONS - 1} ratio": float(series[:, -1].mean()),
                "final effective alpha": float(np.mean(alphas[name])),
            }
        )
    return rows, raw


def bench_e10_estimate_refinement(benchmark):
    rows, raw = benchmark.pedantic(_run_e10, rounds=1, iterations=1)
    by = {r["config"]: r for r in rows}
    last = f"iter {ITERATIONS - 1} ratio"

    # Refinement learns: effective alpha shrinks well below the unrefined run.
    assert (
        by["pinned + refinement"]["final effective alpha"]
        < by["pinned, no refinement"]["final effective alpha"]
    )
    # Refinement improves the pinned strategy across iterations...
    assert by["pinned + refinement"][last] <= by["pinned + refinement"]["iter 0 ratio"]
    # ...and ends at or below the unrefined pinned ratio.
    assert by["pinned + refinement"][last] <= by["pinned, no refinement"][last] * 1.02
    # Full replication needs no learning: flat across iterations.
    flat = abs(
        by["full replication"][last] - by["full replication"]["iter 0 ratio"]
    )
    assert flat < 0.25

    write_csv(results_dir() / "e10_estimate_refinement.csv", raw)
    emit(
        "e10_estimate_refinement",
        format_table(
            rows,
            title=f"E10 — learning vs replicating over {ITERATIONS} iterations "
            "(persistent bias 70% of log-error, m=6, alpha=2)",
        ),
    )
