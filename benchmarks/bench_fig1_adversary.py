"""Figure 1 — the Theorem-1 adversary instance (λ=3, m=6).

Regenerates both panels of the paper's Figure 1: the online schedule the
adversary forces on a no-replication placement, and the offline optimal
rearrangement, with the measured ratio against the exact optimum.  The
bench asserts the measured ratio sits between 1 and the asymptotic
Theorem-1 bound, i.e. the reproduced figure shows what the paper's proof
says it shows.
"""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.analysis.ratios import run_strategy
from repro.core.adversary import theorem1_instance, theorem1_realization
from repro.core.bounds import lb_no_replication
from repro.core.strategies import LPTNoChoice
from repro.exact.optimal import optimal_makespan
from repro.reporting import fig1_report


def bench_fig1_adversary(benchmark):
    out = benchmark(fig1_report)
    # Independent re-derivation of the numbers in the report.
    inst = theorem1_instance(3, 6, 1.5)
    strategy = LPTNoChoice()
    real = theorem1_realization(strategy.place(inst))
    outcome = run_strategy(strategy, inst, real)
    opt = optimal_makespan(real.actuals, 6, exact_limit=18)
    ratio = outcome.makespan / opt.value
    assert opt.optimal
    assert 1.0 <= ratio <= lb_no_replication(1.5, 6) + 1e-9
    assert f"{ratio:.4f}" in out
    emit("fig1_adversary", out)
