"""E1 — empirical competitive ratios vs theoretical guarantees.

The paper proves guarantees but reports no measurements (it has no
experimental section); this bench is the natural empirical companion: run
every strategy over the small-exact workload suite under adversarially
flavored random realizations, measure the ratio against the *exact*
clairvoyant optimum, and table mean/max measured ratio next to the
theoretical guarantee.

Expected shape (asserted): every exact-optimum measurement respects its
guarantee; the empirical ordering matches the theory's — full replication
beats groups beats no replication on average under high uncertainty.
"""

from __future__ import annotations

from collections import defaultdict

from benchmarks.conftest import emit, grid_opts
from repro.analysis.csvio import results_dir, write_csv
from repro.analysis.experiment import run_grid
from repro.analysis.stats import summarize
from repro.analysis.tables import format_table
from repro.core.strategies import full_sweep
from repro.workloads.suites import small_exact_suite


def _run_e1():
    instances = [
        c.instance
        for c in small_exact_suite(alphas=(2.0,), seeds=2)
        if c.m == 4 and c.n <= 12 and c.family in ("uniform", "bimodal", "identical")
    ]
    records = run_grid(
        full_sweep(4),
        instances,
        ["bimodal_extreme", "log_uniform"],
        seeds=(0, 1),
        exact_limit=16,
        **grid_opts(),
    )
    by_strategy: dict[str, list] = defaultdict(list)
    for rec in records:
        by_strategy[rec.strategy].append(rec)

    rows = []
    for name, recs in sorted(by_strategy.items(), key=lambda kv: kv[1][0].replication):
        exact = [r for r in recs if r.optimum_exact]
        ratios = [r.ratio for r in exact]
        s = summarize(ratios)
        rows.append(
            {
                "strategy": name,
                "replication": recs[0].replication,
                "runs": len(exact),
                "mean ratio": s.mean,
                "p95 ratio": s.p95,
                "max ratio": s.maximum,
                "guarantee": recs[0].guarantee,
                "violations": sum(1 for r in exact if r.within_guarantee is False),
            }
        )
    table = format_table(
        rows,
        title="E1 — measured competitive ratios vs guarantees "
        "(m=4, alpha=2, exact optimum denominators)",
    )
    return rows, records, table


def bench_e1_empirical_ratios(benchmark):
    rows, records, table = benchmark.pedantic(_run_e1, rounds=1, iterations=1)

    # Guarantees hold on every exact measurement.
    assert all(r["violations"] == 0 for r in rows)
    # Shape: measured ratios sit well below the worst-case guarantees.
    assert all(r["max ratio"] <= r["guarantee"] for r in rows)
    # Ordering under alpha=2: the full-replication strategy's mean measured
    # ratio is no worse than the no-replication strategy's.
    by_name = {r["strategy"]: r for r in rows}
    assert (
        by_name["lpt_no_restriction"]["mean ratio"]
        <= by_name["lpt_no_choice"]["mean ratio"] + 1e-9
    )

    write_csv(results_dir() / "e1_empirical_ratios.csv", [r.as_dict() for r in records])
    emit("e1_empirical_ratios", table)
