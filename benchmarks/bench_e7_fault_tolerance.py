"""E7 — fault tolerance: replication as availability (the Hadoop argument).

The paper motivates data replication partly by fault tolerance ("most
Hadoop systems replicate the data for the purpose of tolerating hardware
faults").  This bench quantifies that side benefit with the
failure-injection extension: inject 0..2 machine failures at random times
and measure, per strategy, (a) the fraction of runs that complete at all
and (b) the makespan inflation of the completing runs.

Expected shape (asserted): survival is monotone in replication — pinned
placements die with their machine, group placements survive failures that
leave each group partly alive, full replication survives everything short
of losing all machines — and survivors' inflation stays moderate.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import emit
from repro.analysis.csvio import results_dir, write_csv
from repro.analysis.tables import format_table
from repro.core.strategies import LPTNoChoice, LPTNoRestriction, LSGroup
from repro.simulation.engine import SimulationError, simulate
from repro.uncertainty.stochastic import sample_realization
from repro.workloads.generators import uniform_instance

M = 6
RUNS = 24


def _run_e7():
    strategies = [LPTNoChoice(), LSGroup(3), LSGroup(2), LPTNoRestriction()]
    rows = []
    raw = []
    rng = np.random.default_rng(42)
    scenarios = []
    for _ in range(RUNS):
        n_failures = int(rng.integers(1, 3))  # 1 or 2 failures
        machines = rng.choice(M, size=n_failures, replace=False)
        times = rng.uniform(0.0, 15.0, size=n_failures)
        scenarios.append({int(i): float(t) for i, t in zip(machines, times)})

    for strategy in strategies:
        survived = 0
        inflations = []
        for idx, failures in enumerate(scenarios):
            inst = uniform_instance(36, M, alpha=1.5, seed=idx)
            real = sample_realization(inst, "log_uniform", 1000 + idx)
            placement = strategy.place(inst)
            healthy = simulate(
                placement, real, strategy.make_policy(inst, placement)
            ).makespan
            try:
                degraded = simulate(
                    placement,
                    real,
                    strategy.make_policy(inst, placement),
                    failures=failures,
                )
                survived += 1
                inflations.append(degraded.makespan / healthy)
                raw.append(
                    {
                        "strategy": strategy.name,
                        "scenario": idx,
                        "failures": len(failures),
                        "survived": True,
                        "inflation": degraded.makespan / healthy,
                    }
                )
            except SimulationError:
                raw.append(
                    {
                        "strategy": strategy.name,
                        "scenario": idx,
                        "failures": len(failures),
                        "survived": False,
                        "inflation": "",
                    }
                )
        rows.append(
            {
                "strategy": strategy.name,
                "replication": placement.max_replication(),
                "survival rate": survived / RUNS,
                "mean makespan inflation (survivors)": (
                    float(np.mean(inflations)) if inflations else float("nan")
                ),
                "max inflation": float(np.max(inflations)) if inflations else float("nan"),
            }
        )
    return rows, raw


def bench_e7_fault_tolerance(benchmark):
    rows, raw = benchmark.pedantic(_run_e7, rounds=1, iterations=1)

    by_name = {r["strategy"]: r for r in rows}
    # Survival is monotone in replication.
    assert by_name["lpt_no_choice"]["survival rate"] <= by_name["ls_group[k=3]"][
        "survival rate"
    ]
    assert by_name["ls_group[k=3]"]["survival rate"] <= by_name["ls_group[k=2]"][
        "survival rate"
    ] + 1e-9
    # Full replication survives every 1-2 failure scenario on 6 machines.
    assert by_name["lpt_no_restriction"]["survival rate"] == 1.0
    # Pinned placement with 36 tasks on 6 machines essentially always loses
    # a task to a failure.
    assert by_name["lpt_no_choice"]["survival rate"] <= 0.25
    # Survivors pay a bounded price.
    assert by_name["lpt_no_restriction"]["mean makespan inflation (survivors)"] < 2.5

    write_csv(results_dir() / "e7_fault_tolerance.csv", raw)
    emit(
        "e7_fault_tolerance",
        format_table(
            rows,
            title=f"E7 — survival and makespan inflation under 1-2 machine "
            f"failures (m={M}, {RUNS} scenarios)",
        ),
    )
