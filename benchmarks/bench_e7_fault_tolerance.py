"""E7 — fault tolerance: replication as availability (the Hadoop argument).

The paper motivates data replication partly by fault tolerance ("most
Hadoop systems replicate the data for the purpose of tolerating hardware
faults").  This bench quantifies that side benefit with the unified
fault-injection subsystem: draw 0..2 machine crashes at random times from
a seeded :class:`~repro.faults.models.RandomCrashes` model (the 0-crash
draws are the control arm — every strategy must survive those) and
measure, per strategy, (a) the fraction of scenarios that complete at all
and (b) the makespan inflation of the completing runs, via
:mod:`repro.analysis.robustness`.

Expected shape (asserted): survival is monotone in replication — pinned
placements die with their machine (surviving little beyond the control
arm), group placements survive failures that leave each group partly
alive, full replication survives everything short of losing all machines
— and survivors' inflation stays moderate.

The full-replication arm additionally carries declarative SLOs
(:func:`repro.analysis.robustness.slo_report`): ``survival_rate >= 95%``,
bounded survivor inflation, and a ``p99(fault_run)`` latency ceiling
resolved from span timers collected while the grid runs under a scoped
tracer.  The structured pass/fail verdict is emitted as the
``e7_slo_report`` artifact and the bench asserts it passes.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import emit
from repro.analysis.csvio import results_dir, write_csv
from repro.analysis.robustness import (
    inflation_summary,
    restart_total,
    run_fault_grid,
    slo_report,
    survival_rate,
)
from repro.analysis.tables import format_table
from repro.core.strategies import LPTNoChoice, LPTNoRestriction, LSGroup
from repro.faults import RandomCrashes
from repro.obs import observed
from repro.uncertainty.stochastic import sample_realization
from repro.workloads.generators import uniform_instance

M = 6
RUNS = 24


def _run_e7():
    strategies = [LPTNoChoice(), LSGroup(3), LSGroup(2), LPTNoRestriction()]
    model = RandomCrashes(M, count=(0, 2), window=(0.0, 15.0))
    rng = np.random.default_rng(42)
    plans = [model.sample(rng) for _ in range(RUNS)]
    instances = [uniform_instance(36, M, alpha=1.5, seed=i) for i in range(RUNS)]
    realizations = [
        sample_realization(inst, "log_uniform", 1000 + i)
        for i, inst in enumerate(instances)
    ]

    with observed() as tracer:
        records = run_fault_grid(strategies, instances, realizations, plans)
        registry = tracer.registry  # observed() restores the old one on exit
    replicated = [r for r in records if r.strategy == "lpt_no_restriction"]
    slo = slo_report(
        replicated,
        [
            "survival_rate >= 95%",
            "mean_inflation < 2.5",
            f"count(fault_run) >= {len(records)}",
            "p99(fault_run) < 2s",
        ],
        registry=registry,
    )
    raw = [r.as_dict() for r in records]
    rows = []
    for strategy in strategies:
        recs = [r for r in records if r.strategy == strategy.name]
        inflation = inflation_summary(recs)
        rows.append(
            {
                "strategy": strategy.name,
                "replication": recs[0].replication,
                "survival rate": survival_rate(recs),
                "mean makespan inflation (survivors)": (
                    inflation.mean if inflation else float("nan")
                ),
                "max inflation": inflation.maximum if inflation else float("nan"),
                "restarts": restart_total(recs),
            }
        )
    control_arm = sum(1 for p in plans if not p) / RUNS
    return rows, raw, control_arm, slo


def bench_e7_fault_tolerance(benchmark):
    rows, raw, control_arm, slo = benchmark.pedantic(_run_e7, rounds=1, iterations=1)

    by_name = {r["strategy"]: r for r in rows}
    # The control arm exists: RandomCrashes(count=(0, 2)) draws some
    # fault-free scenarios, and everyone survives those.
    assert 0.0 < control_arm < 1.0
    for r in rows:
        assert r["survival rate"] >= control_arm - 1e-9
    # Survival is monotone in replication.
    assert by_name["lpt_no_choice"]["survival rate"] <= by_name["ls_group[k=3]"][
        "survival rate"
    ]
    assert by_name["ls_group[k=3]"]["survival rate"] <= by_name["ls_group[k=2]"][
        "survival rate"
    ] + 1e-9
    # Full replication survives every 0-2 crash scenario on 6 machines.
    assert by_name["lpt_no_restriction"]["survival rate"] == 1.0
    # Pinned placement with 36 tasks on 6 machines essentially always loses
    # a task when any machine actually crashes — it survives little beyond
    # the control arm.
    assert by_name["lpt_no_choice"]["survival rate"] <= control_arm + 2 / RUNS
    # Survivors pay a bounded price.
    assert by_name["lpt_no_restriction"]["mean makespan inflation (survivors)"] < 2.5

    # The replicated arm's declarative SLOs hold (fail-closed evaluation:
    # a missing statistic FAILs rather than passing vacuously).
    assert slo.passed, f"E7 SLO failures: {[r.objective.text for r in slo.failures]}"

    write_csv(results_dir() / "e7_fault_tolerance.csv", raw)
    emit(
        "e7_fault_tolerance",
        format_table(
            rows,
            title=f"E7 — survival and makespan inflation under 0-2 machine "
            f"crashes (m={M}, {RUNS} scenarios, control arm {control_arm:.0%})",
        ),
    )
    emit(
        "e7_slo_report",
        format_table(
            slo.rows(),
            title="E7 — SLO report for the full-replication arm "
            "(lpt_no_restriction)",
        ),
    )
