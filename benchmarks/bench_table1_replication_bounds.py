"""Table 1 — summary of the replication-bound model's guarantees.

Regenerates the paper's Table 1 (closed forms for Theorems 1-4 plus
Graham's bound) and evaluates every expression at the paper's Figure-3
parameterization (m = 210, α ∈ {1.1, 1.5, 2}).  The bench also verifies
the table's internal ordering (lower bound ≤ Th. 2; Th. 3 ≤ Graham) before
emitting, so a regression in any formula fails the bench rather than
silently printing a wrong table.
"""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.core.bounds import (
    lb_no_replication,
    ub_graham_ls,
    ub_lpt_no_choice,
    ub_lpt_no_restriction,
)
from repro.reporting import table1_report


def bench_table1(benchmark):
    out = benchmark(table1_report)
    for alpha in (1.1, 1.5, 2.0):
        assert lb_no_replication(alpha, 210) <= ub_lpt_no_choice(alpha, 210)
        assert ub_lpt_no_restriction(alpha, 210) <= ub_graham_ls(210) + 1e-12
    assert "Th. 1" in out and "Th. 4" in out
    emit("table1_replication_bounds", out)
