"""Figure 3 — the ratio/replication tradeoff at m=210, α ∈ {1.1, 1.5, 2}.

The paper's central figure: how much guarantee each level of data
replication buys.  Regenerates all three panels (ASCII + CSV) and asserts
each of the paper's Section-5.4 observations:

* α=1.1 — large gap between LPT-No Choice and the lower bound; full
  replication clearly beats one LS group;
* α=1.5 — LS-Group(k=1) and LPT-No Restriction coincide;
* α=2 — LS-Group beats the no-replication guarantee with < 50 replicas,
  and drops below ratio 6 with only 3 replicas (vs > 7.5 at 1 replica).
"""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.core.tradeoff import tradeoff_findings
from repro.reporting import fig3_report


def bench_fig3_ratio_replication(benchmark):
    out = benchmark.pedantic(fig3_report, rounds=3, iterations=1)

    f11 = tradeoff_findings(1.1, 210)
    assert f11["gap_lb_vs_no_choice"] > 1.0
    assert f11["full_vs_one_group"] > 0.3

    f15 = tradeoff_findings(1.5, 210)
    assert abs(f15["full_vs_one_group"]) < 1e-9

    f20 = tradeoff_findings(2.0, 210)
    assert f20["no_choice_ratio"] > 7.5
    assert f20["min_replicas_to_beat_no_choice"] < 50
    assert f20["ratio_at_replication_3"] < 6.0

    emit("fig3_ratio_replication", out)
