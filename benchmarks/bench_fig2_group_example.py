"""Figure 2 — the two-phase group replication example (m=6, k=2).

Regenerates the paper's Figure 2: Phase 1 assigns task data to one of two
3-machine groups by List Scheduling on the estimates; Phase 2 schedules
each task within its group online.  The bench asserts the structural
facts the figure illustrates: |M_j| = m/k for every task, balanced group
loads, and in-group execution.
"""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.analysis.ratios import run_strategy
from repro.core.strategies import LSGroup
from repro.reporting import fig2_report
from repro.uncertainty.realization import truthful_realization
from repro.workloads.generators import staircase_instance


def bench_fig2_group_example(benchmark):
    out = benchmark(fig2_report)
    inst = staircase_instance(12, 6, 1.5)
    strategy = LSGroup(2)
    placement = strategy.place(inst)
    assert placement.max_replication() == 3  # m/k = 6/2
    # Balanced phase-1 loads: LS guarantees gap <= max estimate.
    groups = placement.meta["groups"]
    group_of_task = placement.meta["group_of_task"]
    loads = [0.0, 0.0]
    for j, g in enumerate(group_of_task):
        loads[g] += inst.tasks[j].estimate
    assert abs(loads[0] - loads[1]) <= inst.max_estimate
    # In-group execution.
    outcome = run_strategy(strategy, inst, truthful_realization(inst))
    for j in range(inst.n):
        assert outcome.trace.machine_of(j) in groups[group_of_task[j]]
    emit("fig2_group_example", out)
