"""E12 — ablation: ABO's Phase-2 precedence reading.

The paper's ABO description says the replicated tasks are scheduled
"after all the memory intensive tasks are scheduled".  Two readings:

* **per-machine** (our default): a machine takes replicated work as soon
  as *its own* pinned queue is empty — work-conserving, and what the
  proof's List-Scheduling step actually uses;
* **global barrier**: no replicated task starts until *every* pinned task
  has started anywhere — the literal reading, which inserts idle time.

This bench measures the gap.  Expected shape (asserted): the work-
conserving reading never loses — task-by-task it is at most equal on
every paired run — and wins overall, justifying the default.
"""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.analysis.comparison import compare_strategies
from repro.analysis.csvio import results_dir, write_csv
from repro.analysis.tables import format_table
from repro.memory.abo import ABO
from repro.uncertainty.stochastic import sample_realization
from repro.workloads.memory_workloads import MEMORY_WORKLOADS

DELTAS = (0.5, 1.0, 2.0)


def _run_e12():
    rows = []
    raw = []
    for delta in DELTAS:
        cases = []
        for family, fn in sorted(MEMORY_WORKLOADS.items()):
            for seed in range(3):
                inst = fn(20, 5, alpha=1.7, seed=seed)
                real = sample_realization(inst, "bimodal_extreme", 300 + seed)
                cases.append((inst, real))
        cmp = compare_strategies(ABO(delta), ABO(delta, barrier=True), cases)
        rows.append(
            {
                "Delta": delta,
                "pairs": cmp.n_pairs,
                "work-conserving wins": cmp.wins_a,
                "ties": cmp.ties,
                "barrier wins": cmp.wins_b,
                "geo mean makespan ratio": cmp.geo_mean_ratio,
                "sign-test p": cmp.p_value,
            }
        )
        raw.append(
            {
                "delta": delta,
                "mean_diff": cmp.mean_diff,
                "ci95": cmp.ci95_diff,
                "wins_a": cmp.wins_a,
                "ties": cmp.ties,
                "wins_b": cmp.wins_b,
                "geo_mean_ratio": cmp.geo_mean_ratio,
                "p_value": cmp.p_value,
            }
        )
    return rows, raw


def bench_e12_abo_barrier_ablation(benchmark):
    rows, raw = benchmark.pedantic(_run_e12, rounds=1, iterations=1)

    for r in rows:
        # The work-conserving reading never loses a paired run.
        assert r["barrier wins"] == 0, r
        assert r["geo mean makespan ratio"] <= 1.0 + 1e-9

    write_csv(results_dir() / "e12_abo_barrier_ablation.csv", raw)
    emit(
        "e12_abo_barrier_ablation",
        format_table(
            rows,
            title="E12 — ABO Phase-2 precedence: work-conserving (default) "
            "vs global barrier (literal reading)",
        ),
    )
