"""Figure 6 — the memory/makespan guarantee tradeoff (3 panels, m=5).

Regenerates the paper's Figure 6: SABO_Δ and ABO_Δ guarantee curves in the
(makespan ratio, memory ratio) plane as Δ sweeps, with the impossibility
hyperbola ((a−1)(b−1) = 1) as the bold frontier.  Asserts the paper's
reading of the figure:

* SABO's curve is always the better one on memory;
* for α·ρ₁ ≥ 2 (panels b and c) ABO's curve is the better one on makespan
  at every Δ;
* a makespan guarantee < 3 in panel b (α²=3, ρ=1) is achievable by ABO
  but not by SABO.
"""

from __future__ import annotations

import math

from benchmarks.conftest import emit
from repro.core.bounds import (
    abo_makespan_guarantee,
    sabo_makespan_guarantee,
)
from repro.memory.frontier import delta_for_makespan_target
from repro.reporting import fig6_report


def bench_fig6_memory_makespan(benchmark):
    out = benchmark.pedantic(fig6_report, rounds=3, iterations=1)

    m = 5
    for a2, rho in ((3.0, 1.0), (3.0, 4.0 / 3.0)):
        alpha = math.sqrt(a2)
        assert alpha * rho >= math.sqrt(3.0)  # panels where ABO should win
        for delta in (0.25, 0.5, 1.0, 2.0, 4.0):
            assert abo_makespan_guarantee(alpha, rho, delta, m) <= (
                sabo_makespan_guarantee(alpha, rho, delta)
            )

    # The paper's worked example: makespan target 3 in panel b.
    alpha_b = math.sqrt(3.0)
    assert delta_for_makespan_target(3.0, alpha_b, 1.0, m, algorithm="sabo") is None
    assert delta_for_makespan_target(3.0, alpha_b, 1.0, m, algorithm="abo") is not None

    emit("fig6_memory_makespan", out)
