"""Substrate performance microbenchmarks.

Not a paper artifact — these track the cost of the building blocks so
performance regressions in the simulator or solvers are visible in the
benchmark log: offline LPT at scale, the event-driven engine, the exact
branch-and-bound, MULTIFIT, and a full two-phase strategy run.
"""

from __future__ import annotations

from repro.analysis.ratios import run_strategy
from repro.core.strategies import LPTNoRestriction, LSGroup
from repro.exact.bnb import branch_and_bound
from repro.schedulers.lpt import lpt_schedule
from repro.schedulers.multifit import multifit_schedule
from repro.uncertainty.stochastic import sample_realization
from repro.workloads.generators import uniform_instance


def bench_lpt_offline_10k_tasks(benchmark):
    inst = uniform_instance(10_000, 64, seed=0)
    result = benchmark(lpt_schedule, list(inst.estimates), 64)
    assert result.makespan > 0


def bench_multifit_1k_tasks(benchmark):
    inst = uniform_instance(1_000, 16, seed=1)
    result = benchmark(multifit_schedule, list(inst.estimates), 16)
    assert result.makespan > 0


def bench_engine_full_replication_2k_tasks(benchmark):
    inst = uniform_instance(2_000, 32, alpha=1.5, seed=2)
    real = sample_realization(inst, "log_uniform", 3)
    strategy = LPTNoRestriction()

    def run():
        return run_strategy(strategy, inst, real, validate=False).makespan

    makespan = benchmark(run)
    assert makespan > 0


def bench_engine_group_strategy_2k_tasks(benchmark):
    inst = uniform_instance(2_000, 32, alpha=1.5, seed=4)
    real = sample_realization(inst, "log_uniform", 5)
    strategy = LSGroup(8)

    def run():
        return run_strategy(strategy, inst, real, validate=False).makespan

    makespan = benchmark(run)
    assert makespan > 0


def bench_branch_and_bound_n16_m4(benchmark):
    inst = uniform_instance(16, 4, seed=6)

    def solve():
        return branch_and_bound(list(inst.estimates), 4).makespan

    value = benchmark(solve)
    assert value > 0
