"""Substrate performance microbenchmarks.

Not a paper artifact — these track the cost of the building blocks so
performance regressions in the simulator or solvers are visible in the
benchmark log: offline LPT at scale, the event-driven engine, the exact
branch-and-bound, MULTIFIT, a full two-phase strategy run, and the
experiment grid's serial-vs-parallel comparison (the sweep substrate
every E-bench runs on).
"""

from __future__ import annotations

import os
import time

from benchmarks.conftest import emit
from repro.analysis.experiment import ExperimentGrid, run_grid
from repro.analysis.ratios import run_strategy
from repro.core.strategies import LPTNoRestriction, LSGroup, full_sweep
from repro.exact.bnb import branch_and_bound
from repro.schedulers.lpt import lpt_schedule
from repro.schedulers.multifit import multifit_schedule
from repro.uncertainty.stochastic import sample_realization
from repro.workloads.generators import uniform_instance


def bench_lpt_offline_10k_tasks(benchmark):
    inst = uniform_instance(10_000, 64, seed=0)
    result = benchmark(lpt_schedule, list(inst.estimates), 64)
    assert result.makespan > 0


def bench_multifit_1k_tasks(benchmark):
    inst = uniform_instance(1_000, 16, seed=1)
    result = benchmark(multifit_schedule, list(inst.estimates), 16)
    assert result.makespan > 0


def bench_engine_full_replication_2k_tasks(benchmark):
    inst = uniform_instance(2_000, 32, alpha=1.5, seed=2)
    real = sample_realization(inst, "log_uniform", 3)
    strategy = LPTNoRestriction()

    def run():
        return run_strategy(strategy, inst, real, validate=False).makespan

    makespan = benchmark(run)
    assert makespan > 0


def bench_engine_group_strategy_2k_tasks(benchmark):
    inst = uniform_instance(2_000, 32, alpha=1.5, seed=4)
    real = sample_realization(inst, "log_uniform", 5)
    strategy = LSGroup(8)

    def run():
        return run_strategy(strategy, inst, real, validate=False).makespan

    makespan = benchmark(run)
    assert makespan > 0


def bench_branch_and_bound_n16_m4(benchmark):
    inst = uniform_instance(16, 4, seed=6)

    def solve():
        return branch_and_bound(list(inst.estimates), 4).makespan

    value = benchmark(solve)
    assert value > 0


_SPEEDUP_WORKERS = 4


def _speedup_grid_args():
    """A multi-second grid: every m=8 strategy × 4 instances × 2 seeds.

    Sized so per-cell compute dominates pool startup and IPC — the
    speedup assertion must measure the backend, not the fork cost.
    """
    strategies = full_sweep(8)
    instances = [uniform_instance(2_000, 8, alpha=1.5, seed=s) for s in range(4)]
    return strategies, instances, ["log_uniform"]


def _run_speedup_comparison():
    # batch=False on both sides: this bench measures the process pool, so
    # every cell must actually cross it instead of short-circuiting
    # through the parent-side vectorized backend.
    strategies, instances, models = _speedup_grid_args()
    t0 = time.perf_counter()
    serial = run_grid(strategies, instances, models, seeds=(0, 1), batch=False)
    serial_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    parallel = run_grid(
        strategies,
        instances,
        models,
        seeds=(0, 1),
        workers=_SPEEDUP_WORKERS,
        batch=False,
    )
    parallel_s = time.perf_counter() - t0
    return serial, parallel, serial_s, parallel_s


def bench_grid_parallel_speedup(benchmark):
    """Serial vs parallel grid execution on the same sweep.

    Asserts the parallel backend's determinism guarantee (identical
    record lists) always, and near-linear speedup (>1.5× with 4 workers)
    whenever the host actually has ≥4 cores to scale onto.
    """
    serial, parallel, serial_s, parallel_s = benchmark.pedantic(
        _run_speedup_comparison, rounds=1, iterations=1
    )
    assert serial == parallel, "parallel grid must reproduce the serial records"
    speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")
    cores = os.cpu_count() or 1
    lines = [
        f"grid cells: {len(serial)}  workers: {_SPEEDUP_WORKERS}  cores: {cores}",
        f"serial:   {serial_s:8.3f} s",
        f"parallel: {parallel_s:8.3f} s",
        f"speedup:  {speedup:8.2f}x",
    ]
    if cores < _SPEEDUP_WORKERS:
        lines.append(
            f"note: host has {cores} core(s) < {_SPEEDUP_WORKERS} workers — below "
            "the parallelism break-even point, so the pool's fork/IPC overhead "
            "makes a sub-1x ratio expected here; the >1.5x speedup assertion "
            f"only applies on hosts with >= {_SPEEDUP_WORKERS} cores"
        )
    emit("perf_grid_parallel_speedup", "\n".join(lines))
    if cores >= _SPEEDUP_WORKERS:
        assert speedup > 1.5, (
            f"expected >1.5x speedup with {_SPEEDUP_WORKERS} workers on "
            f"{cores} cores, measured {speedup:.2f}x"
        )


def _batch_grid_args():
    """Every supports_batch family on a kernel-dominated sweep."""
    strategies = [
        "lpt_no_choice",
        "lpt_no_restriction",
        "ls_group[k=4]",
        "lpt_group[k=2]",
    ]
    instances = [uniform_instance(400, 8, alpha=2.0, seed=s) for s in range(3)]
    return strategies, instances, ["log_uniform"]


def _run_batch_comparison():
    strategies, instances, models = _batch_grid_args()
    t0 = time.perf_counter()
    kernel = run_grid(strategies, instances, models, seeds=(0, 1, 2, 3), batch=False)
    kernel_s = time.perf_counter() - t0
    grid = ExperimentGrid(
        strategies=strategies,
        instances=instances,
        realization_models=models,
        seeds=(0, 1, 2, 3),
    )
    t0 = time.perf_counter()
    batched = grid.run()
    batch_s = time.perf_counter() - t0
    return kernel, batched, grid.batched_cells, kernel_s, batch_s


def bench_batch_backend_speedup(benchmark):
    """Event kernel vs the vectorized batch backend on the same sweep.

    Asserts the batch backend's bit-exactness contract (identical record
    lists), that every cell of this all-batchable sweep actually took the
    vectorized path, and a >2x speedup — the committed BENCH_perf.json
    gates the finer-grained trajectory; this bench keeps the claim alive
    in the artifact log.
    """
    kernel, batched, batched_cells, kernel_s, batch_s = benchmark.pedantic(
        _run_batch_comparison, rounds=1, iterations=1
    )
    assert kernel == batched, "batch backend must reproduce the kernel records"
    assert batched_cells == len(batched), "all-batchable sweep must fully batch"
    speedup = kernel_s / batch_s if batch_s > 0 else float("inf")
    emit(
        "perf_batch_backend_speedup",
        "\n".join(
            [
                f"grid cells: {len(kernel)}  batched: {batched_cells}",
                f"event kernel: {kernel_s:8.3f} s",
                f"batch sweep:  {batch_s:8.3f} s",
                f"speedup:      {speedup:8.2f}x",
            ]
        ),
    )
    assert speedup > 2.0, f"expected >2x batch speedup, measured {speedup:.2f}x"
