"""Figure 5 — an ABO_Δ schedule.

Regenerates the paper's Figure 5: memory-intensive tasks pinned per π₂ and
run first; time-intensive tasks replicated everywhere and dispatched by
Graham's List Scheduling as machines free up.  Asserts the replication
structure and the per-machine precedence the figure shows.
"""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.analysis.ratios import run_strategy
from repro.memory.abo import ABO
from repro.reporting import _memory_example_instance, fig5_report
from repro.uncertainty.realization import truthful_realization


def bench_fig5_abo_schedule(benchmark):
    out = benchmark(fig5_report)
    inst = _memory_example_instance()
    strategy = ABO(1.0)
    placement = strategy.place(inst)
    s1, s2 = set(placement.meta["s1"]), set(placement.meta["s2"])
    for j in s1:
        assert placement.replication_count(j) == inst.m
    for j in s2:
        assert placement.replication_count(j) == 1
    # Precedence: on each machine all pinned tasks run before replicated.
    outcome = run_strategy(strategy, inst, truthful_realization(inst))
    for machine_tasks in outcome.trace.tasks_per_machine(inst.m):
        seen_replicated = False
        for tid in machine_tasks:
            if tid in s2:
                assert not seen_replicated
            else:
                seen_replicated = True
    emit("fig5_abo_schedule", out)
