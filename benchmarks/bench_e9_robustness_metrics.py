"""E9 — replication vs. classical robustness metrics.

The related-work section contrasts the paper's replication approach with
the robust-scheduling literature (slack-based techniques, sensitivity
analysis).  This bench measures the classical robustness metrics of each
replication level, connecting the two viewpoints:

* **worst single inflation** — makespan when the single worst-placed task
  runs at ``α·p̃`` (sensitivity-analysis metric);
* **robustness radius** — the uniform inflation factor a 1.3×-truthful
  makespan target survives (stability-radius metric).

Expected shape (asserted): replication improves the sensitivity metric —
full replication's worst-single-inflation makespan is no worse than the
pinned placement's on every instance — while the uniform-inflation radius
is replication-*insensitive* (uniform error rescales time; no dispatch
freedom can help), which is precisely why the paper's adversary uses
*mixed* inflation/deflation rather than uniform error.
"""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.analysis.csvio import results_dir, write_csv
from repro.analysis.ratios import run_strategy
from repro.analysis.sensitivity import robustness_radius, worst_single_inflation
from repro.analysis.tables import format_table
from repro.core.strategies import LPTNoChoice, LPTNoRestriction, LSGroup
from repro.uncertainty.realization import truthful_realization
from repro.workloads.generators import uniform_instance

M = 6
TARGET_FACTOR = 1.3


def _run_e9():
    strategies = [LPTNoChoice(), LSGroup(3), LSGroup(2), LPTNoRestriction()]
    rows = []
    raw = []
    for strategy in strategies:
        worst_ratios = []
        radii = []
        for seed in range(5):
            inst = uniform_instance(24, M, alpha=1.8, seed=seed)
            truthful = run_strategy(
                strategy, inst, truthful_realization(inst)
            ).makespan
            _, worst = worst_single_inflation(strategy, inst)
            worst_ratios.append(worst / truthful)
            radii.append(
                robustness_radius(strategy, inst, TARGET_FACTOR * truthful, tol=1e-4)
            )
            raw.append(
                {
                    "strategy": strategy.name,
                    "seed": seed,
                    "truthful_makespan": truthful,
                    "worst_single_inflation": worst,
                    "worst_over_truthful": worst / truthful,
                    "robustness_radius": radii[-1],
                }
            )
        rows.append(
            {
                "strategy": strategy.name,
                "replication": strategy.replication_of(
                    uniform_instance(24, M, alpha=1.8, seed=0)
                ),
                "worst single inflation / truthful": sum(worst_ratios) / len(worst_ratios),
                "radius at 1.3x target": sum(radii) / len(radii),
            }
        )
    return rows, raw


def bench_e9_robustness_metrics(benchmark):
    rows, raw = benchmark.pedantic(_run_e9, rounds=1, iterations=1)

    by_name = {r["strategy"]: r for r in rows}
    # Sensitivity improves with full replication vs pinning.
    assert (
        by_name["lpt_no_restriction"]["worst single inflation / truthful"]
        <= by_name["lpt_no_choice"]["worst single inflation / truthful"] + 1e-9
    )
    # Uniform-inflation radius is replication-insensitive: all strategies
    # sit at ~1.3 (the target factor), replication buys nothing there.
    for r in rows:
        assert abs(r["radius at 1.3x target"] - TARGET_FACTOR) < 0.02, r

    write_csv(results_dir() / "e9_robustness_metrics.csv", raw)
    emit(
        "e9_robustness_metrics",
        format_table(
            rows,
            title=f"E9 — classical robustness metrics per replication level "
            f"(m={M}, alpha=1.8): replication fixes *targeted* error, "
            f"nothing fixes *uniform* error",
        ),
    )
