"""E5 — generalized replication policies (the paper's future work, measured).

The conclusion proposes two directions beyond equal-size disjoint groups:
"more general replication policies" and "a cost of replicating a task ...
replicate only some critical tasks and limit memory usage".  This bench
measures both against the paper's strategies on the axis that matters —
**total replicas used vs. achieved makespan ratio**:

* LS-Group over all divisors (the paper's tradeoff curve),
* OverlappingWindows (overlap=2) at the same group counts,
* SelectiveReplication sweeping the critical-work fraction,
* BudgetedReplication sweeping the exact replica budget.

Expected shape (asserted): all policies are feasible and improve (weakly)
with replicas; selective replication reaches the no-replication-vs-full
spread with a *finer* tradeoff curve than the divisor grid; at matched
average replication the selective policy is competitive with LS-Group.
"""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.analysis.csvio import results_dir, write_csv
from repro.analysis.ratios import measured_ratio
from repro.analysis.stats import summarize
from repro.analysis.tables import format_table
from repro.core.strategies import (
    BudgetedReplication,
    LSGroup,
    OverlappingWindows,
    SelectiveReplication,
)
from repro.uncertainty.stochastic import sample_realization
from repro.workloads.generators import generate

M = 6
N = 18
ALPHA = 2.0
SEEDS = range(4)


def _strategy_grid():
    grid = []
    for k in (1, 2, 3, 6):
        grid.append(LSGroup(k))
    for k in (2, 3, 6):
        grid.append(OverlappingWindows(k, overlap=2))
    for frac in (0.0, 0.25, 0.5, 0.75, 1.0):
        grid.append(SelectiveReplication(frac, by_work=True))
    for budget in (N, 2 * N, 3 * N, N * M):
        grid.append(BudgetedReplication(budget))
    return grid


def _run_e5():
    raw = []
    rows = []
    for strategy in _strategy_grid():
        ratios = []
        replicas = []
        for family in ("uniform", "bimodal"):
            for seed in SEEDS:
                inst = generate(family, N, M, ALPHA, seed)
                real = sample_realization(inst, "bimodal_extreme", 800 + seed)
                rec = measured_ratio(strategy, inst, real, exact_limit=18)
                ratios.append(rec.ratio)
                replicas.append(rec.outcome.placement.total_replicas())
                raw.append(
                    {
                        "strategy": strategy.name,
                        "family": family,
                        "seed": seed,
                        "total_replicas": replicas[-1],
                        "ratio": rec.ratio,
                        "optimum_exact": rec.optimum.optimal,
                    }
                )
        s = summarize(ratios)
        rows.append(
            {
                "strategy": strategy.name,
                "avg total replicas": sum(replicas) / len(replicas),
                "mean ratio": s.mean,
                "max ratio": s.maximum,
            }
        )
    rows.sort(key=lambda r: r["avg total replicas"])
    return rows, raw


def bench_e5_general_replication(benchmark):
    rows, raw = benchmark.pedantic(_run_e5, rounds=1, iterations=1)

    by_name = {r["strategy"]: r for r in rows}
    # Endpoints agree across families of policies.
    assert by_name["selective[0,work]"]["avg total replicas"] == N
    assert by_name["selective[1,work]"]["avg total replicas"] == N * M
    assert by_name[f"budgeted[B={N}]"]["avg total replicas"] == N

    # Selective offers a finer grid than LS-Group: strictly more distinct
    # replica levels in (n, n*m).
    group_levels = {
        r["avg total replicas"] for r in rows if r["strategy"].startswith("ls_group")
    }
    selective_levels = {
        r["avg total replicas"] for r in rows if r["strategy"].startswith("selective")
    }
    assert len(selective_levels) >= len(group_levels)

    # Replication helps: full-replication variants beat the no-replication
    # variants of each family on mean ratio.
    assert (
        by_name["selective[1,work]"]["mean ratio"]
        <= by_name["selective[0,work]"]["mean ratio"] + 1e-9
    )
    assert (
        by_name[f"budgeted[B={N * M}]"]["mean ratio"]
        <= by_name[f"budgeted[B={N}]"]["mean ratio"] + 1e-9
    )
    # Overlap at equal k never loses badly to disjoint groups.
    for k in (2, 3):
        assert (
            by_name[f"overlap_windows[k={k},w=2]"]["mean ratio"]
            <= by_name[f"ls_group[k={k}]"]["mean ratio"] * 1.05
        )

    write_csv(results_dir() / "e5_general_replication.csv", raw)
    emit(
        "e5_general_replication",
        format_table(
            rows,
            title=f"E5 — generalized replication policies "
            f"(n={N}, m={M}, alpha={ALPHA}, extreme realizations)",
        ),
    )
