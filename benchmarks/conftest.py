"""Shared helpers for the benchmark/repro harness.

Each bench regenerates one paper artifact (table or figure), times the
regeneration with pytest-benchmark, writes the artifact under
``results/`` and queues it for display.  The queued artifacts are printed
in pytest's terminal summary — which bypasses output capture — so
``pytest benchmarks/ --benchmark-only | tee bench_output.txt`` records
every reproduced table and figure alongside the timing table.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Any

from repro.analysis.cache import CellCache
from repro.analysis.csvio import results_dir
from repro.obs.provenance import bench_manifest
from repro.store import ArtifactStore, code_ref, drain_raw_refs, publish_curated

#: Artifacts emitted during this session, printed in the terminal summary.
_EMITTED: list[tuple[str, str]] = []

#: One store per bench session; opened lazily at the first emit.
_STORE: list[ArtifactStore] = []


def _store() -> ArtifactStore:
    if not _STORE:
        _STORE.append(ArtifactStore())
    return _STORE[0]


def grid_opts() -> dict[str, Any]:
    """Environment-driven ``run_grid`` kwargs for the grid benches.

    * ``REPRO_BENCH_WORKERS=N`` — fan grid cells over N worker processes
      (results are identical to serial; see docs/performance.md);
    * ``REPRO_BENCH_CACHE=PATH`` — enable the on-disk cell cache there,
      so a re-run only recomputes cells whose inputs changed.

    Defaults (unset) are serial and uncached — benchmark timings stay
    honest unless the caller explicitly opts in.
    """
    opts: dict[str, Any] = {}
    workers = int(os.environ.get("REPRO_BENCH_WORKERS", "1") or "1")
    if workers > 1:
        opts["workers"] = workers
    cache_dir = os.environ.get("REPRO_BENCH_CACHE", "").strip()
    if cache_dir:
        opts["cache"] = CellCache(cache_dir)
    return opts


def emit(name: str, text: str) -> Path:
    """Save an artifact to results/, publish it to the store, queue it.

    Three durable records per artifact:

    * ``results/<name>.txt`` (plus whatever CSV/SVG files the bench
      already wrote) — the working-tree rendering;
    * a CURATED artifact in the content-addressed store snapshotting
      those exact bytes, with refs to the producing code and to every
      RAW grid cell the cell cache served or stored while the bench ran
      (see :mod:`repro.store.session`);
    * a ``results/<name>.manifest.json`` provenance sidecar carrying the
      environment identity, recorded metrics, the store ``artifact_id``,
      and the same refs.
    """
    path = results_dir() / f"{name}.txt"
    path.write_text(text + "\n")
    refs = (code_ref("benchmarks"), *drain_raw_refs())
    artifact = publish_curated(name, store=_store(), refs=refs)
    bench_manifest(
        name,
        artifact=path.name,
        refs=refs,
        artifact_id=artifact.artifact_id if artifact is not None else None,
    ).write(results_dir() / f"{name}.manifest.json")
    _EMITTED.append((name, text))
    return path


def pytest_terminal_summary(terminalreporter, exitstatus, config):  # noqa: ARG001
    if not _EMITTED:
        return
    terminalreporter.write_sep("=", "reproduced artifacts")
    for name, text in _EMITTED:
        terminalreporter.write_sep("-", name)
        terminalreporter.write_line(text)
    _EMITTED.clear()
