"""E4 — measured memory/makespan Pareto fronts for SABO and ABO.

Figure 6 plots guarantee *curves*; this bench measures where the
algorithms actually land: sweep Δ, run both algorithms on memory-aware
workloads under uncertainty, and record (makespan ratio, memory ratio)
pairs, the measured Pareto fronts, and the dominated hypervolume.

Expected shape (asserted): measured points always sit inside their
guarantee box; ABO contributes the makespan-leaning part of the combined
front and SABO the memory-leaning part, mirroring the paper's "pick by
objective" advice.
"""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.analysis.csvio import results_dir, write_csv
from repro.analysis.ratios import run_strategy
from repro.analysis.tables import format_table
from repro.exact.optimal import optimal_makespan
from repro.memory.abo import ABO
from repro.memory.model import memory_lower_bound
from repro.memory.pareto import BiPoint, front_area, pareto_front
from repro.memory.sabo import SABO
from repro.uncertainty.stochastic import sample_realization
from repro.workloads.memory_workloads import anticorrelated_sizes, independent_sizes

DELTAS = (0.1, 0.25, 0.5, 1.0, 2.0, 4.0, 10.0)


def _run_e4():
    points: list[BiPoint] = []
    raw = []
    for workload, label in (
        (independent_sizes, "independent"),
        (anticorrelated_sizes, "anticorrelated"),
    ):
        for seed in range(3):
            inst = workload(18, 5, alpha=1.7, seed=seed)
            real = sample_realization(inst, "bimodal_extreme", 900 + seed)
            opt = optimal_makespan(real.actuals, inst.m, exact_limit=18)
            mem_lb = memory_lower_bound(inst.sizes, inst.m)
            for delta in DELTAS:
                for strategy in (SABO(delta), ABO(delta)):
                    outcome = run_strategy(strategy, inst, real)
                    make_ratio = outcome.makespan / opt.value
                    mem_ratio = outcome.memory_max / mem_lb
                    algo = "sabo" if isinstance(strategy, SABO) else "abo"
                    points.append(BiPoint(make_ratio, mem_ratio, label=f"{algo}@{delta}"))
                    raw.append(
                        {
                            "workload": label,
                            "seed": seed,
                            "algorithm": algo,
                            "delta": delta,
                            "makespan_ratio": make_ratio,
                            "memory_ratio": mem_ratio,
                            "makespan_guarantee": strategy.makespan_guarantee(inst),
                            "memory_guarantee": strategy.memory_guarantee(inst),
                            "optimum_exact": opt.optimal,
                        }
                    )
    return points, raw


def bench_e4_memory_pareto(benchmark):
    points, raw = benchmark.pedantic(_run_e4, rounds=1, iterations=1)

    # Every measured point inside its guarantee box (exact-opt rows; the
    # memory side uses a lower bound so it holds unconditionally).
    for r in raw:
        if r["optimum_exact"]:
            assert r["makespan_ratio"] <= r["makespan_guarantee"] * (1 + 1e-9), r
        assert r["memory_ratio"] <= r["memory_guarantee"] * (1 + 1e-9), r

    front = pareto_front(points)
    ref = (5.0, 10.0)
    area = front_area(front, ref=ref)
    assert area > 0

    # SABO dominates the memory-leaning end of the front: its best memory
    # ratio beats ABO's best.
    sabo_best_mem = min(r["memory_ratio"] for r in raw if r["algorithm"] == "sabo")
    abo_best_mem = min(r["memory_ratio"] for r in raw if r["algorithm"] == "abo")
    assert sabo_best_mem <= abo_best_mem + 1e-9

    rows = [
        {
            "front point": f"({p.makespan:.3f}, {p.memory:.3f})",
            "from": p.label,
        }
        for p in front
    ]
    rows.append({"front point": f"hypervolume to {ref}", "from": f"{area:.3f}"})
    write_csv(results_dir() / "e4_memory_pareto.csv", raw)
    emit(
        "e4_memory_pareto",
        format_table(rows, title="E4 — measured memory/makespan Pareto front (SABO vs ABO)"),
    )
