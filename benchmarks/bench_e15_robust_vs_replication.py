"""E15 — robust placement vs. replication (the two philosophies, head-to-head).

The related work answers uncertainty with *robust schedules* (optimize the
assignment against scenarios); the paper answers it with *replication*
(buy runtime flexibility).  This bench puts the strongest pinned
contender — scenario-optimized min-max placement — against the paper's
strategies in two arenas:

* **random arena**: fresh extreme realizations (not the training set) —
  measures generalization of the robust placement;
* **adversarial arena**: the Theorem-1 adversary, which *sees* the
  placement before choosing durations — the regime the bounds describe.

Expected shape (asserted): the classic robust-optimization tradeoff —
min-max pinning improves the *worst case* over fresh draws at the price
of a worse *mean* than naive LPT — and, in the adversarial arena, no
pinned placement helps at all: the adaptive adversary (which moves last)
forces naive and robust pinning to the *same* ratio, far above full
replication.  Foresight buys tail insurance on a fixed distribution;
only flexibility survives an adversary.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import emit
from repro.analysis.csvio import results_dir, write_csv
from repro.analysis.ratios import run_strategy
from repro.analysis.tables import format_table
from repro.core.adversary import theorem1_realization
from repro.core.strategies import LPTNoChoice, LPTNoRestriction
from repro.exact.optimal import optimal_makespan
from repro.robust import RobustPinnedPlacement
from repro.uncertainty.stochastic import sample_realization
from repro.workloads.generators import identical_instance, uniform_instance

SEEDS = 6
M = 4


def _arena_random(strategy, seed):
    inst = uniform_instance(16, M, alpha=2.0, seed=seed)
    real = sample_realization(inst, "bimodal_extreme", 900 + seed)
    outcome = run_strategy(strategy, inst, real)
    opt = optimal_makespan(real.actuals, M, exact_limit=16)
    return outcome.makespan / opt.value, opt.optimal


def _arena_adversarial(strategy, lam=4):
    """Theorem-1 arena: the adversary tailors durations to the strategy's
    pinned placement; against a replicated placement (no pinning to aim
    at) it falls back to its move against the naive pinning — replication
    adapts at runtime either way."""
    inst = identical_instance(lam * M, M, alpha=2.0)
    placement = strategy.place(inst)
    target = placement if placement.is_no_replication() else LPTNoChoice().place(inst)
    real = theorem1_realization(target)
    outcome = run_strategy(strategy, inst, real)
    opt = optimal_makespan(real.actuals, M, exact_limit=lam * M)
    return outcome.makespan / opt.value, opt.optimal


def _run_e15():
    strategies = {
        "lpt pinned (naive)": LPTNoChoice(),
        "robust pinned (scenario min-max)": RobustPinnedPlacement(scenarios=16, seed=1),
        "full replication": LPTNoRestriction(),
    }
    rows = []
    raw = []
    for label, strategy in strategies.items():
        random_ratios = []
        for seed in range(SEEDS):
            ratio, exact = _arena_random(strategy, seed)
            random_ratios.append(ratio)
            raw.append(
                {"arena": "random", "strategy": label, "seed": seed, "ratio": ratio,
                 "optimum_exact": exact}
            )
        adv_ratio, adv_exact = _arena_adversarial(strategy)
        raw.append(
            {"arena": "adversarial", "strategy": label, "seed": "", "ratio": adv_ratio,
             "optimum_exact": adv_exact}
        )
        rows.append(
            {
                "strategy": label,
                "random arena mean ratio": float(np.mean(random_ratios)),
                "random arena worst ratio": float(np.max(random_ratios)),
                "adversarial arena ratio": adv_ratio,
            }
        )
    return rows, raw


def bench_e15_robust_vs_replication(benchmark):
    rows, raw = benchmark.pedantic(_run_e15, rounds=1, iterations=1)
    by = {r["strategy"]: r for r in rows}

    naive = by["lpt pinned (naive)"]
    robust = by["robust pinned (scenario min-max)"]
    full = by["full replication"]
    # The robust-optimization tradeoff: better tail, worse mean.
    assert robust["random arena worst ratio"] <= naive["random arena worst ratio"] + 1e-9
    assert robust["random arena mean ratio"] >= naive["random arena mean ratio"] - 1e-9
    # Full replication dominates both pinned variants everywhere.
    assert full["random arena mean ratio"] <= robust["random arena mean ratio"]
    assert full["random arena worst ratio"] <= robust["random arena worst ratio"]
    # Against the adaptive adversary foresight is worthless: both pinned
    # placements are forced to the same ratio, far above full replication.
    assert robust["adversarial arena ratio"] == pytest.approx(
        naive["adversarial arena ratio"]
    )
    assert robust["adversarial arena ratio"] >= 1.3 * full["adversarial arena ratio"]

    write_csv(results_dir() / "e15_robust_vs_replication.csv", raw)
    emit(
        "e15_robust_vs_replication",
        format_table(
            rows,
            title="E15 — foresight (robust pinning) vs flexibility (replication), "
            f"m={M}, alpha=2",
        ),
    )
