"""E6 — the clairvoyance/replication regime map.

The paper's conclusion sketches two regimes ("when α is low, the problem
is no different than the offline problem ... when it is large, the problem
converges to the non-clairvoyant online problem") and asks where the
boundary lies.  This bench maps it, both in guarantee space and measured:

* **guarantee space** — the value of the estimates
  (:func:`clairvoyance_value`) as α sweeps: positive below √2, zero above;
  plus the dominant strategy per replication level;
* **measured** — LPT-No Restriction (estimate-aware) vs the seeded
  non-clairvoyant baseline across α, showing the advantage decaying toward
  zero as α grows.
"""

from __future__ import annotations

import math

from benchmarks.conftest import emit
from repro.analysis.csvio import results_dir, write_csv
from repro.analysis.ratios import run_strategy
from repro.analysis.regimes import clairvoyance_value, dominant_strategy_map
from repro.analysis.tables import format_table
from repro.core.strategies import LPTNoRestriction, NonClairvoyantLS
from repro.uncertainty.stochastic import sample_realization
from repro.workloads.generators import uniform_instance

ALPHAS = (1.0, 1.1, 1.2, 1.3, math.sqrt(2.0), 1.6, 2.0, 3.0)
M = 6


def _run_e6():
    rows = []
    for alpha in ALPHAS:
        aware = blind = 0.0
        runs = 6
        for seed in range(runs):
            inst = uniform_instance(30, M, alpha, seed)
            real = sample_realization(inst, "log_uniform", 600 + seed)
            aware += run_strategy(LPTNoRestriction(), inst, real).makespan
            blind += run_strategy(NonClairvoyantLS(seed=seed), inst, real).makespan
        dom = dominant_strategy_map([alpha], M)[0]
        rows.append(
            {
                "alpha": alpha,
                "guarantee value of estimates": clairvoyance_value(alpha, M),
                "measured blind/aware makespan": blind / aware,
                "best strategy (guarantee)": dom["best_strategy"],
                "best guarantee": dom["best_guarantee"],
            }
        )
    return rows


def bench_e6_regime_map(benchmark):
    rows = benchmark.pedantic(_run_e6, rounds=1, iterations=1)

    # Guarantee value of the estimates: positive below sqrt(2), ~zero at
    # and above it.
    for r in rows:
        if r["alpha"] < math.sqrt(2.0) - 1e-9:
            assert r["guarantee value of estimates"] > 0
        else:
            assert abs(r["guarantee value of estimates"]) < 1e-9

    # Measured: estimates help (blind/aware >= 1) at every alpha, and help
    # most in the low-alpha regime.
    assert all(r["measured blind/aware makespan"] >= 1.0 - 1e-6 for r in rows)
    low = rows[1]["measured blind/aware makespan"]  # alpha = 1.1
    high = rows[-1]["measured blind/aware makespan"]  # alpha = 3.0
    assert low >= high - 0.05

    # Full replication's guarantee dominates at every alpha in this sweep.
    assert all("no_restriction" in r["best strategy (guarantee)"] for r in rows)

    write_csv(results_dir() / "e6_regime_map.csv", rows)
    emit(
        "e6_regime_map",
        format_table(
            rows,
            title=f"E6 — clairvoyance regimes (m={M}): the value of estimates "
            "vs alpha, in guarantees and measured",
        ),
    )
