"""E3 — ablation: LS vs LPT ordering inside the group strategy.

The paper closes Section 5.3 speculating that "a LPT-based algorithm may
have better guarantee" for the group strategy but argues it "would likely
not have a much more interesting guarantee".  This bench measures the
question empirically: LS-Group vs LPT-Group (identical group structure,
LPT order in both phases) across workloads, seeds and group counts.

Expected shape (asserted): LPT-Group is at least as good as LS-Group on
average — ordering by size helps in practice even though it cannot improve
the worst-case much, which is exactly the paper's conjecture.
"""

from __future__ import annotations

from collections import defaultdict

from benchmarks.conftest import emit
from repro.analysis.csvio import results_dir, write_csv
from repro.analysis.ratios import measured_ratio
from repro.analysis.stats import summarize
from repro.analysis.tables import format_table
from repro.core.strategies import LPTGroup, LSGroup
from repro.uncertainty.stochastic import sample_realization
from repro.workloads.generators import generate


def _run_e3():
    rows = []
    raw = []
    per_pair: dict[tuple[str, int], list[float]] = defaultdict(list)
    m = 6
    for family in ("uniform", "bounded_pareto", "bimodal"):
        for seed in range(4):
            inst = generate(family, 18, m, 1.8, seed)
            real = sample_realization(inst, "bimodal_extreme", 500 + seed)
            for k in (1, 2, 3, 6):
                for strat_cls, label in ((LSGroup, "ls"), (LPTGroup, "lpt")):
                    rec = measured_ratio(strat_cls(k), inst, real, exact_limit=18)
                    per_pair[(label, k)].append(rec.ratio)
                    raw.append(
                        {
                            "family": family,
                            "seed": seed,
                            "k": k,
                            "order": label,
                            "ratio": rec.ratio,
                            "optimum_exact": rec.optimum.optimal,
                        }
                    )
    for k in (1, 2, 3, 6):
        ls = summarize(per_pair[("ls", k)])
        lpt = summarize(per_pair[("lpt", k)])
        rows.append(
            {
                "k": k,
                "replication": m // k,
                "LS-Group mean": ls.mean,
                "LS-Group max": ls.maximum,
                "LPT-Group mean": lpt.mean,
                "LPT-Group max": lpt.maximum,
                "LPT improvement %": 100.0 * (ls.mean - lpt.mean) / ls.mean,
            }
        )
    return rows, raw


def bench_e3_group_phase_ablation(benchmark):
    rows, raw = benchmark.pedantic(_run_e3, rounds=1, iterations=1)

    # LPT ordering is at least as good in aggregate for every k.
    for r in rows:
        assert r["LPT-Group mean"] <= r["LS-Group mean"] * (1 + 0.02), r

    write_csv(results_dir() / "e3_group_phase_ablation.csv", raw)
    emit(
        "e3_group_phase_ablation",
        format_table(
            rows,
            title="E3 — LS vs LPT ordering in the group strategy "
            "(m=6, alpha=1.8, bimodal_extreme realizations)",
        ),
    )
