"""E2 — convergence of the Theorem-1 adversary to its lower bound.

The Theorem-1 proof lets λ → ∞ to reach the bound α²m/(α²+m−1); this bench
traces the measured ratio of the adversary against LPT-No Choice for
growing λ (exact optima throughout, using the structured instance so the
branch-and-bound stays trivial) and asserts monotone convergence toward
the bound, reproducing the asymptotic argument numerically.
"""

from __future__ import annotations

import math

from benchmarks.conftest import emit
from repro.analysis.csvio import results_dir, write_csv
from repro.analysis.ratios import run_strategy
from repro.analysis.tables import format_table
from repro.core.adversary import theorem1_instance, theorem1_realization
from repro.core.bounds import lb_no_replication
from repro.core.strategies import LPTNoChoice


def _exact_opt_for_adversary(lam: int, m: int, alpha: float, b: int) -> float:
    """Exact clairvoyant optimum of the adversarial realization.

    The realization has ``b`` tasks of duration α and ``λm − b`` of
    duration 1/α; the optimum over assignments of two task sizes to ``m``
    machines is computed by scanning how many α-tasks the worst machine
    takes (a closed two-size bin computation, exact for this structure).
    """
    n_big, n_small = b, lam * m - b
    best = math.inf
    # Distribute big tasks as evenly as possible: q or q+1 per machine.
    for big_on_heaviest in range(math.ceil(n_big / m), n_big + 1):
        # Machines carrying `big_on_heaviest` big tasks: minimal count.
        heavy_machines = math.ceil(n_big / big_on_heaviest) if big_on_heaviest else 0
        if heavy_machines > m:
            continue
        # Greedy: balance small tasks to equalize completion.  Lower bound
        # by average; construct the balanced schedule explicitly.
        loads = []
        remaining_big = n_big
        for i in range(m):
            take = min(big_on_heaviest, remaining_big)
            remaining_big -= take
            loads.append(take * alpha)
        # Distribute small tasks greedily to least-loaded machines.
        import heapq

        heap = [(l, i) for i, l in enumerate(loads)]
        heapq.heapify(heap)
        for _ in range(n_small):
            l, i = heapq.heappop(heap)
            heapq.heappush(heap, (l + 1.0 / alpha, i))
        best = min(best, max(l for l, _ in heap))
    return best


def _run_e2():
    rows = []
    for m in (2, 6):
        for alpha in (1.5, 2.0):
            bound = lb_no_replication(alpha, m)
            for lam in (1, 2, 4, 8, 16, 32):
                inst = theorem1_instance(lam, m, alpha)
                strategy = LPTNoChoice()
                placement = strategy.place(inst)
                real = theorem1_realization(placement)
                outcome = run_strategy(strategy, inst, real)
                b = max(
                    sum(1 for a in placement.fixed_assignment() if a == i)
                    for i in range(m)
                )
                opt = _exact_opt_for_adversary(lam, m, alpha, b)
                rows.append(
                    {
                        "m": m,
                        "alpha": alpha,
                        "lambda": lam,
                        "measured ratio": outcome.makespan / opt,
                        "theorem1 bound": bound,
                        "fraction of bound": (outcome.makespan / opt) / bound,
                    }
                )
    return rows


def bench_e2_lower_bound_convergence(benchmark):
    rows = benchmark.pedantic(_run_e2, rounds=1, iterations=1)

    # Convergence: within each (m, alpha) the ratio is non-decreasing in
    # lambda and ends within 5% of the bound.
    for m in (2, 6):
        for alpha in (1.5, 2.0):
            series = [
                r for r in rows if r["m"] == m and r["alpha"] == alpha
            ]
            ratios = [r["measured ratio"] for r in series]
            assert all(a <= b + 1e-9 for a, b in zip(ratios, ratios[1:])), (
                m,
                alpha,
                ratios,
            )
            assert series[-1]["fraction of bound"] > 0.95
            # Never exceeds the bound (it is a supremum).
            assert all(r["measured ratio"] <= r["theorem1 bound"] + 1e-9 for r in series)

    write_csv(results_dir() / "e2_lower_bound_convergence.csv", rows)
    emit(
        "e2_lower_bound_convergence",
        format_table(rows, title="E2 — adversary ratio -> Theorem-1 bound as lambda grows"),
    )
