"""Table 2 — summary of the memory-aware model's guarantees.

Regenerates the paper's Table 2 (SABO_Δ and ABO_Δ bi-objective guarantees,
Theorems 5-8) evaluated at the Figure-6 parameterizations.  Verifies the
paper's qualitative claim — SABO always has the better *memory* guarantee,
and for αρ₁ ≥ 2 ABO has the better *makespan* guarantee — before emitting.
"""

from __future__ import annotations

import math

from benchmarks.conftest import emit
from repro.core.bounds import (
    abo_makespan_guarantee,
    abo_memory_guarantee,
    sabo_makespan_guarantee,
    sabo_memory_guarantee,
)
from repro.reporting import table2_report


def bench_table2(benchmark):
    out = benchmark(table2_report)
    m = 5
    for a2 in (2.0, 3.0):
        alpha = math.sqrt(a2)
        for rho in (1.0, 4.0 / 3.0):
            for delta in (0.5, 1.0, 2.0):
                # SABO always wins on memory.
                assert sabo_memory_guarantee(rho, delta) <= abo_memory_guarantee(
                    rho, delta, m
                )
                if alpha * rho >= 2.0:
                    # Paper: ABO wins on makespan whenever alpha*rho1 >= 2.
                    assert abo_makespan_guarantee(
                        alpha, rho, delta, m
                    ) <= sabo_makespan_guarantee(alpha, rho, delta)
    emit("table2_memory_bounds", out)
