"""E8 — numeric verification of every proof in the paper.

Runs the full :mod:`repro.theory` battery — every intermediate inequality
of Theorems 1-4 and Lemma 1 replayed with real numbers — across a spread
of instances and realizations, and emits the verified chains.  A single
failing step would mean an implementation bug or a counterexample to the
paper; the bench asserts zero failures over the whole battery.
"""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.theory import verify_all
from repro.uncertainty.stochastic import sample_realization
from repro.workloads.generators import generate


def _run_e8():
    all_checks = []
    for family, n, m, alpha in (
        ("uniform", 12, 4, 1.5),
        ("bimodal", 14, 3, 2.0),
        ("bounded_pareto", 10, 2, 1.2),
        ("identical", 12, 4, 2.0),
    ):
        inst = generate(family, n, m, alpha, seed=7)
        real = sample_realization(inst, "bimodal_extreme", 11)
        all_checks.extend(verify_all(inst, real))
    return all_checks


def bench_e8_proof_verification(benchmark):
    checks = benchmark.pedantic(_run_e8, rounds=1, iterations=1)

    failures = [s for c in checks for s in c.failures()]
    assert not failures, failures
    total_steps = sum(len(c.steps) for c in checks)
    assert total_steps > 50  # the battery is substantive

    body = "\n\n".join(c.render() for c in checks)
    summary = (
        f"\n{len(checks)} proof chains, {total_steps} inequalities verified, "
        f"0 failures"
    )
    emit("e8_proof_verification", body + summary)
