"""Tests for the perf-trajectory harness (``repro.tools.perfbench``)."""

from __future__ import annotations

import copy
import json

import pytest

from repro.tools import perfbench


@pytest.fixture(scope="module")
def payload():
    """One real quick measurement, shared by the whole module (seconds)."""
    return perfbench.run_bench(quick=True, repeats=1)


class TestRunBench:
    def test_schema_and_scenarios(self, payload):
        assert payload["schema"] == perfbench.SCHEMA
        assert payload["quick"] is True
        for name in ("single_cell", "eventkernel_sweep", "batch_sweep",
                     "cached_resweep", "parallel_grid"):
            scenario = payload["scenarios"][name]
            assert scenario["median_s"] > 0
            assert scenario["min_s"] > 0
            assert len(scenario["runs"]) == 1

    def test_host_fingerprint(self, payload):
        host = payload["host"]
        assert host["python"] and host["platform"]
        assert host["cpu_count"] >= 1

    def test_derived_metrics(self, payload):
        derived = payload["derived"]
        assert derived["records_equal"] is True
        assert derived["batch_speedup_x"] > 1.0
        assert derived["cache_speedup_x"] > 0.0

    def test_grid_block_describes_the_workload(self, payload):
        grid = payload["grid"]
        assert grid["cells"] == len(grid["strategies"]) * grid["seeds"]

    def test_memory_family_scenarios(self, payload):
        for name in ("memory_eventkernel_sweep", "memory_batch_sweep"):
            assert payload["scenarios"][name]["min_s"] > 0
        derived = payload["derived"]
        assert derived["batch_memory_speedup_x"] > 1.0
        assert derived["batch_coverage"] >= perfbench.DEFAULT_COVERAGE_FLOOR

    def test_batch_coverage_counts_the_registry(self):
        from repro.registry import strategy_entries

        coverage = perfbench.batch_coverage()
        assert 0.0 < coverage <= 1.0
        flagged = sum(
            1
            for e in strategy_entries()
            if e.capabilities is not None and e.capabilities.supports_batch
        )
        assert coverage == flagged / len(strategy_entries())


class TestWritePayload:
    def test_artifact_and_manifest_sidecar(self, payload, tmp_path):
        out = perfbench.write_payload(payload, tmp_path / "BENCH_perf.json")
        data = json.loads(out.read_text())
        assert data["schema"] == perfbench.SCHEMA
        sidecar = json.loads((tmp_path / "BENCH_perf.manifest.json").read_text())
        assert sidecar["kind"] == "bench"
        # The artifact itself is timestamp-free; the sidecar carries it.
        assert "created_unix" not in data
        assert "created_unix" in sidecar


class TestCheckRegression:
    def test_identical_payloads_pass(self, payload):
        assert perfbench.check_regression(payload, copy.deepcopy(payload)) == []

    def test_regression_fails(self, payload):
        fresh = copy.deepcopy(payload)
        fresh["derived"]["batch_speedup_x"] = (
            payload["derived"]["batch_speedup_x"] * 0.5
        )
        problems = perfbench.check_regression(fresh, payload)
        assert any("regressed" in p for p in problems)

    def test_large_improvement_requests_rebaseline(self, payload):
        fresh = copy.deepcopy(payload)
        fresh["derived"]["batch_speedup_x"] = (
            payload["derived"]["batch_speedup_x"] * 2.0
        )
        problems = perfbench.check_regression(fresh, payload)
        assert any("improved" in p and "re-baseline" in p for p in problems)

    def test_floor_is_absolute(self, payload):
        fresh = copy.deepcopy(payload)
        base = copy.deepcopy(payload)
        fresh["derived"]["batch_speedup_x"] = 1.1
        base["derived"]["batch_speedup_x"] = 1.1  # drifted baseline too
        problems = perfbench.check_regression(fresh, base)
        assert any("floor" in p for p in problems)

    def test_fresh_scenario_floor_applies_without_baseline_key(self, payload):
        """A speedup scenario absent from the committed baseline must still
        clear the absolute floor on the fresh run (it used to silently
        pass until a re-baseline introduced the key)."""
        old = copy.deepcopy(payload)
        old["derived"].pop("batch_memory_speedup_x")
        old["derived"].pop("batch_coverage")
        fresh = copy.deepcopy(payload)
        fresh["derived"]["batch_memory_speedup_x"] = 1.1
        problems = perfbench.check_regression(fresh, old)
        assert any(
            "batch_memory_speedup_x" in p and "floor" in p for p in problems
        )
        # Above the floor, the missing baseline key means no band to apply.
        fresh["derived"]["batch_memory_speedup_x"] = perfbench.DEFAULT_FLOOR * 2
        assert perfbench.check_regression(fresh, old) == []

    def test_memory_speedup_band_applies_with_baseline_key(self, payload):
        fresh = copy.deepcopy(payload)
        fresh["derived"]["batch_memory_speedup_x"] = (
            payload["derived"]["batch_memory_speedup_x"] * 0.5
        )
        problems = perfbench.check_regression(fresh, payload)
        assert any(
            "batch_memory_speedup_x" in p and "regressed" in p for p in problems
        )

    def test_coverage_floor_gate(self, payload):
        fresh = copy.deepcopy(payload)
        fresh["derived"]["batch_coverage"] = 0.5
        problems = perfbench.check_regression(fresh, payload)
        assert any("batch_coverage" in p for p in problems)

    def test_records_divergence_fails(self, payload):
        fresh = copy.deepcopy(payload)
        fresh["derived"]["records_equal"] = False
        problems = perfbench.check_regression(fresh, payload)
        assert any("diverged" in p for p in problems)

    def test_schema_mismatch_detected(self, payload):
        alien = {"schema": "something/else", "derived": {}}
        problems = perfbench.check_regression(alien, payload)
        assert problems and "schema" in problems[0]


class TestMain:
    def test_measure_writes_artifact(self, payload, tmp_path, monkeypatch, capsys):
        monkeypatch.setattr(perfbench, "run_bench", lambda **kw: payload)
        out = tmp_path / "bench.json"
        assert perfbench.main(["--quick", "--out", str(out)]) == 0
        assert json.loads(out.read_text())["schema"] == perfbench.SCHEMA

    def test_check_passes_against_own_baseline(
        self, payload, tmp_path, monkeypatch
    ):
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps(payload))
        monkeypatch.setattr(perfbench, "run_bench", lambda **kw: payload)
        rc = perfbench.main(["--quick", "--check", "--baseline", str(baseline)])
        assert rc == 0

    def test_check_fails_on_injected_regression(
        self, payload, tmp_path, monkeypatch, capsys
    ):
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps(payload))
        slow = copy.deepcopy(payload)
        slow["derived"]["batch_speedup_x"] = (
            payload["derived"]["batch_speedup_x"] * 0.5
        )
        monkeypatch.setattr(perfbench, "run_bench", lambda **kw: slow)
        rc = perfbench.main(["--quick", "--check", "--baseline", str(baseline)])
        assert rc == 1
        assert "FAIL" in capsys.readouterr().err

    def test_check_missing_baseline(self, payload, tmp_path, monkeypatch):
        monkeypatch.setattr(perfbench, "run_bench", lambda **kw: payload)
        rc = perfbench.main(
            ["--quick", "--check", "--baseline", str(tmp_path / "absent.json")]
        )
        assert rc == 2


class TestTracerOverhead:
    def test_scenario_and_derived(self, payload):
        assert payload["scenarios"]["tracer_overhead"]["min_s"] > 0
        calls = payload["derived"]["tracer_calls"]
        assert calls["spans"] > 0 and calls["counts"] > 0
        pct = payload["derived"]["tracer_overhead_pct"]
        assert 0 < pct < perfbench.DEFAULT_OVERHEAD_LIMIT_PCT

    def test_count_tracer_calls_tallies_disabled_path(self):
        from repro.obs.tracer import get_tracer

        def reference():
            tr = get_tracer()
            with tr.span("x"):
                tr.count("y")
                tr.count("y", 5)  # one call, whatever the delta
            tr.event("z")

        calls = perfbench._count_tracer_calls(reference)
        assert calls == {"spans": 1, "events": 1, "counts": 2}
        # The tallying shims are removed afterwards.
        assert "span" not in vars(get_tracer())

    def test_count_requires_untraced_run(self):
        from repro.obs import MemorySink, observed

        with observed(MemorySink()):
            with pytest.raises(AssertionError):
                perfbench._count_tracer_calls(lambda: None)

    def test_overhead_gate_is_fresh_only(self, payload):
        fresh = copy.deepcopy(payload)
        fresh["derived"]["tracer_overhead_pct"] = 5.0
        problems = perfbench.check_regression(fresh, payload)
        assert any("overhead" in p for p in problems)

    def test_old_baselines_without_overhead_field_pass(self, payload):
        old = copy.deepcopy(payload)
        old["derived"].pop("tracer_overhead_pct")
        old["derived"].pop("tracer_calls")
        assert perfbench.check_regression(payload, old) == []


class TestHistory:
    def test_history_rides_along_with_the_artifact(
        self, payload, tmp_path, monkeypatch
    ):
        monkeypatch.setattr(perfbench, "run_bench", lambda **kw: payload)
        out = tmp_path / "bench.json"
        assert perfbench.main(["--quick", "--out", str(out)]) == 0
        history = tmp_path / "BENCH_history.jsonl"
        rows = [json.loads(line) for line in history.read_text().splitlines()]
        assert len(rows) == 1
        row = rows[0]
        assert row["schema"] == perfbench.HISTORY_SCHEMA
        assert row["ts"]
        assert row["scenarios"]["batch_sweep"] > 0
        assert row["derived"]["batch_speedup_x"] > 1.0
        # Nested derived values (tracer_calls) stay out of the compact row.
        assert "tracer_calls" not in row["derived"]
        sidecar = json.loads(history.with_suffix(".manifest.json").read_text())
        # bench_manifest may also snapshot tracer metrics; pin only ours.
        assert sidecar["params"]["rows"] == 1
        assert sidecar["params"]["schema"] == perfbench.HISTORY_SCHEMA

    def test_history_appends_and_sidecar_tracks_rows(
        self, payload, tmp_path, monkeypatch
    ):
        monkeypatch.setattr(perfbench, "run_bench", lambda **kw: payload)
        out = tmp_path / "bench.json"
        for _ in range(2):
            assert perfbench.main(["--quick", "--out", str(out)]) == 0
        history = tmp_path / "BENCH_history.jsonl"
        assert len(history.read_text().splitlines()) == 2
        sidecar = json.loads(history.with_suffix(".manifest.json").read_text())
        assert sidecar["params"]["rows"] == 2

    def test_no_history_opts_out(self, payload, tmp_path, monkeypatch):
        monkeypatch.setattr(perfbench, "run_bench", lambda **kw: payload)
        out = tmp_path / "bench.json"
        assert perfbench.main(["--quick", "--out", str(out), "--no-history"]) == 0
        assert out.exists()
        assert not (tmp_path / "BENCH_history.jsonl").exists()

    def test_check_without_out_writes_nothing(
        self, payload, tmp_path, monkeypatch
    ):
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps(payload))
        monkeypatch.setattr(perfbench, "run_bench", lambda **kw: payload)
        monkeypatch.chdir(tmp_path)
        rc = perfbench.main(["--quick", "--check", "--baseline", str(baseline)])
        assert rc == 0
        assert sorted(p.name for p in tmp_path.iterdir()) == ["baseline.json"]

    def test_explicit_history_path_wins(self, payload, tmp_path, monkeypatch):
        monkeypatch.setattr(perfbench, "run_bench", lambda **kw: payload)
        out = tmp_path / "bench.json"
        history = tmp_path / "elsewhere" / "hist.jsonl"
        rc = perfbench.main(
            ["--quick", "--out", str(out), "--history", str(history)]
        )
        assert rc == 0
        assert history.exists()
        assert not (tmp_path / "BENCH_history.jsonl").exists()


class TestCommittedBaseline:
    """The repo ships its own perf trajectory; keep it honest."""

    def test_bench_perf_json_is_committed_and_valid(self):
        from pathlib import Path

        root = Path(__file__).resolve().parents[1]
        data = json.loads((root / "BENCH_perf.json").read_text())
        assert data["schema"] == perfbench.SCHEMA
        assert len(data["scenarios"]) >= 4
        assert data["derived"]["batch_speedup_x"] >= 3.0
        assert data["derived"]["records_equal"] is True

    def test_committed_baseline_carries_the_overhead_scenario(self):
        from pathlib import Path

        root = Path(__file__).resolve().parents[1]
        data = json.loads((root / "BENCH_perf.json").read_text())
        assert data["scenarios"]["tracer_overhead"]["min_s"] > 0
        assert (
            0
            < data["derived"]["tracer_overhead_pct"]
            < perfbench.DEFAULT_OVERHEAD_LIMIT_PCT
        )

    def test_committed_history_has_rows(self):
        from pathlib import Path

        root = Path(__file__).resolve().parents[1]
        history = root / "results" / "BENCH_history.jsonl"
        rows = [
            json.loads(line)
            for line in history.read_text().splitlines()
            if line
        ]
        assert rows
        assert all(r["schema"] == perfbench.HISTORY_SCHEMA for r in rows)
        sidecar = json.loads(history.with_suffix(".manifest.json").read_text())
        assert sidecar["params"]["rows"] == len(rows)
