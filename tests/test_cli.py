"""Unit tests for the CLI (repro.cli)."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_commands_parse(self):
        parser = build_parser()
        for cmd in ("table1", "table2", "fig1", "fig2", "fig4", "fig5"):
            assert parser.parse_args([cmd]).command == cmd

    def test_fig3_options(self):
        args = build_parser().parse_args(["fig3", "--m", "30", "--alpha", "1.2", "1.6"])
        assert args.m == 30
        assert args.alpha == [1.2, 1.6]

    def test_run_options(self):
        args = build_parser().parse_args(
            ["run", "ls_group[k=2]", "--n", "20", "--m", "4", "--gantt"]
        )
        assert args.strategy == "ls_group[k=2]"
        assert args.gantt


class TestMain:
    @pytest.mark.parametrize("cmd", ["table1", "table2", "fig1", "fig2", "fig4", "fig5"])
    def test_report_commands_succeed(self, cmd, capsys):
        assert main([cmd]) == 0
        assert capsys.readouterr().out.strip()

    def test_fig3_small(self, capsys, tmp_path, monkeypatch):
        # Non-canonical m: redirect artifact writes so the run does not
        # clobber the shipped m=210 results/fig3_ratio_replication.csv.
        import repro.reporting as reporting

        monkeypatch.setattr(reporting, "results_dir", lambda: tmp_path)
        assert main(["fig3", "--m", "12", "--alpha", "1.5"]) == 0
        assert "Figure 3" in capsys.readouterr().out

    def test_fig6(self, capsys):
        assert main(["fig6"]) == 0
        assert "Figure 6" in capsys.readouterr().out

    def test_run_command(self, capsys):
        rc = main(
            ["run", "lpt_no_restriction", "--n", "12", "--m", "3", "--seed", "1", "--gantt"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "ratio" in out
        assert "M0" in out  # gantt requested

    def test_run_with_guarantee_check(self, capsys):
        main(["run", "lpt_no_choice", "--n", "10", "--m", "2"])
        out = capsys.readouterr().out
        assert "within: True" in out

    def test_sweep_command(self, capsys):
        rc = main(["sweep", "--n", "8", "--m", "2", "--seeds", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "lpt_no_choice" in out
        assert "ls_group[k=2]" in out

    def test_bad_strategy_raises(self):
        with pytest.raises(ValueError):
            main(["run", "bogus"])

    def test_proofs_command(self, capsys):
        rc = main(["proofs", "--n", "10", "--m", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "0 failures" in out
        assert "Theorem 2" in out

    def test_regimes_command(self, capsys):
        rc = main(["regimes", "--m", "12", "--alpha", "1.1", "2.0"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "value of estimates" in out


class TestReportAndCacheCommands:
    """CLI surface for the artifact-store pipeline (repro report / cache)."""

    @pytest.fixture
    def redirected(self, tmp_path, monkeypatch):
        # Point the default results dir at a scratch tree so the CLI never
        # touches the shipped results/.
        import repro.analysis.report as report_mod
        import repro.store.publish as publish_mod

        results = tmp_path / "results"
        results.mkdir()
        (results / "e1_empirical_ratios.txt").write_text("E1 TABLE\n")
        for mod in (report_mod, publish_mod):
            monkeypatch.setattr(mod, "results_dir", lambda base=None, _r=results: _r)
        return results

    def test_report_flags_parse(self):
        args = build_parser().parse_args(
            ["report", "--check", "--adopt", "--store", "/tmp/x"]
        )
        assert args.check and args.adopt and args.store == "/tmp/x"

    def test_cache_flags_parse(self):
        args = build_parser().parse_args(
            ["cache", "gc", "--max-age-days", "7", "--prune-legacy", "--dry-run"]
        )
        assert args.cache_command == "gc"
        assert args.max_age_days == 7 and args.prune_legacy and args.dry_run
        assert build_parser().parse_args(["cache", "stats"]).cache_command == "stats"

    def test_report_adopt_then_check_round_trip(self, redirected, tmp_path, capsys):
        store = str(tmp_path / "store")
        assert main(["report", "--adopt", "--store", store]) == 0
        assert "report written to" in capsys.readouterr().out
        assert main(["report", "--check", "--store", store]) == 0
        assert "byte-for-byte" in capsys.readouterr().out

    def test_report_check_fails_on_hand_edit(self, redirected, tmp_path, capsys):
        store = str(tmp_path / "store")
        assert main(["report", "--adopt", "--store", store]) == 0
        (redirected / "e1_empirical_ratios.txt").write_text("TAMPERED\n")
        assert main(["report", "--check", "--store", store]) == 1
        assert "e1_empirical_ratios" in capsys.readouterr().err

    def test_report_refuses_empty_store(self, redirected, tmp_path, capsys):
        assert main(["report", "--store", str(tmp_path / "empty-store")]) == 1
        assert "error:" in capsys.readouterr().err

    def test_cache_gc_and_stats(self, tmp_path, capsys):
        from repro.store import ArtifactStore, Stage

        store_dir = tmp_path / "store"
        store = ArtifactStore(store_dir)
        store.put(Stage.RAW, "a" * 64, kind="cell", payload={"x": 1})
        (store_dir / "junk.corrupt").write_bytes(b"bad")
        assert main(["cache", "stats", "--store", str(store_dir)]) == 0
        out = capsys.readouterr().out
        assert "raw: 1 artifacts" in out
        assert main(["cache", "gc", "--dry-run", "--store", str(store_dir)]) == 0
        assert "would reclaim" in capsys.readouterr().out
        assert (store_dir / "junk.corrupt").exists()
        assert main(["cache", "gc", "--store", str(store_dir)]) == 0
        assert "reclaimed" in capsys.readouterr().out
        assert not (store_dir / "junk.corrupt").exists()
