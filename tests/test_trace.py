"""Unit tests for repro.simulation.trace."""

from __future__ import annotations

import pytest

from repro.core.model import make_instance
from repro.core.placement import everywhere_placement, single_machine_placement
from repro.simulation.trace import ScheduleTrace, TaskRun
from repro.uncertainty.realization import truthful_realization


@pytest.fixture
def inst():
    return make_instance([2.0, 3.0, 1.0], m=2, alpha=1.5)


def _trace(runs):
    return ScheduleTrace(tuple(runs))


class TestAggregates:
    def test_makespan(self, inst):
        t = _trace(
            [TaskRun(0, 0, 0.0, 2.0), TaskRun(1, 1, 0.0, 3.0), TaskRun(2, 0, 2.0, 3.0)]
        )
        assert t.makespan == 3.0
        assert t.n == 3

    def test_assignment_and_machine_of(self, inst):
        t = _trace(
            [TaskRun(0, 0, 0.0, 2.0), TaskRun(1, 1, 0.0, 3.0), TaskRun(2, 0, 2.0, 3.0)]
        )
        assert t.assignment() == [0, 1, 0]
        assert t.machine_of(2) == 0

    def test_loads(self):
        t = _trace([TaskRun(0, 0, 0.0, 2.0), TaskRun(1, 1, 0.0, 3.0)])
        assert t.loads(2) == [2.0, 3.0]

    def test_tasks_per_machine_ordered_by_start(self):
        t = _trace(
            [TaskRun(0, 0, 1.0, 2.0), TaskRun(1, 0, 0.0, 1.0), TaskRun(2, 1, 0.0, 0.5)]
        )
        assert t.tasks_per_machine(2) == [[1, 0], [2]]

    def test_idle_time(self):
        t = _trace([TaskRun(0, 0, 0.0, 2.0), TaskRun(1, 1, 0.0, 1.0)])
        # makespan 2, busy 3, m=2 -> idle = 4 - 3 = 1
        assert t.idle_time(2) == pytest.approx(1.0)

    def test_completion_times(self):
        t = _trace([TaskRun(0, 0, 0.0, 2.0), TaskRun(1, 1, 1.0, 4.0)])
        assert t.completion_times() == [2.0, 4.0]

    def test_from_runs_sorts(self):
        t = ScheduleTrace.from_runs(
            [TaskRun(1, 0, 0.0, 1.0), TaskRun(0, 1, 0.0, 1.0)], label="x"
        )
        assert [r.tid for r in t.runs] == [0, 1]
        assert t.label == "x"


class TestValidate:
    def test_valid_trace_passes(self, inst):
        p = everywhere_placement(inst)
        real = truthful_realization(inst)
        t = _trace(
            [TaskRun(0, 0, 0.0, 2.0), TaskRun(1, 1, 0.0, 3.0), TaskRun(2, 0, 2.0, 3.0)]
        )
        t.validate(p, real)  # should not raise

    def test_missing_task_rejected(self, inst):
        p = everywhere_placement(inst)
        real = truthful_realization(inst)
        t = _trace([TaskRun(0, 0, 0.0, 2.0)])
        with pytest.raises(ValueError, match="covers 1 tasks"):
            t.validate(p, real)

    def test_placement_violation_rejected(self, inst):
        p = single_machine_placement(inst, [0, 0, 0])
        real = truthful_realization(inst)
        t = _trace(
            [TaskRun(0, 0, 0.0, 2.0), TaskRun(1, 1, 0.0, 3.0), TaskRun(2, 0, 2.0, 3.0)]
        )
        with pytest.raises(ValueError, match="data is only on"):
            t.validate(p, real)

    def test_wrong_duration_rejected(self, inst):
        p = everywhere_placement(inst)
        real = truthful_realization(inst)
        t = _trace(
            [TaskRun(0, 0, 0.0, 2.5), TaskRun(1, 1, 0.0, 3.0), TaskRun(2, 0, 2.5, 3.5)]
        )
        with pytest.raises(ValueError, match="ran for"):
            t.validate(p, real)

    def test_overlap_rejected(self, inst):
        p = everywhere_placement(inst)
        real = truthful_realization(inst)
        t = _trace(
            [TaskRun(0, 0, 0.0, 2.0), TaskRun(1, 0, 1.0, 4.0), TaskRun(2, 1, 0.0, 1.0)]
        )
        with pytest.raises(ValueError, match="overlaps"):
            t.validate(p, real)

    def test_negative_start_rejected(self, inst):
        p = everywhere_placement(inst)
        real = truthful_realization(inst)
        t = _trace(
            [TaskRun(0, 0, -1.0, 1.0), TaskRun(1, 1, 0.0, 3.0), TaskRun(2, 0, 1.0, 2.0)]
        )
        with pytest.raises(ValueError, match="negative"):
            t.validate(p, real)

    def test_bad_machine_rejected(self, inst):
        p = everywhere_placement(inst)
        real = truthful_realization(inst)
        t = _trace(
            [TaskRun(0, 5, 0.0, 2.0), TaskRun(1, 1, 0.0, 3.0), TaskRun(2, 0, 0.0, 1.0)]
        )
        with pytest.raises(ValueError, match="outside"):
            t.validate(p, real)

    def test_unordered_runs_rejected(self, inst):
        p = everywhere_placement(inst)
        real = truthful_realization(inst)
        t = ScheduleTrace(
            (TaskRun(1, 1, 0.0, 3.0), TaskRun(0, 0, 0.0, 2.0), TaskRun(2, 0, 2.0, 3.0))
        )
        with pytest.raises(ValueError, match="task-id ordered"):
            t.validate(p, real)

    def test_back_to_back_allowed(self, inst):
        """Zero-gap consecutive tasks on one machine are fine."""
        p = everywhere_placement(inst)
        real = truthful_realization(inst)
        t = _trace(
            [TaskRun(0, 0, 0.0, 2.0), TaskRun(1, 0, 2.0, 5.0), TaskRun(2, 1, 0.0, 1.0)]
        )
        t.validate(p, real)
