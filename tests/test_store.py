"""Tests for the content-addressed artifact store (repro.store)."""

from __future__ import annotations

import json
from pathlib import Path, PurePosixPath, PureWindowsPath

import pytest

from repro.store import (
    Artifact,
    ArtifactRef,
    ArtifactStore,
    Stage,
    canonical_json,
    code_ref,
    compute_artifact_id,
    config_ref,
    content_hash,
    open_backend,
    publish_curated,
    recording,
    ref_from_dict,
    spec_for,
)


class TestCanonicalHashing:
    """Artifact IDs must be identical across platforms and processes."""

    def test_dict_ordering_does_not_matter(self):
        assert content_hash({"a": 1, "b": 2}) == content_hash({"b": 2, "a": 1})

    def test_tuple_and_list_are_the_same_content(self):
        assert content_hash((1, 2, 3)) == content_hash([1, 2, 3])

    def test_path_separators_normalize(self):
        # A manifest hashed on Windows equals one hashed on Linux.
        assert content_hash({"p": PureWindowsPath("a\\b\\c.txt")}) == content_hash(
            {"p": PurePosixPath("a/b/c.txt")}
        )

    def test_float_repr_is_shortest_round_trip(self):
        # 0.1 + 0.2 and 0.30000000000000004 are the same IEEE-754 double.
        assert content_hash(0.1 + 0.2) == content_hash(0.30000000000000004)
        assert content_hash(0.3) != content_hash(0.1 + 0.2)

    def test_int_and_float_hash_differently(self):
        assert content_hash(1) != content_hash(1.0)

    def test_non_finite_floats_rejected(self):
        with pytest.raises(ValueError, match="non-finite"):
            content_hash({"x": float("nan")})
        with pytest.raises(ValueError, match="non-finite"):
            content_hash([float("inf")])

    def test_non_string_keys_rejected_with_path(self):
        with pytest.raises(ValueError, match=r"\$\.outer"):
            content_hash({"outer": {1: "x"}})

    def test_unencodable_type_rejected(self):
        with pytest.raises(ValueError, match="object"):
            content_hash({"x": object()})

    def test_canonical_json_is_compact_sorted_ascii(self):
        assert canonical_json({"b": "é", "a": 1}) == '{"a":1,"b":"\\u00e9"}'

    def test_artifact_id_stable_value(self):
        # Pinned: a change here invalidates every stored artifact ID.
        aid = compute_artifact_id("curated", "bench", "e1", {"k": 1}, {"e1.txt": "ab"})
        assert aid == compute_artifact_id("curated", "bench", "e1", {"k": 1}, {"e1.txt": "ab"})
        assert len(aid) == 64 and set(aid) <= set("0123456789abcdef")


class TestRefs:
    def test_round_trip_through_dicts(self):
        refs = [
            code_ref("repro.reporting"),
            config_ref({"alpha": 1.5, "m": 4}),
            ArtifactRef("raw", "abc", "0" * 64),
        ]
        for ref in refs:
            assert ref_from_dict(ref.as_dict()) == ref

    def test_config_ref_digest_matches_canonical_hash(self):
        ref = config_ref({"b": 2, "a": 1})
        assert ref.sha256 == content_hash({"a": 1, "b": 2})

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown ref kind"):
            ref_from_dict({"kind": "martian"})

    def test_refs_excluded_from_artifact_id(self):
        plain = Artifact.build("curated", "e1", kind="bench", payload={"x": 1})
        with_refs = Artifact.build(
            "curated", "e1", kind="bench", payload={"x": 1},
            refs=(config_ref({"seed": 0}),),
        )
        assert plain.artifact_id == with_refs.artifact_id


class TestStoreRoundTrip:
    def test_put_get_resolve_blob(self, tmp_path):
        store = ArtifactStore(tmp_path)
        artifact = store.put(
            Stage.CURATED, "e1", kind="bench",
            payload={"title": "E1"}, files={"e1.txt": b"table\n"},
            refs=(config_ref({"n": 8}),),
        )
        loaded = store.get(Stage.CURATED, "e1")
        assert loaded == artifact
        assert store.file_bytes(loaded, "e1.txt") == b"table\n"
        ref = ArtifactRef(Stage.CURATED.value, "e1", artifact.artifact_id)
        assert store.resolve(ref) == artifact
        assert store.resolve(ArtifactRef("curated", "e1", "f" * 64)) is None

    def test_identical_put_is_a_dedupe_noop(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.put(Stage.CURATED, "e1", kind="bench", files={"a": b"x"})
        manifest = store.manifest_path(Stage.CURATED, "e1")
        mtime = manifest.stat().st_mtime_ns
        again = store.put(Stage.CURATED, "e1", kind="bench", files={"a": b"x"})
        assert store.counters.deduped == 1
        assert manifest.stat().st_mtime_ns == mtime
        assert again == store.get(Stage.CURATED, "e1")

    def test_new_content_supersedes_same_key(self, tmp_path):
        store = ArtifactStore(tmp_path)
        old = store.put(Stage.CURATED, "e1", kind="bench", files={"a": b"x"})
        new = store.put(Stage.CURATED, "e1", kind="bench", files={"a": b"y"})
        assert new.artifact_id != old.artifact_id
        assert store.get(Stage.CURATED, "e1") == new

    def test_blobs_dedupe_across_artifacts(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.put(Stage.CURATED, "e1", kind="bench", files={"a.txt": b"shared"})
        store.put(Stage.CURATED, "e2", kind="bench", files={"b.txt": b"shared"})
        blobs = list(store.backend.list("blobs/"))
        assert len(blobs) == 1

    def test_tampered_manifest_quarantined_as_miss(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.put(Stage.CURATED, "e1", kind="bench", payload={"v": 1})
        path = store.manifest_path(Stage.CURATED, "e1")
        doc = json.loads(path.read_text())
        doc["payload"]["v"] = 2  # content no longer matches artifact_id
        path.write_text(json.dumps(doc))
        assert store.get(Stage.CURATED, "e1") is None
        assert path.with_name(path.name + ".corrupt").exists()
        assert store.counters.corrupt == 1

    def test_corrupt_blob_is_a_miss(self, tmp_path):
        store = ArtifactStore(tmp_path)
        artifact = store.put(Stage.CURATED, "e1", kind="bench", files={"a": b"x"})
        sha = artifact.files["a"]
        store.backend.path(f"blobs/{sha[:2]}/{sha}").write_bytes(b"flipped")
        assert store.file_bytes(artifact, "a") is None

    def test_names_sorted_per_stage(self, tmp_path):
        store = ArtifactStore(tmp_path)
        for name in ("b", "a", "c"):
            store.put(Stage.CURATED, name, kind="bench")
        assert store.names(Stage.CURATED) == ["a", "b", "c"]
        assert store.names(Stage.RAW) == []

    def test_remote_scheme_raises_not_implemented(self):
        with pytest.raises(NotImplementedError, match="s3"):
            open_backend("s3://bucket/prefix")

    def test_unsafe_keys_rejected(self, tmp_path):
        backend = open_backend(tmp_path)
        with pytest.raises(ValueError, match="unsafe"):
            backend.path("../escape")


class TestStoreCounters:
    def test_counters_mirror_into_metrics_registry(self, tmp_path):
        from repro.obs import MemorySink, observed

        with observed(MemorySink()):
            from repro.obs.tracer import get_tracer

            store = ArtifactStore(tmp_path)
            store.get(Stage.CURATED, "absent")
            store.put(Stage.CURATED, "e1", kind="bench")
            store.get(Stage.CURATED, "e1")
            counters = get_tracer().registry.summary()["counters"]
        assert counters["store.misses"] == 1
        assert counters["store.stores"] == 1
        assert counters["store.hits"] == 1


class TestGc:
    def _store_with_debris(self, tmp_path):
        store = ArtifactStore(tmp_path)
        keep = store.put(Stage.CURATED, "keep", kind="bench", files={"k": b"keep"})
        store.put(Stage.CURATED, "drop", kind="bench", files={"d": b"drop"})
        store.put(Stage.CURATED, "drop", kind="bench", files={"d": b"drop2"})  # orphans "drop"
        store.backend.path("curated/keep.json.corrupt").write_bytes(b"junk")
        return store, keep

    def test_collects_orphans_and_corrupt(self, tmp_path):
        store, keep = self._store_with_debris(tmp_path)
        report = store.gc()
        assert report.orphan_blobs == 1
        assert report.swept_corrupt == 1
        assert report.reclaimed_bytes > 0
        # Referenced blobs survive.
        assert store.file_bytes(keep, "k") == b"keep"

    def test_dry_run_removes_nothing(self, tmp_path):
        store, _ = self._store_with_debris(tmp_path)
        report = store.gc(dry_run=True)
        assert report.removed > 0 and report.dry_run
        assert store.gc(dry_run=True).removed == report.removed

    def test_max_age_evicts_raw_entries(self, tmp_path):
        import os

        store = ArtifactStore(tmp_path)
        store.put(Stage.RAW, "ab" * 32, kind="cell", payload={"kind": "record"})
        path = store.manifest_path(Stage.RAW, "ab" * 32)
        old = path.stat().st_mtime - 10 * 86400
        os.utime(path, (old, old))
        report = store.gc(max_age_days=5.0)
        assert report.expired_raw == 1
        assert not store.contains(Stage.RAW, "ab" * 32)

    def test_prune_legacy_is_opt_in(self, tmp_path):
        store = ArtifactStore(tmp_path)
        shard = Path(tmp_path) / "ab" / ("ab" * 32 + ".json")
        shard.parent.mkdir(parents=True)
        shard.write_text('{"v": 2}')
        assert store.gc().pruned_legacy == 0
        assert shard.exists()
        assert store.gc(prune_legacy=True).pruned_legacy == 1
        assert not shard.exists()

    def test_empty_directories_removed(self, tmp_path):
        store, _ = self._store_with_debris(tmp_path)
        store.gc()
        dirs = [p for p in Path(tmp_path).rglob("*") if p.is_dir()]
        assert all(any(d.iterdir()) for d in dirs)


class TestPublishRegistry:
    def test_every_spec_is_well_formed(self):
        from repro.store import SPECS

        names = [s.name for s in SPECS]
        assert len(names) == len(set(names))
        for spec in SPECS:
            assert spec.patterns and spec.title

    def test_unknown_name_gets_deterministic_default(self):
        spec = spec_for("brand_new_artifact")
        assert not spec.volatile
        assert "brand_new_artifact.txt" in spec.patterns

    def test_publish_snapshots_files_and_refs(self, tmp_path):
        results = tmp_path / "results"
        results.mkdir()
        (results / "e1_empirical_ratios.txt").write_text("T\n")
        (results / "e1_empirical_ratios.csv").write_text("a\n1\n")
        store = ArtifactStore(tmp_path / "store")
        artifact = publish_curated(
            "e1_empirical_ratios", store=store, base=results,
            refs=(config_ref({"seed": 0}),),
        )
        assert set(artifact.files) == {"e1_empirical_ratios.txt", "e1_empirical_ratios.csv"}
        assert store.file_bytes(artifact, "e1_empirical_ratios.txt") == b"T\n"
        assert artifact.refs[0].params == {"seed": 0}

    def test_publish_missing_artifact_returns_none(self, tmp_path):
        results = tmp_path / "results"
        results.mkdir()
        store = ArtifactStore(tmp_path / "store")
        assert publish_curated("e1_empirical_ratios", store=store, base=results) is None


class TestRawRefRecording:
    def test_scoped_recorder_sees_cache_traffic(self, tmp_path):
        from repro.analysis.cache import CellCache, cell_fingerprint
        from repro.analysis.parallel import run_cell
        from repro.uncertainty import realization  # noqa: F401  (import check)
        from repro.workloads.generators import uniform_instance
        from tests.test_cache import _spec

        instance = uniform_instance(8, 2, alpha=1.5, seed=0)
        spec = _spec(instance)
        cache = CellCache(tmp_path)
        with recording() as recorder:
            cache.put(spec, run_cell(spec))
            cache.get(spec)
        refs = recorder.drain()
        assert len(refs) == 1
        assert refs[0].name == cell_fingerprint(spec)
        assert cache.store.resolve(refs[0]) is not None
