"""Tests for the non-clairvoyant baseline strategy."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.ratios import measured_ratio, run_strategy
from repro.core.bounds import ub_graham_ls
from repro.core.strategies import LPTNoRestriction, NonClairvoyantLS
from repro.uncertainty.stochastic import sample_realization
from repro.workloads.generators import uniform_instance
from tests.conftest import instances


class TestBasics:
    def test_full_replication(self, small_instance):
        assert NonClairvoyantLS().place(small_instance).is_full_replication()

    def test_never_reads_estimates(self, small_instance):
        """Two instances with identical n but different estimates produce
        the same dispatch order."""
        inst_a = uniform_instance(12, 3, alpha=1.5, seed=1)
        inst_b = uniform_instance(12, 3, alpha=1.5, seed=2)
        s = NonClairvoyantLS(seed=7)
        pa, pb = s.place(inst_a), s.place(inst_b)
        policy_a = s.make_policy(inst_a, pa)
        policy_b = s.make_policy(inst_b, pb)
        assert policy_a._order == policy_b._order  # type: ignore[attr-defined]

    def test_seeded_shuffle_deterministic(self, small_instance):
        s = NonClairvoyantLS(seed=3)
        p = s.place(small_instance)
        o1 = s.make_policy(small_instance, p)._order  # type: ignore[attr-defined]
        o2 = s.make_policy(small_instance, p)._order  # type: ignore[attr-defined]
        assert o1 == o2

    def test_names(self):
        assert NonClairvoyantLS().name == "nonclairvoyant_ls"
        assert NonClairvoyantLS(seed=4).name == "nonclairvoyant_ls[shuffle=4]"


class TestGrahamGuarantee:
    @given(instances(min_n=2, max_n=10, max_m=4), st.integers(0, 3))
    def test_within_graham(self, inst, seed):
        """List scheduling in any order is (2 - 1/m)-competitive regardless
        of alpha."""
        real = sample_realization(inst, "bimodal_extreme", seed)
        rec = measured_ratio(NonClairvoyantLS(seed=seed), inst, real, exact_limit=12)
        if rec.optimum.optimal:
            assert rec.ratio <= ub_graham_ls(inst.m) * (1 + 1e-9)

    def test_guarantee_is_alpha_independent(self, small_instance):
        s = NonClairvoyantLS()
        g1 = s.guarantee(small_instance.with_alpha(1.0))
        g2 = s.guarantee(small_instance.with_alpha(3.0))
        assert g1 == g2 == ub_graham_ls(small_instance.m)


class TestRegimeBehaviour:
    def test_estimates_help_at_low_alpha(self):
        """At small alpha LPT-No Restriction (estimate-aware) should beat
        the blind baseline on average."""
        aware_total = blind_total = 0.0
        for seed in range(8):
            inst = uniform_instance(25, 5, alpha=1.1, seed=seed)
            real = sample_realization(inst, "log_uniform", 400 + seed)
            aware_total += run_strategy(LPTNoRestriction(), inst, real).makespan
            blind_total += run_strategy(NonClairvoyantLS(seed=seed), inst, real).makespan
        assert aware_total <= blind_total * (1 + 1e-9)
