"""Tests for schedule sensitivity/robustness metrics."""

from __future__ import annotations

import pytest

from repro.analysis.sensitivity import (
    robustness_radius,
    single_task_sensitivity,
    slack_profile,
    worst_single_inflation,
)
from repro.analysis.ratios import run_strategy
from repro.core.strategies import LPTNoChoice, LPTNoRestriction
from repro.core.model import make_instance
from repro.uncertainty.realization import truthful_realization
from repro.workloads.generators import uniform_instance


@pytest.fixture
def inst():
    return make_instance([5.0, 4.0, 3.0, 3.0, 2.0, 1.0], m=2, alpha=1.5)


class TestSingleTaskSensitivity:
    def test_length_and_lower_bound(self, inst):
        sens = single_task_sensitivity(LPTNoChoice(), inst)
        truthful = run_strategy(
            LPTNoChoice(), inst, truthful_realization(inst)
        ).makespan
        assert len(sens) == inst.n
        # Inflating any task can only help the adversary: makespan >= truthful.
        assert all(s >= truthful - 1e-9 for s in sens)

    def test_pinned_sensitivity_is_additive(self, inst):
        """For a pinned placement, inflating task j adds exactly
        (alpha-1)p̃_j to j's machine load."""
        strategy = LPTNoChoice()
        placement = strategy.place(inst)
        assignment = placement.fixed_assignment()
        loads = placement.estimated_load_per_machine()
        sens = single_task_sensitivity(strategy, inst)
        for j in range(inst.n):
            bumped = list(loads)
            bumped[assignment[j]] += (inst.alpha - 1.0) * inst.tasks[j].estimate
            assert sens[j] == pytest.approx(max(bumped))

    def test_replication_reduces_sensitivity(self):
        """Full replication absorbs single inflations at least as well as
        pinning, task by task."""
        inst = uniform_instance(14, 4, alpha=2.0, seed=3)
        pinned = single_task_sensitivity(LPTNoChoice(), inst)
        flexible = single_task_sensitivity(LPTNoRestriction(), inst)
        assert sum(flexible) <= sum(pinned) * (1 + 1e-9)


class TestWorstSingleInflation:
    def test_returns_argmax(self, inst):
        j, value = worst_single_inflation(LPTNoChoice(), inst)
        sens = single_task_sensitivity(LPTNoChoice(), inst)
        assert value == max(sens)
        assert sens[j] == value


class TestSlackProfile:
    def test_critical_machine_zero_slack(self, inst):
        slack = slack_profile(LPTNoChoice(), inst)
        assert min(slack) == pytest.approx(0.0)
        assert all(s >= -1e-9 for s in slack)

    def test_explicit_target(self, inst):
        slack = slack_profile(LPTNoChoice(), inst, target=100.0)
        assert all(s > 80 for s in slack)


class TestRobustnessRadius:
    def test_full_band_when_target_generous(self, inst):
        r = robustness_radius(LPTNoChoice(), inst, target=1e9)
        assert r == pytest.approx(inst.alpha)

    def test_zero_when_target_impossible(self, inst):
        assert robustness_radius(LPTNoChoice(), inst, target=1e-6) == 0.0

    def test_matches_static_closed_form(self, inst):
        """For pinned placements the radius is target/truthful, clipped."""
        strategy = LPTNoChoice()
        truthful = run_strategy(strategy, inst, truthful_realization(inst)).makespan
        target = 1.2 * truthful
        r = robustness_radius(strategy, inst, target, tol=1e-9)
        assert r == pytest.approx(min(1.2, inst.alpha), abs=1e-6)

    def test_monotone_in_target(self, inst):
        strategy = LPTNoRestriction()
        truthful = run_strategy(strategy, inst, truthful_realization(inst)).makespan
        radii = [
            robustness_radius(strategy, inst, t * truthful)
            for t in (1.05, 1.2, 1.5)
        ]
        assert radii == sorted(radii)
