"""Tests for the machine-failure (fault-injection) extension.

The paper motivates replication partly by Hadoop's fault tolerance; this
extension lets the simulator demonstrate that argument: replicated tasks
survive machine failures by restarting elsewhere, pinned tasks die with
their machine.
"""

from __future__ import annotations

import pytest

from repro.analysis.ratios import run_strategy
from repro.core.model import make_instance
from repro.core.placement import everywhere_placement, single_machine_placement
from repro.core.strategy import FixedOrderPolicy
from repro.core.strategies import LPTNoChoice, LPTNoRestriction, LSGroup
from repro.memory.abo import ABO
from repro.simulation.engine import SimulationError, simulate
from repro.uncertainty.realization import truthful_realization
from repro.uncertainty.stochastic import sample_realization
from repro.workloads.generators import uniform_instance
from repro.workloads.memory_workloads import planted_two_class


@pytest.fixture
def inst():
    return make_instance([4.0, 3.0, 2.0, 2.0, 1.0], m=2, alpha=1.5)


class TestReplicatedSurvival:
    def test_running_task_restarts_elsewhere(self, inst):
        p = everywhere_placement(inst)
        real = truthful_realization(inst)
        # Machine 0 fails at t=1 while running task 0 (duration 4).
        trace = simulate(
            p, real, FixedOrderPolicy(range(5)), failures={0: 1.0}
        )
        trace.validate(p, real)
        assert trace.machine_of(0) == 1  # restarted on the survivor
        assert len(trace.aborted) == 1
        assert trace.aborted[0].tid == 0
        assert trace.aborted[0].end == pytest.approx(1.0)
        # Everything ends up on machine 1.
        assert all(r.machine == 1 for r in trace.runs)

    def test_full_duration_after_restart(self, inst):
        """Restarts run from scratch — no partial credit."""
        p = everywhere_placement(inst)
        real = truthful_realization(inst)
        trace = simulate(p, real, FixedOrderPolicy(range(5)), failures={0: 3.9})
        run0 = trace.runs[0]
        assert run0.duration == pytest.approx(4.0)
        assert run0.start >= 3.9

    def test_failure_of_idle_machine(self, inst):
        p = everywhere_placement(inst)
        real = truthful_realization(inst)
        # Fails long after all work is done.
        trace = simulate(p, real, FixedOrderPolicy(range(5)), failures={0: 100.0})
        assert not trace.aborted

    def test_failure_at_t0(self, inst):
        """A machine failing at t=0 never runs anything."""
        p = everywhere_placement(inst)
        real = truthful_realization(inst)
        trace = simulate(p, real, FixedOrderPolicy(range(5)), failures={0: 0.0})
        assert all(r.machine == 1 for r in trace.runs)
        assert not trace.aborted

    def test_makespan_inflates_but_completes(self, inst):
        p = everywhere_placement(inst)
        real = truthful_realization(inst)
        healthy = simulate(p, real, FixedOrderPolicy(range(5)))
        degraded = simulate(p, real, FixedOrderPolicy(range(5)), failures={0: 2.0})
        assert degraded.makespan >= healthy.makespan
        degraded.validate(p, real)


class TestPinnedDeath:
    def test_unstarted_pinned_task_is_lost(self, inst):
        p = single_machine_placement(inst, [0, 1, 0, 1, 0])
        real = truthful_realization(inst)
        with pytest.raises(SimulationError, match="lost to machine failures"):
            simulate(p, real, FixedOrderPolicy(range(5)), failures={0: 1.0})

    def test_all_machines_fail(self, inst):
        p = everywhere_placement(inst)
        real = truthful_realization(inst)
        with pytest.raises(SimulationError, match="lost to machine failures"):
            simulate(
                p, real, FixedOrderPolicy(range(5)), failures={0: 1.0, 1: 1.0}
            )

    def test_bad_failure_spec(self, inst):
        p = everywhere_placement(inst)
        real = truthful_realization(inst)
        with pytest.raises(SimulationError, match="outside"):
            simulate(p, real, FixedOrderPolicy(range(5)), failures={9: 1.0})
        with pytest.raises(SimulationError, match=">= 0"):
            simulate(p, real, FixedOrderPolicy(range(5)), failures={0: -1.0})


class TestStrategyLevelSurvival:
    def test_group_strategy_survives_in_group_failure(self):
        inst = uniform_instance(20, 6, alpha=1.5, seed=1)
        real = sample_realization(inst, "log_uniform", 2)
        strategy = LSGroup(2)  # groups of 3 machines
        placement = strategy.place(inst)
        policy = strategy.make_policy(inst, placement)
        trace = simulate(placement, real, policy, failures={0: 5.0})
        trace.validate(placement, real)
        assert all(r.machine != 0 or r.end <= 5.0 for r in trace.runs)

    def test_no_choice_generally_dies(self):
        inst = uniform_instance(20, 4, alpha=1.5, seed=3)
        real = sample_realization(inst, "log_uniform", 4)
        strategy = LPTNoChoice()
        placement = strategy.place(inst)
        policy = strategy.make_policy(inst, placement)
        with pytest.raises(SimulationError):
            simulate(placement, real, policy, failures={0: 0.5})

    def test_full_replication_survives_any_single_failure(self):
        inst = uniform_instance(20, 4, alpha=1.5, seed=5)
        real = sample_realization(inst, "uniform", 6)
        strategy = LPTNoRestriction()
        for machine in range(4):
            placement = strategy.place(inst)
            policy = strategy.make_policy(inst, placement)
            trace = simulate(placement, real, policy, failures={machine: 3.0})
            trace.validate(placement, real)

    def test_abo_replicated_tasks_survive(self):
        """ABO's time-intensive tasks are replicated, so a failure only
        kills pinned tasks that were stranded on the failed machine."""
        inst = planted_two_class(4, 4, m=3, alpha=1.2)
        strategy = ABO(1.0)
        placement = strategy.place(inst)
        real = truthful_realization(inst)
        s2_on_2 = [
            j
            for j in placement.meta["s2"]
            if placement.machines_for(j) == frozenset({2})
        ]
        policy = strategy.make_policy(inst, placement)
        if s2_on_2:
            # Failing machine 2 before its pinned tasks run strands them.
            with pytest.raises(SimulationError):
                simulate(placement, real, policy, failures={2: 0.0})
        # Failing *late* (after pinned tasks are done) always survives:
        # replicated tasks restart elsewhere.
        late = 1e6
        trace = simulate(placement, real, policy, failures={2: late})
        trace.validate(placement, real)


class TestAbortEpoch:
    def test_policy_rescans_after_abort(self, inst):
        """Regression: FixedOrderPolicy's low-water mark must reset on
        abort, or the aborted task would be skipped forever."""
        p = everywhere_placement(inst)
        real = truthful_realization(inst)
        # Task 0 (first in order) aborts after the mark passed it.
        trace = simulate(p, real, FixedOrderPolicy(range(5)), failures={0: 1.0})
        assert trace.runs[0].end > 1.0  # it did rerun
