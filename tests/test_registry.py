"""Unit tests for repro.core.strategies.registry."""

from __future__ import annotations

import pytest

from repro.core.strategies import (
    LPTGroup,
    LPTNoChoice,
    LPTNoRestriction,
    LSGroup,
    full_sweep,
    make_strategy,
    strategy_names,
)


class TestMakeStrategy:
    def test_bare_names(self):
        assert isinstance(make_strategy("lpt_no_choice"), LPTNoChoice)
        assert isinstance(make_strategy("lpt_no_restriction"), LPTNoRestriction)

    def test_group_specs(self):
        s = make_strategy("ls_group[k=3]")
        assert isinstance(s, LSGroup)
        assert s.k == 3
        a = make_strategy("lpt_group[k=2]")
        assert isinstance(a, LPTGroup)
        assert a.k == 2

    def test_round_trip_through_name(self):
        for spec in ("lpt_no_choice", "lpt_no_restriction", "ls_group[k=5]"):
            assert make_strategy(spec).name == spec

    @pytest.mark.parametrize(
        "bad", ["nope", "ls_group", "ls_group[k=]", "ls_group[k=x]", "LS_GROUP[k=1]"]
    )
    def test_rejects_bad_specs(self, bad):
        with pytest.raises(ValueError, match="unknown strategy spec"):
            make_strategy(bad)


class TestStrategyNames:
    def test_divisor_sweep(self):
        names = strategy_names(6)
        assert "ls_group[k=1]" in names
        assert "ls_group[k=2]" in names
        assert "ls_group[k=3]" in names
        assert "ls_group[k=6]" in names
        assert "ls_group[k=4]" not in names

    def test_ablation_flag(self):
        names = strategy_names(4, include_ablation=True)
        assert "lpt_group[k=2]" in names
        assert "lpt_group[k=2]" not in strategy_names(4)


class TestFullSweep:
    def test_all_constructible(self):
        sweep = full_sweep(12, include_ablation=True)
        assert len(sweep) == 2 + 2 * 6  # 6 divisors of 12
        assert {s.name for s in sweep} == set(strategy_names(12, include_ablation=True))
