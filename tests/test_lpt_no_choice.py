"""Tests for Strategy 1 — LPT-No Choice (Theorem 2)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.ratios import measured_ratio, run_strategy
from repro.core.bounds import ub_lpt_no_choice
from repro.core.strategies import LPTNoChoice
from repro.core.adversary import theorem1_realization
from repro.core.model import make_instance
from repro.schedulers.lpt import lpt_schedule
from repro.uncertainty.realization import truthful_realization
from repro.uncertainty.stochastic import sample_realization
from tests.conftest import instances


class TestPlacement:
    def test_no_replication(self, small_instance):
        p = LPTNoChoice().place(small_instance)
        assert p.is_no_replication()
        assert p.meta["strategy"] == "lpt_no_choice"

    def test_matches_offline_lpt(self, small_instance):
        p = LPTNoChoice().place(small_instance)
        loads = p.estimated_load_per_machine()
        assert max(loads) == lpt_schedule(small_instance.estimates, small_instance.m).makespan

    @given(instances(min_n=2, max_n=12, max_m=4))
    def test_placement_estimated_makespan_is_lpt(self, inst):
        p = LPTNoChoice().place(inst)
        assert max(p.estimated_load_per_machine()) == pytest.approx(
            lpt_schedule(inst.estimates, inst.m).makespan
        )


class TestExecution:
    def test_truthful_run_equals_lpt_makespan(self, small_instance):
        outcome = run_strategy(
            LPTNoChoice(), small_instance, truthful_realization(small_instance)
        )
        assert outcome.makespan == pytest.approx(
            lpt_schedule(small_instance.estimates, small_instance.m).makespan
        )

    def test_makespan_is_load_sum_regardless_of_order(self, small_instance):
        """With pinned tasks, makespan = max machine load under actuals."""
        real = sample_realization(small_instance, "uniform", seed=4)
        outcome = run_strategy(LPTNoChoice(), small_instance, real)
        loads = [0.0] * small_instance.m
        assignment = outcome.placement.fixed_assignment()
        for j in range(small_instance.n):
            loads[assignment[j]] += real.actual(j)
        assert outcome.makespan == pytest.approx(max(loads))


class TestTheorem2Guarantee:
    def test_guarantee_value(self):
        inst = make_instance([1.0] * 6, m=3, alpha=2.0)
        assert LPTNoChoice().guarantee(inst) == pytest.approx(
            ub_lpt_no_choice(2.0, 3)
        )

    @given(instances(min_n=2, max_n=10, max_m=3), st.integers(0, 3))
    def test_ratio_within_guarantee_random(self, inst, seed):
        real = sample_realization(inst, "bimodal_extreme", seed)
        rec = measured_ratio(LPTNoChoice(), inst, real, exact_limit=12)
        if rec.optimum.optimal:
            assert rec.ratio <= rec.guarantee * (1 + 1e-9)

    @given(instances(min_n=3, max_n=10, max_m=3))
    def test_ratio_within_guarantee_adversarial(self, inst):
        strategy = LPTNoChoice()
        p = strategy.place(inst)
        real = theorem1_realization(p)
        rec = measured_ratio(strategy, inst, real, exact_limit=12)
        if rec.optimum.optimal:
            assert rec.ratio <= rec.guarantee * (1 + 1e-9)

    def test_alpha_one_reduces_to_lpt_bound(self):
        """With no uncertainty the Theorem-2 bound is weaker than Graham's
        4/3 for LPT, but the *measured* ratio must respect 4/3."""
        inst = make_instance([3.0, 3.0, 2.0, 2.0, 2.0], m=2, alpha=1.0)
        rec = measured_ratio(LPTNoChoice(), inst, truthful_realization(inst))
        assert rec.ratio == pytest.approx(7.0 / 6.0)
        assert rec.ratio <= 4.0 / 3.0 - 1.0 / 6.0 + 1e-9
