"""Tests for the on-disk cell cache (repro.analysis.cache)."""

from __future__ import annotations

import dataclasses
import json

import pytest

import repro.analysis.ratios as ratios_module
from repro.analysis.cache import CACHE_SCHEMA_VERSION, CellCache, cell_fingerprint
from repro.analysis.experiment import run_grid
from repro.analysis.parallel import CellSpec, enumerate_cells, run_cell
from repro.core.strategies import LPTNoChoice, LPTNoRestriction, LSGroup
from repro.uncertainty.realization import truthful_realization
from repro.workloads.generators import uniform_instance


@pytest.fixture
def instance():
    return uniform_instance(8, 2, alpha=1.5, seed=0)


def _spec(instance, **overrides) -> CellSpec:
    base = dict(
        index=0,
        group=0,
        strategy=LPTNoChoice(),
        instance=instance,
        model="uniform",
        model_name="uniform",
        seed=0,
        exact_limit=22,
    )
    base.update(overrides)
    return CellSpec(**base)


class TestFingerprint:
    def test_stable_across_equal_specs(self, instance):
        assert cell_fingerprint(_spec(instance)) == cell_fingerprint(_spec(instance))

    def test_index_and_group_do_not_matter(self, instance):
        # Position in the grid is not an input to the measurement.
        a = cell_fingerprint(_spec(instance))
        b = cell_fingerprint(_spec(instance, index=7, group=3))
        assert a == b

    @pytest.mark.parametrize(
        "override",
        [
            {"strategy": LPTNoRestriction()},
            {"strategy": LSGroup(2)},
            {"model": "log_uniform", "model_name": "log_uniform"},
            {"seed": 1},
            {"exact_limit": 10},
        ],
    )
    def test_changes_on_each_key_component(self, instance, override):
        assert cell_fingerprint(_spec(instance)) != cell_fingerprint(
            _spec(instance, **override)
        )

    def test_changes_on_strategy_params(self, instance):
        assert cell_fingerprint(_spec(instance, strategy=LSGroup(2))) != cell_fingerprint(
            _spec(instance, strategy=LSGroup(4))
        )

    def test_changes_on_instance_content(self, instance):
        other = uniform_instance(8, 2, alpha=1.5, seed=1)
        assert cell_fingerprint(_spec(instance)) != cell_fingerprint(_spec(other))

    def test_changes_on_schema_version(self, instance, monkeypatch):
        before = cell_fingerprint(_spec(instance))
        monkeypatch.setattr(
            "repro.analysis.cache.CACHE_SCHEMA_VERSION", CACHE_SCHEMA_VERSION + 1
        )
        assert cell_fingerprint(_spec(instance)) != before

    def test_callable_model_is_uncacheable(self, instance):
        factory = lambda inst, seed: truthful_realization(inst)  # noqa: E731
        spec = _spec(instance, model=factory, model_name="truthful")
        assert cell_fingerprint(spec) is None


class TestCellCache:
    def test_miss_then_hit_returns_identical_record(self, instance, tmp_path):
        cache = CellCache(tmp_path / "cache")
        spec = _spec(instance)
        assert cache.get(spec) is None
        outcome = run_cell(spec)
        assert cache.put(spec, outcome)
        cached = cache.get(spec)
        assert cached is not None
        assert cached.record == outcome.record
        assert cached.index == spec.index
        assert (cache.hits, cache.misses, cache.stores) == (1, 1, 1)
        assert cache.hit_rate() == 0.5

    def test_hit_preserves_none_fields(self, instance, tmp_path):
        # guarantee/within_guarantee may be None and must survive the round
        # trip unchanged (as_dict would flatten None to "").
        cache = CellCache(tmp_path)
        spec = _spec(instance)
        outcome = run_cell(spec)
        record = dataclasses.replace(
            outcome.record, guarantee=None, within_guarantee=None
        )
        cache.put(spec, dataclasses.replace(outcome, record=record))
        cached = cache.get(spec).record
        assert cached == record
        assert cached.guarantee is None and cached.within_guarantee is None

    def test_skipped_cell_round_trips(self, instance, tmp_path):
        cache = CellCache(tmp_path)
        spec = _spec(instance, strategy=LSGroup(4))  # cannot split m=2
        outcome = run_cell(spec)
        assert outcome.skipped is not None
        cache.put(spec, outcome)
        cached = cache.get(spec)
        assert cached.skipped == outcome.skipped
        assert cached.record is None

    def test_corrupt_entry_recomputes_not_crashes(self, instance, tmp_path):
        cache = CellCache(tmp_path)
        spec = _spec(instance)
        cache.put(spec, run_cell(spec))
        path = cache._path(cell_fingerprint(spec))
        path.write_text("{ truncated", encoding="utf-8")
        assert cache.get(spec) is None
        assert cache.corrupt == 1
        # A fresh put overwrites the corrupt entry and the hit comes back.
        cache.put(spec, run_cell(spec))
        assert cache.get(spec) is not None

    def test_schema_drift_treated_as_corrupt(self, instance, tmp_path):
        cache = CellCache(tmp_path)
        spec = _spec(instance)
        cache.put(spec, run_cell(spec))
        path = cache._path(cell_fingerprint(spec))
        payload = json.loads(path.read_text())
        payload["v"] = CACHE_SCHEMA_VERSION + 99
        path.write_text(json.dumps(payload))
        assert cache.get(spec) is None
        assert cache.corrupt == 1

    def test_uncacheable_spec_is_a_silent_bypass(self, instance, tmp_path):
        cache = CellCache(tmp_path)
        factory = lambda inst, seed: truthful_realization(inst)  # noqa: E731
        spec = _spec(instance, model=factory, model_name="truthful")
        assert cache.get(spec) is None
        assert not cache.put(spec, run_cell(spec, realization=factory(instance, 0)))
        assert cache.lookups == 0 and cache.stores == 0

    def test_stats_shape(self, tmp_path):
        stats = CellCache(tmp_path).stats()
        assert set(stats) == {
            "dir", "hits", "misses", "stores", "migrated", "corrupt",
            "quarantined", "hit_rate",
        }


class TestCorruptionQuarantine:
    """Corrupt shards are moved aside and can never poison a warm rerun."""

    def test_corrupt_shard_is_moved_aside(self, instance, tmp_path):
        cache = CellCache(tmp_path)
        spec = _spec(instance)
        cache.put(spec, run_cell(spec))
        path = cache._path(cell_fingerprint(spec))
        path.write_text("\x00garbage\x00", encoding="utf-8")
        assert cache.get(spec) is None
        assert cache.corrupt == 1 and cache.quarantined == 1
        assert not path.exists()
        assert path.with_name(path.name + ".corrupt").exists()
        # The shard is gone, so the next probe is a plain miss, not
        # another corruption event.
        assert cache.get(spec) is None
        assert cache.corrupt == 1

    def test_truncated_shard_counts_as_miss(self, instance, tmp_path):
        cache = CellCache(tmp_path)
        spec = _spec(instance)
        cache.put(spec, run_cell(spec))
        path = cache._path(cell_fingerprint(spec))
        path.write_text(path.read_text()[: 10], encoding="utf-8")
        assert cache.get(spec) is None
        assert cache.misses == 1 and cache.quarantined == 1

    def test_warm_rerun_clean_after_corruption(self, instance, tmp_path):
        cache = CellCache(tmp_path)
        spec = _spec(instance)
        outcome = run_cell(spec)
        cache.put(spec, outcome)
        path = cache._path(cell_fingerprint(spec))
        path.write_text("{ not json", encoding="utf-8")
        assert cache.get(spec) is None
        cache.put(spec, outcome)
        fresh = CellCache(tmp_path)
        cached = fresh.get(spec)
        assert cached is not None and cached.record == outcome.record
        assert fresh.corrupt == 0

    def test_quarantined_skip_is_refused(self, instance, tmp_path):
        from repro.analysis.records import SkippedCell
        from repro.analysis.parallel import CellOutcome

        cache = CellCache(tmp_path)
        spec = _spec(instance)
        poisoned = CellOutcome(
            spec.index,
            None,
            SkippedCell("s", "i", "boom", kind="quarantined", attempts=3),
            0.0,
        )
        assert not cache.put(spec, poisoned)
        assert cache.stores == 0
        assert cache.get(spec) is None

    def test_incompatible_skip_round_trips_kind_fields(self, instance, tmp_path):
        cache = CellCache(tmp_path)
        spec = _spec(instance, strategy=LSGroup(4))  # cannot split m=2
        outcome = run_cell(spec)
        cache.put(spec, outcome)
        cached = cache.get(spec).skipped
        assert cached.kind == "incompatible" and cached.attempts == 1


class TestLegacyMigration:
    """Warm v2 (pre-store) caches are reused losslessly, never recomputed."""

    @staticmethod
    def _write_legacy_shard(root, spec, outcome):
        """Write a shard byte-compatible with the v2 cache's put()."""
        from repro.analysis.cache import _legacy_fingerprint

        fp = _legacy_fingerprint(spec)
        payload = {"v": 2, "fingerprint": fp, "duration_s": outcome.duration_s}
        if outcome.record is not None:
            payload["kind"] = "record"
            payload["record"] = outcome.record.to_cache_dict()
        else:
            payload["kind"] = "skipped"
            payload["skipped"] = outcome.skipped.as_dict()
        path = root / fp[:2] / f"{fp}.json"
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(payload, sort_keys=True, separators=(",", ":")) + "\n",
            encoding="utf-8",
        )
        return path

    def test_v2_entry_is_a_hit_and_migrates(self, instance, tmp_path):
        spec = _spec(instance)
        outcome = run_cell(spec)
        self._write_legacy_shard(tmp_path, spec, outcome)
        cache = CellCache(tmp_path)
        cached = cache.get(spec)
        assert cached is not None and cached.record == outcome.record
        assert (cache.hits, cache.misses, cache.migrated) == (1, 0, 1)
        # Migrated in place: a fresh cache serves it natively at v3.
        fresh = CellCache(tmp_path)
        again = fresh.get(spec)
        assert again is not None and again.record == outcome.record
        assert (fresh.hits, fresh.migrated) == (1, 0)

    def test_sibling_repro_cache_dir_is_a_migration_source(self, instance, tmp_path):
        spec = _spec(instance)
        outcome = run_cell(spec)
        self._write_legacy_shard(tmp_path / ".repro-cache", spec, outcome)
        cache = CellCache(tmp_path / ".repro-store")
        cached = cache.get(spec)
        assert cached is not None and cached.record == outcome.record
        assert cache.migrated == 1

    def test_skipped_cells_migrate_too(self, instance, tmp_path):
        spec = _spec(instance, strategy=LSGroup(4))  # cannot split m=2
        outcome = run_cell(spec)
        assert outcome.skipped is not None
        self._write_legacy_shard(tmp_path, spec, outcome)
        cached = CellCache(tmp_path).get(spec)
        assert cached.skipped == outcome.skipped

    def test_corrupt_legacy_shard_is_ignored(self, instance, tmp_path):
        spec = _spec(instance)
        path = self._write_legacy_shard(tmp_path, spec, run_cell(spec))
        path.write_text("{ truncated", encoding="utf-8")
        cache = CellCache(tmp_path)
        assert cache.get(spec) is None
        assert (cache.misses, cache.migrated, cache.corrupt) == (1, 0, 0)

    def test_warm_legacy_grid_recomputes_nothing(self, tmp_path, monkeypatch):
        strategies = [LPTNoChoice(), LPTNoRestriction()]
        instances = [uniform_instance(8, 2, alpha=1.5, seed=s) for s in range(2)]
        for spec in enumerate_cells(strategies, instances, ["log_uniform"], (0,), 22):
            self._write_legacy_shard(tmp_path, spec, run_cell(spec))

        def _boom(*a, **k):  # pragma: no cover - failure mode
            raise AssertionError("measured_ratio called with a warm legacy cache")

        monkeypatch.setattr(ratios_module, "measured_ratio", _boom)
        cache = CellCache(tmp_path)
        run_grid(strategies, instances, ["log_uniform"], seeds=(0,), cache=cache)
        assert cache.misses == 0 and cache.hits == 4 and cache.migrated == 4


class TestGridIntegration:
    def _grid_args(self):
        strategies = [LPTNoChoice(), LPTNoRestriction()]
        instances = [uniform_instance(8, 2, alpha=1.5, seed=s) for s in range(2)]
        return strategies, instances, ["log_uniform"]

    def test_warm_rerun_computes_nothing(self, tmp_path, monkeypatch):
        args = self._grid_args()
        cache = CellCache(tmp_path / "grid-cache")
        cold = run_grid(*args, seeds=(0,), cache=cache)
        assert (cache.hits, cache.misses) == (0, 4)
        assert cache.stores == 4

        # Warm rerun: every cell must come from disk — zero measured_ratio
        # calls — and the records must be identical.
        def _boom(*a, **k):  # pragma: no cover - failure mode
            raise AssertionError("measured_ratio called on a warm-cache rerun")

        monkeypatch.setattr(ratios_module, "measured_ratio", _boom)
        warm_cache = CellCache(tmp_path / "grid-cache")
        warm = run_grid(*args, seeds=(0,), cache=warm_cache)
        assert warm == cold
        assert warm_cache.hits == 4 and warm_cache.misses == 0
        assert warm_cache.hit_rate() == 1.0

    def test_warm_rerun_parallel_matches(self, tmp_path):
        args = self._grid_args()
        cache = CellCache(tmp_path / "cache")
        cold = run_grid(*args, seeds=(0, 1), cache=cache)
        warm = run_grid(
            *args, seeds=(0, 1), cache=CellCache(tmp_path / "cache"), workers=2
        )
        assert warm == cold

    def test_cache_invalidated_by_exact_limit(self, tmp_path):
        args = self._grid_args()
        cache = CellCache(tmp_path / "cache")
        run_grid(*args, seeds=(0,), cache=cache)
        probe = CellCache(tmp_path / "cache")
        run_grid(*args, seeds=(0,), exact_limit=5, cache=probe)
        assert probe.hits == 0 and probe.misses == 4

    def test_manifest_records_cache_stats(self, tmp_path):
        from repro.obs import MemorySink, observed

        sink = MemorySink()
        with observed(sink):
            run_grid(*self._grid_args(), seeds=(0,), cache=CellCache(tmp_path))
        manifest = next(
            e for e in sink.by_kind("manifest") if e.payload["kind"] == "grid"
        )
        stats = manifest.payload["params"]["cache"]
        assert stats["misses"] == 4 and stats["stores"] == 4


class TestEnumerationCompatibility:
    def test_enumerated_specs_are_cacheable(self):
        strategies = [LPTNoChoice()]
        instances = [uniform_instance(6, 2, seed=0)]
        cells = enumerate_cells(strategies, instances, ["uniform"], (0,), 22)
        assert all(cell_fingerprint(c) for c in cells)

    def test_specs_are_hash_stable_dataclasses(self, instance):
        spec = _spec(instance)
        assert dataclasses.is_dataclass(spec)
        clone = dataclasses.replace(spec, index=9)
        assert cell_fingerprint(spec) == cell_fingerprint(clone)
