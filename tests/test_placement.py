"""Unit and property tests for repro.core.placement."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.model import make_instance
from repro.core.placement import (
    Placement,
    everywhere_placement,
    group_placement,
    single_machine_placement,
)
from tests.conftest import instances


class TestConstruction:
    def test_basic(self, small_instance):
        p = Placement(small_instance, tuple(frozenset({0}) for _ in range(6)))
        assert p.machines_for(0) == frozenset({0})

    def test_rejects_wrong_count(self, small_instance):
        with pytest.raises(ValueError, match="cover all"):
            Placement(small_instance, (frozenset({0}),))

    def test_rejects_empty_set(self, small_instance):
        sets = [frozenset({0})] * 5 + [frozenset()]
        with pytest.raises(ValueError, match="empty machine set"):
            Placement(small_instance, tuple(sets))

    def test_rejects_out_of_range_machine(self, small_instance):
        sets = [frozenset({0})] * 5 + [frozenset({7})]
        with pytest.raises(ValueError, match="outside"):
            Placement(small_instance, tuple(sets))

    def test_rejects_non_frozenset(self, small_instance):
        sets = [frozenset({0})] * 5 + [{0}]
        with pytest.raises(TypeError):
            Placement(small_instance, tuple(sets))  # type: ignore[arg-type]


class TestSingleMachine:
    def test_assignment_round_trip(self, small_instance):
        p = single_machine_placement(small_instance, [0, 1, 0, 1, 0, 1])
        assert p.fixed_assignment() == [0, 1, 0, 1, 0, 1]
        assert p.is_no_replication()
        assert not p.is_full_replication()

    def test_estimated_loads(self, small_instance):
        p = single_machine_placement(small_instance, [0, 1, 0, 1, 0, 1])
        # estimates 5,4,3,3,2,1 -> machine0: 5+3+2=10, machine1: 4+3+1=8
        assert p.estimated_load_per_machine() == [10.0, 8.0]

    def test_meta_contains_assignment(self, small_instance):
        p = single_machine_placement(small_instance, [1] * 6)
        assert p.meta["assignment"] == (1,) * 6

    def test_wrong_length_rejected(self, small_instance):
        with pytest.raises(ValueError):
            single_machine_placement(small_instance, [0])


class TestEverywhere:
    def test_full_replication(self, small_instance):
        p = everywhere_placement(small_instance)
        assert p.is_full_replication()
        assert p.max_replication() == 2
        assert p.total_replicas() == 12

    def test_allows_all(self, small_instance):
        p = everywhere_placement(small_instance)
        for j in range(6):
            for i in range(2):
                assert p.allows(j, i)

    def test_fixed_assignment_raises(self, small_instance):
        with pytest.raises(ValueError, match="fixed_assignment"):
            everywhere_placement(small_instance).fixed_assignment()


class TestGroups:
    @pytest.fixture
    def inst6(self):
        return make_instance([1.0] * 8, m=6, alpha=1.5)

    def test_group_sets(self, inst6):
        groups = [[0, 1, 2], [3, 4, 5]]
        p = group_placement(inst6, [0, 1, 0, 1, 0, 1, 0, 1], groups)
        assert p.machines_for(0) == frozenset({0, 1, 2})
        assert p.machines_for(1) == frozenset({3, 4, 5})
        assert p.max_replication() == 3

    def test_meta(self, inst6):
        groups = [[0, 1, 2], [3, 4, 5]]
        p = group_placement(inst6, [0] * 8, groups)
        assert p.meta["groups"] == ((0, 1, 2), (3, 4, 5))

    def test_rejects_overlapping_groups(self, inst6):
        with pytest.raises(ValueError, match="disjoint"):
            group_placement(inst6, [0] * 8, [[0, 1, 2], [2, 3, 4, 5]])

    def test_rejects_incomplete_cover(self, inst6):
        with pytest.raises(ValueError, match="cover all machines"):
            group_placement(inst6, [0] * 8, [[0, 1], [2, 3]])

    def test_rejects_empty_group(self, inst6):
        with pytest.raises(ValueError, match="empty"):
            group_placement(inst6, [0] * 8, [[0, 1, 2, 3, 4, 5], []])

    def test_rejects_bad_group_index(self, inst6):
        with pytest.raises(ValueError, match="out of range"):
            group_placement(inst6, [5] * 8, [[0, 1, 2], [3, 4, 5]])


class TestMetrics:
    def test_replication_histogram(self, small_instance):
        sets = [frozenset({0})] * 3 + [frozenset({0, 1})] * 3
        p = Placement(small_instance, tuple(sets))
        assert p.replication_histogram() == {1: 3, 2: 3}
        assert p.max_replication() == 2
        assert p.min_replication() == 1
        assert p.total_replicas() == 9

    def test_tasks_on(self, small_instance):
        sets = [frozenset({0})] * 3 + [frozenset({1})] * 3
        p = Placement(small_instance, tuple(sets))
        assert p.tasks_on(0) == [0, 1, 2]
        assert p.tasks_on(1) == [3, 4, 5]

    def test_memory_per_machine(self):
        inst = make_instance([1.0, 1.0], m=2, sizes=[3.0, 5.0])
        sets = (frozenset({0, 1}), frozenset({1}))
        p = Placement(inst, sets)
        assert p.memory_per_machine() == [3.0, 8.0]
        assert p.memory_max() == 8.0
        assert p.total_memory() == 11.0

    def test_restrict(self, small_instance):
        p = everywhere_placement(small_instance)
        p2 = p.restrict(0, [1])
        assert p2.machines_for(0) == frozenset({1})
        assert p2.machines_for(1) == frozenset({0, 1})
        # Original untouched (immutability).
        assert p.machines_for(0) == frozenset({0, 1})


class TestProperties:
    @given(instances(min_n=1, max_n=10, max_m=4))
    def test_everywhere_memory_max_is_total_size(self, inst):
        p = everywhere_placement(inst)
        assert p.memory_max() == pytest.approx(inst.total_size)

    @given(
        instances(min_n=1, max_n=10, max_m=4).flatmap(
            lambda inst: st.lists(
                st.integers(min_value=0, max_value=inst.m - 1),
                min_size=inst.n,
                max_size=inst.n,
            ).map(lambda a: (inst, a))
        )
    )
    def test_single_machine_invariants(self, inst_and_assignment):
        inst, assignment = inst_and_assignment
        p = single_machine_placement(inst, assignment)
        assert p.is_no_replication()
        assert p.total_replicas() == inst.n
        assert sum(p.estimated_load_per_machine()) == pytest.approx(inst.total_estimate)
