"""Unit tests for repro.core.adversary."""

from __future__ import annotations

import math

import pytest

from repro.analysis.ratios import run_strategy
from repro.core.adversary import (
    exhaustive_worst_case,
    greedy_worst_case,
    inflate_critical_machine,
    theorem1_instance,
    theorem1_optimal_upper_bound,
    theorem1_realization,
)
from repro.core.bounds import lb_no_replication, ub_lpt_no_choice
from repro.core.strategies import LPTNoChoice
from repro.core.model import make_instance
from repro.core.placement import everywhere_placement, single_machine_placement


class TestTheorem1Instance:
    def test_shape(self):
        inst = theorem1_instance(3, 6, 1.5)
        assert inst.n == 18
        assert inst.m == 6
        assert all(t.estimate == 1.0 for t in inst)

    def test_validation(self):
        with pytest.raises(ValueError):
            theorem1_instance(0, 6, 1.5)


class TestTheorem1Realization:
    def test_inflates_most_loaded(self):
        inst = theorem1_instance(2, 3, 2.0)
        # Unbalanced placement: machine 0 gets 4 tasks, others 1 each.
        p = single_machine_placement(inst, [0, 0, 0, 0, 1, 2])
        real = theorem1_realization(p)
        for j in range(4):
            assert real.factor(j) == pytest.approx(2.0)
        for j in (4, 5):
            assert real.factor(j) == pytest.approx(0.5)

    def test_requires_no_replication(self):
        inst = theorem1_instance(1, 2, 1.5)
        with pytest.raises(ValueError):
            theorem1_realization(everywhere_placement(inst))

    def test_tie_broken_to_lowest_machine(self):
        inst = theorem1_instance(1, 2, 1.5)
        p = single_machine_placement(inst, [0, 1])
        real = theorem1_realization(p)
        assert real.factor(0) == pytest.approx(1.5)
        assert real.factor(1) == pytest.approx(1.0 / 1.5)

    def test_measured_ratio_respects_theorem2(self):
        """The adversary's damage against LPT-No Choice stays within Th. 2."""
        inst = theorem1_instance(3, 4, 2.0)
        strategy = LPTNoChoice()
        p = strategy.place(inst)
        real = theorem1_realization(p)
        outcome = run_strategy(strategy, inst, real)
        from repro.exact.optimal import optimal_makespan

        opt = optimal_makespan(real.actuals, inst.m, exact_limit=12)
        ratio = outcome.makespan / opt.value
        assert ratio <= ub_lpt_no_choice(inst.alpha, inst.m) + 1e-9


class TestTheorem1UpperBoundFormula:
    def test_formula_at_lambda_b(self):
        # lam=2, m=3, alpha=2, b=2: ceil(4/3)/2 + 2*ceil(2/3) = 1 + 2 = 3.
        assert theorem1_optimal_upper_bound(2, 3, 2.0, 2) == pytest.approx(3.0)

    def test_b_below_lambda_rejected(self):
        with pytest.raises(ValueError):
            theorem1_optimal_upper_bound(3, 4, 1.5, 2)

    def test_ratio_converges_to_bound(self):
        """alpha*B / upper(C*) -> the Theorem-1 bound as lambda grows."""
        m, alpha = 5, 1.8
        ratios = []
        for lam in (1, 10, 200):
            b = lam  # balanced placement
            c_max = alpha * b
            c_star_ub = theorem1_optimal_upper_bound(lam, m, alpha, b)
            ratios.append(c_max / c_star_ub)
        bound = lb_no_replication(alpha, m)
        assert ratios[-1] == pytest.approx(bound, rel=0.02)
        assert ratios == sorted(ratios)  # monotone convergence from below


class TestInflateCritical:
    def test_same_as_theorem1_move(self):
        inst = make_instance([3.0, 2.0, 1.0], m=2, alpha=1.5)
        p = single_machine_placement(inst, [0, 1, 1])
        r1 = theorem1_realization(p)
        r2 = inflate_critical_machine(p)
        assert r1.actuals == r2.actuals
        assert r2.label == "inflate_critical"


class TestExhaustiveWorstCase:
    def test_finds_known_worst(self):
        """On a pinned 2-task instance the worst case is easy to verify by
        hand: inflate the big task, deflate the small one."""
        inst = make_instance([2.0, 1.0], m=2, alpha=2.0)
        strategy = LPTNoChoice()

        def run(real):
            return run_strategy(strategy, inst, real).makespan

        worst_real, worst_ratio = exhaustive_worst_case(inst, run)
        # Placement puts one task per machine -> any realization is optimal.
        assert worst_ratio == pytest.approx(1.0)

    def test_beats_or_matches_single_move(self):
        inst = make_instance([1.0] * 6, m=2, alpha=2.0)
        strategy = LPTNoChoice()
        p = strategy.place(inst)

        def run(real):
            return run_strategy(strategy, inst, real).makespan

        _, exhaustive_ratio = exhaustive_worst_case(inst, run)
        single = theorem1_realization(p)
        from repro.exact.optimal import optimal_makespan

        single_ratio = run(single) / optimal_makespan(single.actuals, 2).value
        assert exhaustive_ratio >= single_ratio - 1e-9

    def test_refuses_large_instances(self):
        inst = make_instance([1.0] * 20, m=2, alpha=2.0)
        with pytest.raises(ValueError, match="refused"):
            exhaustive_worst_case(inst, lambda r: 1.0)


class TestGreedyWorstCase:
    def test_returns_admissible_realization(self):
        inst = make_instance([3.0, 2.0, 2.0, 1.0], m=2, alpha=1.5)
        strategy = LPTNoChoice()

        def run(real):
            return run_strategy(strategy, inst, real).makespan

        real, ratio = greedy_worst_case(inst, run)
        assert ratio >= 1.0 - 1e-9
        for j in range(inst.n):
            f = real.factor(j)
            assert math.isclose(f, 1.5) or math.isclose(f, 1 / 1.5)

    def test_not_much_worse_than_exhaustive(self):
        inst = make_instance([1.0] * 8, m=2, alpha=2.0)
        strategy = LPTNoChoice()

        def run(real):
            return run_strategy(strategy, inst, real).makespan

        _, exhaustive_ratio = exhaustive_worst_case(inst, run)
        _, greedy_ratio = greedy_worst_case(inst, run, passes=5)
        assert greedy_ratio >= 0.8 * exhaustive_ratio
