"""Loadgen determinism and the end-to-end burst invariants."""

import repro.service.loadgen as lg
from repro.service.loadgen import (
    RETRY_ATTEMPTS,
    RETRY_EVERY,
    make_workload,
    run_burst,
)


def test_workload_is_seeded_and_stable():
    a = make_workload(5, 8, seed=42)
    b = make_workload(5, 8, seed=42)
    assert a == b
    c = make_workload(5, 8, seed=43)
    assert a != c
    # Tenant i's stream does not depend on how many tenants exist.
    wide = make_workload(9, 8, seed=42)
    assert wide[:5] == a


def test_workload_estimates_stay_in_band():
    for spec in make_workload(4, 16, seed=7, est_low=0.5, est_high=4.0):
        assert all(0.5 <= e <= 4.0 for e in spec.estimates)
        assert len(spec.keys) == len(set(spec.keys)) == 16


def test_burst_zero_drops_and_dedup_accounting():
    report = run_burst(tenants=12, tasks_per_tenant=7, seed=3, concurrency=8)
    assert report.errors == 0
    assert report.created == report.tasks == 12 * 7
    # One scripted duplicate per tenant per RETRY_EVERY tasks.
    assert report.deduplicated == 12 * (7 // RETRY_EVERY)
    final = report.final_status
    assert final["admitted"] == final["done"] == report.tasks  # zero drops
    assert final["queued"] == 0 and final["running"] == 0


def test_burst_decisions_deterministic_at_concurrency_one():
    kwargs = dict(tenants=6, tasks_per_tenant=4, seed=9, concurrency=1)
    first = run_burst(**kwargs)
    second = run_burst(**kwargs)
    assert first.decision_digest == second.decision_digest
    assert first.final_status["clock"] == second.final_status["clock"]
    # A different seed changes the workload, hence the decisions.
    other = run_burst(tenants=6, tasks_per_tenant=4, seed=10, concurrency=1)
    assert other.decision_digest != first.decision_digest


def test_transport_resets_replay_and_count_as_retries(monkeypatch):
    # Every submission's first attempt dies with a connection reset; the
    # replay (same idempotency key) must succeed, count in `retries`,
    # and leave `errors` at zero with nothing dropped.
    real_submit = lg.ServiceClient.submit
    dropped: set[str] = set()

    async def flaky_submit(self, tenant, estimate, *, size=0.0, key=None):
        if key not in dropped:
            dropped.add(key)
            raise ConnectionResetError("peer reset")
        return await real_submit(self, tenant, estimate, size=size, key=key)

    monkeypatch.setattr(lg.ServiceClient, "submit", flaky_submit)
    report = run_burst(tenants=4, tasks_per_tenant=3, seed=5, concurrency=4)
    assert report.errors == 0
    assert report.retries == 4 * 3
    assert report.created == report.requests == 4 * 3
    final = report.final_status
    assert final["admitted"] == final["done"] == 4 * 3
    assert report.as_dict()["retries"] == report.retries


def test_exhausted_retry_budget_is_an_error(monkeypatch):
    # One key's connection resets forever: its submission burns the whole
    # retry budget and then lands in `errors`; everyone else is untouched.
    real_submit = lg.ServiceClient.submit

    async def flaky_submit(self, tenant, estimate, *, size=0.0, key=None):
        if key == "t0-1":
            raise ConnectionResetError("peer reset")
        return await real_submit(self, tenant, estimate, size=size, key=key)

    monkeypatch.setattr(lg.ServiceClient, "submit", flaky_submit)
    report = run_burst(tenants=2, tasks_per_tenant=3, seed=5, concurrency=2)
    assert report.errors == 1
    assert report.retries == RETRY_ATTEMPTS
    assert report.created == 2 * 3 - 1
    final = report.final_status
    assert final["admitted"] == final["done"] == 2 * 3 - 1


def test_burst_writes_scrapable_exposition(tmp_path):
    from repro.obs import MemorySink, observed, validate_exposition

    out = tmp_path / "telemetry.prom"
    with observed(MemorySink()):
        report = run_burst(
            tenants=4, tasks_per_tenant=3, seed=1, concurrency=4, metrics_out=str(out)
        )
    assert report.errors == 0
    families, errors = validate_exposition(out.read_text())
    assert not errors
    assert "repro_service_admissions" in families
