"""Unit tests for repro.workloads.suites."""

from __future__ import annotations

from repro.workloads.suites import (
    medium_suite,
    memory_suite,
    paper_figure3_machines,
    small_exact_suite,
)


class TestSmallExactSuite:
    def test_non_empty_and_small(self):
        cases = list(small_exact_suite(seeds=1))
        assert cases
        for c in cases:
            assert c.instance.n <= 16
            assert c.instance.m <= 4
            assert c.instance.n > c.instance.m

    def test_reproducible(self):
        a = [c.instance.estimates for c in small_exact_suite(seeds=1)]
        b = [c.instance.estimates for c in small_exact_suite(seeds=1)]
        assert a == b

    def test_metadata_consistent(self):
        for c in small_exact_suite(seeds=1):
            assert c.instance.n == c.n
            assert c.instance.m == c.m
            assert c.instance.alpha == c.alpha


class TestMediumSuite:
    def test_covers_divisor_rich_m(self):
        ms = {c.m for c in medium_suite(seeds=1)}
        assert 30 in ms

    def test_sizes(self):
        for c in medium_suite(seeds=1):
            assert c.n in (60, 200)


class TestMemorySuite:
    def test_all_sized(self):
        for c in memory_suite(seeds=1):
            assert all(t.size > 0 for t in c.instance)
            assert c.m == 5  # Figure-6 machine count

    def test_alphas_match_paper(self):
        alphas = {round(c.alpha**2, 1) for c in memory_suite(seeds=1)}
        assert alphas == {2.0, 3.0}


def test_figure3_machines():
    assert paper_figure3_machines() == 210
