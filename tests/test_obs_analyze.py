"""Tests for trace analytics (repro.obs.analyze): span forests,
self-time attribution, critical paths, and the CLI surface.

The load-bearing invariant throughout: attribution rows *telescope* —
their self-times sum exactly to the root span's duration (negative
self-time included), so "where did the time go" tables always account
for 100% of the run.
"""

from __future__ import annotations

import json

import pytest

from repro.obs import MemorySink, observed
from repro.obs.analyze import (
    SpanNode,
    analyze_events,
    analyze_file,
    build_forest,
    exact_percentile,
    span_label,
)


def rec(kind, name, depth, ts, **payload):
    """A minimal trace record dict (what ``TraceEvent.as_dict`` yields)."""
    return {"v": 1, "kind": kind, "name": name, "depth": depth, "ts": ts,
            "payload": payload}


def nested_trace():
    """root(10s) > child_a(4s, leaf), child_b(3s > grandchild(1s))."""
    return [
        rec("span_start", "root", 0, 0.0),
        rec("span_start", "child_a", 1, 1.0),
        rec("span_end", "child_a", 1, 5.0, duration_s=4.0),
        rec("span_start", "child_b", 1, 5.0),
        rec("span_start", "grandchild", 2, 6.0),
        rec("span_end", "grandchild", 2, 7.0, duration_s=1.0),
        rec("span_end", "child_b", 1, 8.0, duration_s=3.0),
        rec("span_end", "root", 0, 10.0, duration_s=10.0),
    ]


class TestBuildForest:
    def test_nesting_and_durations(self):
        forest = build_forest(nested_trace())
        assert len(forest) == 1
        root = forest[0]
        assert root.name == "root" and root.duration == 10.0
        assert [c.name for c in root.children] == ["child_a", "child_b"]
        (grandchild,) = root.children[1].children
        assert grandchild.duration == 1.0

    def test_self_time_is_duration_minus_direct_children(self):
        root = build_forest(nested_trace())[0]
        assert root.self_time == pytest.approx(10.0 - 4.0 - 3.0)
        child_b = root.children[1]
        assert child_b.self_time == pytest.approx(3.0 - 1.0)
        assert root.children[0].self_time == pytest.approx(4.0)

    def test_truncated_trace_closes_open_spans(self):
        events = nested_trace()[:5]  # cut off inside grandchild
        forest = build_forest(events)
        root = forest[0]
        assert root.attrs.get("truncated") is True
        # Closed with the duration observed so far (last ts - start).
        assert root.duration == pytest.approx(6.0)
        grandchild = root.children[1].children[0]
        assert grandchild.attrs.get("truncated") is True

    def test_missing_duration_falls_back_to_ts_delta(self):
        events = [
            rec("span_start", "a", 0, 1.0),
            rec("span_end", "a", 0, 3.5),
        ]
        assert build_forest(events)[0].duration == pytest.approx(2.5)

    def test_stray_span_end_ignored(self):
        events = [rec("span_end", "ghost", 0, 1.0, duration_s=1.0)]
        assert build_forest(events) == []

    def test_worker_events_keep_worker_identity(self):
        events = [
            rec("span_start", "cell", 0, 0.0, worker=7, worker_ts=0.25),
            rec("span_end", "cell", 0, 1.0, duration_s=0.5, worker=7),
        ]
        node = build_forest(events)[0]
        assert node.worker == 7
        # Worker-local timestamps are authoritative for the start.
        assert node.start_ts == 0.25
        assert node.duration == 0.5  # payload duration, not parent ts delta


class TestSpanLabel:
    def test_strategy_and_instance(self):
        node = SpanNode(name="grid.cell", depth=0, start_ts=0.0,
                        attrs={"strategy": "lpt", "instance": "u20x4[s0]"})
        assert span_label(node) == "grid.cell[lpt×u20x4[s0]]"

    def test_strategy_only_and_bare(self):
        assert span_label(
            SpanNode(name="x", depth=0, start_ts=0.0, attrs={"strategy": "lpt"})
        ) == "x[lpt]"
        assert span_label(SpanNode(name="x", depth=0, start_ts=0.0)) == "x"


class TestExactPercentile:
    def test_nearest_rank(self):
        values = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0]
        assert exact_percentile(values, 0.5) == 5.0
        assert exact_percentile(values, 0.9) == 9.0
        assert exact_percentile(values, 0.99) == 10.0

    def test_empty_and_single(self):
        assert exact_percentile([], 0.5) == 0.0
        assert exact_percentile([3.0], 0.99) == 3.0


class TestAnalyzeEvents:
    def test_attribution_telescopes_exactly(self):
        analysis = analyze_events(nested_trace())
        assert analysis.root_name == "root"
        assert analysis.root_duration_s == 10.0
        assert analysis.total_attributed_s == pytest.approx(10.0)
        assert analysis.attribution_error == pytest.approx(0.0)
        by_label = {row["span"]: row["self s"] for row in analysis.attribution}
        assert by_label["child_a"] == pytest.approx(4.0)
        assert by_label["root"] == pytest.approx(3.0)

    def test_multiple_roots_fold_under_synthetic_trace_root(self):
        events = [
            rec("span_start", "phase1", 0, 0.0),
            rec("span_end", "phase1", 0, 1.0, duration_s=1.0),
            rec("span_start", "phase2", 0, 1.0),
            rec("span_end", "phase2", 0, 4.0, duration_s=3.0),
        ]
        analysis = analyze_events(events)
        assert analysis.root_name == "(trace)"
        assert analysis.root_duration_s == pytest.approx(4.0)
        assert analysis.attribution_error == pytest.approx(0.0)

    def test_top_folds_tail_but_preserves_total(self):
        analysis = analyze_events(nested_trace(), top=1)
        assert len(analysis.attribution) == 2  # top row + "(… N more)" fold
        assert analysis.attribution[-1]["span"].startswith("(")
        assert analysis.total_attributed_s == pytest.approx(10.0)

    def test_negative_self_time_from_overlapping_children_still_telescopes(self):
        # Parallel workers: children's summed duration exceeds the parent's
        # wall time.  Self time goes negative; the total still telescopes.
        events = [
            rec("span_start", "run_grid", 0, 0.0),
            rec("span_start", "cell", 1, 0.0, worker=1),
            rec("span_end", "cell", 1, 0.1, duration_s=3.0, worker=1),
            rec("span_start", "cell", 1, 0.1, worker=2),
            rec("span_end", "cell", 1, 0.2, duration_s=3.0, worker=2),
            rec("span_end", "run_grid", 0, 4.0, duration_s=4.0),
        ]
        analysis = analyze_events(events)
        by_label = {row["span"]: row["self s"] for row in analysis.attribution}
        assert by_label["run_grid"] == pytest.approx(-2.0)
        assert analysis.total_attributed_s == pytest.approx(4.0)
        assert analysis.workers == 2

    def test_dominant_chain_walks_heaviest_child(self):
        analysis = analyze_events(nested_trace())
        assert [hop["span"] for hop in analysis.chain] == [
            "root", "child_a",
        ]

    def test_span_aggregates_percentiles(self):
        events = []
        ts = 0.0
        durations = [1.0, 2.0, 3.0, 10.0]
        events.append(rec("span_start", "outer", 0, 0.0))
        for d in durations:
            events.append(rec("span_start", "cell", 1, ts))
            ts += d
            events.append(rec("span_end", "cell", 1, ts, duration_s=d))
        events.append(rec("span_end", "outer", 0, 16.0, duration_s=16.0))
        analysis = analyze_events(events)
        cell = next(r for r in analysis.spans if r["span"] == "cell")
        assert cell["count"] == 4
        assert cell["total s"] == pytest.approx(16.0)
        assert cell["p50 s"] == 2.0
        assert cell["p99 s"] == 10.0
        assert cell["max s"] == 10.0

    def test_empty_trace(self):
        analysis = analyze_events([])
        assert analysis.root_name == "(empty)"
        assert analysis.as_dict()["critical_path"]["entries"] == []


class TestAnalyzeRealTrace:
    """Acceptance: a real traced grid run attributes within 1%."""

    def test_traced_sweep_attribution_error_under_one_percent(self, tmp_path):
        import repro
        from repro.analysis.experiment import ExperimentGrid
        from repro.obs import JsonlSink

        instances = [repro.uniform_instance(8, 2, alpha=1.5, seed=s)
                     for s in range(2)]
        path = tmp_path / "trace.jsonl"
        with observed(JsonlSink(path)):
            ExperimentGrid(
                strategies=[repro.LPTNoChoice()],
                instances=instances,
                realization_models=["log_uniform"],
                seeds=(0,),
                batch=False,  # per-cell spans, not one grid.batch pack
            ).run()
        analysis = analyze_file(path)
        assert analysis.root_duration_s > 0
        assert analysis.attribution_error <= 0.01
        assert any(r["span"] == "grid.cell" for r in analysis.spans)

    def test_as_dict_round_trips_through_json(self):
        analysis = analyze_events(nested_trace())
        payload = json.loads(json.dumps(analysis.as_dict()))
        assert payload["root"]["duration_s"] == 10.0
        assert payload["critical_path"]["attribution_error"] == 0.0


class TestCliAnalyze:
    def run_cli(self, *argv):
        from repro.cli import main

        return main(list(argv))

    def trace_file(self, tmp_path):
        from repro.obs import JsonlSink
        from repro.obs.tracer import get_tracer

        path = tmp_path / "t.jsonl"
        with observed(JsonlSink(path)) as tracer:
            with tracer.span("outer"):
                with tracer.span("inner"):
                    pass
        return path

    def test_tables_output(self, tmp_path, capsys):
        path = self.trace_file(tmp_path)
        assert self.run_cli("obs", "analyze", str(path)) == 0
        out = capsys.readouterr().out
        assert "critical path" in out
        assert "outer" in out and "inner" in out

    def test_json_output(self, tmp_path, capsys):
        path = self.trace_file(tmp_path)
        assert self.run_cli("obs", "analyze", str(path), "--json") == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["root"]["name"] == "outer"
        assert payload["critical_path"]["attribution_error"] <= 0.01

    def test_missing_file_fails_cleanly(self, tmp_path, capsys):
        assert self.run_cli("obs", "analyze", str(tmp_path / "nope.jsonl")) == 1
