"""Tests for the unified strategy-plugin registry (repro.registry).

Covers the tentpole guarantees: spec round-tripping for every registered
family, back-compat with every pre-registry spec form, registry-generated
error messages, capability queries and enforcement, canonical-spec cache
fingerprints, the documented Figure-3 sweep overlaps, and registry
completeness.
"""

from __future__ import annotations

import pytest

import repro
from repro.analysis.cache import cell_fingerprint
from repro.analysis.parallel import CellSpec
from repro.core.strategies import (
    BudgetedReplication,
    LPTGroup,
    LPTNoChoice,
    LPTNoRestriction,
    LSGroup,
    NonClairvoyantLS,
    OverlappingWindows,
    SelectiveReplication,
)
from repro.registry import (
    REQUIRED,
    Capabilities,
    CapabilityError,
    Choice,
    Flag,
    Float,
    Int,
    StrategyRef,
    canonical_spec,
    capabilities_of,
    describe_strategy,
    entry_for,
    make_strategy,
    select_strategies,
    strategy_entries,
    try_describe_strategy,
)


@pytest.fixture(scope="module")
def inst():
    return repro.uniform_instance(n=18, m=6, alpha=1.5, seed=3)


@pytest.fixture(scope="module")
def real(inst):
    return repro.sample_realization(inst, "log_uniform", seed=5)


def _sample_value(param):
    """A schema-valid sample value for one declared parameter."""
    if isinstance(param, StrategyRef):
        return make_strategy("ls_group[k=2]")
    if isinstance(param, Choice):
        return next((v for v in param.values if v != param.default), param.values[0])
    if isinstance(param, Flag):
        return True
    if isinstance(param, Int):
        value = param.ge if param.ge is not None else 2
        if param.le is not None:
            value = min(value, param.le)
        return value
    if isinstance(param, Float):
        if param.gt is not None:
            return param.gt + 0.5
        low = param.ge if param.ge is not None else 0.0
        high = param.le if param.le is not None else low + 1.0
        return (low + high) / 2
    raise AssertionError(f"unhandled param type {type(param).__name__}")


class TestRoundTrip:
    """parse(describe(s)) reconstructs an equivalent strategy, every family."""

    @pytest.mark.parametrize(
        "entry", [pytest.param(e, id=e.name) for e in strategy_entries()]
    )
    def test_explicit_values_round_trip(self, entry):
        values = {p.key: _sample_value(p) for p in entry.params}
        strategy = entry.construct(values)
        spec = describe_strategy(strategy)
        rebuilt = make_strategy(spec)
        assert type(rebuilt) is type(strategy)
        assert describe_strategy(rebuilt) == spec
        assert rebuilt.name == strategy.name

    @pytest.mark.parametrize(
        "entry", [pytest.param(e, id=e.name) for e in strategy_entries()]
    )
    def test_default_values_round_trip(self, entry):
        values = {p.key: _sample_value(p) for p in entry.params if p.required}
        strategy = entry.construct(values)
        spec = describe_strategy(strategy)
        rebuilt = make_strategy(spec)
        assert type(rebuilt) is type(strategy)
        assert describe_strategy(rebuilt) == spec

    @pytest.mark.parametrize(
        "entry", [pytest.param(e, id=e.name) for e in strategy_entries()]
    )
    def test_canonical_spec_matches_display_name(self, entry):
        """The canonical rendered spec IS the strategy's display name."""
        values = {p.key: _sample_value(p) for p in entry.params if p.required}
        strategy = entry.construct(values)
        assert describe_strategy(strategy) == strategy.name


class TestBackCompat:
    """Every pre-registry documented spec form still parses identically."""

    @pytest.mark.parametrize(
        ("spec", "cls", "attrs"),
        [
            ("lpt_no_choice", LPTNoChoice, {}),
            ("lpt_no_restriction", LPTNoRestriction, {}),
            ("nonclairvoyant_ls", NonClairvoyantLS, {}),
            ("ls_group[k=3]", LSGroup, {"k": 3}),
            ("lpt_group[k=2]", LPTGroup, {"k": 2}),
            ("selective[0.4]", SelectiveReplication, {"fraction": 0.4, "by_work": False}),
            ("selective[0.4,work]", SelectiveReplication, {"by_work": True}),
            ("selective[0.4,count]", SelectiveReplication, {"by_work": False}),
            ("budgeted[B=7]", BudgetedReplication, {"budget": 7}),
            ("overlap_windows[k=3,w=2]", OverlappingWindows, {"k": 3, "overlap": 2}),
        ],
    )
    def test_legacy_spec_forms(self, spec, cls, attrs):
        strategy = make_strategy(spec)
        assert type(strategy) is cls
        for attr, expected in attrs.items():
            assert getattr(strategy, attr) == expected

    @pytest.mark.parametrize(
        "spec",
        [
            "sabo[delta=0.5]",
            "sabo[delta=0.5,pi1=multifit]",
            "abo[delta=1,barrier]",
            "capped[C=4]",
            "capped[C=4,time]",
            "risk_aware[0.3]",
            "robust_pinned",
            "robust_pinned[s=8,iters=10,seed=2]",
            "baseline[round_robin]",
            "baseline[random,seed=7]",
            "refined[ls_group[k=3]]",
            "refined[abo[delta=1],eta=0.25]",
        ],
    )
    def test_extension_families_parse(self, spec):
        strategy = make_strategy(spec)
        assert describe_strategy(strategy) == canonical_spec(spec)

    def test_noncanonical_spellings_canonicalize(self):
        assert canonical_spec("selective[0.50]") == canonical_spec("selective[0.5,count]")
        assert canonical_spec("ls_group[k=03]") == "ls_group[k=3]"
        assert canonical_spec("sabo[delta=0.50]") == "sabo[delta=0.5]"


class TestErrorMessages:
    """make_strategy errors are generated from the registry, not hard-coded."""

    def test_unknown_spec_lists_registered_forms(self):
        with pytest.raises(ValueError, match="unknown strategy spec") as exc:
            make_strategy("nope")
        message = str(exc.value)
        # One accepted-form template per registered family, automatically.
        for entry in strategy_entries():
            assert entry.name in message

    def test_bad_parameter_names_entry_template(self):
        with pytest.raises(ValueError, match="unknown strategy spec"):
            make_strategy("ls_group[q=3]")

    def test_missing_required_parameter(self):
        with pytest.raises(ValueError, match="missing required parameter"):
            make_strategy("sabo")


class TestCapabilities:
    def test_memory_aware_query(self):
        names = {e.name for e in select_strategies(memory_aware=True)}
        assert names == {"sabo", "abo", "capped"}

    def test_hetero_query(self):
        names = {e.name for e in select_strategies(supports_hetero=True)}
        assert names == {"risk_aware"}

    def test_family_query(self):
        core = {e.name for e in select_strategies(family="core")}
        assert {"lpt_no_choice", "ls_group", "selective"} <= core

    def test_instance_capabilities(self):
        caps = capabilities_of(make_strategy("selective[0.4]"))
        assert caps.supports_faults
        assert not caps.supports_releases

    def test_refined_delegates_to_base(self):
        caps = capabilities_of(make_strategy("refined[abo[delta=1]]"))
        assert caps.memory_aware
        assert not caps.supports_releases
        caps = capabilities_of(make_strategy("refined[ls_group[k=2]]"))
        assert caps.supports_releases
        assert not caps.memory_aware

    def test_unregistered_class_is_unrepresentable(self):
        class Anon(LSGroup):
            pass

        assert entry_for(Anon(2)) is None
        assert capabilities_of(Anon(2)) is None
        assert try_describe_strategy(Anon(2)) is None


class TestCapabilityEnforcement:
    def test_release_times_rejected_for_incapable_strategy(self, inst, real):
        strategy = make_strategy("selective[0.4]")
        releases = [0.1] * inst.n
        with pytest.raises(CapabilityError):
            repro.run_strategy(strategy, inst, real, release_times=releases)

    def test_zero_release_times_allowed(self, inst, real):
        strategy = make_strategy("selective[0.4]")
        outcome = repro.run_strategy(
            strategy, inst, real, release_times=[0.0] * inst.n
        )
        assert outcome.makespan > 0

    def test_fault_plan_rejected_without_supports_faults(self, inst, real):
        strategy = make_strategy("lpt_no_restriction")
        placement = strategy.place(inst)
        plan = repro.FaultPlan.of(repro.CrashStop(machine=0, at=1.0))
        with pytest.raises(CapabilityError):
            repro.simulate(
                placement,
                real,
                strategy.make_policy(inst, placement),
                faults=plan,
                capabilities=Capabilities(supports_faults=False),
            )

    def test_capability_error_is_a_typeerror(self):
        # Harness layers catch SimulationError (a RuntimeError) to record
        # non-survival; CapabilityError must never be swallowed by them.
        assert issubclass(CapabilityError, TypeError)
        assert not issubclass(CapabilityError, RuntimeError)


class TestCacheCanonicalization:
    def _cell(self, inst, strategy):
        return CellSpec(
            index=0,
            group=0,
            strategy=strategy,
            instance=inst,
            model="log_uniform",
            model_name="log_uniform",
            seed=0,
            exact_limit=22,
        )

    def test_noncanonical_spellings_share_fingerprint(self, inst):
        a = self._cell(inst, make_strategy("selective[0.50]"))
        b = self._cell(inst, make_strategy("selective[0.5,count]"))
        assert cell_fingerprint(a) == cell_fingerprint(b)

    def test_distinct_parameters_do_not_collide(self, inst):
        a = self._cell(inst, make_strategy("selective[0.5]"))
        b = self._cell(inst, make_strategy("selective[0.4]"))
        assert cell_fingerprint(a) != cell_fingerprint(b)


class TestSweepOverlap:
    """The documented intentional endpoint overlaps of the ablation sweep."""

    @pytest.mark.parametrize(
        ("ablation", "reference"),
        [("lpt_group[k=1]", "lpt_no_restriction"), ("lpt_group[k=6]", "lpt_no_choice")],
    )
    def test_lpt_group_endpoints_coincide(self, inst, real, ablation, reference):
        sa, sb = make_strategy(ablation), make_strategy(reference)
        assert sa.place(inst).machine_sets == sb.place(inst).machine_sets
        assert (
            repro.run_strategy(sa, inst, real).makespan
            == repro.run_strategy(sb, inst, real).makespan
        )

    def test_ls_group_endpoints_are_not_duplicates(self):
        # Input order vs LPT order: the default sweep has no overlap.
        names = repro.strategy_names(6)
        assert len(names) == len(set(names))


class TestNewFamilies:
    def test_pinned_baseline_round_robin(self, inst, real):
        strategy = make_strategy("baseline[round_robin]")
        placement = strategy.place(inst)
        assert placement.max_replication() == 1
        machines = [next(iter(s)) for s in placement.machine_sets]
        assert machines == [j % inst.m for j in range(inst.n)]
        assert repro.run_strategy(strategy, inst, real).makespan > 0

    def test_pinned_baseline_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown strategy spec"):
            make_strategy("baseline[bogus]")

    def test_refined_matches_base_before_observations(self, inst, real):
        base = make_strategy("ls_group[k=2]")
        refined = make_strategy("refined[ls_group[k=2]]")
        assert refined.place(inst).machine_sets == base.place(inst).machine_sets
        assert (
            repro.run_strategy(refined, inst, real).makespan
            == repro.run_strategy(base, inst, real).makespan
        )

    def test_refined_observe_changes_estimates(self, inst, real):
        refined = make_strategy("refined[ls_group[k=2],eta=1]")
        refined.observe(real)
        effective = refined._effective(inst)
        assert effective.estimates != inst.estimates
        outcome = repro.run_strategy(refined, inst, real)
        assert outcome.placement.instance is inst  # rebuilt on the original


class TestCompleteness:
    def test_every_shipped_strategy_is_registered(self):
        from repro.tools.check_registry import unregistered_strategies

        assert unregistered_strategies() == []

    def test_required_sentinel_repr(self):
        assert repr(REQUIRED) == "<required>"

    def test_catalog_is_fresh(self):
        from pathlib import Path

        from repro.tools.strategy_docs import render_catalog

        catalog = Path(__file__).resolve().parent.parent / "docs" / "strategies.md"
        assert catalog.read_text(encoding="utf-8") == render_catalog(), (
            "docs/strategies.md is stale — regenerate with "
            "`python -m repro.tools.strategy_docs`"
        )
