"""Cross-cutting property tests: simulator honesty and system invariants.

Where :mod:`tests.test_paper_theorems` checks the paper's inequalities,
this module checks the *machinery*: any strategy × any admissible
realization must yield a feasible, work-conserving, deterministic
execution whose aggregates are internally consistent.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.ratios import run_strategy
from repro.core.strategies import LPTNoChoice, LPTNoRestriction, LSGroup
from repro.exact.optimal import optimal_makespan
from repro.memory.abo import ABO
from repro.memory.sabo import SABO
from repro.schedulers.lower_bounds import combined_lower_bound
from repro.uncertainty.stochastic import sample_realization
from tests.conftest import instances, sized_instances

MODELS = ("uniform", "bimodal_extreme", "log_uniform", "lognormal")


def _strategies_for(m: int):
    out = [LPTNoChoice(), LPTNoRestriction()]
    for k in range(1, m + 1):
        if m % k == 0:
            out.append(LSGroup(k))
    return out


class TestFeasibilityUniversal:
    @given(
        instances(min_n=1, max_n=12, max_m=4),
        st.sampled_from(MODELS),
        st.integers(0, 3),
    )
    def test_all_strategies_feasible(self, inst, model, seed):
        real = sample_realization(inst, model, seed)
        for strategy in _strategies_for(inst.m):
            outcome = run_strategy(strategy, inst, real)
            # validate() raises on any feasibility violation.
            outcome.trace.validate(outcome.placement, real)

    @given(
        sized_instances(min_n=1, max_n=10, max_m=3),
        st.sampled_from((0.5, 2.0)),
        st.integers(0, 2),
    )
    def test_memory_strategies_feasible(self, inst, delta, seed):
        real = sample_realization(inst, "uniform", seed)
        for strategy in (SABO(delta), ABO(delta)):
            outcome = run_strategy(strategy, inst, real)
            outcome.trace.validate(outcome.placement, real)


class TestMakespanSanity:
    @given(
        instances(min_n=1, max_n=12, max_m=4),
        st.sampled_from(MODELS),
        st.integers(0, 3),
    )
    def test_sandwiched_by_trivial_bounds(self, inst, model, seed):
        """max p_j <= C_max <= sum p_j for every strategy."""
        real = sample_realization(inst, model, seed)
        for strategy in _strategies_for(inst.m):
            outcome = run_strategy(strategy, inst, real)
            assert outcome.makespan >= real.max * (1 - 1e-9)
            assert outcome.makespan <= real.total * (1 + 1e-9)

    @given(instances(min_n=2, max_n=10, max_m=3), st.integers(0, 3))
    def test_never_below_lower_bound(self, inst, seed):
        real = sample_realization(inst, "log_uniform", seed)
        lb = combined_lower_bound(list(real.actuals), inst.m)
        for strategy in _strategies_for(inst.m):
            outcome = run_strategy(strategy, inst, real)
            assert outcome.makespan >= lb * (1 - 1e-9)

    @given(instances(min_n=2, max_n=10, max_m=3), st.integers(0, 2))
    def test_never_below_exact_optimum(self, inst, seed):
        real = sample_realization(inst, "bimodal_extreme", seed)
        opt = optimal_makespan(list(real.actuals), inst.m, exact_limit=12)
        if not opt.optimal:
            return
        for strategy in _strategies_for(inst.m):
            outcome = run_strategy(strategy, inst, real)
            assert outcome.makespan >= opt.value * (1 - 1e-9)


class TestWorkConservation:
    @given(instances(min_n=2, max_n=12, max_m=4), st.integers(0, 3))
    def test_online_strategies_no_early_idle(self, inst, seed):
        """For full-replication dispatch no machine idles before the last
        task has started (List-Scheduling work conservation)."""
        real = sample_realization(inst, "uniform", seed)
        outcome = run_strategy(LPTNoRestriction(), inst, real)
        last_start = max(r.start for r in outcome.trace.runs)
        # Each machine's busy time within [0, last_start] equals last_start
        # whenever it hosts at least one task interval covering it.
        busy = [0.0] * inst.m
        for r in outcome.trace.runs:
            busy[r.machine] += min(r.end, last_start) - min(r.start, last_start)
        for i in range(inst.m):
            assert busy[i] >= last_start - 1e-9 or last_start == 0.0

    @given(instances(min_n=1, max_n=12, max_m=4), st.integers(0, 2))
    def test_starts_packed_from_zero(self, inst, seed):
        """Every machine that runs anything starts its first task at 0 for
        the paper's strategies (all tasks released at 0)."""
        real = sample_realization(inst, "uniform", seed)
        for strategy in _strategies_for(inst.m):
            outcome = run_strategy(strategy, inst, real)
            firsts: dict[int, float] = {}
            for r in outcome.trace.runs:
                firsts[r.machine] = min(firsts.get(r.machine, float("inf")), r.start)
            for start in firsts.values():
                assert start == pytest.approx(0.0)


class TestAggregateConsistency:
    @given(instances(min_n=1, max_n=12, max_m=4), st.integers(0, 2))
    def test_loads_sum_to_total_work(self, inst, seed):
        real = sample_realization(inst, "lognormal", seed)
        for strategy in _strategies_for(inst.m):
            outcome = run_strategy(strategy, inst, real)
            assert sum(outcome.trace.loads(inst.m)) == pytest.approx(real.total)

    @given(instances(min_n=1, max_n=12, max_m=4))
    def test_replication_metric_matches_strategy(self, inst):
        assert LPTNoChoice().replication_of(inst) == 1
        assert LPTNoRestriction().replication_of(inst) == inst.m
        for k in range(1, inst.m + 1):
            if inst.m % k == 0:
                assert LSGroup(k).replication_of(inst) == inst.m // k


class TestAlphaOneDegeneration:
    @given(instances(min_n=2, max_n=12, max_m=4, alphas=(1.0,)), st.sampled_from(MODELS))
    @settings(max_examples=20)
    def test_certain_model_realization_is_truthful(self, inst, model):
        """alpha=1 forces every realization to equal the estimates, so all
        strategies reduce to their classical certain-time counterparts."""
        real = sample_realization(inst, model, 0)
        assert list(real.actuals) == pytest.approx(list(inst.estimates))
