"""Tests for size-capped JsonlSink rotation (satellite of the telemetry
pipeline): every rotated segment must stay ``repro.obs.validate``-clean on
its own, and sinks must flush/close even when the traced command raises.
"""

from __future__ import annotations

import json

import pytest

from repro.obs import JsonlSink, observed
from repro.obs.events import TraceEvent
from repro.obs.sink import read_jsonl
from repro.obs.validate import validate_trace


def ev(seq, ts, kind, name, depth=0, **payload):
    return TraceEvent(seq=seq, ts=ts, kind=kind, name=name, depth=depth,
                      payload=payload)


def long_span_events(ticks):
    """One long-lived span wrapping ``ticks`` point events."""
    events = [ev(0, 0.0, "span_start", "run")]
    for i in range(ticks):
        events.append(ev(i + 1, 0.01 * (i + 1), "event", "tick", depth=1, i=i))
    events.append(
        ev(ticks + 1, 0.01 * (ticks + 1), "span_end", "run",
           duration_s=0.01 * (ticks + 1))
    )
    return events


def segments(path):
    """The live file plus backups, oldest first."""
    backups = sorted(
        path.parent.glob(f"{path.stem}.*{path.suffix}"),
        key=lambda p: int(p.suffixes[0][1:]),
        reverse=True,
    )
    return backups + [path]


class TestConstruction:
    def test_rejects_non_positive_max_bytes(self, tmp_path):
        with pytest.raises(ValueError, match="max_bytes"):
            JsonlSink(tmp_path / "t.jsonl", max_bytes=0)

    def test_rejects_zero_backups(self, tmp_path):
        with pytest.raises(ValueError, match="backups"):
            JsonlSink(tmp_path / "t.jsonl", max_bytes=100, backups=0)


class TestUncappedWireFormat:
    def test_default_sink_does_not_rotate_or_renumber(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with JsonlSink(path) as sink:
            for event in long_span_events(50):
                sink.emit(event)
        assert sink.rotations == 0
        assert not list(tmp_path.glob("t.*.jsonl"))
        # Tracer-assigned seq survives verbatim (wire format unchanged).
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert [r["seq"] for r in records] == list(range(52))
        _, errors = validate_trace(path)
        assert errors == []


class TestRotation:
    def rotated(self, tmp_path, ticks=200, max_bytes=1500, backups=20):
        path = tmp_path / "trace.jsonl"
        with JsonlSink(path, max_bytes=max_bytes, backups=backups) as sink:
            for event in long_span_events(ticks):
                sink.emit(event)
        return path, sink

    def test_rotation_produces_backup_segments(self, tmp_path):
        path, sink = self.rotated(tmp_path)
        assert sink.rotations >= 2
        assert len(segments(path)) == sink.rotations + 1

    def test_every_segment_validates_independently(self, tmp_path):
        path, sink = self.rotated(tmp_path)
        for segment in segments(path):
            stats, errors = validate_trace(segment)
            assert errors == [], f"{segment.name}: {errors}"
            assert stats["records"] > 0

    def test_segment_seq_restarts_at_zero(self, tmp_path):
        path, _ = self.rotated(tmp_path)
        for segment in segments(path):
            first = json.loads(segment.read_text().splitlines()[0])
            assert first["seq"] == 0

    def test_boundary_spans_are_balanced_and_tagged(self, tmp_path):
        path, sink = self.rotated(tmp_path)
        all_segments = segments(path)
        # Sealed segments end by closing the straddling "run" span ...
        for sealed in all_segments[:-1]:
            last = json.loads(sealed.read_text().splitlines()[-1])
            assert last["kind"] == "span_end" and last["name"] == "run"
            assert last["payload"]["rotated"] is True
        # ... and every later segment reopens it, tagged as synthetic.
        for reopened in all_segments[1:]:
            first = json.loads(reopened.read_text().splitlines()[0])
            assert first["kind"] == "span_start" and first["name"] == "run"
            assert first["payload"]["rotated"] is True
        # One synthesized pair per rotation: the original span is whole.
        reopen_count = sum(
            1
            for segment in all_segments
            for line in segment.read_text().splitlines()
            if json.loads(line)["payload"].get("rotated")
        )
        assert reopen_count == 2 * sink.rotations

    def test_no_tick_lost_across_rotation(self, tmp_path):
        ticks = 200
        path, _ = self.rotated(tmp_path, ticks=ticks, backups=50)
        seen = [
            event.payload["i"]
            for segment in segments(path)
            for event in read_jsonl(segment)
            if event.kind == "event"
        ]
        assert seen == list(range(ticks))

    def test_oldest_backup_falls_off_past_the_cap(self, tmp_path):
        path, sink = self.rotated(tmp_path, ticks=400, backups=2)
        assert sink.rotations > 2
        names = [s.name for s in segments(path)]
        assert names == ["trace.2.jsonl", "trace.1.jsonl", "trace.jsonl"]

    def test_nested_spans_reopen_in_stack_order(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with JsonlSink(path, max_bytes=600, backups=10) as sink:
            sink.emit(ev(0, 0.0, "span_start", "outer"))
            sink.emit(ev(1, 0.1, "span_start", "inner", depth=1))
            for i in range(40):
                sink.emit(ev(2 + i, 0.2 + 0.01 * i, "event", "tick", depth=2))
            sink.emit(ev(42, 1.0, "span_end", "inner", depth=1, duration_s=0.9))
            sink.emit(ev(43, 1.1, "span_end", "outer", duration_s=1.1))
        assert sink.rotations >= 1
        for segment in segments(path):
            _, errors = validate_trace(segment)
            assert errors == [], f"{segment.name}: {errors}"


class TestExceptionSafety:
    def test_sink_context_closes_on_exception(self, tmp_path):
        path = tmp_path / "t.jsonl"
        sink = JsonlSink(path)
        with pytest.raises(RuntimeError, match="boom"):
            with sink:
                sink.emit(ev(0, 0.0, "event", "x"))
                raise RuntimeError("boom")
        with pytest.raises(ValueError, match="closed"):
            sink.emit(ev(1, 0.1, "event", "y"))
        # The buffered line reached disk despite the crash.
        assert json.loads(path.read_text())["name"] == "x"

    def test_close_is_idempotent(self, tmp_path):
        sink = JsonlSink(tmp_path / "t.jsonl")
        sink.close()
        sink.close()

    def test_crashed_traced_run_still_yields_valid_trace(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with pytest.raises(RuntimeError):
            with observed(JsonlSink(path)) as tracer:
                with tracer.span("outer"):
                    with tracer.span("inner"):
                        raise RuntimeError("mid-span crash")
        # Span context managers unwound, sink flushed and closed: the
        # partial trace is complete and parseable.
        stats, errors = validate_trace(path)
        assert errors == []
        assert stats["span_start"] == 2 and stats["span_end"] == 2


class TestCliRotation:
    def test_run_with_trace_max_bytes_rotates_validly(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "trace.jsonl"
        assert main(
            ["run", "lpt_no_choice", "--n", "30", "--m", "4",
             "--trace", str(path), "--trace-max-bytes", "2000"]
        ) == 0
        capsys.readouterr()
        found = segments(path)
        assert len(found) >= 2, "expected at least one rotation"
        for segment in found:
            _, errors = validate_trace(segment)
            assert errors == [], f"{segment.name}: {errors}"
