"""Unit tests for repro.workloads.memory_workloads."""

from __future__ import annotations

import numpy as np
import pytest

from repro.workloads.memory_workloads import (
    MEMORY_WORKLOADS,
    anticorrelated_sizes,
    correlated_sizes,
    independent_sizes,
    planted_two_class,
)


class TestCommonContract:
    @pytest.mark.parametrize("family", sorted(MEMORY_WORKLOADS))
    def test_shape(self, family):
        inst = MEMORY_WORKLOADS[family](30, 4, 1.5, seed=0)
        assert inst.n == 30
        assert inst.m == 4
        assert all(t.size > 0 for t in inst)
        assert inst.name.startswith("mem_")

    @pytest.mark.parametrize("family", sorted(MEMORY_WORKLOADS))
    def test_deterministic(self, family):
        a = MEMORY_WORKLOADS[family](20, 3, 1.2, seed=9)
        b = MEMORY_WORKLOADS[family](20, 3, 1.2, seed=9)
        assert a.sizes == b.sizes


def _corr(inst) -> float:
    times = np.asarray(inst.estimates)
    sizes = np.asarray(inst.sizes)
    return float(np.corrcoef(times, sizes)[0, 1])


class TestCorrelationStructure:
    def test_correlated_positive(self):
        assert _corr(correlated_sizes(200, 4, seed=0)) > 0.7

    def test_anticorrelated_negative(self):
        assert _corr(anticorrelated_sizes(200, 4, seed=0)) < -0.5

    def test_independent_near_zero(self):
        assert abs(_corr(independent_sizes(500, 4, seed=0))) < 0.15


class TestPlantedTwoClass:
    def test_structure(self):
        inst = planted_two_class(3, 5, m=2)
        assert inst.n == 8
        for j in range(3):
            assert inst.tasks[j].estimate == 10.0
            assert inst.tasks[j].size == 1.0
        for j in range(3, 8):
            assert inst.tasks[j].estimate == 1.0
            assert inst.tasks[j].size == 10.0

    def test_custom_magnitudes(self):
        inst = planted_two_class(
            1, 1, m=2, time_heavy=7.0, time_light=2.0, size_heavy=9.0, size_light=3.0
        )
        assert inst.tasks[0].estimate == 7.0
        assert inst.tasks[1].size == 9.0

    def test_degenerate_classes_rejected(self):
        with pytest.raises(ValueError):
            planted_two_class(2, 2, m=2, time_heavy=1.0, time_light=1.0)
        with pytest.raises(ValueError):
            planted_two_class(2, 2, m=2, size_heavy=1.0, size_light=1.0)
