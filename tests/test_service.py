"""The service core: admission, placement, dispatch, kernel equivalence."""

import math

import pytest

from repro.core.model import make_instance
from repro.obs import MemorySink, observed
from repro.registry import CapabilityError, make_strategy
from repro.service import (
    AdmissionError,
    OnlinePlacer,
    ServiceScheduler,
    TaskState,
    decode_page_token,
    encode_page_token,
)
from repro.simulation.engine import simulate
from repro.uncertainty.realization import Realization


def test_admission_places_and_dispatches_immediately():
    sched = ServiceScheduler("ls_group[k=2]", m=4, alpha=1.5, seed=1)
    record, created = sched.admit("a", 2.0)
    assert created
    assert record.state is TaskState.RUNNING
    assert record.machine in record.machines
    assert len(record.machines) == 2  # m/k replicas


def test_idempotency_duplicate_key_returns_same_decision():
    sched = ServiceScheduler("ls_group[k=2]", m=4, seed=1)
    first, created1 = sched.admit("a", 2.0, key="retry-1")
    second, created2 = sched.admit("a", 2.0, key="retry-1")
    assert created1 and not created2
    assert first is second
    assert len(sched.records) == 1
    assert sched.deduplicated == 1
    # A different key admits a fresh task even with identical parameters.
    third, created3 = sched.admit("a", 2.0, key="retry-2")
    assert created3 and third.tid == 1


def test_idempotent_replay_wins_even_while_draining():
    sched = ServiceScheduler("lpt_no_choice", m=2, seed=0)
    record, _ = sched.admit("a", 1.0, key="k")
    sched.begin_drain()
    replay, created = sched.admit("a", 1.0, key="k")
    assert replay is record and not created
    with pytest.raises(AdmissionError) as err:
        sched.admit("a", 1.0, key="fresh")
    assert err.value.code == "draining"


def test_admission_validation():
    sched = ServiceScheduler("lpt_no_restriction", m=2)
    for bad in (0.0, -1.0, float("nan"), float("inf"), "3", None, True):
        with pytest.raises(AdmissionError):
            sched.admit("a", bad)
    with pytest.raises(AdmissionError):
        sched.admit("a", 1.0, size=-2.0)


def test_capability_gate_rejects_non_batch_strategies():
    with pytest.raises(CapabilityError):
        OnlinePlacer("sabo[delta=0.5]", 4)


def test_group_count_must_divide_machines():
    with pytest.raises(ValueError):
        OnlinePlacer("ls_group[k=3]", 4)


def test_placer_structure_matches_family():
    assert OnlinePlacer("lpt_no_choice", 4).groups == ((0,), (1,), (2,), (3,))
    assert OnlinePlacer("lpt_no_restriction", 4).groups == ((0, 1, 2, 3),)
    assert OnlinePlacer("ls_group[k=2]", 4).groups == ((0, 1), (2, 3))
    assert OnlinePlacer("ls_group[k=2]", 4).replication == 2


def test_drain_completes_every_admitted_task():
    sched = ServiceScheduler("ls_group[k=2]", m=4, alpha=2.0, seed=3)
    for j in range(25):
        sched.admit(f"tenant-{j % 5}", 0.5 + 0.1 * j)
    sched.begin_drain()
    sched.drain()
    assert sched.queued == 0 and not sched.busy
    assert sched.completed == 25
    assert all(r.state is TaskState.DONE for r in sched.records)
    # The semi-clairvoyant reveal: every actual is inside the alpha-band.
    for r in sched.records:
        assert r.estimate / 2.0 - 1e-12 <= r.actual <= 2.0 * r.estimate + 1e-12


def test_batch_drain_is_bit_identical_to_offline_kernel():
    """Admitting a batch then draining IS the offline two-phase run.

    Same Phase-1 arithmetic (greedy heap over estimates), same Phase-2
    scan (FixedOrderPolicy over input order), same same-instant event
    semantics — so machines, starts, and ends match float for float.

    Only the input-order family qualifies: the LPT variants sort before
    placing offline, which an online admission path cannot do (the
    documented degradation in ``repro.service.placement``).  ``k=1`` and
    ``k=m`` cover the no-restriction and no-choice replication endpoints
    of the same structure.
    """
    estimates = [3.0, 1.0, 4.0, 1.5, 9.0, 2.6, 5.3, 5.8, 0.9, 7.9, 2.3, 8.4]
    m, alpha, seed = 4, 1.5, 11
    for spec in ("ls_group[k=1]", "ls_group[k=2]", "ls_group[k=4]"):
        sched = ServiceScheduler(spec, m=m, alpha=alpha, model="log_uniform", seed=seed)
        records = [sched.admit("batch", e)[0] for e in estimates]
        sched.drain()

        instance = make_instance(estimates, m, alpha)
        strategy = make_strategy(spec)
        placement = strategy.place(instance)
        realization = Realization(
            instance, tuple(r.actual for r in records), label="service-drawn"
        )
        trace = simulate(placement, realization, strategy.make_policy(instance, placement))

        for j, record in enumerate(records):
            run = trace.runs[j]
            assert placement.machine_sets[j] == frozenset(record.machines)
            assert run.machine == record.machine
            assert run.start == record.started_at
            assert run.end == record.finished_at
        assert trace.makespan == sched.clock


def test_same_instant_completions_reveal_before_any_dispatch():
    """The kernel's same-instant rule holds in the service event stream.

    Two machines finish at exactly t=2.0 with two tasks still queued:
    both ``service.complete`` events must precede both
    ``service.dispatch`` events at that instant.
    """
    sink = MemorySink()
    with observed(sink):
        sched = ServiceScheduler("lpt_no_choice", m=2, alpha=1.0, model="truthful")
        sched.admit("a", 2.0)  # machine 0, ends at 2.0
        sched.admit("a", 2.0)  # machine 1, ends at 2.0
        sched.admit("a", 1.0)  # queued behind both
        sched.admit("a", 1.0)  # queued behind both
        sched.drain()
    stream = [
        (e.name, e.payload["t"], e.payload["task"])
        for e in sink.events
        if e.kind == "event" and e.name in ("service.dispatch", "service.complete")
    ]
    at_two = [(name, task) for name, t, task in stream if t == 2.0]
    assert at_two == [
        ("service.complete", 0),
        ("service.complete", 1),
        ("service.dispatch", 2),
        ("service.dispatch", 3),
    ]


def test_truthful_model_and_alpha_one_are_exact():
    sched = ServiceScheduler("lpt_no_restriction", m=2, alpha=1.0)
    record, _ = sched.admit("a", 3.5)
    sched.drain()
    assert record.actual == 3.5
    assert record.finished_at == 3.5


def test_duration_draws_are_order_independent():
    a = ServiceScheduler("lpt_no_choice", m=2, alpha=2.0, seed=5)
    b = ServiceScheduler("lpt_no_choice", m=2, alpha=2.0, seed=5)
    a.admit("x", 1.0)
    a.admit("x", 2.0)
    b.admit("x", 1.0)
    b.admit("x", 2.0)
    a.drain()
    b.drain()
    assert [r.actual for r in a.records] == [r.actual for r in b.records]


def test_record_json_hides_actual_until_done():
    sched = ServiceScheduler("lpt_no_choice", m=1, alpha=1.5, seed=2)
    running, _ = sched.admit("a", 1.0)
    queued, _ = sched.admit("a", 1.0)
    assert queued.state is TaskState.QUEUED
    assert "machine" not in queued.as_dict()
    body = running.as_dict()
    assert body["state"] == "running" and "actual" not in body
    sched.drain()
    done = running.as_dict()
    assert done["state"] == "done"
    assert math.isfinite(done["actual"]) and math.isfinite(done["finished_at"])


def test_pagination_walks_every_task_exactly_once():
    sched = ServiceScheduler("ls_group[k=2]", m=4)
    for j in range(23):
        sched.admit("a", 1.0 + j)
    seen: list[int] = []
    token: str | None = None
    pages = 0
    while True:
        cursor = decode_page_token(token) if token else 0
        records, token = sched.page(cursor, limit=5)
        seen.extend(r.tid for r in records)
        pages += 1
        if token is None:
            break
    assert seen == list(range(23))
    assert pages == 5


def test_page_tokens_are_opaque_and_checked():
    assert decode_page_token(encode_page_token(17)) == 17
    for bad in ("zzz", "", "Y3Vyc29yOg==", encode_page_token(3)[:-4] + "!!!!"):
        with pytest.raises(AdmissionError) as err:
            decode_page_token(bad)
        assert err.value.code == "bad_page_token"


def test_stats_shape():
    sched = ServiceScheduler("ls_group[k=2]", m=4, alpha=1.5, seed=0)
    sched.admit("a", 1.0)
    stats = sched.stats()
    assert stats["strategy"] == "ls_group[k=2]"
    assert stats["machines"] == 4 and stats["groups"] == 2
    assert stats["admitted"] == 1 and stats["running"] == 1
    assert stats["queued"] == 0 and not stats["draining"]
