"""Unit and property tests for repro.exact.optimal."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exact.optimal import optimal_makespan
from repro.schedulers.lower_bounds import combined_lower_bound
from repro.schedulers.lpt import lpt_schedule
from tests.conftest import estimates_strategy


class TestMethodSelection:
    def test_single_machine_closed_form(self):
        r = optimal_makespan([1.0, 2.0], 1)
        assert r.value == 3.0
        assert r.method == "closed_form"
        assert r.optimal

    def test_n_le_m_closed_form(self):
        r = optimal_makespan([4.0, 2.0], 5)
        assert r.value == 4.0
        assert r.method == "closed_form"

    def test_two_machines_partition_dp(self):
        r = optimal_makespan([3.0, 3.0, 2.0, 2.0, 2.0], 2)
        assert r.value == 6.0
        assert r.method == "partition_dp"

    def test_bnb_for_general(self):
        r = optimal_makespan([3.0, 3.0, 2.0, 2.0, 2.0, 1.0], 3)
        assert r.method == "bnb"
        assert r.optimal

    def test_fallback_to_lower_bound(self):
        times = [float(j % 7 + 1) for j in range(200)]
        r = optimal_makespan(times, 5, exact_limit=10)
        assert r.method == "lower_bound"
        assert not r.optimal
        assert r.value == pytest.approx(combined_lower_bound(times, 5))

    def test_node_limit_fallback(self):
        times = [float(17 + (j * 7919) % 101) / 10 + 0.0137 * j for j in range(20)]
        r = optimal_makespan(times, 4, exact_limit=22, node_limit=10)
        assert r.method == "lower_bound"
        assert not r.optimal

    def test_milp_regime(self):
        """With milp_limit enabled, medium instances get exact optima from
        the MILP path and agree with branch-and-bound."""
        times = [float(3 + (j * 13) % 7) for j in range(26)]
        r = optimal_makespan(times, 4, exact_limit=10, milp_limit=30)
        assert r.method == "milp"
        assert r.optimal
        # Sandwich the MILP optimum between the combined lower bound and
        # LPT (agreement with B&B is covered at smaller n, where B&B's
        # node budget survives the heavy value ties of this instance).
        assert combined_lower_bound(times, 4) <= r.value * (1 + 1e-9)
        assert r.value <= lpt_schedule(times, 4).makespan * (1 + 1e-9)

    def test_milp_disabled_by_default(self):
        times = [float(3 + (j * 13) % 7) for j in range(26)]
        r = optimal_makespan(times, 4, exact_limit=10)
        assert r.method == "lower_bound"


class TestSoundness:
    @given(estimates_strategy(1, 10), st.integers(min_value=1, max_value=4))
    def test_value_between_bounds(self, times, m):
        r = optimal_makespan(times, m, exact_limit=12)
        assert combined_lower_bound(times, m) <= r.value * (1 + 1e-9)
        assert r.value <= lpt_schedule(times, m).makespan * (1 + 1e-9)

    @given(estimates_strategy(1, 10), st.integers(min_value=1, max_value=4))
    def test_exact_flag_means_methods_agree(self, times, m):
        """When two exact paths apply, they must agree."""
        r = optimal_makespan(times, m, exact_limit=12)
        if r.optimal and m == 2 and len(times) > m:
            from repro.exact.bnb import branch_and_bound

            assert r.value == pytest.approx(branch_and_bound(times, 2).makespan)
