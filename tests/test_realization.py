"""Unit and property tests for repro.uncertainty.realization."""

from __future__ import annotations

import math

import pytest
from hypothesis import given

from repro.core.model import make_instance
from repro.uncertainty.realization import (
    Realization,
    factors_realization,
    truthful_realization,
)
from tests.conftest import factor_vectors, instances


class TestConstruction:
    def test_truthful(self, small_instance):
        real = truthful_realization(small_instance)
        assert real.actuals == small_instance.estimates
        assert real.label == "truthful"

    def test_factors(self, small_instance):
        real = factors_realization(small_instance, [1.5, 1.0, 1.0, 1.0, 1.0, 1 / 1.5])
        assert math.isclose(real.actual(0), 7.5)
        assert math.isclose(real.actual(5), 1.0 / 1.5)

    def test_rejects_wrong_length(self, small_instance):
        with pytest.raises(ValueError, match="cover all"):
            Realization(small_instance, (1.0, 2.0))

    def test_rejects_band_violation_high(self, small_instance):
        actuals = list(small_instance.estimates)
        actuals[0] = actuals[0] * 1.6  # alpha is 1.5
        with pytest.raises(ValueError, match="alpha-band"):
            Realization(small_instance, tuple(actuals))

    def test_rejects_band_violation_low(self, small_instance):
        actuals = list(small_instance.estimates)
        actuals[3] = actuals[3] / 1.6
        with pytest.raises(ValueError, match="alpha-band"):
            Realization(small_instance, tuple(actuals))

    def test_rejects_non_positive_actual(self):
        inst = make_instance([1.0], 1, alpha=2.0)
        with pytest.raises(ValueError):
            Realization(inst, (0.0,))

    def test_factors_rejects_out_of_band(self, small_instance):
        with pytest.raises(ValueError):
            factors_realization(small_instance, [2.0] * 6)  # alpha = 1.5


class TestAccessors:
    def test_getitem_and_len(self, small_instance):
        real = truthful_realization(small_instance)
        assert real[0] == 5.0
        assert len(real) == 6

    def test_total_and_max(self, small_instance):
        real = truthful_realization(small_instance)
        assert real.total == 18.0
        assert real.max == 5.0

    def test_average_load(self, small_instance):
        real = truthful_realization(small_instance)
        assert real.average_load() == 9.0

    def test_factor_round_trip(self, small_instance):
        real = factors_realization(small_instance, [1.2] * 6)
        for j in range(6):
            assert math.isclose(real.factor(j), 1.2)
        assert all(math.isclose(f, 1.2) for f in real.factors())


class TestMapFactors:
    def test_identity_map(self, small_instance):
        real = truthful_realization(small_instance)
        real2 = real.map_factors(lambda j, f: f)
        assert real2.actuals == real.actuals

    def test_scaling_map(self, small_instance):
        real = truthful_realization(small_instance)
        real2 = real.map_factors(lambda j, f: 1.4, label="scaled")
        assert real2.label == "scaled"
        assert math.isclose(real2.actual(0), 7.0)

    def test_out_of_band_map_raises(self, small_instance):
        real = truthful_realization(small_instance)
        with pytest.raises(ValueError):
            real.map_factors(lambda j, f: 10.0)


class TestProperties:
    @given(instances())
    def test_truthful_always_valid(self, inst):
        real = truthful_realization(inst)
        assert real.total == pytest.approx(sum(inst.estimates))

    @given(instances(min_n=2, max_n=8).flatmap(
        lambda inst: factor_vectors(inst).map(lambda fs: (inst, fs))
    ))
    def test_admissible_factors_accepted(self, inst_and_factors):
        inst, factors = inst_and_factors
        real = factors_realization(inst, factors)
        for j in range(inst.n):
            lo, hi = inst.tasks[j].bounds(inst.alpha)
            assert lo * (1 - 1e-9) <= real.actual(j) <= hi * (1 + 1e-9)
