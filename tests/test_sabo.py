"""Tests for SABO_Δ (Theorems 5 and 6)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.ratios import run_strategy
from repro.exact.optimal import optimal_makespan
from repro.memory.model import memory_lower_bound
from repro.memory.sabo import SABO
from repro.uncertainty.stochastic import sample_realization
from repro.workloads.memory_workloads import planted_two_class
from tests.conftest import sized_instances

DELTAS = (0.5, 1.0, 2.0)


class TestPlacement:
    def test_no_replication(self, sized_instance):
        p = SABO(1.0).place(sized_instance)
        assert p.is_no_replication()

    def test_meta_records_split(self, sized_instance):
        p = SABO(1.0).place(sized_instance)
        assert sorted(p.meta["s1"] + p.meta["s2"]) == list(range(sized_instance.n))

    def test_name(self):
        assert SABO(0.5).name == "sabo[delta=0.5]"

    def test_delta_validated(self):
        with pytest.raises(ValueError):
            SABO(-1.0)


class TestTheorem5Makespan:
    @given(sized_instances(min_n=2, max_n=9, max_m=3), st.sampled_from(DELTAS), st.integers(0, 2))
    def test_makespan_within_guarantee(self, inst, delta, seed):
        strategy = SABO(delta)
        real = sample_realization(inst, "bimodal_extreme", seed)
        outcome = run_strategy(strategy, inst, real)
        opt = optimal_makespan(real.actuals, inst.m, exact_limit=12)
        if opt.optimal:
            guarantee = strategy.makespan_guarantee(inst)
            assert outcome.makespan <= guarantee * opt.value * (1 + 1e-9)

    def test_guarantee_formula(self, sized_instance):
        s = SABO(2.0)
        a2 = sized_instance.alpha**2
        rho1 = 4 / 3 - 1 / (3 * sized_instance.m)
        assert s.makespan_guarantee(sized_instance) == pytest.approx(3.0 * a2 * rho1)

    def test_explicit_rho_override(self, sized_instance):
        assert SABO(1.0).makespan_guarantee(sized_instance, rho1=1.0) == pytest.approx(
            2.0 * sized_instance.alpha**2
        )


class TestTheorem6Memory:
    @given(sized_instances(min_n=2, max_n=10, max_m=3), st.sampled_from(DELTAS))
    def test_memory_within_guarantee(self, inst, delta):
        """Memory is realization-independent; check directly on placement."""
        strategy = SABO(delta)
        placement = strategy.place(inst)
        mem_lb = memory_lower_bound(inst.sizes, inst.m)
        if mem_lb == 0.0:
            return
        guarantee = strategy.memory_guarantee(inst)
        assert placement.memory_max() <= guarantee * mem_lb * (1 + 1e-9)

    def test_guarantee_formula(self, sized_instance):
        rho2 = 4 / 3 - 1 / (3 * sized_instance.m)
        assert SABO(2.0).memory_guarantee(sized_instance) == pytest.approx(1.5 * rho2)


class TestBehaviour:
    def test_memory_improves_with_delta(self):
        """Larger Δ routes more tasks via π₂, reducing Mem_max."""
        inst = planted_two_class(6, 10, m=4)
        mems = [SABO(d).place(inst).memory_max() for d in (0.01, 1.0, 100.0)]
        assert mems[0] >= mems[-1] - 1e-9

    def test_static_phase2(self, sized_instance):
        """Pinned execution: makespan equals max actual load of the fixed
        assignment."""
        strategy = SABO(1.0)
        real = sample_realization(sized_instance, "uniform", seed=3)
        outcome = run_strategy(strategy, sized_instance, real)
        loads = [0.0] * sized_instance.m
        for j, i in enumerate(outcome.placement.fixed_assignment()):
            loads[i] += real.actual(j)
        assert outcome.makespan == pytest.approx(max(loads))
