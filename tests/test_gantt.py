"""Unit tests for repro.simulation.gantt."""

from __future__ import annotations

import pytest

from repro.simulation.gantt import render_gantt
from repro.simulation.trace import ScheduleTrace, TaskRun


def _trace():
    return ScheduleTrace(
        (
            TaskRun(0, 0, 0.0, 4.0),
            TaskRun(1, 1, 0.0, 2.0),
            TaskRun(2, 1, 2.0, 3.0),
        ),
        label="demo",
    )


class TestRenderGantt:
    def test_one_row_per_machine(self):
        out = render_gantt(_trace(), m=2)
        lines = out.splitlines()
        assert any(line.startswith("M0") for line in lines)
        assert any(line.startswith("M1") for line in lines)

    def test_makespan_in_footer(self):
        out = render_gantt(_trace(), m=2)
        assert "makespan = 4" in out
        assert "[demo]" in out

    def test_row_width_respected(self):
        out = render_gantt(_trace(), m=2, width=40)
        for line in out.splitlines():
            if line.startswith("M"):
                inner = line.split("|")[1]
                assert len(inner) == 40

    def test_task_ids_shown(self):
        out = render_gantt(_trace(), m=2, width=60, show_ids=True)
        assert "0" in out.split("\n")[1]

    def test_ids_suppressed(self):
        trace = ScheduleTrace((TaskRun(0, 0, 0.0, 1.0),))
        out = render_gantt(trace, m=1, show_ids=False)
        row = [l for l in out.splitlines() if l.startswith("M0")][0]
        assert "0" not in row.split("|")[1]

    def test_longer_task_wider_block(self):
        out = render_gantt(_trace(), m=2, width=40, show_ids=False)
        rows = [l for l in out.splitlines() if l.startswith("M")]
        filled0 = sum(c != " " for c in rows[0].split("|")[1])
        # Machine 0 is busy the whole horizon; machine 1 three quarters.
        filled1 = sum(c != " " for c in rows[1].split("|")[1])
        assert filled0 > filled1

    def test_rejects_tiny_width(self):
        with pytest.raises(ValueError):
            render_gantt(_trace(), m=2, width=5)

    def test_idle_machine_rendered_empty(self):
        trace = ScheduleTrace((TaskRun(0, 0, 0.0, 1.0),))
        out = render_gantt(trace, m=3, show_ids=False)
        m2_row = [l for l in out.splitlines() if l.startswith("M2")][0]
        assert set(m2_row.split("|")[1]) == {" "}
