"""Tests for the decomposed simulation kernel (repro.simulation.kernel).

The engine refactor split the monolithic ``simulate()`` into a fast
:class:`EventKernel` and a :class:`FaultAwareKernel`; these tests pin the
decomposition's contract: identical traces across the two kernels on
fault-free input, fast-path selection when no plan is present, byte-exact
observability parity, and schema-valid traces end to end.
"""

from __future__ import annotations

import pytest

import repro
from repro.obs import JsonlSink, MemorySink, observed
from repro.obs.validate import validate_trace
from repro.simulation import (
    EventKernel,
    FaultAwareKernel,
    SimulationObserver,
    TracerObserver,
)
from repro.simulation import engine as engine_mod


@pytest.fixture(scope="module")
def setup():
    inst = repro.uniform_instance(n=16, m=4, alpha=1.5, seed=11)
    real = repro.sample_realization(inst, "log_uniform", seed=2)
    strategy = repro.LSGroup(k=2)
    placement = strategy.place(inst)
    return inst, real, strategy, placement


def _run_kernel(kernel_cls, setup, **extra):
    inst, real, strategy, placement = setup
    kernel = kernel_cls(
        placement,
        real,
        strategy.make_policy(inst, placement),
        releases=[0.0] * inst.n,
        machine_speed=[1.0] * inst.m,
        observer=SimulationObserver(),
        **extra,
    )
    return kernel.run()


class TestKernelEquivalence:
    def test_fault_kernel_with_empty_plan_matches_fast_kernel(self, setup):
        fast = _run_kernel(EventKernel, setup)
        full = _run_kernel(FaultAwareKernel, setup, plan=repro.FaultPlan.of())
        assert fast.runs == full.runs
        assert fast.aborted == full.aborted == []

    def test_fault_kernel_with_late_crash_matches_fast_kernel(self, setup):
        # A crash scheduled after completion perturbs nothing.
        fast = _run_kernel(EventKernel, setup)
        plan = repro.FaultPlan.of(repro.CrashStop(machine=0, at=1e9))
        full = _run_kernel(FaultAwareKernel, setup, plan=plan)
        assert fast.runs == full.runs

    def test_simulate_trace_identical_with_and_without_empty_faults(self, setup):
        inst, real, strategy, placement = setup
        a = repro.simulate(placement, real, strategy.make_policy(inst, placement))
        # An empty plan is falsy, so the engine takes the fast path too.
        b = repro.simulate(
            placement,
            real,
            strategy.make_policy(inst, placement),
            faults=repro.FaultPlan.of(),
        )
        assert a.runs == b.runs


class TestKernelSelection:
    def test_fast_path_without_plan(self, setup, monkeypatch):
        chosen = []

        class SpyFast(EventKernel):
            def run(self):
                chosen.append("fast")
                return super().run()

        class SpyFull(FaultAwareKernel):
            def run(self):
                chosen.append("full")
                return super().run()

        monkeypatch.setattr(engine_mod, "EventKernel", SpyFast)
        monkeypatch.setattr(engine_mod, "FaultAwareKernel", SpyFull)
        inst, real, strategy, placement = setup
        repro.simulate(placement, real, strategy.make_policy(inst, placement))
        assert chosen == ["fast"]
        plan = repro.FaultPlan.of(repro.CrashRecover(machine=0, at=2.0, downtime=1.0))
        repro.simulate(
            placement, real, strategy.make_policy(inst, placement), faults=plan
        )
        assert chosen == ["fast", "full"]

    def test_fast_kernel_rejects_fault_events(self, setup):
        # The fast kernel has no fault handlers by construction: reaching
        # one is a kernel-selection bug, not a silent misbehavior.
        inst, real, strategy, placement = setup
        kernel = EventKernel(
            placement,
            real,
            strategy.make_policy(inst, placement),
            releases=[0.0] * inst.n,
            machine_speed=[1.0] * inst.m,
            observer=SimulationObserver(),
        )
        with pytest.raises(repro.SimulationError, match="kernel selection bug"):
            kernel._on_failure(None)


class TestObservabilityParity:
    def _events(self, setup, **simulate_kwargs):
        inst, real, strategy, placement = setup
        with observed(MemorySink()) as tracer:
            repro.simulate(
                placement,
                real,
                strategy.make_policy(inst, placement),
                **simulate_kwargs,
            )
            sink = tracer.sinks[0]
            counters = {
                name: counter.value
                for name, counter in tracer.registry.counters.items()
            }
        events = [(e.name, e.kind) for e in sink.events]
        return events, counters

    def test_event_stream_identical_across_kernel_paths(self, setup):
        fast_events, fast_counters = self._events(setup)
        full_events, full_counters = self._events(
            setup, faults=repro.FaultPlan.of(repro.CrashStop(machine=0, at=1e9))
        )
        # The late crash adds exactly its own machine_down processing.
        assert fast_counters["sim.events_processed"] + 1 == (
            full_counters["sim.events_processed"]
        )
        assert fast_counters["sim.completions"] == full_counters["sim.completions"]
        assert fast_counters["sim.dispatches"] == full_counters["sim.dispatches"]
        names = {name for name, _ in fast_events}
        assert "simulate" in names

    def test_observer_hierarchy(self):
        assert SimulationObserver.enabled is False
        assert TracerObserver.enabled is True
        SimulationObserver().count("anything")  # no-op, must not raise
        SimulationObserver().event("anything", field=1)


class TestTracedRunValidates:
    def test_fault_free_traced_run_passes_schema_validation(self, setup, tmp_path):
        inst, real, strategy, _ = setup
        path = tmp_path / "trace.jsonl"
        with observed(JsonlSink(path)):
            repro.run_strategy(strategy, inst, real)
        stats, errors = validate_trace(path)
        assert errors == []
        assert stats["spans"] > 0

    def test_faulted_traced_run_passes_schema_validation(self, setup, tmp_path):
        inst, real, strategy, placement = setup
        path = tmp_path / "trace.jsonl"
        plan = repro.FaultPlan.of(repro.CrashRecover(machine=1, at=2.0, downtime=1.0))
        with observed(JsonlSink(path)):
            repro.simulate(
                placement,
                real,
                strategy.make_policy(inst, placement),
                faults=plan,
                capabilities=repro.capabilities_of(strategy),
            )
        stats, errors = validate_trace(path)
        assert errors == []
