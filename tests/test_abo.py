"""Tests for ABO_Δ (Theorems 7 and 8)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.ratios import run_strategy
from repro.exact.optimal import optimal_makespan
from repro.memory.abo import ABO
from repro.memory.model import memory_lower_bound
from repro.memory.sabo import SABO
from repro.uncertainty.realization import truthful_realization
from repro.uncertainty.stochastic import sample_realization
from repro.workloads.memory_workloads import planted_two_class
from tests.conftest import sized_instances

DELTAS = (0.5, 1.0, 2.0)


class TestPlacement:
    def test_s1_replicated_s2_pinned(self):
        inst = planted_two_class(4, 6, m=3)
        p = ABO(1.0).place(inst)
        s1, s2 = p.meta["s1"], p.meta["s2"]
        for j in s1:
            assert p.replication_count(j) == inst.m
        for j in s2:
            assert p.replication_count(j) == 1

    def test_memory_charges_replicas(self):
        inst = planted_two_class(2, 2, m=2, size_light=1.0, size_heavy=5.0)
        p = ABO(1.0).place(inst)
        # Each replicated S1 task charges its size on both machines.
        s1 = p.meta["s1"]
        assert set(s1) == {0, 1}
        for i in range(2):
            mem = p.memory_per_machine()[i]
            assert mem >= 2 * 1.0  # both replicated tasks on each machine

    def test_name_and_validation(self):
        assert ABO(2.0).name == "abo[delta=2]"
        assert ABO(1.0, barrier=True).name == "abo[delta=1,barrier]"
        with pytest.raises(ValueError):
            ABO(0.0)


class TestPhase2Precedence:
    def test_pinned_tasks_run_before_replicated_on_their_machine(self):
        inst = planted_two_class(3, 6, m=3)
        strategy = ABO(1.0)
        p = strategy.place(inst)
        outcome = run_strategy(strategy, inst, truthful_realization(inst))
        s2 = set(p.meta["s2"])
        for machine in range(inst.m):
            tasks = outcome.trace.tasks_per_machine(inst.m)[machine]
            seen_replicated = False
            for tid in tasks:
                if tid in s2:
                    assert not seen_replicated, (
                        f"pinned task {tid} ran after a replicated task on "
                        f"machine {machine}"
                    )
                else:
                    seen_replicated = True

    def test_replicated_dispatched_by_ls(self):
        """Replicated tasks flow to machines as they free up."""
        inst = planted_two_class(4, 2, m=2)
        outcome = run_strategy(ABO(1.0), inst, truthful_realization(inst))
        outcome.trace.validate(
            ABO(1.0).place(inst), truthful_realization(inst)
        )

    def test_barrier_variant_runs(self):
        inst = planted_two_class(3, 4, m=2)
        outcome = run_strategy(ABO(1.0, barrier=True), inst, truthful_realization(inst))
        assert outcome.makespan > 0


class TestTheorem7Makespan:
    @given(sized_instances(min_n=2, max_n=9, max_m=3), st.sampled_from(DELTAS), st.integers(0, 2))
    def test_makespan_within_guarantee(self, inst, delta, seed):
        strategy = ABO(delta)
        real = sample_realization(inst, "bimodal_extreme", seed)
        outcome = run_strategy(strategy, inst, real)
        opt = optimal_makespan(real.actuals, inst.m, exact_limit=12)
        if opt.optimal:
            guarantee = strategy.makespan_guarantee(inst)
            assert outcome.makespan <= guarantee * opt.value * (1 + 1e-9)

    def test_guarantee_formula(self, sized_instance):
        m = sized_instance.m
        a2 = sized_instance.alpha**2
        rho1 = 4 / 3 - 1 / (3 * m)
        assert ABO(1.5).makespan_guarantee(sized_instance) == pytest.approx(
            2 - 1 / m + 1.5 * a2 * rho1
        )


class TestTheorem8Memory:
    @given(sized_instances(min_n=2, max_n=10, max_m=3), st.sampled_from(DELTAS))
    def test_memory_within_guarantee(self, inst, delta):
        strategy = ABO(delta)
        placement = strategy.place(inst)
        mem_lb = memory_lower_bound(inst.sizes, inst.m)
        if mem_lb == 0.0:
            return
        guarantee = strategy.memory_guarantee(inst)
        assert placement.memory_max() <= guarantee * mem_lb * (1 + 1e-9)

    def test_guarantee_formula(self, sized_instance):
        m = sized_instance.m
        rho2 = 4 / 3 - 1 / (3 * m)
        assert ABO(2.0).memory_guarantee(sized_instance) == pytest.approx(
            (1 + m / 2.0) * rho2
        )


class TestAboVsSabo:
    def test_abo_better_makespan_under_uncertainty(self):
        """On the anticorrelated regime with extreme perturbations ABO's
        replication of time-heavy tasks should beat SABO's static pinning
        (in aggregate over seeds)."""
        from repro.workloads.memory_workloads import anticorrelated_sizes

        wins = 0
        total = 6
        for seed in range(total):
            inst = anticorrelated_sizes(16, 4, alpha=2.0, seed=seed)
            real = sample_realization(inst, "bimodal_extreme", 100 + seed)
            abo = run_strategy(ABO(1.0), inst, real).makespan
            sabo = run_strategy(SABO(1.0), inst, real).makespan
            if abo <= sabo + 1e-9:
                wins += 1
        assert wins >= total // 2

    def test_abo_worse_memory(self):
        inst = planted_two_class(5, 5, m=4)
        abo_mem = ABO(1.0).place(inst).memory_max()
        sabo_mem = SABO(1.0).place(inst).memory_max()
        assert abo_mem >= sabo_mem
