"""Chaos soak harness: schedules, capacity bound, determinism, survival.

The acceptance properties this file pins:

* same config => byte-identical availability-curve CSV and the same
  decision digest (the soak determinism contract);
* one full rack down => the service keeps admitting and placing onto
  surviving replicas, availability stays at/above the replication-implied
  lower bound, and nothing is shed (degraded-mode survival).
"""

from __future__ import annotations

import json
import math

import pytest

from repro.chaos.policy import HealthState, HealthTracker
from repro.chaos.soak import (
    ChaosAction,
    ChaosSchedule,
    SoakConfig,
    capacity_bound,
    run_soak,
)
from repro.chaos.topology import FleetTopology, rack_failure_plan
from repro.service.protocol import AdmissionError, TaskState
from repro.service.scheduler import ServiceScheduler


@pytest.fixture
def topo() -> FleetTopology:
    return FleetTopology(zones=1, racks_per_zone=4, machines_per_rack=2)


class TestChaosAction:
    def test_validation(self):
        with pytest.raises(ValueError):
            ChaosAction(-1.0, (0,))
        with pytest.raises(ValueError):
            ChaosAction(0.0, ())
        with pytest.raises(ValueError):
            ChaosAction(0.0, (0,), downtime=0.0)

    def test_as_dict_maps_permanent_to_none(self):
        assert ChaosAction(1.0, (0,)).as_dict()["downtime"] is None
        assert ChaosAction(1.0, (0,), downtime=2.0).as_dict()["downtime"] == 2.0


class TestChaosSchedule:
    def test_actions_kept_sorted(self):
        schedule = ChaosSchedule(
            (ChaosAction(5.0, (1,)), ChaosAction(2.0, (0,)))
        )
        assert [a.at for a in schedule.actions] == [2.0, 5.0]

    def test_merge(self, topo):
        merged = ChaosSchedule.rack(topo, 0, at=4.0).merge(
            ChaosSchedule.rack(topo, 1, at=1.0)
        )
        assert [a.label for a in merged.actions] == ["rack-1", "rack-0"]

    def test_rack_and_zone_constructors(self, topo):
        rack = ChaosSchedule.rack(topo, 2, at=3.0, downtime=5.0)
        assert rack.actions[0].machines == topo.rack_members(2)
        zone = ChaosSchedule.zone(topo, 0, at=1.0)
        assert zone.actions[0].machines == topo.zone_members(0)
        assert math.isinf(zone.actions[0].downtime)

    def test_cascade_wraps(self, topo):
        schedule = ChaosSchedule.cascade(topo, at=1.0, lag=2.0, racks=3, first=3)
        assert [a.at for a in schedule.actions] == [1.0, 3.0, 5.0]
        assert schedule.actions[1].machines == topo.rack_members(0)  # wrapped

    def test_flap_emits_cycles(self, topo):
        schedule = ChaosSchedule.flap(topo, machines=2, period=4.0, down=1.0, cycles=2)
        assert len(schedule.actions) == 4
        assert all(a.downtime == 1.0 for a in schedule.actions)

    def test_from_plan(self, topo):
        plan = rack_failure_plan(topo, 1, at=2.0, downtime=3.0)
        schedule = ChaosSchedule.from_plan(plan, label="e7")
        assert [(a.at, a.machines) for a in schedule.actions] == [
            (2.0, (2,)),
            (2.0, (3,)),
        ]

    def test_parse_grammar(self, topo):
        assert ChaosSchedule.parse("none", topo).actions == ()
        rack = ChaosSchedule.parse("rack:at=8,downtime=10,rack=2", topo)
        assert rack.actions[0].at == 8.0
        assert rack.actions[0].machines == topo.rack_members(2)
        cascade = ChaosSchedule.parse("cascade:at=1,lag=3,racks=2", topo)
        assert [a.at for a in cascade.actions] == [1.0, 4.0]
        flap = ChaosSchedule.parse("flap:period=4,down=1,cycles=2", topo)
        assert len(flap.actions) == 2

    @pytest.mark.parametrize("spec", [
        "meteor:at=1",           # unknown kind
        "rack:lag=2",            # unknown key for kind
        "rack:at",               # malformed, no '='
        "rack:at=soon",          # non-numeric value
    ])
    def test_parse_rejects(self, spec, topo):
        with pytest.raises(ValueError):
            ChaosSchedule.parse(spec, topo)


class TestCapacityBound:
    def test_no_outages_is_perfect_parallelism(self):
        assert capacity_bound(2, ChaosSchedule(), 4.0) == pytest.approx(2.0)

    def test_one_machine_down_slows_the_front(self):
        # m=2, machine 1 down on [0, 2): rate 1 until t=2 (2 units done),
        # then rate 2 for the remaining 2 units -> T* = 3.0.
        schedule = ChaosSchedule((ChaosAction(0.0, (1,), downtime=2.0),))
        assert capacity_bound(2, schedule, 4.0) == pytest.approx(3.0)

    def test_permanent_fleet_death_is_inf(self):
        schedule = ChaosSchedule((ChaosAction(1.0, (0,)),))
        assert capacity_bound(1, schedule, 5.0) == math.inf

    def test_overlapping_outages_union(self):
        # Two overlapping windows on the same machine merge to [0, 3).
        schedule = ChaosSchedule(
            (
                ChaosAction(0.0, (0,), downtime=2.0),
                ChaosAction(1.0, (0,), downtime=2.0),
            )
        )
        assert capacity_bound(1, schedule, 1.0) == pytest.approx(4.0)

    def test_zero_work(self):
        assert capacity_bound(4, ChaosSchedule(), 0.0) == 0.0

    def test_rejects_empty_fleet(self):
        with pytest.raises(ValueError):
            capacity_bound(0, ChaosSchedule(), 1.0)


class TestSoakConfigValidation:
    def test_rejects_out_of_fleet_action(self, topo):
        schedule = ChaosSchedule((ChaosAction(1.0, (99,)),))
        with pytest.raises(ValueError):
            SoakConfig(topology=topo, schedule=schedule)

    def test_rejects_bad_model_and_rates(self, topo):
        with pytest.raises(ValueError):
            SoakConfig(topology=topo, model="psychic")
        with pytest.raises(ValueError):
            SoakConfig(topology=topo, rate=0.0)
        with pytest.raises(ValueError):
            SoakConfig(topology=topo, sample_every=0.0)


def _small_config(topo: FleetTopology, **overrides) -> SoakConfig:
    defaults = dict(
        topology=topo,
        seed=7,
        duration=8.0,
        rate=3.0,
        sample_every=1.0,
        schedule=ChaosSchedule.rack(topo, 1, at=3.0, downtime=4.0),
    )
    defaults.update(overrides)
    return SoakConfig(**defaults)


class TestRunSoakDeterminism:
    def test_same_config_same_digest_and_samples(self, topo):
        config = _small_config(topo)
        a, b = run_soak(config), run_soak(config)
        assert a.digest == b.digest
        assert a.samples == b.samples
        assert a.summary == b.summary

    def test_curve_csv_is_byte_identical(self, tmp_path, topo):
        config = _small_config(topo)
        run_soak(config).write_artifacts(tmp_path / "a")
        run_soak(config).write_artifacts(tmp_path / "b")
        assert (tmp_path / "a_curve.csv").read_bytes() == (
            tmp_path / "b_curve.csv"
        ).read_bytes()

    def test_artifacts_and_sidecars(self, tmp_path, topo):
        report = run_soak(_small_config(topo))
        paths = report.write_artifacts(tmp_path / "soak")
        curve, report_path = paths["curve"], paths["report"]
        header = open(curve, encoding="utf-8").readline().strip()
        assert header.split(",")[:2] == ["t", "availability"]
        body = json.loads(open(report_path, encoding="utf-8").read())
        assert body["decision_digest"] == report.digest
        assert body["summary"]["tasks_done"] == report.summary["tasks_done"]
        for path in (curve, report_path):
            sidecar = json.loads(
                open(path[: path.rfind(".")] + ".manifest.json", encoding="utf-8").read()
            )
            assert sidecar["kind"] == "chaos"

    def test_report_json_is_strict(self, topo):
        # Permanent outages put inf in the summary; the JSON form must
        # stay strict (null, not Infinity).
        config = _small_config(
            topo, schedule=ChaosSchedule.zone(topo, 0, at=2.0)
        )
        text = json.dumps(run_soak(config).as_dict())
        assert "Infinity" not in text
        assert "NaN" not in text


class TestDegradedModeSurvival:
    def test_rack_loss_never_degrades_these_groups(self, topo):
        # 1x4x2 with ls_group[k=2]: each group spans 2 racks, so one
        # whole rack down still leaves every group a live machine.
        config = _small_config(
            topo, schedule=ChaosSchedule.rack(topo, 1, at=2.0)
        )
        report = run_soak(config)
        summary = report.summary
        assert summary["shed"] == 0
        assert summary["min_availability"] == 1.0
        assert summary["min_availability"] >= 1.0 - 1.0 / 2  # k=2 bound
        assert summary["tasks_done"] == summary["tasks_admitted"]
        assert summary["stranded"] == 0
        assert summary["machine_failures"] == 2
        assert report.passed  # default objectives hold

    def test_chaos_arm_never_beats_control_or_bound(self, topo):
        summary = run_soak(_small_config(topo)).summary
        assert summary["inflation"] >= 1.0
        assert summary["makespan"] >= summary["capacity_bound"]

    def test_group_kill_reroutes_admissions(self):
        # 1x2x2 -> m=4, groups (0,1) and (2,3): rack 0 down kills group
        # 0, so every later admission must land in group 1.
        topo = FleetTopology(zones=1, racks_per_zone=2, machines_per_rack=2)
        config = SoakConfig(
            topology=topo,
            seed=3,
            duration=6.0,
            rate=3.0,
            schedule=ChaosSchedule.rack(topo, 0, at=2.0),
            objectives=("min_availability >= 0.5",),
        )
        report = run_soak(config)
        assert report.summary["min_availability"] == 0.5
        assert report.summary["shed"] == 0
        assert report.passed

    def test_total_outage_sheds(self):
        # Both groups fully and permanently down: every admission after
        # the outage sheds with code "degraded" and the run still drains.
        topo = FleetTopology(zones=1, racks_per_zone=2, machines_per_rack=1)
        config = SoakConfig(
            topology=topo,
            seed=1,
            duration=5.0,
            rate=3.0,
            schedule=ChaosSchedule.zone(topo, 0, at=1.0),
            objectives=("shed >= 1",),
        )
        report = run_soak(config)
        assert report.summary["shed"] >= 1
        assert report.summary["min_availability"] == 0.0
        assert report.passed


class TestSchedulerFailureSemantics:
    def test_replacement_onto_surviving_replica(self):
        sched = ServiceScheduler("ls_group[k=2]", m=4, model="truthful", seed=0)
        record, _ = sched.admit("a", 4.0)
        running_on = record.machine
        assert running_on is not None
        sched.inject_failure([running_on], at=1.0)
        sched.drain()
        assert record.state is TaskState.DONE
        assert record.restarts == 1
        assert record.machine in record.machines
        assert record.machine != running_on
        # Restarted from scratch at t=1: the 4s task lands at t=5.
        assert record.finished_at == pytest.approx(5.0)
        assert sched.replaced == 1
        assert sched.machine_failures == 1

    def test_completion_beats_failure_at_same_instant(self):
        sched = ServiceScheduler("ls_group[k=2]", m=4, model="truthful", seed=0)
        record, _ = sched.admit("a", 4.0)
        sched.inject_failure([record.machine], at=4.0)
        sched.drain()
        assert record.state is TaskState.DONE
        assert record.restarts == 0
        assert record.finished_at == pytest.approx(4.0)
        assert sched.replaced == 0
        assert sched.machine_failures == 1

    def test_forced_recovery_wins(self):
        sched = ServiceScheduler("ls_group[k=2]", m=4)
        sched.inject_failure([0], at=1.0)  # permanent
        sched.drain()
        assert 0 in sched.down
        sched.inject_recovery([0], at=3.0)
        sched.drain()
        assert 0 not in sched.down
        assert sched.machine_recoveries == 1
        assert sched.availability() == 1.0

    def test_all_groups_down_sheds_with_degraded(self):
        sched = ServiceScheduler("ls_group[k=2]", m=2)
        sched.inject_failure([0, 1], at=0.0)
        sched.drain()
        with pytest.raises(AdmissionError) as excinfo:
            sched.admit("a", 1.0)
        assert excinfo.value.code == "degraded"
        assert sched.shed == 1

    def test_health_tracker_wiring(self):
        health = HealthTracker()
        sched = ServiceScheduler(
            "ls_group[k=2]", m=4, model="truthful", seed=0, health=health
        )
        sched.admit("a", 2.0)
        sched.inject_failure([0], at=1.0, downtime=2.0)
        sched.drain()
        # Default policy: one failure suspects the machine.
        assert health.state(0) is HealthState.SUSPECT
        assert any(t.new is HealthState.SUSPECT for t in health.transitions)
