"""Tests for SelectiveReplication and BudgetedReplication (future-work model)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.ratios import measured_ratio, run_strategy
from repro.core.strategies import BudgetedReplication, SelectiveReplication
from repro.core.strategies.lpt_no_choice import LPTNoChoice
from repro.core.model import make_instance
from repro.uncertainty.stochastic import sample_realization
from repro.workloads.generators import uniform_instance
from tests.conftest import instances


class TestSelectiveEndpoints:
    def test_fraction_zero_is_no_replication(self, small_instance):
        p = SelectiveReplication(0.0).place(small_instance)
        assert p.is_no_replication()
        # And the pinned layout matches LPT-No Choice's.
        base = LPTNoChoice().place(small_instance)
        assert p.fixed_assignment() == base.fixed_assignment()

    def test_fraction_one_is_full_replication(self, small_instance):
        p = SelectiveReplication(1.0).place(small_instance)
        assert p.is_full_replication()

    def test_intermediate_replicates_largest(self, small_instance):
        # estimates 5,4,3,3,2,1 -> top 1/3 by count = tasks 0,1.
        p = SelectiveReplication(1 / 3).place(small_instance)
        assert p.replication_count(0) == small_instance.m
        assert p.replication_count(1) == small_instance.m
        for j in (2, 3, 4, 5):
            assert p.replication_count(j) == 1

    def test_by_work_selects_until_coverage(self, small_instance):
        # Total work 18; fraction 0.5 -> cover >= 9: tasks 0 (5) + 1 (4).
        p = SelectiveReplication(0.5, by_work=True).place(small_instance)
        assert set(p.meta["critical"]) == {0, 1}

    def test_fraction_validated(self):
        with pytest.raises(ValueError):
            SelectiveReplication(1.5)

    def test_name_round_trip(self):
        from repro.core.strategies import make_strategy

        s = SelectiveReplication(0.25)
        assert make_strategy(s.name).name == s.name
        s2 = SelectiveReplication(0.25, by_work=True)
        assert make_strategy(s2.name).name == s2.name


class TestSelectiveBehaviour:
    @given(instances(min_n=2, max_n=10, max_m=4), st.sampled_from((0.0, 0.3, 0.7, 1.0)))
    def test_always_feasible(self, inst, fraction):
        real = sample_realization(inst, "bimodal_extreme", 1)
        outcome = run_strategy(SelectiveReplication(fraction), inst, real)
        outcome.trace.validate(outcome.placement, real)

    def test_total_replicas_monotone_in_fraction(self):
        inst = uniform_instance(20, 4, alpha=2.0, seed=0)
        counts = [
            SelectiveReplication(f).place(inst).total_replicas()
            for f in (0.0, 0.25, 0.5, 0.75, 1.0)
        ]
        assert counts == sorted(counts)
        assert counts[0] == 20 and counts[-1] == 80

    def test_helps_under_extreme_uncertainty(self):
        """Replicating half the work should beat pinning on average under
        extreme realizations."""
        wins = 0
        for seed in range(6):
            inst = uniform_instance(24, 4, alpha=2.0, seed=seed)
            real = sample_realization(inst, "bimodal_extreme", 100 + seed)
            sel = run_strategy(SelectiveReplication(0.5, by_work=True), inst, real)
            pin = run_strategy(LPTNoChoice(), inst, real)
            if sel.makespan <= pin.makespan + 1e-9:
                wins += 1
        assert wins >= 4


class TestBudgeted:
    def test_minimum_budget_is_lpt_no_choice(self, small_instance):
        p = BudgetedReplication(small_instance.n).place(small_instance)
        assert p.is_no_replication()
        assert p.total_replicas() == small_instance.n

    def test_full_budget_is_everywhere(self, small_instance):
        n, m = small_instance.n, small_instance.m
        p = BudgetedReplication(n * m).place(small_instance)
        assert p.is_full_replication()

    def test_budget_respected_exactly(self):
        inst = uniform_instance(10, 4, alpha=1.5, seed=1)
        for budget in (10, 14, 23, 40):
            p = BudgetedReplication(budget).place(inst)
            assert p.total_replicas() == budget

    def test_excess_budget_clamped(self, small_instance):
        p = BudgetedReplication(10_000).place(small_instance)
        assert p.total_replicas() == small_instance.n * small_instance.m

    def test_budget_below_n_rejected(self, small_instance):
        with pytest.raises(ValueError, match="one replica per task"):
            BudgetedReplication(2).place(small_instance)

    def test_extra_replicas_favor_largest(self):
        inst = make_instance([9.0, 1.0, 1.0, 1.0], m=2, alpha=1.5)
        p = BudgetedReplication(5).place(inst)  # one extra replica
        assert p.replication_count(0) == 2
        for j in (1, 2, 3):
            assert p.replication_count(j) == 1

    @given(instances(min_n=2, max_n=10, max_m=4), st.integers(0, 3))
    def test_feasible_and_within_trivial_bounds(self, inst, seed):
        budget = inst.n + (inst.n * (inst.m - 1)) // 2
        real = sample_realization(inst, "log_uniform", seed)
        rec = measured_ratio(BudgetedReplication(budget), inst, real, exact_limit=12)
        rec.outcome.trace.validate(rec.outcome.placement, real)
        assert rec.ratio >= 1.0 - 1e-9 or not rec.optimum.optimal

    def test_more_budget_no_worse_on_average(self):
        """Aggregate sanity: quadrupling the budget should not hurt the mean
        makespan under extreme realizations."""
        totals = {10: 0.0, 40: 0.0}
        for seed in range(6):
            inst = uniform_instance(10, 4, alpha=2.0, seed=seed)
            real = sample_realization(inst, "bimodal_extreme", 300 + seed)
            for budget in totals:
                totals[budget] += run_strategy(
                    BudgetedReplication(budget), inst, real
                ).makespan
        assert totals[40] <= totals[10] * (1 + 1e-9)
