"""Unit tests for repro.simulation.events."""

from __future__ import annotations

import pytest

from repro.simulation.events import Event, EventKind, EventQueue


class TestOrdering:
    def test_time_order(self):
        q = EventQueue()
        q.push(2.0, EventKind.MACHINE_IDLE, "b")
        q.push(1.0, EventKind.MACHINE_IDLE, "a")
        assert q.pop().payload == "a"
        assert q.pop().payload == "b"

    def test_kind_priority_at_same_time(self):
        """Completions are processed before idle polls at the same instant —
        the semi-clairvoyant reveal ordering."""
        q = EventQueue()
        q.push(1.0, EventKind.MACHINE_IDLE, "idle")
        q.push(1.0, EventKind.TASK_COMPLETION, "done")
        q.push(1.0, EventKind.TASK_RELEASE, "release")
        assert q.pop().payload == "release"
        assert q.pop().payload == "done"
        assert q.pop().payload == "idle"

    def test_fifo_within_same_time_and_kind(self):
        q = EventQueue()
        q.push(1.0, EventKind.MACHINE_IDLE, "first")
        q.push(1.0, EventKind.MACHINE_IDLE, "second")
        assert q.pop().payload == "first"
        assert q.pop().payload == "second"


class TestQueueBasics:
    def test_len_and_bool(self):
        q = EventQueue()
        assert not q
        assert len(q) == 0
        q.push(0.0, EventKind.MACHINE_IDLE)
        assert q
        assert len(q) == 1

    def test_peek_does_not_remove(self):
        q = EventQueue()
        q.push(3.0, EventKind.MACHINE_IDLE, "x")
        assert q.peek().payload == "x"
        assert len(q) == 1

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            EventQueue().pop()

    def test_peek_empty_raises(self):
        with pytest.raises(IndexError):
            EventQueue().peek()

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().push(-1.0, EventKind.MACHINE_IDLE)

    def test_push_returns_event(self):
        ev = EventQueue().push(1.5, EventKind.TASK_COMPLETION, (1, 2))
        assert isinstance(ev, Event)
        assert ev.time == 1.5
        assert ev.payload == (1, 2)


class TestEventKindValues:
    def test_release_before_completion_before_idle(self):
        assert EventKind.TASK_RELEASE < EventKind.TASK_COMPLETION < EventKind.MACHINE_IDLE
