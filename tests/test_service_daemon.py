"""End-to-end daemon tests: real sockets, real HTTP, one event loop."""

import asyncio

import pytest

from repro.obs import MemorySink, observed, validate_exposition
from repro.service.client import ServiceClient, ServiceError
from repro.service.daemon import ServiceDaemon
from repro.service.scheduler import ServiceScheduler


def run(coro):
    return asyncio.run(coro)


async def _with_daemon(test, **scheduler_kw):
    """Start a loopback daemon, run ``test(client, daemon)``, tear down."""
    scheduler = ServiceScheduler(
        scheduler_kw.pop("strategy", "ls_group[k=2]"),
        m=scheduler_kw.pop("m", 4),
        **scheduler_kw,
    )
    daemon = ServiceDaemon(scheduler, port=0)
    server = asyncio.create_task(daemon.serve())
    await daemon.started.wait()
    try:
        async with ServiceClient(port=daemon.port) as client:
            await test(client, daemon)
    finally:
        daemon.stop()
        await server


def test_admit_and_fetch_lifecycle():
    async def scenario(client, daemon):
        body = await client.submit("tenant-a", 2.5, key="a-0")
        assert body["created"] is True
        assert body["state"] in ("queued", "running")
        assert len(body["machines"]) == 2
        fetched = await client.get_task(body["task_id"])
        assert fetched["tenant"] == "tenant-a"
        await client.drain()
        done = await client.get_task(body["task_id"])
        assert done["state"] == "done" and "actual" in done

    run(_with_daemon(scenario, seed=4))


def test_idempotency_key_over_http():
    async def scenario(client, daemon):
        first = await client.submit("t", 1.5, key="dup")
        replay = await client.submit("t", 1.5, key="dup")
        assert first["created"] and not replay["created"]
        assert replay["task_id"] == first["task_id"]
        status = await client.status()
        assert status["admitted"] == 1 and status["deduplicated"] == 1

    run(_with_daemon(scenario))


def test_http_error_codes():
    async def scenario(client, daemon):
        with pytest.raises(ServiceError) as err:
            await client.submit("t", -3.0)
        assert err.value.status == 400 and err.value.code == "bad_estimate"
        status, body = await client.request("POST", "/v1/tasks", {"estimate": 1, "bogus": 2})
        assert status == 400 and body["error"]["code"] == "unknown_field"
        status, _ = await client.request("GET", "/v1/tasks/999")
        assert status == 404
        status, _ = await client.request("GET", "/nowhere")
        assert status == 404
        status, _ = await client.request("DELETE", "/v1/tasks")
        assert status == 405
        status, body = await client.request("GET", "/v1/tasks?page_token=garbage")
        assert status == 400 and body["error"]["code"] == "bad_page_token"

    run(_with_daemon(scenario))


def test_pagination_over_http():
    async def scenario(client, daemon):
        for j in range(12):
            await client.submit("t", 1.0 + j)
        seen = []
        token = None
        while True:
            page = await client.list_tasks(page_token=token, limit=5)
            seen.extend(t["task_id"] for t in page["tasks"])
            token = page.get("next_page_token")
            if token is None:
                break
        assert seen == list(range(12))

    run(_with_daemon(scenario))


def test_drain_rejects_new_admissions_and_empties_queue():
    async def scenario(client, daemon):
        for j in range(9):
            await client.submit("t", 0.5 + 0.1 * j)
        stats = await client.drain()
        assert stats["draining"] is True
        assert stats["queued"] == 0 and stats["running"] == 0
        assert stats["done"] == stats["admitted"] == 9
        with pytest.raises(ServiceError) as err:
            await client.submit("t", 1.0)
        assert err.value.status == 503 and err.value.code == "draining"

    run(_with_daemon(scenario))


def test_shutdown_stops_the_server_after_draining():
    async def scenario():
        scheduler = ServiceScheduler("ls_group[k=2]", m=4, seed=1)
        daemon = ServiceDaemon(scheduler, port=0)
        server = asyncio.create_task(daemon.serve())
        await daemon.started.wait()
        async with ServiceClient(port=daemon.port) as client:
            for j in range(5):
                await client.submit("t", 1.0)
            stats = await client.shutdown()
            assert stats["done"] == 5
        await asyncio.wait_for(server, timeout=5)
        assert scheduler.draining

    run(scenario())


def test_metrics_and_slo_endpoints_live():
    async def scenario():
        with observed(MemorySink()):
            scheduler = ServiceScheduler("ls_group[k=2]", m=4, seed=2)
            daemon = ServiceDaemon(scheduler, port=0)
            server = asyncio.create_task(daemon.serve())
            await daemon.started.wait()
            try:
                async with ServiceClient(port=daemon.port) as client:
                    for j in range(6):
                        await client.submit("t", 1.0 + j)
                    await client.drain()
                    text = await client.metrics()
                    families, errors = validate_exposition(text)
                    assert not errors
                    assert "repro_service_admissions" in families
                    report = await client.slo(["count(service.admissions) >= 6"])
                    assert report["passed"] is True
                    failing = await client.slo(["count(service.admissions) >= 999"])
                    assert failing["passed"] is False
                    status, body = await client.request("GET", "/v1/slo?objective=nonsense(((")
                    assert status == 400 and body["error"]["code"] == "bad_objective"
            finally:
                daemon.stop()
                await server

    run(scenario())


def test_unix_socket_transport():
    async def scenario(tmp_path):
        scheduler = ServiceScheduler("lpt_no_choice", m=2, seed=0)
        socket_path = str(tmp_path / "svc.sock")
        daemon = ServiceDaemon(scheduler, port=None, socket_path=socket_path)
        server = asyncio.create_task(daemon.serve())
        await daemon.started.wait()
        try:
            async with ServiceClient(socket_path=socket_path) as client:
                body = await client.submit("t", 1.0)
                assert body["created"]
                queue = await client.queue()
                assert queue["running"] + queue["queued"] + queue["done"] == 1
        finally:
            daemon.stop()
            await server

    import tempfile
    from pathlib import Path

    with tempfile.TemporaryDirectory() as tmp:
        run(scenario(Path(tmp)))


def test_queue_endpoint_reports_group_loads():
    async def scenario(client, daemon):
        await client.submit("t", 4.0)
        await client.submit("t", 1.0)
        queue = await client.queue()
        assert len(queue["group_loads"]) == 2
        assert sorted(queue["group_loads"]) == [1.0, 4.0]

    run(_with_daemon(scenario))
