"""End-to-end daemon tests: real sockets, real HTTP, one event loop."""

import asyncio

import pytest

from repro.obs import MemorySink, observed, validate_exposition
from repro.service.client import ServiceClient, ServiceError
from repro.service.daemon import ServiceDaemon
from repro.service.scheduler import ServiceScheduler


def run(coro):
    return asyncio.run(coro)


async def _with_daemon(test, **scheduler_kw):
    """Start a loopback daemon, run ``test(client, daemon)``, tear down."""
    scheduler = ServiceScheduler(
        scheduler_kw.pop("strategy", "ls_group[k=2]"),
        m=scheduler_kw.pop("m", 4),
        **scheduler_kw,
    )
    daemon = ServiceDaemon(scheduler, port=0)
    server = asyncio.create_task(daemon.serve())
    await daemon.started.wait()
    try:
        async with ServiceClient(port=daemon.port) as client:
            await test(client, daemon)
    finally:
        daemon.stop()
        await server


def test_admit_and_fetch_lifecycle():
    async def scenario(client, daemon):
        body = await client.submit("tenant-a", 2.5, key="a-0")
        assert body["created"] is True
        assert body["state"] in ("queued", "running")
        assert len(body["machines"]) == 2
        fetched = await client.get_task(body["task_id"])
        assert fetched["tenant"] == "tenant-a"
        await client.drain()
        done = await client.get_task(body["task_id"])
        assert done["state"] == "done" and "actual" in done

    run(_with_daemon(scenario, seed=4))


def test_idempotency_key_over_http():
    async def scenario(client, daemon):
        first = await client.submit("t", 1.5, key="dup")
        replay = await client.submit("t", 1.5, key="dup")
        assert first["created"] and not replay["created"]
        assert replay["task_id"] == first["task_id"]
        status = await client.status()
        assert status["admitted"] == 1 and status["deduplicated"] == 1

    run(_with_daemon(scenario))


def test_http_error_codes():
    async def scenario(client, daemon):
        with pytest.raises(ServiceError) as err:
            await client.submit("t", -3.0)
        assert err.value.status == 400 and err.value.code == "bad_estimate"
        status, body = await client.request("POST", "/v1/tasks", {"estimate": 1, "bogus": 2})
        assert status == 400 and body["error"]["code"] == "unknown_field"
        status, _ = await client.request("GET", "/v1/tasks/999")
        assert status == 404
        status, _ = await client.request("GET", "/nowhere")
        assert status == 404
        status, _ = await client.request("DELETE", "/v1/tasks")
        assert status == 405
        status, body = await client.request("GET", "/v1/tasks?page_token=garbage")
        assert status == 400 and body["error"]["code"] == "bad_page_token"

    run(_with_daemon(scenario))


def test_pagination_over_http():
    async def scenario(client, daemon):
        for j in range(12):
            await client.submit("t", 1.0 + j)
        seen = []
        token = None
        while True:
            page = await client.list_tasks(page_token=token, limit=5)
            seen.extend(t["task_id"] for t in page["tasks"])
            token = page.get("next_page_token")
            if token is None:
                break
        assert seen == list(range(12))

    run(_with_daemon(scenario))


def test_drain_rejects_new_admissions_and_empties_queue():
    async def scenario(client, daemon):
        for j in range(9):
            await client.submit("t", 0.5 + 0.1 * j)
        stats = await client.drain()
        assert stats["draining"] is True
        assert stats["queued"] == 0 and stats["running"] == 0
        assert stats["done"] == stats["admitted"] == 9
        with pytest.raises(ServiceError) as err:
            await client.submit("t", 1.0)
        assert err.value.status == 503 and err.value.code == "draining"

    run(_with_daemon(scenario))


def test_shutdown_stops_the_server_after_draining():
    async def scenario():
        scheduler = ServiceScheduler("ls_group[k=2]", m=4, seed=1)
        daemon = ServiceDaemon(scheduler, port=0)
        server = asyncio.create_task(daemon.serve())
        await daemon.started.wait()
        async with ServiceClient(port=daemon.port) as client:
            for j in range(5):
                await client.submit("t", 1.0)
            stats = await client.shutdown()
            assert stats["done"] == 5
        await asyncio.wait_for(server, timeout=5)
        assert scheduler.draining

    run(scenario())


def test_metrics_and_slo_endpoints_live():
    async def scenario():
        with observed(MemorySink()):
            scheduler = ServiceScheduler("ls_group[k=2]", m=4, seed=2)
            daemon = ServiceDaemon(scheduler, port=0)
            server = asyncio.create_task(daemon.serve())
            await daemon.started.wait()
            try:
                async with ServiceClient(port=daemon.port) as client:
                    for j in range(6):
                        await client.submit("t", 1.0 + j)
                    await client.drain()
                    text = await client.metrics()
                    families, errors = validate_exposition(text)
                    assert not errors
                    assert "repro_service_admissions" in families
                    report = await client.slo(["count(service.admissions) >= 6"])
                    assert report["passed"] is True
                    failing = await client.slo(["count(service.admissions) >= 999"])
                    assert failing["passed"] is False
                    status, body = await client.request("GET", "/v1/slo?objective=nonsense(((")
                    assert status == 400 and body["error"]["code"] == "bad_objective"
            finally:
                daemon.stop()
                await server

    run(scenario())


def test_unix_socket_transport():
    async def scenario(tmp_path):
        scheduler = ServiceScheduler("lpt_no_choice", m=2, seed=0)
        socket_path = str(tmp_path / "svc.sock")
        daemon = ServiceDaemon(scheduler, port=None, socket_path=socket_path)
        server = asyncio.create_task(daemon.serve())
        await daemon.started.wait()
        try:
            async with ServiceClient(socket_path=socket_path) as client:
                body = await client.submit("t", 1.0)
                assert body["created"]
                queue = await client.queue()
                assert queue["running"] + queue["queued"] + queue["done"] == 1
        finally:
            daemon.stop()
            await server

    import tempfile
    from pathlib import Path

    with tempfile.TemporaryDirectory() as tmp:
        run(scenario(Path(tmp)))


def test_queue_endpoint_reports_group_loads():
    async def scenario(client, daemon):
        await client.submit("t", 4.0)
        await client.submit("t", 1.0)
        queue = await client.queue()
        assert len(queue["group_loads"]) == 2
        assert sorted(queue["group_loads"]) == [1.0, 4.0]

    run(_with_daemon(scenario))


async def _await_down(client, machines, attempts=200):
    """Poll /v1/health until ``machines`` are all down (eager pump races)."""
    for _ in range(attempts):
        health = await client.health()
        if set(machines) <= set(health["down"]):
            return health
        await asyncio.sleep(0.01)
    raise AssertionError(f"machines {machines} never went down: {health['down']}")


def test_health_endpoint_snapshot():
    async def scenario(client, daemon):
        health = await client.health()
        assert health["machines"] == 4 and health["groups"] == 2
        assert health["availability"] == 1.0
        assert health["down"] == [] and health["degraded_groups"] == []
        assert health["admitted"] == health["done"] == 0
        # No tracker, breaker, or bulkhead configured -> keys absent.
        assert "policy" not in health
        assert "breaker" not in health
        assert "bulkhead" not in health

    run(_with_daemon(scenario))


def test_chaos_endpoint_round_trip():
    from repro.chaos.policy import HealthTracker

    async def scenario(client, daemon):
        body = await client.chaos(fail=[0, 1])  # kill group 0 permanently
        assert body["failed"] == [0, 1]
        health = await _await_down(client, [0, 1])
        assert health["availability"] == 0.5
        assert health["degraded_groups"] == [0]
        assert health["machine_failures"] == 2
        assert health["policy"]["counts"]["suspect"] == 2
        # Admissions survive on the other group's replicas.
        admitted = await client.submit("t", 1.0)
        assert admitted["group"] == 1
        assert set(admitted["machines"]) == {2, 3}
        recovered = await client.chaos(recover=[0, 1])
        assert recovered["recovered"] == [0, 1]
        for _ in range(200):
            health = await client.health()
            if not health["down"]:
                break
            await asyncio.sleep(0.01)
        assert health["availability"] == 1.0
        assert health["machine_recoveries"] == 2

    run(_with_daemon(scenario, health=HealthTracker()))


def test_chaos_endpoint_validation():
    async def scenario(client, daemon):
        for payload in (
            {},
            {"fail": []},
            {"fail": [0], "bogus": 1},
            {"fail": [True]},
            {"fail": [0], "downtime": "soon"},
            {"fail": [99]},
        ):
            status, body = await client.request("POST", "/v1/chaos", payload)
            assert status == 400, payload
            assert body["error"]["code"] == "bad_chaos"

    run(_with_daemon(scenario))


def test_degraded_admission_returns_503():
    async def scenario(client, daemon):
        # m=2 with k=2: one machine per group, so failing both machines
        # leaves no group to admit into.
        await client.chaos(fail=[0, 1])
        await _await_down(client, [0, 1])
        with pytest.raises(ServiceError) as err:
            await client.submit("t", 1.0)
        assert err.value.status == 503 and err.value.code == "degraded"

    run(_with_daemon(scenario, m=2))


def test_bulkhead_and_breaker_shed_admissions():
    from repro.chaos.policy import Bulkhead, CircuitBreaker

    async def scenario():
        # pace tiny -> virtual completions take ages of wall time, so
        # admitted tasks stay in flight for the whole test.
        scheduler = ServiceScheduler("ls_group[k=2]", m=4, seed=0)
        daemon = ServiceDaemon(
            scheduler,
            port=0,
            pace=1e-6,
            bulkhead=Bulkhead(capacity=2),
            breaker=CircuitBreaker(failure_threshold=2, cooldown=600.0),
        )
        server = asyncio.create_task(daemon.serve())
        await daemon.started.wait()
        try:
            async with ServiceClient(port=daemon.port) as client:
                await client.submit("t", 1.0)
                await client.submit("t", 1.0)
                for expected in ("overloaded", "overloaded", "breaker_open"):
                    with pytest.raises(ServiceError) as err:
                        await client.submit("t", 1.0)
                    assert err.value.status == 503
                    assert err.value.code == expected
                health = await client.health()
                assert health["bulkhead"]["rejected"] == 2
                assert health["breaker"]["state"] == "open"
                assert health["breaker"]["opened"] == 1
        finally:
            daemon.stop()
            await server

    run(scenario())
