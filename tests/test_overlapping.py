"""Tests for OverlappingWindows (generalized group replication)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.ratios import run_strategy
from repro.core.strategies import LSGroup, OverlappingWindows, window_machines
from repro.uncertainty.stochastic import sample_realization
from repro.workloads.generators import uniform_instance
from tests.conftest import instances


class TestWindowMachines:
    def test_disjoint_when_overlap_one(self):
        windows = window_machines(6, 3, 1)
        assert windows == [frozenset({0, 1}), frozenset({2, 3}), frozenset({4, 5})]

    def test_overlap_two_wraps(self):
        windows = window_machines(6, 3, 2)
        assert windows[0] == frozenset({0, 1, 2, 3})
        assert windows[2] == frozenset({4, 5, 0, 1})

    def test_every_machine_covered_overlap_times(self):
        for k, overlap in ((2, 2), (5, 2), (5, 3)):
            m = 10
            windows = window_machines(m, k, overlap)
            counts = [sum(1 for w in windows if i in w) for i in range(m)]
            # Each machine appears in exactly `overlap` of the k windows.
            assert all(c == overlap for c in counts)

    def test_overlap_above_k_rejected(self):
        with pytest.raises(ValueError, match="overlap must be <= k"):
            window_machines(6, 2, 3)

    def test_non_divisor_rejected(self):
        with pytest.raises(ValueError):
            window_machines(6, 4, 1)


class TestStrategy:
    def test_replication_is_overlap_times_stride(self):
        inst = uniform_instance(20, 6, alpha=1.5, seed=0)
        p = OverlappingWindows(3, overlap=2).place(inst)
        assert p.max_replication() == 4  # 2 * (6/3)

    def test_overlap_one_equals_ls_group_placement(self):
        inst = uniform_instance(20, 6, alpha=1.5, seed=1)
        p_overlap = OverlappingWindows(3, overlap=1).place(inst)
        p_group = LSGroup(3).place(inst)
        assert p_overlap.machine_sets == p_group.machine_sets

    @given(instances(min_n=2, max_n=12, max_m=4), st.integers(0, 2))
    def test_feasible(self, inst, seed):
        for k in range(1, inst.m + 1):
            if inst.m % k:
                continue
            overlap = min(2, k)
            real = sample_realization(inst, "bimodal_extreme", seed)
            outcome = run_strategy(OverlappingWindows(k, overlap), inst, real)
            outcome.trace.validate(outcome.placement, real)

    def test_overlap_no_worse_than_disjoint_on_average(self):
        """The empirical question the paper raises: shared machines let load
        flow between windows, so at equal k the overlapping variant should
        not lose on average (it has strictly more runtime freedom)."""
        totals = {"disjoint": 0.0, "overlap": 0.0}
        for seed in range(6):
            inst = uniform_instance(36, 6, alpha=2.0, seed=seed)
            real = sample_realization(inst, "bimodal_extreme", 700 + seed)
            totals["disjoint"] += run_strategy(LSGroup(3), inst, real).makespan
            totals["overlap"] += run_strategy(
                OverlappingWindows(3, overlap=2), inst, real
            ).makespan
        assert totals["overlap"] <= totals["disjoint"] * 1.02

    def test_registry_round_trip(self):
        from repro.core.strategies import make_strategy

        s = OverlappingWindows(3, overlap=2)
        assert make_strategy(s.name).name == s.name
