"""Unit tests for repro.analysis.ratios."""

from __future__ import annotations

import pytest

from repro.analysis.ratios import measured_ratio, run_strategy
from repro.core.strategies import LPTNoChoice, LPTNoRestriction
from repro.core.model import make_instance
from repro.uncertainty.realization import factors_realization, truthful_realization


@pytest.fixture
def inst():
    return make_instance([3.0, 3.0, 2.0, 2.0, 2.0], m=2, alpha=1.5)


class TestRunStrategy:
    def test_outcome_fields(self, inst):
        out = run_strategy(LPTNoChoice(), inst, truthful_realization(inst))
        assert out.strategy_name == "lpt_no_choice"
        assert out.replication == 1
        assert out.makespan == pytest.approx(7.0)  # LPT on this instance
        assert out.trace.label == "lpt_no_choice/truthful"

    def test_memory_metric(self):
        inst = make_instance([2.0, 1.0], m=2, sizes=[3.0, 4.0], alpha=1.2)
        out = run_strategy(LPTNoRestriction(), inst, truthful_realization(inst))
        assert out.memory_max == pytest.approx(7.0)  # everything everywhere

    def test_validation_runs_by_default(self, inst):
        # If validation were skipped a broken policy would pass silently;
        # spot-check by ensuring a valid run does not raise.
        run_strategy(LPTNoRestriction(), inst, truthful_realization(inst), validate=True)


class TestMeasuredRatio:
    def test_exact_ratio(self, inst):
        rec = measured_ratio(LPTNoChoice(), inst, truthful_realization(inst))
        assert rec.optimum.optimal
        assert rec.optimum.value == pytest.approx(6.0)
        assert rec.ratio == pytest.approx(7.0 / 6.0)

    def test_guarantee_attached(self, inst):
        rec = measured_ratio(LPTNoChoice(), inst, truthful_realization(inst))
        assert rec.guarantee is not None
        assert rec.within_guarantee is True

    def test_within_guarantee_none_when_lb_denominator(self):
        big = make_instance([1.0 + 0.01 * j for j in range(60)], m=3, alpha=1.5)
        rec = measured_ratio(
            LPTNoChoice(), big, truthful_realization(big), exact_limit=5
        )
        assert not rec.optimum.optimal
        # Ratio happens to be within the guarantee here, so True; the None
        # case needs a violation which a valid strategy cannot produce
        # against its own guarantee... construct one artificially:
        from repro.analysis.ratios import RatioRecord

        fake = RatioRecord(rec.outcome, rec.optimum, ratio=99.0, guarantee=2.0)
        assert fake.within_guarantee is None

    def test_within_guarantee_false_requires_exact(self, inst):
        from repro.analysis.ratios import RatioRecord

        rec = measured_ratio(LPTNoChoice(), inst, truthful_realization(inst))
        fake = RatioRecord(rec.outcome, rec.optimum, ratio=99.0, guarantee=2.0)
        assert fake.within_guarantee is False

    def test_ratio_at_least_one_for_exact(self, inst):
        real = factors_realization(inst, [1.5, 1 / 1.5, 1.0, 1.0, 1.0])
        rec = measured_ratio(LPTNoRestriction(), inst, real)
        assert rec.ratio >= 1.0 - 1e-9
