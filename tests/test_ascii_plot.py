"""Unit tests for repro.analysis.ascii_plot."""

from __future__ import annotations

import pytest

from repro.analysis.ascii_plot import Series, render_plot


class TestSeries:
    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="lengths differ"):
            Series([1, 2], [1], label="x")

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            Series([], [], label="x")


class TestRenderPlot:
    def test_basic_render(self):
        out = render_plot(
            [Series([1, 2, 3], [1.0, 2.0, 3.0], label="up", glyph="o")],
            title="T",
            x_label="reps",
            y_label="ratio",
        )
        assert out.splitlines()[0] == "T"
        assert "o" in out
        assert "o=up" in out
        assert "reps" in out and "ratio" in out

    def test_monotone_series_renders_monotone(self):
        out = render_plot(
            [Series([1, 2, 3, 4], [1.0, 2.0, 3.0, 4.0], glyph="x")],
            width=40,
            height=10,
        )
        rows_with_x = [
            (r, line.index("x"))
            for r, line in enumerate(out.splitlines())
            if "x" in line
        ]
        # Higher y values sit on earlier rows, at later columns.
        rows = [r for r, _ in rows_with_x]
        cols = [c for _, c in rows_with_x]
        assert rows == sorted(rows)
        assert cols == sorted(cols, reverse=True) or cols == sorted(cols)

    def test_axis_labels_numeric(self):
        out = render_plot([Series([0, 10], [5.0, 6.0])])
        assert "0" in out and "10" in out

    def test_log_x(self):
        out = render_plot([Series([1, 10, 100], [1.0, 2.0, 3.0], glyph="#")], x_log=True)
        assert "(log x)" in out
        cols = [line.index("#") for line in out.splitlines() if "#" in line]
        # Log spacing: the three points are equally spaced columns.
        gaps = [b - a for a, b in zip(sorted(cols), sorted(cols)[1:])]
        assert abs(gaps[0] - gaps[1]) <= 2

    def test_log_x_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            render_plot([Series([0, 1], [1.0, 2.0])], x_log=True)

    def test_overlap_marker(self):
        out = render_plot(
            [
                Series([1], [1.0], glyph="a", label="A"),
                Series([1], [1.0], glyph="b", label="B"),
            ]
        )
        assert "?" in out

    def test_too_small_grid_rejected(self):
        with pytest.raises(ValueError):
            render_plot([Series([1], [1.0])], width=5, height=5)

    def test_nothing_to_plot_rejected(self):
        with pytest.raises(ValueError):
            render_plot([])

    def test_constant_series(self):
        out = render_plot([Series([1, 2], [5.0, 5.0], glyph="c")])
        assert "c" in out
