"""Tests for arrival-trace workloads and their end-to-end simulation."""

from __future__ import annotations

import pytest

from repro.core.strategies import LPTNoRestriction
from repro.simulation.engine import simulate
from repro.uncertainty.stochastic import sample_realization
from repro.workloads.arrivals import (
    batched_arrivals,
    front_loaded_arrivals,
    poisson_arrivals,
)


class TestPoissonArrivals:
    def test_shapes(self):
        inst, releases = poisson_arrivals(30, 4, alpha=1.5, seed=0)
        assert inst.n == 30
        assert len(releases) == 30
        assert releases[0] == 0.0
        assert all(a <= b for a, b in zip(releases, releases[1:]))

    def test_duty_scales_density(self):
        _, fast = poisson_arrivals(200, 4, seed=1, duty=2.0)
        _, slow = poisson_arrivals(200, 4, seed=1, duty=0.5)
        assert fast[-1] < slow[-1]

    def test_deterministic(self):
        a = poisson_arrivals(20, 2, seed=9)[1]
        b = poisson_arrivals(20, 2, seed=9)[1]
        assert a == b


class TestBatchedArrivals:
    def test_wave_structure(self):
        _, releases = batched_arrivals(25, 4, batch_size=10, period=5.0)
        assert releases[:10] == [0.0] * 10
        assert releases[10:20] == [5.0] * 10
        assert releases[20:] == [10.0] * 5


class TestFrontLoaded:
    def test_split(self):
        _, releases = front_loaded_arrivals(10, 2, late_fraction=0.3, late_time=7.0)
        assert releases.count(0.0) == 7
        assert releases.count(7.0) == 3


class TestEndToEnd:
    @pytest.mark.parametrize(
        "gen", [poisson_arrivals, batched_arrivals, front_loaded_arrivals]
    )
    def test_simulation_respects_releases(self, gen):
        inst, releases = gen(24, 4, 1.5, 3)
        real = sample_realization(inst, "log_uniform", 5)
        strategy = LPTNoRestriction()
        placement = strategy.place(inst)
        trace = simulate(
            placement,
            real,
            strategy.make_policy(inst, placement),
            release_times=releases,
        )
        trace.validate(placement, real)
        for j, r in enumerate(releases):
            assert trace.runs[j].start >= r - 1e-9

    def test_arrivals_inflate_makespan(self):
        """Spreading arrivals can only delay completion relative to
        all-at-zero."""
        inst, releases = batched_arrivals(30, 4, 1.5, 2, batch_size=5, period=10.0)
        real = sample_realization(inst, "uniform", 1)
        strategy = LPTNoRestriction()
        placement = strategy.place(inst)
        policy_a = strategy.make_policy(inst, placement)
        policy_b = strategy.make_policy(inst, placement)
        with_releases = simulate(placement, real, policy_a, release_times=releases)
        without = simulate(placement, real, policy_b)
        assert with_releases.makespan >= without.makespan - 1e-9
