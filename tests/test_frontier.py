"""Unit tests for repro.memory.frontier (Figure-6 curves)."""

from __future__ import annotations

import math

import pytest

from repro.core.bounds import (
    abo_makespan_guarantee,
    abo_memory_guarantee,
    sabo_makespan_guarantee,
    sabo_memory_guarantee,
)
from repro.memory.frontier import (
    abo_curve,
    delta_for_makespan_target,
    impossibility_curve,
    sabo_curve,
)


class TestCurves:
    def test_sabo_points_match_formulas(self):
        pts = sabo_curve(1.5, 4 / 3, 4 / 3, deltas=[0.5, 1.0, 2.0])
        for p in pts:
            assert p.makespan == pytest.approx(
                sabo_makespan_guarantee(1.5, 4 / 3, p.delta)
            )
            assert p.memory == pytest.approx(sabo_memory_guarantee(4 / 3, p.delta))

    def test_abo_points_match_formulas(self):
        pts = abo_curve(1.5, 1.0, 1.0, 5, deltas=[0.5, 1.0, 2.0])
        for p in pts:
            assert p.makespan == pytest.approx(
                abo_makespan_guarantee(1.5, 1.0, p.delta, 5)
            )
            assert p.memory == pytest.approx(abo_memory_guarantee(1.0, p.delta, 5))

    def test_default_grid_is_log_spaced_and_positive(self):
        pts = sabo_curve(1.5, 1.0, 1.0, num=11)
        deltas = [p.delta for p in pts]
        assert len(deltas) == 11
        assert deltas == sorted(deltas)
        assert deltas[0] == pytest.approx(0.01)
        assert deltas[-1] == pytest.approx(100.0)

    def test_curves_monotone_tradeoff(self):
        pts = sabo_curve(1.5, 1.0, 1.0, num=51)
        makes = [p.makespan for p in pts]
        mems = [p.memory for p in pts]
        assert makes == sorted(makes)
        assert mems == sorted(mems, reverse=True)

    def test_empty_deltas_rejected(self):
        with pytest.raises(ValueError):
            sabo_curve(1.5, 1.0, 1.0, deltas=[])


class TestImpossibility:
    def test_skips_infeasible(self):
        pts = impossibility_curve([0.5, 1.0, 2.0])
        assert [x for x, _ in pts] == [2.0]

    def test_hyperbola_values(self):
        pts = dict(impossibility_curve([1.5, 2.0, 3.0]))
        assert pts[1.5] == pytest.approx(3.0)
        assert pts[2.0] == pytest.approx(2.0)
        assert pts[3.0] == pytest.approx(1.5)


class TestDeltaForTarget:
    def test_sabo_inversion(self):
        alpha, rho1 = 1.5, 1.0
        d = delta_for_makespan_target(4.0, alpha, rho1, 5, algorithm="sabo")
        assert d is not None
        assert sabo_makespan_guarantee(alpha, rho1, d) == pytest.approx(4.0)

    def test_abo_inversion(self):
        alpha, rho1, m = 1.5, 1.0, 5
        d = delta_for_makespan_target(4.0, alpha, rho1, m, algorithm="abo")
        assert d is not None
        assert abo_makespan_guarantee(alpha, rho1, d, m) == pytest.approx(4.0)

    def test_impossible_target(self):
        # SABO can never guarantee below alpha^2*rho1.
        assert delta_for_makespan_target(1.0, 2.0, 1.0, 5, algorithm="sabo") is None

    def test_unknown_algorithm(self):
        with pytest.raises(ValueError):
            delta_for_makespan_target(3.0, 1.5, 1.0, 5, algorithm="x")

    def test_paper_scenario_fig6b(self):
        """Paper: 'if you want to guarantee a makespan less than 3 as in
        Figure 6b (m=5, alpha^2=3, rho=1), you should use ABO'."""
        alpha = math.sqrt(3.0)
        sabo_d = delta_for_makespan_target(3.0, alpha, 1.0, 5, algorithm="sabo")
        abo_d = delta_for_makespan_target(3.0, alpha, 1.0, 5, algorithm="abo")
        # SABO cannot reach 3 at all ((1+D)*3 > 3 for any D > 0)...
        assert sabo_d is None
        # ...while ABO can.
        assert abo_d is not None
        assert abo_memory_guarantee(1.0, abo_d, 5) > 1.0  # at a memory price
