"""Unit tests for repro.analysis.experiment."""

from __future__ import annotations

import pytest

from repro.analysis.experiment import ExperimentGrid, run_grid
from repro.core.strategies import LPTNoChoice, LSGroup
from repro.uncertainty.realization import truthful_realization
from repro.workloads.generators import uniform_instance


@pytest.fixture
def instances():
    return [uniform_instance(10, 2, alpha=1.5, seed=s) for s in range(2)]


class TestRunGrid:
    def test_record_count(self, instances):
        records = run_grid(
            [LPTNoChoice()], instances, ["uniform"], seeds=(0, 1), exact_limit=12
        )
        assert len(records) == 2 * 2  # instances x seeds

    def test_record_fields(self, instances):
        rec = run_grid([LPTNoChoice()], instances[:1], ["uniform"])[0]
        assert rec.strategy == "lpt_no_choice"
        assert rec.n == 10 and rec.m == 2
        assert rec.ratio >= 1.0 - 1e-9 or not rec.optimum_exact
        assert rec.replication == 1
        d = rec.as_dict()
        assert d["strategy"] == "lpt_no_choice"
        assert "ratio" in d

    def test_custom_factory(self, instances):
        records = run_grid(
            [LPTNoChoice()],
            instances[:1],
            [lambda inst, seed: truthful_realization(inst)],
        )
        assert records[0].realization == "truthful"
        assert records[0].ratio == pytest.approx(
            records[0].makespan / records[0].optimum
        )

    def test_incompatible_group_strategy_skipped(self, instances):
        grid = ExperimentGrid(
            strategies=[LSGroup(3)],  # m=2 not divisible by 3... k>m in fact
            instances=instances[:1],
            realization_models=["uniform"],
        )
        records = grid.run()
        assert records == []
        assert grid.skipped
        # Skips are structured: strategy/instance names plus the reason.
        skip = grid.skipped[0]
        assert skip.strategy == "ls_group[k=3]"
        assert skip.instance == instances[0].name
        assert skip.error
        assert skip.strategy in str(skip) and skip.instance in str(skip)
        assert skip.as_dict()["error"] == skip.error

    def test_deterministic(self, instances):
        a = run_grid([LPTNoChoice()], instances, ["log_uniform"], seeds=(3,))
        b = run_grid([LPTNoChoice()], instances, ["log_uniform"], seeds=(3,))
        assert [r.ratio for r in a] == [r.ratio for r in b]
