"""Tests for the regime analysis (repro.analysis.regimes)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.regimes import (
    alpha_crossovers,
    clairvoyance_value,
    dominant_strategy_map,
    replication_value,
)
from repro.core.bounds import ub_lpt_no_choice, ub_ls_group


class TestDominantStrategyMap:
    def test_low_alpha_full_replication_wins(self):
        row = dominant_strategy_map([1.05], 30)[0]
        assert row["best_strategy"] == "lpt_no_restriction"
        assert row["best_replication"] == 30

    def test_per_replication_complete(self):
        row = dominant_strategy_map([1.5], 30)[0]
        per = row["per_replication"]
        # One entry per divisor-induced replication level.
        assert set(per) == {30 // k for k in (1, 2, 3, 5, 6, 10, 15, 30)}

    def test_best_is_min_over_levels(self):
        row = dominant_strategy_map([2.0], 12)[0]
        per = row["per_replication"]
        assert row["best_guarantee"] == pytest.approx(
            min(v for _, v in per.values())
        )

    def test_replication_one_best_of_group_and_no_choice(self):
        row = dominant_strategy_map([1.2], 6)[0]
        name, value = row["per_replication"][1]
        expected = min(ub_lpt_no_choice(1.2, 6), ub_ls_group(1.2, 6, 6))
        assert value == pytest.approx(expected)


class TestAlphaCrossovers:
    def test_th3_crossover_is_sqrt2(self):
        assert alpha_crossovers(10)["th3_vs_graham"] == pytest.approx(math.sqrt(2))

    def test_group_crossover_found(self):
        cross = alpha_crossovers(30, k=5)["group_vs_no_choice"]
        assert 1.0 <= cross < 2.0
        # Verify: just above the crossover the group strategy wins.
        assert ub_ls_group(cross + 0.01, 30, 5) < ub_lpt_no_choice(cross + 0.01, 30)

    def test_without_k_no_group_entry(self):
        assert "group_vs_no_choice" not in alpha_crossovers(10)


class TestClairvoyanceValue:
    def test_positive_below_sqrt2(self):
        assert clairvoyance_value(1.1, 20) > 0

    def test_zero_at_and_above_sqrt2(self):
        assert clairvoyance_value(math.sqrt(2), 20) == pytest.approx(0.0, abs=1e-12)
        assert clairvoyance_value(2.5, 20) == pytest.approx(0.0, abs=1e-12)

    @given(st.floats(min_value=1.0, max_value=3.0), st.integers(min_value=2, max_value=200))
    def test_nonnegative_and_bounded(self, alpha, m):
        v = clairvoyance_value(alpha, m)
        assert -1e-12 <= v <= 1.0  # can never exceed Graham - 1


class TestReplicationValue:
    def test_rows_cover_consecutive_levels(self):
        rows = replication_value(2.0, 30)
        levels = [r["from_replication"] for r in rows] + [rows[-1]["to_replication"]]
        assert levels == sorted(levels)
        assert levels[0] == 1.0 and levels[-1] == 30.0

    def test_diminishing_returns_at_high_alpha(self):
        """The paper: 'when alpha is large, only few replications improve
        the performance significantly' — the first step's per-replica value
        dominates the last step's."""
        rows = replication_value(2.0, 210)
        assert rows[0]["drop_per_replica"] > 10 * rows[-1]["drop_per_replica"]

    @given(st.floats(min_value=1.0, max_value=3.0))
    def test_all_drops_nonnegative(self, alpha):
        for r in replication_value(alpha, 30):
            assert r["guarantee_drop"] >= -1e-9
