"""Tests for the Figure-3 tradeoff analysis (repro.core.tradeoff).

These tests pin the *shape claims* the paper makes about Figure 3, so the
reproduced figure provably tells the same story.
"""

from __future__ import annotations

import pytest

from repro.core.bounds import divisors, lb_no_replication, ub_lpt_no_choice
from repro.core.tradeoff import ratio_replication_series, tradeoff_findings


M = 210  # the paper's machine count for Figure 3


class TestSeriesStructure:
    def test_all_series_present(self):
        series = ratio_replication_series(1.5, M)
        assert set(series) == {
            "lower_bound",
            "lpt_no_choice",
            "lpt_no_restriction",
            "ls_group",
        }

    def test_group_series_covers_divisors(self):
        series = ratio_replication_series(1.5, M)
        reps = [p.replication for p in series["ls_group"]]
        assert sorted(reps) == sorted(M // k for k in divisors(M))

    def test_group_series_sorted_by_replication(self):
        series = ratio_replication_series(2.0, M)
        reps = [p.replication for p in series["ls_group"]]
        assert reps == sorted(reps)

    def test_endpoints(self):
        series = ratio_replication_series(1.5, M)
        assert series["lpt_no_choice"][0].replication == 1
        assert series["lpt_no_restriction"][0].replication == M
        assert series["lower_bound"][0].ratio == pytest.approx(
            lb_no_replication(1.5, M)
        )


class TestMonotonicity:
    @pytest.mark.parametrize("alpha", [1.1, 1.5, 2.0])
    def test_more_replication_better_guarantee(self, alpha):
        series = ratio_replication_series(alpha, M)["ls_group"]
        ratios = [p.ratio for p in series]  # replication ascending
        assert all(a >= b - 1e-9 for a, b in zip(ratios, ratios[1:]))


class TestPaperNarrative:
    """The qualitative observations of Section 5.4, quantified."""

    def test_alpha_11_significant_gap_to_lower_bound(self):
        f = tradeoff_findings(1.1, M)
        # "there is a significant gap between the guarantee of LPT-No
        # Choice and the lower bound" — over a full ratio unit at alpha=1.1.
        assert f["gap_lb_vs_no_choice"] > 1.0

    def test_alpha_11_full_replication_beats_one_group(self):
        f = tradeoff_findings(1.1, M)
        # "significant improvement in using LPT-No Restriction over using
        # LS-Group with only 1 group" at small alpha.
        assert f["full_vs_one_group"] > 0.3

    def test_alpha_15_no_difference_full_vs_one_group(self):
        f = tradeoff_findings(1.5, M)
        # "no more differences" at alpha = 1.5 (both hit Graham's 2-1/m).
        assert abs(f["full_vs_one_group"]) < 1e-9

    def test_alpha_2_beats_no_choice_with_few_replicas(self):
        f = tradeoff_findings(2.0, M)
        # "a better approximation using less than 50 replications".
        assert f["min_replicas_to_beat_no_choice"] is not None
        assert f["min_replicas_to_beat_no_choice"] < 50

    def test_alpha_2_ratio_below_6_at_3_replicas(self):
        f = tradeoff_findings(2.0, M)
        # "from more than 7.5 with data on 1 machine to less than 6 with
        # only replicating the data on 3 machines".
        assert f["no_choice_ratio"] > 7.5
        assert f["ratio_at_replication_3"] is not None
        assert f["ratio_at_replication_3"] < 6.0

    @pytest.mark.parametrize("alpha", [1.1, 1.5, 2.0])
    def test_lower_bound_below_no_choice(self, alpha):
        f = tradeoff_findings(alpha, M)
        assert f["lower_bound_ratio"] < f["no_choice_ratio"]
        assert f["no_choice_ratio"] == pytest.approx(ub_lpt_no_choice(alpha, M))
