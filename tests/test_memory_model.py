"""Unit tests for repro.memory.model (π₁/π₂ reference schedules)."""

from __future__ import annotations

import pytest
from hypothesis import given

from repro.memory.model import (
    PI1_METHODS,
    makespan_reference,
    memory_lower_bound,
    memory_reference,
)
from repro.schedulers.lpt import lpt_schedule
from tests.conftest import sized_instances


class TestMakespanReference:
    def test_lpt_default(self, sized_instance):
        ref = makespan_reference(sized_instance)
        assert ref.method == "lpt"
        assert ref.objective == pytest.approx(
            lpt_schedule(sized_instance.estimates, sized_instance.m).makespan
        )
        assert ref.rho == pytest.approx(4 / 3 - 1 / (3 * sized_instance.m))

    @pytest.mark.parametrize("method", sorted(PI1_METHODS))
    def test_all_methods_produce_valid_assignments(self, sized_instance, method):
        ref = makespan_reference(sized_instance, method)
        assert len(ref.assignment) == sized_instance.n
        assert all(0 <= i < sized_instance.m for i in ref.assignment)
        loads = ref.loads(sized_instance.estimates, sized_instance.m)
        assert max(loads) == pytest.approx(ref.objective)

    def test_better_methods_have_better_rho(self, sized_instance):
        rhos = {m: makespan_reference(sized_instance, m).rho for m in PI1_METHODS}
        assert rhos["multifit"] < rhos["lpt"]

    def test_unknown_method_rejected(self, sized_instance):
        with pytest.raises(ValueError, match="unknown pi1 method"):
            makespan_reference(sized_instance, "magic")


class TestMemoryReference:
    def test_objective_is_max_memory(self, sized_instance):
        ref = memory_reference(sized_instance)
        mem = [0.0] * sized_instance.m
        for j, i in enumerate(ref.assignment):
            mem[i] += sized_instance.tasks[j].size
        assert max(mem) == pytest.approx(ref.objective)

    def test_balances_sizes_not_times(self):
        from repro.core.model import make_instance

        # One huge-size quick task + small-size slow tasks.
        inst = make_instance(
            [1.0, 10.0, 10.0], m=2, sizes=[8.0, 1.0, 1.0]
        )
        ref = memory_reference(inst)
        # The size-8 task must sit alone memory-wise as far as possible.
        mem = [0.0, 0.0]
        for j, i in enumerate(ref.assignment):
            mem[i] += inst.tasks[j].size
        assert max(mem) == pytest.approx(8.0)

    def test_zero_sizes_spread(self):
        from repro.core.model import make_instance

        inst = make_instance([1.0] * 4, m=2, sizes=[0.0] * 4)
        ref = memory_reference(inst)
        assert ref.objective == 0.0
        assert len(set(ref.assignment)) == 2  # round-robin spread

    @given(sized_instances(min_n=2, max_n=10, max_m=4))
    def test_within_rho_of_optimal_memory(self, inst):
        """π₂ is LPT on sizes, so it is within ρ₂ of the *optimal* memory
        (the guarantee is relative to OPT, not to the LP bound)."""
        from repro.exact.optimal import optimal_makespan

        ref = memory_reference(inst)
        positive = [s for s in inst.sizes if s > 0]
        if not positive:
            assert ref.objective == 0.0
            return
        opt = optimal_makespan(positive, inst.m, exact_limit=12)
        if opt.optimal:
            assert ref.objective <= ref.rho * opt.value * (1 + 1e-9)


class TestMemoryLowerBound:
    def test_lp_shape(self):
        assert memory_lower_bound([4.0, 4.0], 2) == 4.0
        assert memory_lower_bound([10.0, 1.0], 2) == 10.0

    def test_all_zero(self):
        assert memory_lower_bound([0.0, 0.0], 2) == 0.0

    def test_zeros_ignored(self):
        assert memory_lower_bound([0.0, 6.0], 3) == 6.0
