"""Tests for the reproduction report generator."""

from __future__ import annotations

import pytest

from repro.analysis.csvio import write_csv
from repro.analysis.report import artifact_inventory, generate_report


@pytest.fixture
def populated(tmp_path):
    (tmp_path / "fig1_adversary.txt").write_text("FIG1 RENDERING\n")
    (tmp_path / "e1_empirical_ratios.txt").write_text("E1 TABLE\n")
    write_csv(
        tmp_path / "e1_empirical_ratios.csv",
        [{"strategy": "x", "ratio": 1.2}, {"strategy": "y", "ratio": 1.1}],
    )
    (tmp_path / "custom_artifact.txt").write_text("CUSTOM\n")
    return tmp_path


class TestInventory:
    def test_groups_txt_and_csv(self, populated):
        inv = artifact_inventory(populated)
        assert set(inv["e1_empirical_ratios"]) == {"txt", "csv"}
        assert set(inv["fig1_adversary"]) == {"txt"}

    def test_report_itself_excluded(self, populated):
        (populated / "REPORT.txt").write_text("x")
        generate_report(populated)
        inv = artifact_inventory(populated)
        assert "REPORT" not in inv


class TestGenerateReport:
    def test_contains_artifacts_in_order(self, populated):
        path = generate_report(populated)
        text = path.read_text()
        assert text.index("Figure 1") < text.index("E1 —")
        assert "FIG1 RENDERING" in text
        assert "E1 TABLE" in text

    def test_csv_summarized(self, populated):
        text = generate_report(populated).read_text()
        assert "2 rows" in text
        assert "strategy" in text

    def test_unknown_artifacts_appended(self, populated):
        text = generate_report(populated).read_text()
        assert "custom_artifact" in text
        assert text.index("E1 —") < text.index("custom_artifact")

    def test_empty_dir_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="no artifacts"):
            generate_report(tmp_path)

    def test_real_results_dir_if_present(self):
        """After the bench suite has run, the real report generates too."""
        from repro.analysis.csvio import results_dir

        if any(results_dir().glob("*.txt")):
            path = generate_report()
            assert path.exists()
            assert path.read_text().startswith("# Reproduction report")
