"""Tests for the store-backed reproduction report pipeline."""

from __future__ import annotations

import pytest

from repro.analysis.csvio import write_csv
from repro.analysis.report import (
    UnresolvableArtifactError,
    artifact_inventory,
    check_report,
    generate_report,
)
from repro.store import ArtifactStore, Stage, publish_curated


@pytest.fixture
def populated(tmp_path):
    results = tmp_path / "results"
    results.mkdir()
    (results / "fig1_adversary.txt").write_text("FIG1 RENDERING\n")
    (results / "e1_empirical_ratios.txt").write_text("E1 TABLE\n")
    write_csv(
        results / "e1_empirical_ratios.csv",
        [{"strategy": "x", "ratio": 1.2}, {"strategy": "y", "ratio": 1.1}],
    )
    return results


@pytest.fixture
def store(tmp_path):
    return ArtifactStore(tmp_path / "store")


def _generate(results, store, **kw):
    return generate_report(results, store=store, adopt=True, **kw)


class TestInventory:
    def test_groups_txt_and_csv(self, populated):
        inv = artifact_inventory(populated)
        assert set(inv["e1_empirical_ratios"]) == {"txt", "csv"}
        assert set(inv["fig1_adversary"]) == {"txt"}

    def test_report_itself_excluded(self, populated, store):
        (populated / "REPORT.txt").write_text("x")
        _generate(populated, store)
        inv = artifact_inventory(populated)
        assert "REPORT" not in inv


class TestGenerateReport:
    def test_contains_artifacts_in_order(self, populated, store):
        path = _generate(populated, store)
        text = path.read_text()
        assert text.index("Figure 1") < text.index("E1 —")
        assert "FIG1 RENDERING" in text
        assert "E1 TABLE" in text

    def test_csv_summarized(self, populated, store):
        text = _generate(populated, store).read_text()
        assert "2 rows" in text
        assert "strategy" in text

    def test_fingerprint_header_no_wall_clock(self, populated, store):
        text = _generate(populated, store).read_text()
        assert "Input fingerprint: `" in text
        assert "Generated " not in text  # the old timestamp header is gone
        # Identical inputs render identical bytes.
        assert _generate(populated, store).read_text() == text

    def test_unknown_curated_artifact_gets_a_section(self, populated, store):
        (populated / "custom_artifact.txt").write_text("CUSTOM\n")
        publish_curated("custom_artifact", store=store, base=populated)
        text = _generate(populated, store).read_text()
        assert "CUSTOM" in text
        assert text.index("E1 —") < text.index("custom_artifact")

    def test_unadopted_stray_file_is_flagged(self, populated, store):
        (populated / "stray_dropping.svg").write_text("<svg/>")
        text = _generate(populated, store).read_text()
        assert "Unregistered files" in text
        assert "stray_dropping.svg" in text

    def test_empty_dir_raises(self, tmp_path, store):
        with pytest.raises(FileNotFoundError, match="artifacts"):
            generate_report(tmp_path / "empty", store=store)

    def test_refuses_unresolvable_known_artifact(self, populated, store):
        # Registered artifacts on disk but an empty store: refuse rather
        # than render unattributable content.
        with pytest.raises(UnresolvableArtifactError, match="e1_empirical_ratios"):
            generate_report(populated, store=store)

    def test_second_run_writes_nothing(self, populated, store):
        _generate(populated, store)
        before = {
            p.name: p.stat().st_mtime_ns for p in populated.iterdir() if p.is_file()
        }
        _generate(populated, store)
        after = {
            p.name: p.stat().st_mtime_ns for p in populated.iterdir() if p.is_file()
        }
        assert after == before

    def test_materializes_deleted_files_from_the_store(self, populated, store):
        _generate(populated, store)
        original = (populated / "e1_empirical_ratios.csv").read_bytes()
        (populated / "e1_empirical_ratios.csv").unlink()
        generate_report(populated, store=store)  # no adopt: store is the source
        assert (populated / "e1_empirical_ratios.csv").read_bytes() == original

    def test_report_artifact_carries_resolvable_refs(self, populated, store):
        _generate(populated, store)
        report = store.get(Stage.REPORT, "REPORT")
        assert report is not None
        artifact_refs = [r for r in report.refs if getattr(r, "stage", None)]
        assert {r.name for r in artifact_refs} >= {
            "fig1_adversary", "e1_empirical_ratios",
        }
        for ref in artifact_refs:
            assert store.resolve(ref) is not None


class TestCheckReport:
    def test_clean_after_generate(self, populated, store):
        _generate(populated, store)
        assert check_report(populated, store=store) == []

    def test_detects_hand_edited_artifact(self, populated, store):
        _generate(populated, store)
        (populated / "e1_empirical_ratios.csv").write_text("strategy,ratio\nz,9\n")
        problems = check_report(populated, store=store)
        assert any("e1_empirical_ratios.csv" in p for p in problems)

    def test_detects_hand_edited_report(self, populated, store):
        _generate(populated, store)
        path = populated / "REPORT.md"
        path.write_text(path.read_text() + "tampered\n")
        problems = check_report(populated, store=store)
        assert any("REPORT.md" in p for p in problems)

    def test_detects_stray_file(self, populated, store):
        _generate(populated, store)
        (populated / "stray.svg").write_text("<svg/>")
        problems = check_report(populated, store=store)
        assert any("REPORT.md" in p for p in problems)

    def test_volatile_artifact_may_drift(self, populated, store):
        (populated / "e7_slo_report.txt").write_text("latency p99 12ms\n")
        _generate(populated, store)
        assert check_report(populated, store=store) == []
        (populated / "e7_slo_report.txt").write_text("latency p99 99ms\n")
        assert check_report(populated, store=store) == []

    def test_adopt_mode_validates_committed_tree(self, populated, store):
        # --check --adopt: the committed REPORT.md is the reference; a
        # results file clobbered after the report was rendered fails.
        _generate(populated, store)
        (populated / "e1_empirical_ratios.csv").write_text("strategy,ratio\nz,9\n")
        fresh = ArtifactStore(store.root.parent / "fresh-store")
        problems = check_report(populated, store=fresh, adopt=True)
        assert any("REPORT.md" in p for p in problems)
