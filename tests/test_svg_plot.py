"""Tests for the SVG chart/Gantt renderer."""

from __future__ import annotations

import xml.etree.ElementTree as ET

import pytest

from repro.analysis.svg_plot import SvgSeries, render_svg_chart, render_svg_gantt
from repro.simulation.trace import ScheduleTrace, TaskRun


def _parse(svg: str) -> ET.Element:
    return ET.fromstring(svg)


class TestSvgSeries:
    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="lengths differ"):
            SvgSeries([1, 2], [1], label="x")

    def test_empty(self):
        with pytest.raises(ValueError, match="empty"):
            SvgSeries([], [])

    def test_bad_mode(self):
        with pytest.raises(ValueError, match="mode"):
            SvgSeries([1], [1], mode="splines")


class TestRenderChart:
    def test_valid_xml(self):
        svg = render_svg_chart(
            [SvgSeries([1, 2, 3], [1.0, 4.0, 9.0], label="sq")],
            title="T",
            x_label="n",
            y_label="n^2",
        )
        root = _parse(svg)
        assert root.tag.endswith("svg")

    def test_contains_title_labels_legend(self):
        svg = render_svg_chart(
            [SvgSeries([1, 2], [3.0, 4.0], label="curveA")],
            title="My Title",
            x_label="widgets",
            y_label="ratio",
        )
        assert "My Title" in svg
        assert "widgets" in svg and "ratio" in svg
        assert "curveA" in svg

    def test_line_and_markers(self):
        svg = render_svg_chart([SvgSeries([1, 2, 3], [1.0, 2.0, 3.0])])
        assert "<polyline" in svg
        assert "<circle" in svg

    def test_marker_only(self):
        svg = render_svg_chart([SvgSeries([1, 2], [1.0, 2.0], mode="marker")])
        assert "<polyline" not in svg
        assert "<circle" in svg

    def test_log_axis(self):
        svg = render_svg_chart(
            [SvgSeries([1, 10, 100], [1.0, 2.0, 3.0])], x_log=True
        )
        assert "(log)" in svg

    def test_log_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            render_svg_chart([SvgSeries([0, 1], [1.0, 2.0])], x_log=True)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            render_svg_chart([])

    def test_title_escaped(self):
        svg = render_svg_chart(
            [SvgSeries([1], [1.0])], title="a < b & c"
        )
        _parse(svg)  # would raise on unescaped characters
        assert "a &lt; b &amp; c" in svg

    def test_custom_color(self):
        svg = render_svg_chart([SvgSeries([1], [1.0], color="#123456")])
        assert "#123456" in svg


class TestRenderGantt:
    def _trace(self):
        return ScheduleTrace(
            (
                TaskRun(0, 0, 0.0, 4.0),
                TaskRun(1, 1, 0.0, 2.0),
                TaskRun(2, 1, 2.0, 3.0),
            ),
            aborted=(TaskRun(0, 1, 3.0, 3.5),),
        )

    def test_valid_xml_with_rows(self):
        svg = render_svg_gantt(self._trace(), m=2, title="run")
        root = _parse(svg)
        assert root.tag.endswith("svg")
        assert "M0" in svg and "M1" in svg

    def test_one_rect_per_run_plus_aborted(self):
        svg = render_svg_gantt(self._trace(), m=2)
        # 1 background + 3 runs + 1 aborted = 5 rects.
        assert svg.count("<rect") == 5

    def test_tooltips_present(self):
        svg = render_svg_gantt(self._trace(), m=2)
        assert "<title>task 0" in svg

    def test_time_axis_annotated(self):
        svg = render_svg_gantt(self._trace(), m=2)
        assert "t=0" in svg and "t=4" in svg
