"""Tests for the observability layer (repro.obs) and its wiring.

Covers the ISSUE-1 acceptance surface: span nesting and timing
monotonicity, counter exactness on a hand-built 2-machine instance
(with and without an injected failure), JSONL sink round-trip +
validation, manifest provenance, and the no-op overhead bound.
"""

from __future__ import annotations

import json
import time

import pytest

import repro
from repro.obs import (
    JsonlSink,
    MemorySink,
    MetricsRegistry,
    Tracer,
    get_tracer,
    observed,
    run_manifest,
    validate_record,
)
from repro.obs.validate import main as validate_main
from repro.obs.validate import validate_trace
from repro.simulation.engine import simulate
from repro.simulation.metrics import metrics_summary


def make_two_machine():
    """4 tasks on 2 machines, fully replicated so failures are survivable."""
    inst = repro.make_instance(estimates=[4.0, 3.0, 2.0, 1.0], m=2, alpha=1.5)
    strategy = repro.LPTNoRestriction()
    placement = strategy.place(inst)
    policy = strategy.make_policy(inst, placement)
    real = repro.truthful_realization(inst)
    return inst, placement, policy, real


# ---------------------------------------------------------------------------
# Tracer spans
# ---------------------------------------------------------------------------

class TestSpans:
    def test_nesting_depths_and_order(self):
        sink = MemorySink()
        tracer = Tracer(sinks=[sink])
        with tracer.span("outer", a=1):
            with tracer.span("inner"):
                pass
            with tracer.span("inner2"):
                pass
        kinds = [(e.kind, e.name, e.depth) for e in sink.events]
        assert kinds == [
            ("span_start", "outer", 0),
            ("span_start", "inner", 1),
            ("span_end", "inner", 1),
            ("span_start", "inner2", 1),
            ("span_end", "inner2", 1),
            ("span_end", "outer", 0),
        ]

    def test_seq_and_ts_monotone(self):
        sink = MemorySink()
        tracer = Tracer(sinks=[sink])
        with tracer.span("a"):
            time.sleep(0.001)
            with tracer.span("b"):
                pass
        seqs = [e.seq for e in sink.events]
        assert seqs == list(range(len(seqs)))
        ts = [e.ts for e in sink.events]
        assert ts == sorted(ts)
        assert all(t >= 0 for t in ts)

    def test_span_duration_positive_and_contains_children(self):
        sink = MemorySink()
        tracer = Tracer(sinks=[sink])
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                time.sleep(0.002)
        assert inner.duration > 0
        assert outer.duration >= inner.duration

    def test_span_records_exception_and_still_closes(self):
        sink = MemorySink()
        tracer = Tracer(sinks=[sink])
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("x")
        end = sink.by_kind("span_end")[-1]
        assert end.payload["error"] == "ValueError"
        assert end.payload["duration_s"] >= 0

    def test_span_set_attrs_travel_in_end_event(self):
        sink = MemorySink()
        tracer = Tracer(sinks=[sink])
        with tracer.span("s", a=1) as span:
            span.set(b=2)
        end = sink.by_kind("span_end")[0]
        assert end.payload["a"] == 1 and end.payload["b"] == 2

    def test_disabled_tracer_emits_nothing(self):
        sink = MemorySink()
        tracer = Tracer(enabled=False, sinks=[sink])
        with tracer.span("x"):
            tracer.count("c")
            tracer.event("e")
        assert not sink.events
        assert not tracer.registry.counters

    def test_timers_record_span_durations(self):
        tracer = Tracer(sinks=[MemorySink()])
        with tracer.span("thing"):
            pass
        t = tracer.registry.timers["span.thing"]
        assert t.count == 1 and t.total >= 0


# ---------------------------------------------------------------------------
# Metrics registry
# ---------------------------------------------------------------------------

class TestMetrics:
    def test_counter_gauge_timer(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.counter("c").inc(4)
        reg.gauge("g").set(2.5)
        with reg.timer("t").time():
            pass
        assert reg.counters["c"].value == 5
        assert reg.gauges["g"].value == 2.5
        t = reg.timers["t"]
        assert t.count == 1 and t.max >= t.min >= 0

    def test_summary_and_rows(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(2)
        reg.timer("t").observe(0.5)
        s = reg.summary()
        assert s["counters"]["c"] == 2
        assert s["timers"]["t"]["count"] == 1
        assert s["timers"]["t"]["mean_s"] == pytest.approx(0.5)
        rows = reg.rows()
        assert {r["metric"] for r in rows} == {"c", "t"}
        # rows feed straight into the table formatter
        assert "c" in repro.format_table(rows)

    def test_reset(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.reset()
        assert not reg.counters


# ---------------------------------------------------------------------------
# Engine counter exactness
# ---------------------------------------------------------------------------

class TestEngineCounters:
    def test_counts_exact_no_failures(self):
        inst, placement, policy, real = make_two_machine()
        with observed(MemorySink()) as tracer:
            trace = simulate(placement, real, policy)
            counters = tracer.registry.counters
            assert counters["sim.dispatches"].value == inst.n
            assert counters["sim.completions"].value == inst.n
            assert "sim.restarts" not in counters
            # events: n dispatches via idle polls + n completions + m
            # initial idle + m retire polls — at least 2n + m
            assert counters["sim.events_processed"].value >= 2 * inst.n + inst.m
        assert trace.makespan > 0

    def test_restart_counted_under_injected_failure(self):
        inst, placement, policy, real = make_two_machine()
        with observed(MemorySink()) as tracer:
            trace = simulate(placement, real, policy, failures={0: 1.0})
            counters = tracer.registry.counters
            assert counters["sim.machine_failures"].value == 1
            assert counters["sim.restarts"].value == len(trace.aborted) >= 1
            # every task completes exactly once; the aborted attempt is
            # re-dispatched, so dispatches = n + restarts
            assert counters["sim.completions"].value == inst.n
            assert (
                counters["sim.dispatches"].value
                == inst.n + counters["sim.restarts"].value
            )

    def test_dispatch_events_carry_task_and_machine(self):
        inst, placement, policy, real = make_two_machine()
        sink = MemorySink()
        with observed(sink):
            simulate(placement, real, policy)
        dispatches = [e for e in sink.events if e.kind == "event" and e.name == "dispatch"]
        assert sorted(e.payload["task"] for e in dispatches) == list(range(inst.n))
        assert all(0 <= e.payload["machine"] < inst.m for e in dispatches)

    def test_simulate_emits_manifest_and_makespan_gauge(self):
        inst, placement, policy, real = make_two_machine()
        sink = MemorySink()
        with observed(sink) as tracer:
            trace = simulate(placement, real, policy, label="unit")
            manifests = sink.by_kind("manifest")
            assert len(manifests) == 1
            payload = manifests[0].payload
            assert payload["kind"] == "simulate"
            assert payload["params"]["n"] == inst.n
            assert payload["params"]["m"] == inst.m
            assert payload["timing"]["simulate_s"] > 0
            assert payload["environment"]["repro_version"] == repro.__version__
            assert tracer.registry.gauges["sim.makespan"].value == trace.makespan
            idle = tracer.registry.timers["sim.idle_time"]
            assert idle.count == inst.m


# ---------------------------------------------------------------------------
# Sinks / JSONL round-trip / validation
# ---------------------------------------------------------------------------

class TestSinks:
    def test_memory_ring_buffer_drops_oldest(self):
        sink = MemorySink(capacity=3)
        tracer = Tracer(sinks=[sink])
        for i in range(5):
            tracer.event(f"e{i}")
        assert sink.dropped == 2
        assert [e.name for e in sink.events] == ["e2", "e3", "e4"]

    def test_jsonl_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(sinks=[JsonlSink(path)])
        with tracer.span("outer", x=1):
            tracer.event("ping", v=2)
        tracer.count("c", 3)
        tracer.snapshot_counters()
        tracer.close()
        events = repro.obs.read_jsonl(path)
        assert [e.kind for e in events] == ["span_start", "event", "span_end", "counter"]
        assert events[1].payload == {"v": 2}
        assert events[3].payload == {"value": 3}
        # every line individually validates
        for line in path.read_text().splitlines():
            assert validate_record(json.loads(line)) == []

    def test_validate_trace_ok_and_stats(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tracer = Tracer(sinks=[JsonlSink(path)])
        with tracer.span("a"):
            with tracer.span("b"):
                tracer.event("e")
        tracer.close()
        stats, errors = validate_trace(path)
        assert errors == []
        assert stats["records"] == 5 and stats["spans"] == 2

    def test_validate_trace_catches_corruption(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        tracer = Tracer(sinks=[JsonlSink(path)])
        with tracer.span("a"):
            pass
        tracer.close()
        lines = path.read_text().splitlines()
        record = json.loads(lines[0])
        record["kind"] = "nonsense"
        lines[0] = json.dumps(record)
        path.write_text("\n".join(lines) + "\n")
        _, errors = validate_trace(path)
        assert errors and "kind" in errors[0]

    def test_validate_trace_catches_unclosed_span(self, tmp_path):
        path = tmp_path / "open.jsonl"
        tracer = Tracer(sinks=[JsonlSink(path)])
        span = tracer.span("never_closed")
        span.__enter__()
        tracer.close()
        _, errors = validate_trace(path)
        assert any("never closed" in e for e in errors)

    def test_validate_main_exit_codes(self, tmp_path, capsys):
        path = tmp_path / "t.jsonl"
        tracer = Tracer(sinks=[JsonlSink(path)])
        with tracer.span("a"):
            pass
        tracer.close()
        assert validate_main([str(path)]) == 0
        assert "OK" in capsys.readouterr().out
        path.write_text("{not json\n")
        assert validate_main([str(path)]) == 1

    def test_logging_sink(self, caplog):
        import logging

        sink = repro.obs.LoggingSink()
        tracer = Tracer(sinks=[sink])
        with caplog.at_level(logging.DEBUG, logger="repro.obs"):
            with tracer.span("logged"):
                pass
        messages = [r.message for r in caplog.records]
        assert any("span_end logged" in m for m in messages)


# ---------------------------------------------------------------------------
# Global tracer / scoped enablement
# ---------------------------------------------------------------------------

class TestGlobalTracer:
    def test_default_disabled(self):
        assert get_tracer().enabled is False

    def test_observed_restores_state(self):
        before = get_tracer()
        assert before.enabled is False
        with observed(MemorySink()) as tracer:
            assert tracer is get_tracer()
            assert tracer.enabled is True
        assert get_tracer().enabled is False

    def test_observed_isolates_registry(self):
        with observed(MemorySink()) as t1:
            t1.count("x")
            assert t1.registry.counters["x"].value == 1
        with observed(MemorySink()) as t2:
            assert "x" not in t2.registry.counters


# ---------------------------------------------------------------------------
# metrics_summary integration
# ---------------------------------------------------------------------------

class TestMetricsSummaryIntegration:
    def test_pure_api_unchanged_without_trace(self):
        inst, placement, policy, real = make_two_machine()
        trace = simulate(placement, real, policy)
        out = metrics_summary(trace, real, inst.m)
        assert "events_processed" not in out
        assert "restarts" not in out
        assert out["makespan"] == trace.makespan

    def test_counters_merged_when_traced(self):
        inst, placement, policy, real = make_two_machine()
        with observed(MemorySink()):
            trace = simulate(placement, real, policy, failures={0: 1.0})
            out = metrics_summary(trace, real, inst.m)
            assert out["events_processed"] > 0
            assert out["restarts"] == len(trace.aborted)

    def test_explicit_registry_wins(self):
        inst, placement, policy, real = make_two_machine()
        reg = MetricsRegistry()
        reg.counter("sim.events_processed").inc(7)
        trace = simulate(placement, real, policy)
        out = metrics_summary(trace, real, inst.m, registry=reg)
        assert out["events_processed"] == 7.0


# ---------------------------------------------------------------------------
# Grid / provenance wiring
# ---------------------------------------------------------------------------

class TestGridObservability:
    def test_grid_spans_progress_and_manifest(self):
        # batch=False: this test pins the per-cell observability contract
        # (grid.cell spans, grid.strategy.* timers); the batch backend
        # reports pack-level grid.batch spans instead (see test_batch.py).
        inst = repro.uniform_instance(n=6, m=2, alpha=1.5, seed=0)
        sink = MemorySink()
        seen: list[tuple[int, int]] = []
        with observed(sink) as tracer:
            records = repro.run_grid(
                [repro.LPTNoChoice(), repro.LPTNoRestriction()],
                [inst],
                ["log_uniform"],
                seeds=(0, 1),
                batch=False,
                progress=lambda done, total, rec: seen.append((done, total)),
            )
            counters = tracer.registry.counters
            assert counters["grid.cells_done"].value == len(records) == 4
            assert "grid.strategy.lpt_no_choice" in tracer.registry.timers
        assert seen == [(1, 4), (2, 4), (3, 4), (4, 4)]
        cell_spans = [e for e in sink.by_kind("span_start") if e.name == "grid.cell"]
        assert len(cell_spans) == 4
        manifests = [
            e for e in sink.by_kind("manifest") if e.payload["kind"] == "grid"
        ]
        assert len(manifests) == 1
        assert manifests[0].payload["params"]["seeds"] == [0, 1]

    def test_grid_skips_are_counted(self):
        # ls_group[k=4] cannot split m=2 machines -> skipped cell
        inst = repro.uniform_instance(n=4, m=2, alpha=1.5, seed=0)
        with observed(MemorySink()) as tracer:
            grid = repro.ExperimentGrid(
                strategies=[repro.LSGroup(4)],
                instances=[inst],
                realization_models=["log_uniform"],
            )
            records = grid.run()
            assert records == []
            assert grid.skipped
            assert tracer.registry.counters["grid.cells_skipped"].value == 1

    def test_run_manifest_write(self, tmp_path):
        man = run_manifest("simulate", "unit", params={"n": 3}, timing={"s": 0.1})
        path = man.write(tmp_path / "m.json")
        loaded = json.loads(path.read_text())
        assert loaded["kind"] == "simulate"
        assert loaded["params"]["n"] == 3
        assert loaded["environment"]["repro_version"] == repro.__version__

    def test_bench_emit_writes_manifest_sidecar(self, tmp_path, monkeypatch):
        import benchmarks.conftest as bc
        import repro.analysis.csvio as csvio

        monkeypatch.setattr(csvio, "results_dir", lambda base=None: tmp_path)
        monkeypatch.setattr(bc, "results_dir", lambda base=None: tmp_path)
        bc.emit("unit_artifact", "hello")
        bc._EMITTED.clear()
        sidecar = tmp_path / "unit_artifact.manifest.json"
        assert sidecar.exists()
        loaded = json.loads(sidecar.read_text())
        assert loaded["kind"] == "bench"
        assert loaded["label"] == "unit_artifact"


# ---------------------------------------------------------------------------
# No-op overhead
# ---------------------------------------------------------------------------

class TestOverhead:
    def test_noop_span_is_cheap(self):
        tracer = Tracer(enabled=False)
        n = 50_000
        t0 = time.perf_counter()
        for _ in range(n):
            with tracer.span("x"):
                pass
        per_call = (time.perf_counter() - t0) / n
        # A disabled span is one attribute check + a shared object; even
        # slow CI boxes manage well under 5 microseconds.
        assert per_call < 5e-6

    def test_disabled_simulate_not_slower_than_enabled(self):
        # The acceptance bound is "<5% overhead, asserted loosely": the
        # robust form is that the no-op path is not slower than the traced
        # path (best-of-N to shed scheduler noise, generous 25% slack).
        inst = repro.uniform_instance(n=1000, m=8, alpha=1.5, seed=3)
        strategy = repro.LPTNoRestriction()
        placement = strategy.place(inst)
        real = repro.truthful_realization(inst)

        def run_once() -> float:
            policy = strategy.make_policy(inst, placement)
            t0 = time.perf_counter()
            simulate(placement, real, policy)
            return time.perf_counter() - t0

        run_once()  # warm caches
        disabled = min(run_once() for _ in range(3))
        with observed(MemorySink(capacity=50_000)):
            enabled = min(run_once() for _ in range(3))
        assert disabled <= enabled * 1.25, (
            f"no-op path took {disabled:.4f}s vs {enabled:.4f}s traced — "
            "the disabled tracer is supposed to be free"
        )


# ---------------------------------------------------------------------------
# CLI integration
# ---------------------------------------------------------------------------

class TestCliObservability:
    def test_run_trace_flag_writes_valid_trace(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "cli.jsonl"
        assert main(
            ["run", "lpt_no_choice", "--n", "12", "--m", "3", "--trace", str(path)]
        ) == 0
        out = capsys.readouterr().out
        assert f"trace written to {path}" in out
        stats, errors = validate_trace(path)
        assert errors == []
        # one span per phase at least
        assert stats["spans"] >= 3  # phase1, phase2, simulate
        counters = {
            e.name: e.payload["value"]
            for e in repro.obs.read_jsonl(path)
            if e.kind == "counter"
        }
        assert counters["sim.dispatches"] == 12
        assert counters["sim.completions"] == 12
        assert get_tracer().enabled is False  # CLI restored the default

    def test_run_metrics_flag_prints_table(self, capsys):
        from repro.cli import main

        assert main(["run", "lpt_no_choice", "--n", "8", "--m", "2", "--metrics"]) == 0
        out = capsys.readouterr().out
        assert "observability metrics" in out
        assert "sim.dispatches" in out

    def test_obs_subcommand(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "obs.jsonl"
        assert main(["obs", "--n", "10", "--m", "2", "--trace-out", str(path)]) == 0
        out = capsys.readouterr().out
        assert "dispatches   : 10" in out
        assert "completions  : 10" in out
        stats, errors = validate_trace(path)
        assert errors == []
        assert stats["manifest"] >= 1

    def test_sweep_trace(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "sweep.jsonl"
        assert main(
            ["sweep", "--n", "6", "--m", "2", "--seeds", "1", "--trace", str(path)]
        ) == 0
        _, errors = validate_trace(path)
        assert errors == []
