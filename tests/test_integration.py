"""Integration tests: full two-phase pipelines across module boundaries.

These tests exercise placement → simulation → trace → ratio end to end and
cross-check the event-driven engine against direct load computations, so a
regression in any layer shows up here even if that layer's unit tests were
too narrow.
"""

from __future__ import annotations

import pytest

from repro.analysis.experiment import run_grid
from repro.analysis.ratios import measured_ratio, run_strategy
from repro.core.strategies import LPTNoChoice, LPTNoRestriction, LSGroup, full_sweep
from repro.exact.optimal import optimal_makespan
from repro.memory.abo import ABO
from repro.memory.sabo import SABO
from repro.schedulers.list_scheduling import greedy_assign_heap
from repro.simulation.engine import simulate
from repro.uncertainty.realization import truthful_realization
from repro.uncertainty.stochastic import sample_realization
from repro.workloads.generators import generate, uniform_instance
from repro.workloads.memory_workloads import independent_sizes
from repro.workloads.suites import small_exact_suite


class TestEngineVsDirectComputation:
    """The event-driven engine must agree with closed-form load math."""

    @pytest.mark.parametrize("seed", range(4))
    def test_pinned_strategy_equals_max_load(self, seed):
        inst = uniform_instance(25, 4, alpha=1.8, seed=seed)
        real = sample_realization(inst, "log_uniform", seed + 100)
        strategy = LPTNoChoice()
        outcome = run_strategy(strategy, inst, real)
        assignment = outcome.placement.fixed_assignment()
        loads = [0.0] * inst.m
        for j in range(inst.n):
            loads[assignment[j]] += real.actual(j)
        assert outcome.makespan == pytest.approx(max(loads))

    @pytest.mark.parametrize("seed", range(4))
    def test_online_lpt_equals_offline_ls_on_actuals(self, seed):
        """With all tasks at time 0, event-driven LPT dispatch on actual
        durations produces the same makespan as offline list-scheduling the
        actuals in LPT-estimate order."""
        inst = uniform_instance(30, 5, alpha=1.6, seed=seed)
        real = sample_realization(inst, "uniform", seed + 50)
        outcome = run_strategy(LPTNoRestriction(), inst, real)
        offline = greedy_assign_heap(list(real.actuals), inst.lpt_order(), inst.m)
        assert outcome.makespan == pytest.approx(offline.makespan)

    @pytest.mark.parametrize("k", [1, 2, 5])
    def test_group_strategy_decomposes_into_group_ls(self, k):
        """LS-Group's makespan equals the max over groups of the online-LS
        makespan of that group's tasks on m/k machines."""
        inst = uniform_instance(40, 10, alpha=1.5, seed=3)
        real = sample_realization(inst, "log_uniform", 7)
        strategy = LSGroup(k)
        placement = strategy.place(inst)
        outcome = run_strategy(strategy, inst, real)
        group_of_task = placement.meta["group_of_task"]
        per_group_makespans = []
        for g in range(k):
            tids = [j for j in range(inst.n) if group_of_task[j] == g]
            if not tids:
                per_group_makespans.append(0.0)
                continue
            times = [real.actual(j) for j in tids]
            offline = greedy_assign_heap(times, list(range(len(times))), inst.m // k)
            per_group_makespans.append(offline.makespan)
        assert outcome.makespan == pytest.approx(max(per_group_makespans))


class TestFullSweepFeasibility:
    def test_every_strategy_every_realization_model(self):
        inst = generate("bimodal", 24, 6, 1.7, seed=2)
        for strategy in full_sweep(6, include_ablation=True):
            for model in ("uniform", "bimodal_extreme", "log_uniform"):
                real = sample_realization(inst, model, 11)
                outcome = run_strategy(strategy, inst, real)
                outcome.trace.validate(outcome.placement, real)
                assert outcome.makespan >= real.max - 1e-9


class TestSuitePipeline:
    def test_small_suite_all_within_guarantees(self):
        """Run a slice of the exact suite end to end: every strategy's
        measured ratio (vs exact optimum) is within its guarantee."""
        cases = [c for c in small_exact_suite(alphas=(1.5,), seeds=1)][:10]
        for case in cases:
            for strategy in (LPTNoChoice(), LPTNoRestriction()):
                real = sample_realization(case.instance, "bimodal_extreme", case.seed)
                rec = measured_ratio(strategy, case.instance, real, exact_limit=16)
                if rec.optimum.optimal:
                    assert rec.within_guarantee, (
                        f"{strategy.name} ratio {rec.ratio} > {rec.guarantee} on "
                        f"{case.instance.name}"
                    )

    def test_grid_runner_matches_direct_measurement(self):
        inst = uniform_instance(12, 3, alpha=1.4, seed=0)
        records = run_grid([LPTNoChoice()], [inst], ["uniform"], seeds=(5,))
        direct = measured_ratio(
            LPTNoChoice(), inst, sample_realization(inst, "uniform", 5)
        )
        assert records[0].ratio == pytest.approx(direct.ratio)


class TestMemoryPipeline:
    @pytest.mark.parametrize("delta", [0.3, 1.0, 3.0])
    def test_sabo_abo_full_pipeline(self, delta):
        inst = independent_sizes(20, 4, alpha=1.5, seed=1)
        real = sample_realization(inst, "lognormal", 9)
        for strategy in (SABO(delta), ABO(delta)):
            outcome = run_strategy(strategy, inst, real)
            outcome.trace.validate(outcome.placement, real)
            opt = optimal_makespan(real.actuals, inst.m, exact_limit=22)
            if opt.optimal:
                assert outcome.makespan <= strategy.makespan_guarantee(inst) * opt.value * (
                    1 + 1e-9
                )

    def test_memory_accounting_consistent(self):
        inst = independent_sizes(15, 3, alpha=1.3, seed=2)
        abo = ABO(1.0)
        p = abo.place(inst)
        s1, s2 = p.meta["s1"], p.meta["s2"]
        expected_total = inst.m * sum(inst.tasks[j].size for j in s1) + sum(
            inst.tasks[j].size for j in s2
        )
        assert p.total_memory() == pytest.approx(expected_total)


class TestDeterminismEndToEnd:
    def test_identical_runs_identical_traces(self):
        inst = generate("bounded_pareto", 30, 6, 2.0, seed=4)
        real = sample_realization(inst, "bimodal_extreme", 13)
        for strategy in (LPTNoRestriction(), LSGroup(2), LSGroup(3)):
            p1 = strategy.place(inst)
            t1 = simulate(p1, real, strategy.make_policy(inst, p1))
            p2 = strategy.place(inst)
            t2 = simulate(p2, real, strategy.make_policy(inst, p2))
            assert t1.runs == t2.runs
