"""Tests for the robust pinned placement (repro.robust)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.ratios import run_strategy
from repro.core.adversary import theorem1_instance, theorem1_realization
from repro.core.bounds import lb_no_replication
from repro.core.strategies import LPTNoChoice
from repro.exact.optimal import optimal_makespan
from repro.robust import RobustPinnedPlacement
from repro.uncertainty.stochastic import sample_realization
from repro.workloads.generators import uniform_instance


class TestPlacementBasics:
    def test_no_replication(self):
        inst = uniform_instance(12, 3, alpha=2.0, seed=0)
        p = RobustPinnedPlacement().place(inst)
        assert p.is_no_replication()
        assert p.meta["strategy"].startswith("robust_pinned")

    def test_deterministic(self):
        inst = uniform_instance(12, 3, alpha=2.0, seed=1)
        a = RobustPinnedPlacement(seed=5).place(inst).fixed_assignment()
        b = RobustPinnedPlacement(seed=5).place(inst).fixed_assignment()
        assert a == b

    def test_training_objective_not_worse_than_lpt(self):
        """The local search starts from LPT, so its trained worst-case is at
        most LPT's worst-case over the same scenarios."""
        inst = uniform_instance(14, 4, alpha=2.0, seed=2)
        strategy = RobustPinnedPlacement(scenarios=10, seed=3)
        durations = strategy._scenario_matrix(inst)
        p_robust = strategy.place(inst)
        p_lpt = LPTNoChoice().place(inst)
        def worst(assignment):
            loads = np.zeros((durations.shape[0], inst.m))
            for j, i in enumerate(assignment):
                loads[:, i] += durations[:, j]
            return loads.max()
        assert worst(p_robust.fixed_assignment()) <= worst(p_lpt.fixed_assignment()) + 1e-9

    def test_feasible_end_to_end(self):
        inst = uniform_instance(15, 4, alpha=1.6, seed=4)
        real = sample_realization(inst, "bimodal_extreme", 5)
        outcome = run_strategy(RobustPinnedPlacement(), inst, real)
        outcome.trace.validate(outcome.placement, real)

    def test_params_validated(self):
        with pytest.raises(ValueError):
            RobustPinnedPlacement(scenarios=0)
        with pytest.raises(ValueError):
            RobustPinnedPlacement(iterations=0)


class TestNoFreeLunch:
    def test_adaptive_adversary_still_wins(self):
        """Against the Theorem-1 adversary (which sees the placement), the
        robust pinned placement cannot beat the impossibility bound on the
        identical-task construction — foresight is not flexibility."""
        m, lam, alpha = 3, 4, 2.0
        inst = theorem1_instance(lam, m, alpha)
        strategy = RobustPinnedPlacement(scenarios=16, seed=7)
        placement = strategy.place(inst)
        real = theorem1_realization(placement)
        outcome = run_strategy(strategy, inst, real)
        opt = optimal_makespan(real.actuals, m, exact_limit=lam * m)
        ratio = outcome.makespan / opt.value
        bound = lb_no_replication(alpha, m)
        # Finite-lambda: the forced ratio is already a large fraction of
        # the asymptotic bound, exactly as for LPT-No Choice.
        assert ratio >= 0.8 * bound
