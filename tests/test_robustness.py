"""Edge cases in the robustness statistics: empty cells, dead fleets,
and the missing-control-arm guard (`MissingBaselineError`)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.analysis.robustness import (
    FaultRunRecord,
    MissingBaselineError,
    availability_curve,
    inflation_summary,
    run_under_faults,
    survival_rate,
)
from repro.core.strategies import LPTNoChoice
from repro.faults import RandomCrashes
from repro.uncertainty.stochastic import sample_realization
from repro.workloads.generators import uniform_instance


def _record(
    *,
    survived: bool,
    replication: int = 2,
    inflation: float = 1.2,
    makespan: float = 12.0,
    restarts: int = 0,
) -> FaultRunRecord:
    if not survived:
        makespan, inflation = float("nan"), float("nan")
    return FaultRunRecord(
        strategy="ls_group[k=2]",
        replication=replication,
        scenario=0,
        n_faults=1,
        survived=survived,
        makespan=makespan,
        baseline_makespan=10.0,
        inflation=inflation,
        restarts=restarts,
        error="" if survived else "data lost",
    )


class TestSurvivalRate:
    def test_empty_is_vacuously_one(self):
        assert survival_rate([]) == 1.0

    def test_all_failed_is_zero(self):
        assert survival_rate([_record(survived=False)] * 3) == 0.0

    def test_mixed(self):
        records = [_record(survived=True), _record(survived=False)]
        assert survival_rate(records) == 0.5


class TestInflationSummary:
    def test_no_survivors_is_none(self):
        assert inflation_summary([_record(survived=False)] * 2) is None

    def test_survivors_without_baseline_raise(self):
        # A survivor whose inflation is NaN means the records were built
        # without the 0-failure control arm — refuse to average NaNs.
        broken = FaultRunRecord(
            strategy="s",
            replication=2,
            scenario=0,
            n_faults=1,
            survived=True,
            makespan=12.0,
            baseline_makespan=float("nan"),
            inflation=float("nan"),
            restarts=0,
        )
        with pytest.raises(MissingBaselineError):
            inflation_summary([broken])

    def test_finite_survivors_summarize(self):
        records = [
            _record(survived=True, inflation=1.0),
            _record(survived=True, inflation=1.4),
            _record(survived=False),
        ]
        summary = inflation_summary(records)
        assert summary is not None
        assert summary.mean == pytest.approx(1.2)


class TestAvailabilityCurve:
    def test_all_failed_fleet_yields_nan_rows_not_a_crash(self):
        rows = availability_curve(
            [_record(survived=False, replication=1)] * 4
        )
        assert len(rows) == 1
        assert rows[0]["survival rate"] == 0.0
        assert math.isnan(rows[0]["mean inflation"])
        assert math.isnan(rows[0]["max inflation"])
        assert rows[0]["restarts"] == 0

    def test_rows_sorted_by_replication(self):
        rows = availability_curve(
            [
                _record(survived=True, replication=3),
                _record(survived=False, replication=1),
                _record(survived=True, replication=2, restarts=2),
            ]
        )
        assert [r["replication"] for r in rows] == [1, 2, 3]
        assert rows[1]["restarts"] == 2


class TestRunUnderFaultsBaselineGuard:
    @pytest.mark.parametrize("baseline", [0.0, float("nan"), float("inf"), -1.0])
    def test_degenerate_supplied_baseline_raises(self, baseline):
        instance = uniform_instance(8, 4, alpha=1.5, seed=0)
        realization = sample_realization(instance, "log_uniform", 1)
        plan = RandomCrashes(4, count=(0, 1), window=(0.0, 5.0)).sample(
            np.random.default_rng(0)
        )
        with pytest.raises(MissingBaselineError):
            run_under_faults(
                LPTNoChoice(),
                instance,
                realization,
                plan,
                baseline_makespan=baseline,
            )

    def test_computed_baseline_still_works(self):
        instance = uniform_instance(8, 4, alpha=1.5, seed=0)
        realization = sample_realization(instance, "log_uniform", 1)
        plan = RandomCrashes(4, count=(0, 0), window=(0.0, 5.0)).sample(
            np.random.default_rng(0)
        )
        record = run_under_faults(LPTNoChoice(), instance, realization, plan)
        assert record.survived
        assert record.inflation == pytest.approx(1.0)
