"""Fleet topology, diversity scoring, and topology-aware fault generators."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.chaos.topology import (
    CascadingRackFailure,
    FleetTopology,
    FlappingMachines,
    ZoneOutage,
    diversity_score,
    rack_failure_plan,
    zone_failure_plan,
)


@pytest.fixture
def topo() -> FleetTopology:
    return FleetTopology(zones=2, racks_per_zone=3, machines_per_rack=2)


class TestFleetTopology:
    def test_shape(self, topo):
        assert topo.racks == 6
        assert topo.m == 12

    def test_depth_first_contiguous_ids(self, topo):
        assert topo.rack_members(0) == (0, 1)
        assert topo.rack_members(5) == (10, 11)
        assert topo.zone_members(0) == (0, 1, 2, 3, 4, 5)
        assert topo.zone_members(1) == (6, 7, 8, 9, 10, 11)

    def test_tree_lookups(self, topo):
        assert topo.rack_of(0) == 0
        assert topo.rack_of(11) == 5
        assert topo.zone_of(5) == 0
        assert topo.zone_of(6) == 1

    def test_spans(self, topo):
        assert topo.racks_spanned([0, 1]) == 1
        assert topo.racks_spanned([0, 2, 4]) == 3
        assert topo.zones_spanned([0, 11]) == 2

    @pytest.mark.parametrize("kwargs", [
        {"zones": 0},
        {"racks_per_zone": 0},
        {"machines_per_rack": -1},
    ])
    def test_rejects_degenerate_shapes(self, kwargs):
        with pytest.raises(ValueError):
            FleetTopology(**kwargs)

    def test_machine_bounds_checked(self, topo):
        with pytest.raises(ValueError):
            topo.rack_of(12)
        with pytest.raises(ValueError):
            topo.rack_members(6)
        with pytest.raises(ValueError):
            topo.zone_members(2)

    def test_as_dict_round_trips_shape(self, topo):
        d = topo.as_dict()
        assert d["machines"] == topo.m
        assert d["racks"] == topo.racks


class TestDiversityScore:
    def test_rack_confined_group_scores_zero(self, topo):
        # Both replicas share rack 0: zero spread.
        assert diversity_score(topo, [(0, 1)]) == 0.0

    def test_fully_spread_group_scores_one(self, topo):
        assert diversity_score(topo, [(0, 2, 4)]) == 1.0

    def test_singletons_score_zero(self, topo):
        # A single replica has nothing to spread.
        assert diversity_score(topo, [(0,), (5,)]) == 0.0

    def test_contiguous_service_groups(self):
        # The service's ls_group[k=2] on 1x4x2: each 4-machine group
        # spans 2 of its possible 4 racks -> (2-1)/(4-1).
        topo = FleetTopology(zones=1, racks_per_zone=4, machines_per_rack=2)
        groups = [(0, 1, 2, 3), (4, 5, 6, 7)]
        assert diversity_score(topo, groups) == pytest.approx(1 / 3)

    def test_zone_level(self, topo):
        assert diversity_score(topo, [(0, 6)], level="zone") == 1.0
        assert diversity_score(topo, [(0, 1)], level="zone") == 0.0

    def test_rejects_bad_level_and_empty(self, topo):
        with pytest.raises(ValueError):
            diversity_score(topo, [(0, 1)], level="datacenter")
        with pytest.raises(ValueError):
            diversity_score(topo, [])
        with pytest.raises(ValueError):
            diversity_score(topo, [()])


class TestBlastRadiusPlans:
    def test_rack_plan_takes_whole_rack(self, topo):
        plan = rack_failure_plan(topo, 1, at=3.0, downtime=5.0)
        assert plan.crashes() == [(3.0, 2, 5.0), (3.0, 3, 5.0)]

    def test_zone_plan_takes_whole_zone(self, topo):
        plan = zone_failure_plan(topo, 1, at=2.0)
        assert {m for _, m, _ in plan.crashes()} == set(topo.zone_members(1))
        assert all(math.isinf(d) for _, _, d in plan.crashes())


class TestSeededGenerators:
    def test_zone_outage_is_seed_deterministic(self, topo):
        model = ZoneOutage(topo, window=(0.0, 10.0), downtime=(1.0, 3.0))
        a = model.sample(np.random.default_rng(7)).crashes()
        b = model.sample(np.random.default_rng(7)).crashes()
        assert a == b

    def test_cascade_wraps_the_rack_ring(self, topo):
        model = CascadingRackFailure(topo, size=6, lag=1.0, window=(0.0, 0.0))
        plan = model.sample(np.random.default_rng(0))
        assert {m for _, m, _ in plan.crashes()} == set(range(topo.m))
        times = sorted({at for at, _, _ in plan.crashes()})
        assert times == [float(i) for i in range(6)]

    def test_cascade_rejects_oversize(self, topo):
        with pytest.raises(ValueError):
            CascadingRackFailure(topo, size=7)

    def test_flapping_emits_one_crash_per_cycle(self, topo):
        model = FlappingMachines(topo, count=2, period=4.0, down_time=1.0, cycles=3)
        plan = model.sample(np.random.default_rng(1))
        assert len(plan.crashes()) == 2 * 3
        assert all(d == 1.0 for _, _, d in plan.crashes())

    def test_flapping_rejects_down_time_ge_period(self, topo):
        with pytest.raises(ValueError):
            FlappingMachines(topo, period=2.0, down_time=2.0)
