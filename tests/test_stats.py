"""Unit tests for repro.analysis.stats."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.stats import ci_halfwidth, summarize

samples = st.lists(
    st.floats(min_value=-100.0, max_value=100.0, allow_nan=False), min_size=1, max_size=50
)


class TestSummarize:
    def test_single_value(self):
        s = summarize([3.0])
        assert s.count == 1
        assert s.mean == 3.0
        assert s.std == 0.0
        assert s.minimum == s.maximum == s.p50 == 3.0
        assert s.ci95 == 0.0

    def test_known_sample(self):
        s = summarize([1.0, 2.0, 3.0, 4.0])
        assert s.mean == 2.5
        assert s.minimum == 1.0
        assert s.maximum == 4.0
        assert s.p50 == 2.5

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            summarize([1.0, math.nan])

    def test_format_line(self):
        line = summarize([1.0, 2.0]).format()
        assert "n=2" in line and "mean=" in line

    @given(samples)
    def test_invariants(self, xs):
        s = summarize(xs)
        # An ulp of slack: np.mean of identical values can differ from them
        # in the last bit.
        slack = 1e-12 * max(1.0, abs(s.maximum), abs(s.minimum))
        assert s.minimum <= s.p50 <= s.maximum
        assert s.minimum - slack <= s.mean <= s.maximum + slack
        assert s.p50 <= s.p95 <= s.maximum + slack
        assert s.count == len(xs)
        assert s.std >= 0.0


class TestCiHalfwidth:
    def test_zero_for_small_samples(self):
        assert ci_halfwidth([]) == 0.0
        assert ci_halfwidth([1.0]) == 0.0

    def test_matches_formula(self):
        xs = [1.0, 2.0, 3.0, 4.0, 5.0]
        expected = 1.96 * np.std(xs, ddof=1) / math.sqrt(5)
        assert ci_halfwidth(xs) == pytest.approx(expected)

    @given(samples)
    def test_nonnegative(self, xs):
        assert ci_halfwidth(xs) >= 0.0
