"""Unit tests for repro.analysis.tables."""

from __future__ import annotations

import pytest

from repro.analysis.tables import format_markdown_table, format_table, format_value


class TestFormatValue:
    def test_float_digits(self):
        assert format_value(3.14159, digits=3) == "3.14"

    def test_bool(self):
        assert format_value(True) == "yes"
        assert format_value(False) == "no"

    def test_string_passthrough(self):
        assert format_value("abc") == "abc"

    def test_int(self):
        assert format_value(42) == "42"


class TestFormatTable:
    def test_dict_rows(self):
        out = format_table([{"a": 1, "b": 2.5}, {"a": 3, "b": 4.25}])
        lines = out.splitlines()
        assert lines[0].split("|")[0].strip() == "a"
        assert "4.25" in out

    def test_sequence_rows_need_headers(self):
        with pytest.raises(ValueError, match="headers"):
            format_table([[1, 2]])

    def test_sequence_rows(self):
        out = format_table([[1, 2], [3, 4]], headers=["x", "y"])
        assert "x" in out and "3" in out

    def test_ragged_rows_rejected(self):
        with pytest.raises(ValueError, match="cells"):
            format_table([[1, 2], [3]], headers=["x", "y"])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            format_table([])

    def test_title(self):
        out = format_table([{"a": 1}], title="Hello")
        assert out.splitlines()[0] == "Hello"

    def test_alignment(self):
        out = format_table([{"col": "short"}, {"col": "a-much-longer-cell"}])
        lines = out.splitlines()
        widths = {len(l) for l in lines}
        assert len(widths) == 1  # every row padded to the same width

    def test_missing_keys_blank(self):
        out = format_table([{"a": 1, "b": 2}, {"a": 3}])
        assert out  # no KeyError; missing cell rendered empty


class TestMarkdownTable:
    def test_structure(self):
        out = format_markdown_table([{"a": 1, "b": 2}])
        lines = out.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"
        assert lines[2] == "| 1 | 2 |"

    def test_sequence_rows(self):
        out = format_markdown_table([[1.5, "x"]], headers=["n", "s"])
        assert "| 1.5 | x |" in out
