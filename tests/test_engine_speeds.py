"""Tests for the uniform-machines (speed) extension of the engine."""

from __future__ import annotations

import pytest

from repro.core.model import make_instance
from repro.core.placement import everywhere_placement, single_machine_placement
from repro.core.strategy import FixedOrderPolicy
from repro.simulation.engine import SimulationError, simulate
from repro.uncertainty.realization import truthful_realization


@pytest.fixture
def inst():
    return make_instance([4.0, 4.0, 2.0, 2.0], m=2, alpha=1.5)


class TestSpeeds:
    def test_unit_speeds_match_default(self, inst):
        p = everywhere_placement(inst)
        real = truthful_realization(inst)
        t_default = simulate(p, real, FixedOrderPolicy(range(4)))
        t_unit = simulate(p, real, FixedOrderPolicy(range(4)), speeds=[1.0, 1.0])
        assert t_default.runs == t_unit.runs

    def test_faster_machine_shorter_duration(self, inst):
        p = single_machine_placement(inst, [0, 1, 0, 1])
        real = truthful_realization(inst)
        trace = simulate(p, real, FixedOrderPolicy(range(4)), speeds=[2.0, 1.0])
        # Machine 0 runs tasks 0 and 2 at double speed: 2 + 1 = 3.
        assert trace.loads(2)[0] == pytest.approx(3.0)
        assert trace.loads(2)[1] == pytest.approx(6.0)
        trace.validate(p, real, speeds=[2.0, 1.0])

    def test_online_dispatch_follows_speeds(self, inst):
        """A fast machine finishes early and absorbs more tasks."""
        p = everywhere_placement(inst)
        real = truthful_realization(inst)
        trace = simulate(p, real, FixedOrderPolicy(range(4)), speeds=[4.0, 1.0])
        # Machine 0 at 4x speed: task0 takes 1, task2 takes 0.5, ...
        counts = [len(ts) for ts in trace.tasks_per_machine(2)]
        assert counts[0] > counts[1]

    def test_validation_catches_wrong_speeds(self, inst):
        p = single_machine_placement(inst, [0, 1, 0, 1])
        real = truthful_realization(inst)
        trace = simulate(p, real, FixedOrderPolicy(range(4)), speeds=[2.0, 1.0])
        with pytest.raises(ValueError, match="ran for"):
            trace.validate(p, real)  # validating without speeds must fail

    def test_bad_speeds_rejected(self, inst):
        p = everywhere_placement(inst)
        real = truthful_realization(inst)
        with pytest.raises(SimulationError, match="length"):
            simulate(p, real, FixedOrderPolicy(range(4)), speeds=[1.0])
        with pytest.raises(SimulationError, match="> 0"):
            simulate(p, real, FixedOrderPolicy(range(4)), speeds=[1.0, 0.0])

    def test_global_speed_error_is_alpha_band_shift(self, inst):
        """A uniformly wrong speed estimate scales the makespan linearly —
        the paper's remark that throughput inaccuracy reduces to the
        multiplicative band."""
        p = everywhere_placement(inst)
        real = truthful_realization(inst)
        base = simulate(p, real, FixedOrderPolicy(range(4)))
        slowed = simulate(p, real, FixedOrderPolicy(range(4)), speeds=[0.5, 0.5])
        assert slowed.makespan == pytest.approx(2.0 * base.makespan)
