"""Unit tests for repro._validation."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro._validation import (
    check_alpha,
    check_delta,
    check_finite,
    check_fraction,
    check_group_count,
    check_in_range,
    check_machine_count,
    check_non_negative_float,
    check_non_negative_int,
    check_positive_float,
    check_positive_int,
    check_sizes,
    check_times,
)


class TestCheckFinite:
    def test_accepts_float(self):
        assert check_finite(1.5, "x") == 1.5

    def test_accepts_int(self):
        assert check_finite(3, "x") == 3.0

    @pytest.mark.parametrize("bad", [math.nan, math.inf, -math.inf])
    def test_rejects_non_finite(self, bad):
        with pytest.raises(ValueError, match="x must be finite"):
            check_finite(bad, "x")


class TestCheckPositiveInt:
    def test_accepts_one(self):
        assert check_positive_int(1, "n") == 1

    def test_accepts_numpy_integer(self):
        assert check_positive_int(np.int64(4), "n") == 4

    def test_rejects_zero(self):
        with pytest.raises(ValueError, match="n must be >= 1"):
            check_positive_int(0, "n")

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_positive_int(-3, "n")

    def test_rejects_float(self):
        with pytest.raises(TypeError, match="n must be an integer"):
            check_positive_int(2.5, "n")

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            check_positive_int(True, "n")


class TestCheckNonNegativeInt:
    def test_accepts_zero(self):
        assert check_non_negative_int(0, "n") == 0

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match=">= 0"):
            check_non_negative_int(-1, "n")


class TestCheckPositiveFloat:
    def test_accepts_positive(self):
        assert check_positive_float(0.25, "x") == 0.25

    def test_rejects_zero(self):
        with pytest.raises(ValueError, match="> 0"):
            check_positive_float(0.0, "x")

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="finite"):
            check_positive_float(math.nan, "x")


class TestCheckNonNegativeFloat:
    def test_accepts_zero(self):
        assert check_non_negative_float(0.0, "x") == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_non_negative_float(-0.1, "x")


class TestCheckAlpha:
    def test_accepts_one(self):
        assert check_alpha(1.0) == 1.0

    def test_accepts_large(self):
        assert check_alpha(10.0) == 10.0

    def test_rejects_below_one(self):
        with pytest.raises(ValueError, match="alpha must be >= 1"):
            check_alpha(0.99)

    def test_rejects_inf(self):
        with pytest.raises(ValueError):
            check_alpha(math.inf)


class TestCheckFraction:
    @pytest.mark.parametrize("v", [0.0, 0.5, 1.0])
    def test_accepts_unit_interval(self, v):
        assert check_fraction(v, "p") == v

    @pytest.mark.parametrize("v", [-0.01, 1.01])
    def test_rejects_outside(self, v):
        with pytest.raises(ValueError):
            check_fraction(v, "p")


class TestCheckDelta:
    def test_accepts_positive(self):
        assert check_delta(0.5) == 0.5

    def test_rejects_zero(self):
        with pytest.raises(ValueError, match="delta must be > 0"):
            check_delta(0.0)


class TestCheckGroupCount:
    def test_divisor_accepted(self):
        assert check_group_count(3, 6) == 3

    def test_k_equals_m(self):
        assert check_group_count(6, 6) == 6

    def test_k_one(self):
        assert check_group_count(1, 7) == 1

    def test_non_divisor_rejected(self):
        with pytest.raises(ValueError, match="k must divide m"):
            check_group_count(4, 6)

    def test_k_above_m_rejected(self):
        with pytest.raises(ValueError, match="must be <= m"):
            check_group_count(7, 6)


class TestCheckTimes:
    def test_accepts_list(self):
        assert check_times([1, 2.5]) == [1.0, 2.5]

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="non-empty"):
            check_times([])

    def test_rejects_zero_entry(self):
        with pytest.raises(ValueError, match=r"\[1\] must be > 0"):
            check_times([1.0, 0.0])

    def test_rejects_nan_entry(self):
        with pytest.raises(ValueError):
            check_times([1.0, math.nan])


class TestCheckSizes:
    def test_accepts_zeros(self):
        assert check_sizes([0.0, 1.0], 2) == [0.0, 1.0]

    def test_rejects_wrong_length(self):
        with pytest.raises(ValueError, match="length 3"):
            check_sizes([1.0], 3)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_sizes([-1.0], 1)


class TestCheckInRange:
    def test_inclusive_bounds(self):
        assert check_in_range(1.0, 1.0, 2.0, "x") == 1.0
        assert check_in_range(2.0, 1.0, 2.0, "x") == 2.0

    def test_rejects_outside(self):
        with pytest.raises(ValueError, match="in \\[1.0, 2.0\\]"):
            check_in_range(2.5, 1.0, 2.0, "x")


class TestCheckMachineCount:
    def test_accepts(self):
        assert check_machine_count(5) == 5

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            check_machine_count(0)
