"""Unit tests for repro.analysis.csvio."""

from __future__ import annotations

import pytest

from repro.analysis.csvio import read_csv, results_dir, write_csv


class TestWriteRead:
    def test_round_trip(self, tmp_path):
        rows = [{"a": 1, "b": "x"}, {"a": 2, "b": "y"}]
        path = write_csv(tmp_path / "t.csv", rows)
        back = read_csv(path)
        assert back == [{"a": "1", "b": "x"}, {"a": "2", "b": "y"}]

    def test_union_headers_first_seen_order(self, tmp_path):
        rows = [{"a": 1}, {"b": 2, "a": 3}]
        path = write_csv(tmp_path / "t.csv", rows)
        with open(path) as fh:
            header = fh.readline().strip()
        assert header == "a,b"

    def test_missing_values_blank(self, tmp_path):
        rows = [{"a": 1}, {"a": 2, "b": 5}]
        back = read_csv(write_csv(tmp_path / "t.csv", rows))
        assert back[0]["b"] == ""

    def test_explicit_headers_subset(self, tmp_path):
        rows = [{"a": 1, "b": 2}]
        back = read_csv(write_csv(tmp_path / "t.csv", rows, headers=["a"]))
        assert back == [{"a": "1"}]

    def test_empty_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            write_csv(tmp_path / "t.csv", [])

    def test_creates_parent_dirs(self, tmp_path):
        path = write_csv(tmp_path / "deep" / "dir" / "t.csv", [{"a": 1}])
        assert path.exists()


class TestResultsDir:
    def test_explicit_base(self, tmp_path):
        d = results_dir(tmp_path / "r")
        assert d.exists()
        assert d.name == "r"

    def test_default_is_repo_results(self):
        d = results_dir()
        assert d.name == "results"
        assert d.exists()
