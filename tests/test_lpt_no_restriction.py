"""Tests for Strategy 2 — LPT-No Restriction (Theorem 3)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.ratios import measured_ratio, run_strategy
from repro.core.bounds import ub_graham_ls, ub_lpt_no_restriction
from repro.core.strategies import LPTNoChoice, LPTNoRestriction
from repro.core.model import make_instance
from repro.uncertainty.realization import factors_realization, truthful_realization
from repro.uncertainty.stochastic import sample_realization
from tests.conftest import instances


class TestPlacement:
    def test_full_replication(self, small_instance):
        p = LPTNoRestriction().place(small_instance)
        assert p.is_full_replication()
        assert p.total_replicas() == small_instance.n * small_instance.m


class TestOnlineBehaviour:
    def test_dispatch_follows_lpt_order(self, small_instance):
        outcome = run_strategy(
            LPTNoRestriction(), small_instance, truthful_realization(small_instance)
        )
        starts = [outcome.trace.runs[j].start for j in range(small_instance.n)]
        order = small_instance.lpt_order()
        # Tasks earlier in LPT order never start later than tasks after them
        # ... at equal start times the earlier-order task has priority.
        for a, b in zip(order, order[1:]):
            assert starts[a] <= starts[b] + 1e-12

    def test_adapts_to_actuals(self):
        """A machine stuck on an inflated task receives no further tasks —
        the flexibility that distinguishes Strategy 2 from Strategy 1."""
        inst = make_instance([4.0, 4.0, 1.0, 1.0, 1.0, 1.0], m=2, alpha=2.0)
        # Task 0 runs double, task 1 runs half.
        real = factors_realization(inst, [2.0, 0.5, 1.0, 1.0, 1.0, 1.0])
        out_flex = run_strategy(LPTNoRestriction(), inst, real)
        out_pinned = run_strategy(LPTNoChoice(), inst, real)
        # All four unit tasks should pile onto the fast machine online.
        assert out_flex.makespan <= out_pinned.makespan
        assert out_flex.trace.machine_of(2) == out_flex.trace.machine_of(3)

    def test_work_conserving(self, small_instance):
        real = sample_realization(small_instance, "uniform", seed=1)
        outcome = run_strategy(LPTNoRestriction(), small_instance, real)
        # No machine may idle before the last task *starts*.
        last_start = max(r.start for r in outcome.trace.runs)
        loads_before = [0.0] * small_instance.m
        for r in outcome.trace.runs:
            loads_before[r.machine] += min(r.end, last_start) - min(r.start, last_start)
        # Every machine is busy from 0 until (at least) last_start.
        for load in loads_before:
            assert load == pytest.approx(last_start, rel=1e-9) or load >= last_start - 1e-9


class TestTheorem3Guarantee:
    def test_guarantee_is_min_form(self):
        inst_small_alpha = make_instance([1.0] * 4, m=4, alpha=1.1)
        assert LPTNoRestriction().guarantee(inst_small_alpha) == pytest.approx(
            ub_lpt_no_restriction(1.1, 4)
        )
        inst_big_alpha = make_instance([1.0] * 4, m=4, alpha=3.0)
        assert LPTNoRestriction().guarantee(inst_big_alpha) == pytest.approx(
            ub_graham_ls(4)
        )

    @given(instances(min_n=2, max_n=10, max_m=3), st.integers(0, 3))
    def test_ratio_within_guarantee(self, inst, seed):
        real = sample_realization(inst, "bimodal_extreme", seed)
        rec = measured_ratio(LPTNoRestriction(), inst, real, exact_limit=12)
        if rec.optimum.optimal:
            assert rec.ratio <= rec.guarantee * (1 + 1e-9)

    @given(instances(min_n=2, max_n=9, max_m=3))
    def test_graham_always_holds(self, inst):
        """Independent of alpha, the online LS bound 2 - 1/m holds."""
        real = sample_realization(inst, "bimodal_extreme", 7)
        rec = measured_ratio(LPTNoRestriction(), inst, real, exact_limit=12)
        if rec.optimum.optimal:
            assert rec.ratio <= ub_graham_ls(inst.m) * (1 + 1e-9)

    def test_alpha_one_truthful_equals_lpt(self):
        inst = make_instance([3.0, 3.0, 2.0, 2.0, 2.0], m=2, alpha=1.0)
        rec = measured_ratio(LPTNoRestriction(), inst, truthful_realization(inst))
        assert rec.ratio == pytest.approx(7.0 / 6.0)
