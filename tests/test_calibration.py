"""Tests for alpha calibration from historical data."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.calibration import (
    alpha_from_residual_model,
    calibration_report,
    fit_alpha,
)


class TestFitAlpha:
    def test_perfect_history_alpha_one(self):
        assert fit_alpha([1.0, 2.0, 3.0], [1.0, 2.0, 3.0]) == pytest.approx(1.0)

    def test_symmetric_misses(self):
        # 2x over and 2x under both imply alpha = 2.
        assert fit_alpha([1.0, 1.0], [2.0, 0.5]) == pytest.approx(2.0)

    def test_full_coverage_is_max_miss(self):
        est = [1.0, 1.0, 1.0, 1.0]
        act = [1.1, 1.2, 0.8, 3.0]
        assert fit_alpha(est, act) == pytest.approx(3.0)

    def test_partial_coverage_ignores_tail(self):
        est = [1.0] * 100
        act = [1.1] * 99 + [10.0]
        assert fit_alpha(est, act, coverage=0.95) == pytest.approx(1.1)
        assert fit_alpha(est, act, coverage=1.0) == pytest.approx(10.0)

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError, match="pair up"):
            fit_alpha([1.0], [1.0, 2.0])

    def test_empty(self):
        with pytest.raises(ValueError):
            fit_alpha([], [])

    @given(
        st.lists(
            st.floats(min_value=0.1, max_value=100.0, allow_nan=False),
            min_size=1,
            max_size=40,
        ),
        st.floats(min_value=1.0, max_value=3.0),
    )
    def test_band_actually_covers(self, estimates, true_alpha):
        """Actuals drawn within a true alpha band fit back within it."""
        rng = np.random.default_rng(0)
        factors = np.exp(
            rng.uniform(-math.log(true_alpha), math.log(true_alpha), len(estimates))
        )
        actuals = [e * f for e, f in zip(estimates, factors)]
        fitted = fit_alpha(estimates, actuals)
        assert fitted <= true_alpha * (1 + 1e-9)
        # And the fitted band covers every observation.
        for e, a in zip(estimates, actuals):
            assert e / fitted * (1 - 1e-9) <= a <= e * fitted * (1 + 1e-9)


class TestCalibrationReport:
    def test_rows_and_monotonicity(self):
        rng = np.random.default_rng(1)
        est = list(rng.uniform(1, 10, 200))
        act = [e * math.exp(rng.normal(0, 0.3)) for e in est]
        rows = calibration_report(est, act, m=8)
        alphas = [r["alpha"] for r in rows]
        assert alphas == sorted(alphas)  # higher coverage, wider band
        for r in rows:
            assert r["history_explained"] >= r["coverage_target"] - 1e-9
            assert r["guarantee_no_replication"] >= 1.0
            assert (
                r["guarantee_full_replication"] <= r["guarantee_no_replication"] + 1e-9
            )

    def test_full_coverage_row_explains_everything(self):
        rows = calibration_report([1.0, 1.0], [2.0, 0.5], m=4, coverages=(1.0,))
        assert rows[0]["history_explained"] == pytest.approx(1.0)


class TestResidualModel:
    def test_two_sigma(self):
        assert alpha_from_residual_model(0.3, z=2.0) == pytest.approx(math.exp(0.6))

    def test_validates(self):
        with pytest.raises(ValueError):
            alpha_from_residual_model(0.0)

    def test_coverage_approximation(self):
        """exp(2 sigma) covers ~95% of lognormal residuals."""
        rng = np.random.default_rng(2)
        sigma = 0.4
        residuals = np.exp(rng.normal(0, sigma, 20000))
        alpha = alpha_from_residual_model(sigma, z=2.0)
        covered = np.mean((residuals <= alpha) & (residuals >= 1 / alpha))
        assert 0.93 <= covered <= 0.97