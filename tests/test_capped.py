"""Tests for memory-capped replication (repro.memory.capped)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.ratios import run_strategy
from repro.memory.capped import CappedReplication, min_feasible_capacity
from repro.memory.model import memory_lower_bound
from repro.uncertainty.stochastic import sample_realization
from repro.workloads.memory_workloads import independent_sizes
from tests.conftest import sized_instances


@pytest.fixture
def inst():
    return independent_sizes(16, 4, alpha=1.8, seed=2)


class TestFeasibility:
    def test_cap_respected(self, inst):
        cap = 1.5 * min_feasible_capacity(inst)
        p = CappedReplication(cap).place(inst)
        assert max(p.memory_per_machine()) <= cap * (1 + 1e-9)

    def test_generous_cap_is_full_replication(self, inst):
        p = CappedReplication(inst.total_size).place(inst)
        assert p.is_full_replication()

    def test_tight_cap_is_pinning(self, inst):
        cap = min_feasible_capacity(inst)
        p = CappedReplication(cap, pin_by="memory").place(inst)
        # At exactly the pi2 capacity, essentially nothing extra fits —
        # every task has one replica except possibly tiny fillers.
        assert max(p.memory_per_machine()) <= cap * (1 + 1e-9)

    def test_infeasible_cap_raises(self, inst):
        tiny = 0.25 * memory_lower_bound(inst.sizes, inst.m)
        with pytest.raises(ValueError, match="no feasible placement"):
            CappedReplication(tiny).place(inst)

    def test_pin_by_time_raises_when_too_tight(self, inst):
        cap = min_feasible_capacity(inst) * 1.001
        # The time-balanced pinning usually needs more memory headroom.
        try:
            CappedReplication(cap, pin_by="time").place(inst)
        except ValueError as exc:
            assert "time-balanced" in str(exc)

    def test_pin_by_validated(self):
        with pytest.raises(ValueError, match="pin_by"):
            CappedReplication(1.0, pin_by="hope")


class TestMonotonicity:
    def test_more_capacity_more_replicas(self, inst):
        base = min_feasible_capacity(inst)
        counts = [
            CappedReplication(c).place(inst).total_replicas()
            for c in (base, 2 * base, 4 * base, inst.total_size)
        ]
        assert counts == sorted(counts)
        assert counts[-1] == inst.n * inst.m

    @given(sized_instances(min_n=2, max_n=10, max_m=3), st.integers(0, 2))
    def test_feasible_end_to_end(self, inst, seed):
        if all(t.size == 0 for t in inst):
            return
        cap = 2.0 * min_feasible_capacity(inst)
        if cap <= 0:
            return
        strategy = CappedReplication(cap)
        real = sample_realization(inst, "bimodal_extreme", seed)
        outcome = run_strategy(strategy, inst, real)
        outcome.trace.validate(outcome.placement, real)
        assert outcome.memory_max <= cap * (1 + 1e-9)


class TestTradeoff:
    def test_capacity_buys_makespan(self, inst):
        """Across seeds, the generous cap's mean makespan under extreme
        realizations beats the tight cap's."""
        tight = CappedReplication(1.05 * min_feasible_capacity(inst))
        roomy = CappedReplication(inst.total_size)
        tight_total = roomy_total = 0.0
        for seed in range(5):
            real = sample_realization(inst, "bimodal_extreme", 100 + seed)
            tight_total += run_strategy(tight, inst, real).makespan
            roomy_total += run_strategy(roomy, inst, real).makespan
        assert roomy_total <= tight_total * (1 + 1e-9)

    def test_zero_size_tasks_replicate_free_and_cap_binds(self):
        from repro.core.model import make_instance

        # Time pinning: task0 -> m0 (mem 4), tasks 1,2 -> m1 (mem 5).
        inst = make_instance([3.0, 2.0, 1.0], m=2, sizes=[4.0, 0.0, 5.0], alpha=1.5)
        p = CappedReplication(5.0).place(inst)
        # Zero-size task replicates for free; the sized tasks don't fit on
        # the other machine (4+5 or 5+4 would exceed the cap).
        assert p.replication_count(1) == 2
        assert p.replication_count(0) == 1
        assert p.replication_count(2) == 1
        assert max(p.memory_per_machine()) <= 5.0
