"""Property-based validation of every theorem in the paper.

One test class per theorem.  Each samples random instances and
α-admissible realizations (including the adversarial extremes the proofs
use) and checks the theorem's inequality against the *exact* clairvoyant
optimum.  A failure here would mean either a bug in an algorithm or a
counterexample to the paper — both worth knowing.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.ratios import measured_ratio, run_strategy
from repro.core.adversary import exhaustive_worst_case, theorem1_instance, theorem1_realization
from repro.core.bounds import (
    lb_no_replication,
    ub_graham_ls,
    ub_lpt_no_choice,
    ub_lpt_no_restriction,
    ub_ls_group,
)
from repro.core.strategies import LPTNoChoice, LPTNoRestriction, LSGroup
from repro.core.model import Instance, make_instance
from repro.exact.optimal import optimal_makespan
from repro.memory.abo import ABO
from repro.memory.model import memory_lower_bound
from repro.memory.sabo import SABO
from repro.uncertainty.realization import factors_realization
from repro.uncertainty.stochastic import sample_realization
from tests.conftest import instances, sized_instances

REALIZATION_MODELS = ("bimodal_extreme", "log_uniform", "uniform")


def _check_ratio(strategy, inst, real, guarantee) -> None:
    rec = measured_ratio(strategy, inst, real, exact_limit=14)
    if rec.optimum.optimal:
        assert rec.ratio <= guarantee * (1 + 1e-9), (
            f"{strategy.name}: measured ratio {rec.ratio:.6f} exceeds guarantee "
            f"{guarantee:.6f} on n={inst.n}, m={inst.m}, alpha={inst.alpha}, "
            f"realization={real.label}"
        )


class TestTheorem1LowerBoundIsRealizable:
    """The adversary construction approaches its stated bound and the bound
    never exceeds Theorem 2's guarantee (consistency of the sandwich)."""

    @pytest.mark.parametrize("m", [2, 3, 4])
    @pytest.mark.parametrize("alpha", [1.3, 2.0])
    def test_adversary_ratio_bounded_by_theory(self, m, alpha):
        lam = 3
        inst = theorem1_instance(lam, m, alpha)
        strategy = LPTNoChoice()
        placement = strategy.place(inst)
        real = theorem1_realization(placement)
        outcome = run_strategy(strategy, inst, real)
        opt = optimal_makespan(real.actuals, m, exact_limit=lam * m)
        ratio = outcome.makespan / opt.value
        # Sandwich: measured <= Th.2 guarantee, and the Th.1 bound sits
        # between 1 and the Th.2 guarantee.
        assert 1.0 - 1e-9 <= ratio <= ub_lpt_no_choice(alpha, m) + 1e-9
        assert 1.0 <= lb_no_replication(alpha, m) <= ub_lpt_no_choice(alpha, m) + 1e-9

    def test_adversary_ratio_grows_with_lambda(self):
        """Against *balanced* placements the adversary's measured ratio is
        non-decreasing in lambda and approaches the Theorem-1 bound."""
        m, alpha = 2, 2.0
        ratios = []
        for lam in (1, 2, 4):
            inst = theorem1_instance(lam, m, alpha)
            strategy = LPTNoChoice()
            placement = strategy.place(inst)
            real = theorem1_realization(placement)
            outcome = run_strategy(strategy, inst, real)
            opt = optimal_makespan(real.actuals, m, exact_limit=lam * m)
            ratios.append(outcome.makespan / opt.value)
        assert ratios == sorted(ratios)
        bound = lb_no_replication(alpha, m)
        # Already at lambda=4 the adversary extracts > 80% of the bound.
        assert ratios[-1] >= 0.8 * bound


class TestTheorem2:
    """LPT-No Choice <= 2α²m/(2α²+m−1) · OPT."""

    @given(
        instances(min_n=2, max_n=11, max_m=4),
        st.sampled_from(REALIZATION_MODELS),
        st.integers(0, 4),
    )
    def test_random_realizations(self, inst, model, seed):
        real = sample_realization(inst, model, seed)
        _check_ratio(LPTNoChoice(), inst, real, ub_lpt_no_choice(inst.alpha, inst.m))

    @given(instances(min_n=2, max_n=9, max_m=3))
    @settings(max_examples=15)
    def test_exhaustive_extreme_realizations(self, inst):
        """Search all 2^n extreme realizations: even the worst stays within
        Theorem 2."""
        strategy = LPTNoChoice()

        def run(real):
            return run_strategy(strategy, inst, real).makespan

        _, worst = exhaustive_worst_case(inst, run)
        assert worst <= ub_lpt_no_choice(inst.alpha, inst.m) * (1 + 1e-9)


class TestTheorem3:
    """LPT-No Restriction <= min(1 + (m-1)/m · α²/2, 2 − 1/m) · OPT."""

    @given(
        instances(min_n=2, max_n=11, max_m=4),
        st.sampled_from(REALIZATION_MODELS),
        st.integers(0, 4),
    )
    def test_random_realizations(self, inst, model, seed):
        real = sample_realization(inst, model, seed)
        _check_ratio(
            LPTNoRestriction(), inst, real, ub_lpt_no_restriction(inst.alpha, inst.m)
        )

    @given(instances(min_n=2, max_n=9, max_m=3))
    @settings(max_examples=15)
    def test_exhaustive_extreme_realizations(self, inst):
        strategy = LPTNoRestriction()

        def run(real):
            return run_strategy(strategy, inst, real).makespan

        _, worst = exhaustive_worst_case(inst, run)
        assert worst <= ub_lpt_no_restriction(inst.alpha, inst.m) * (1 + 1e-9)

    def test_lemma1_two_task_bound(self):
        """Lemma 1: if the critical machine ran >= 2 tasks, OPT >= 2 p_l/α²."""
        inst = make_instance([4.0, 4.0, 4.0, 3.0, 3.0, 3.0], m=2, alpha=1.5)
        real = sample_realization(inst, "bimodal_extreme", 3)
        outcome = run_strategy(LPTNoRestriction(), inst, real)
        per_machine = outcome.trace.tasks_per_machine(inst.m)
        # Find the task reaching C_max.
        ends = outcome.trace.completion_times()
        l = max(range(inst.n), key=lambda j: ends[j])
        machine_l = outcome.trace.machine_of(l)
        if len(per_machine[machine_l]) >= 2:
            opt = optimal_makespan(real.actuals, inst.m).value
            assert opt >= 2.0 * real.actual(l) / inst.alpha**2 - 1e-9


class TestTheorem4:
    """LS-Group(k) <= [kα²/(α²+k−1)(1+(k−1)/m) + (m−k)/m] · OPT."""

    @given(
        instances(min_n=2, max_n=11, max_m=4),
        st.integers(min_value=1, max_value=4),
        st.sampled_from(REALIZATION_MODELS),
        st.integers(0, 3),
    )
    def test_random_realizations(self, inst, k, model, seed):
        if inst.m % k != 0:
            return
        real = sample_realization(inst, model, seed)
        _check_ratio(LSGroup(k), inst, real, ub_ls_group(inst.alpha, inst.m, k))

    @given(instances(min_n=2, max_n=8, max_m=4))
    @settings(max_examples=10)
    def test_exhaustive_all_divisors(self, inst):
        for k in range(1, inst.m + 1):
            if inst.m % k != 0:
                continue
            strategy = LSGroup(k)

            def run(real):
                return run_strategy(strategy, inst, real).makespan

            _, worst = exhaustive_worst_case(inst, run)
            assert worst <= ub_ls_group(inst.alpha, inst.m, k) * (1 + 1e-9)

    def test_graham_holds_for_k1(self):
        """k=1 is plain online LS on everything: Graham's bound applies."""
        inst = make_instance([5.0, 1.0, 1.0, 1.0, 1.0, 1.0], m=3, alpha=1.2)
        real = sample_realization(inst, "bimodal_extreme", 1)
        rec = measured_ratio(LSGroup(1), inst, real)
        assert rec.ratio <= ub_graham_ls(inst.m) * (1 + 1e-9)


class TestTheorems5And6Sabo:
    @given(
        sized_instances(min_n=2, max_n=10, max_m=3),
        st.sampled_from((0.25, 1.0, 4.0)),
        st.sampled_from(REALIZATION_MODELS),
        st.integers(0, 2),
    )
    def test_both_objectives(self, inst, delta, model, seed):
        strategy = SABO(delta)
        real = sample_realization(inst, model, seed)
        outcome = run_strategy(strategy, inst, real)
        opt = optimal_makespan(real.actuals, inst.m, exact_limit=12)
        if opt.optimal:
            assert outcome.makespan <= strategy.makespan_guarantee(inst) * opt.value * (
                1 + 1e-9
            )
        mem_lb = memory_lower_bound(inst.sizes, inst.m)
        if mem_lb > 0:
            assert outcome.memory_max <= strategy.memory_guarantee(inst) * mem_lb * (
                1 + 1e-9
            )


class TestTheorems7And8Abo:
    @given(
        sized_instances(min_n=2, max_n=10, max_m=3),
        st.sampled_from((0.25, 1.0, 4.0)),
        st.sampled_from(REALIZATION_MODELS),
        st.integers(0, 2),
    )
    def test_both_objectives(self, inst, delta, model, seed):
        strategy = ABO(delta)
        real = sample_realization(inst, model, seed)
        outcome = run_strategy(strategy, inst, real)
        opt = optimal_makespan(real.actuals, inst.m, exact_limit=12)
        if opt.optimal:
            assert outcome.makespan <= strategy.makespan_guarantee(inst) * opt.value * (
                1 + 1e-9
            )
        mem_lb = memory_lower_bound(inst.sizes, inst.m)
        if mem_lb > 0:
            assert outcome.memory_max <= strategy.memory_guarantee(inst) * mem_lb * (
                1 + 1e-9
            )


class TestCrossTheoremConsistency:
    """Relations the paper states between the results."""

    @given(st.floats(min_value=1.0, max_value=3.0), st.integers(min_value=2, max_value=100))
    def test_sandwich_lb_le_ub(self, alpha, m):
        assert lb_no_replication(alpha, m) <= ub_lpt_no_choice(alpha, m) + 1e-12

    @given(st.floats(min_value=1.0, max_value=3.0), st.integers(min_value=2, max_value=100))
    def test_full_replication_beats_no_replication_guarantee(self, alpha, m):
        """Strategy 2's guarantee never exceeds Strategy 1's — replication
        can only help in guarantee terms."""
        assert ub_lpt_no_restriction(alpha, m) <= ub_lpt_no_choice(alpha, m) + 1e-12

    @given(st.floats(min_value=1.0, max_value=3.0))
    def test_group_guarantee_interpolates(self, alpha):
        """LS-Group's guarantee at k=1 is near Strategy 2's regime and at
        k=m near Strategy 1's (within the looseness the paper notes)."""
        m = 30
        g1 = ub_ls_group(alpha, m, 1)
        gm = ub_ls_group(alpha, m, m)
        assert g1 <= gm + 1e-9
        assert g1 <= ub_graham_ls(m) + 1e-9
