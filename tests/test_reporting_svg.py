"""Tests that the figure reports emit their SVG artifacts."""

from __future__ import annotations

import xml.etree.ElementTree as ET

import pytest

from repro.analysis.csvio import results_dir
from repro.reporting import (
    fig1_report,
    fig2_report,
    fig3_report,
    fig4_report,
    fig5_report,
    fig6_report,
)


@pytest.mark.parametrize(
    "report_fn,svg_names",
    [
        (fig1_report, ["fig1_adversary.svg"]),
        (fig2_report, ["fig2_group_example.svg"]),
        (fig4_report, ["fig4_sabo_schedule.svg"]),
        (fig5_report, ["fig5_abo_schedule.svg"]),
    ],
)
def test_gantt_reports_write_valid_svg(report_fn, svg_names):
    report_fn()
    for name in svg_names:
        path = results_dir() / name
        assert path.exists()
        root = ET.parse(path).getroot()
        assert root.tag.endswith("svg")


def test_fig3_writes_one_svg_per_alpha(tmp_path, monkeypatch):
    # Non-canonical parameters: redirect the writes so the run does not
    # clobber the shipped m=210 results/fig3_ratio_replication.csv.
    import repro.reporting as reporting

    monkeypatch.setattr(reporting, "results_dir", lambda: tmp_path)
    fig3_report(m=30, alphas=(1.2, 1.9))
    for alpha in (1.2, 1.9):
        path = tmp_path / f"fig3_alpha_{alpha:g}.svg"
        assert path.exists()
        ET.parse(path)


def test_fig6_writes_three_panels():
    fig6_report()
    panels = list(results_dir().glob("fig6_a2_*.svg"))
    assert len(panels) >= 3
    for p in panels:
        ET.parse(p)
