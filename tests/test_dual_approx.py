"""Unit and property tests for repro.schedulers.dual_approx."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exact.optimal import optimal_makespan
from repro.schedulers.dual_approx import dual_approx_schedule, dual_feasible_schedule
from repro.schedulers.lpt import lpt_schedule
from tests.conftest import estimates_strategy


class TestDualFeasible:
    def test_infeasible_when_task_exceeds_deadline(self):
        assert dual_feasible_schedule([5.0], 2, deadline=4.0, eps=0.2) is None

    def test_infeasible_when_total_exceeds(self):
        assert dual_feasible_schedule([3.0, 3.0, 3.0], 1, deadline=5.0, eps=0.2) is None

    def test_feasible_trivial(self):
        a = dual_feasible_schedule([1.0, 1.0], 2, deadline=1.0, eps=0.25)
        assert a is not None
        assert sorted(a) == [0, 1]

    def test_relaxed_deadline_respected(self):
        times = [4.0, 3.0, 3.0, 2.0]
        eps = 0.25
        deadline = 6.0
        a = dual_feasible_schedule(times, 2, deadline, eps)
        assert a is not None
        loads = [0.0, 0.0]
        for j, i in enumerate(a):
            loads[i] += times[j]
        assert max(loads) <= (1 + 2 * eps) * deadline * (1 + 1e-9)

    def test_none_certifies_infeasibility(self):
        """When the dual test says None, the deadline must truly be
        infeasible (soundness of the certificate)."""
        times = [3.0, 3.0, 3.0, 3.0, 3.0]
        opt = optimal_makespan(times, 2).value  # 9
        a = dual_feasible_schedule(times, 2, deadline=opt * 0.8, eps=0.2)
        assert a is None

    @given(estimates_strategy(1, 10), st.integers(min_value=1, max_value=3))
    def test_feasible_at_optimum(self, times, m):
        """At deadline = OPT the test must succeed (completeness)."""
        opt = optimal_makespan(times, m, exact_limit=12)
        if not opt.optimal:
            return
        a = dual_feasible_schedule(times, m, opt.value * (1 + 1e-9), eps=0.3)
        assert a is not None


class TestDualApproxSchedule:
    @given(estimates_strategy(1, 10), st.integers(min_value=1, max_value=3))
    def test_guarantee(self, times, m):
        """The binary-searched schedule is within (1+2eps) of optimum."""
        eps = 0.2
        opt = optimal_makespan(times, m, exact_limit=12)
        if not opt.optimal:
            return
        r = dual_approx_schedule(times, m, eps=eps)
        assert r.makespan <= (1 + 2 * eps) * opt.value * (1 + 1e-6)

    @given(estimates_strategy(1, 12), st.integers(min_value=1, max_value=4))
    def test_never_worse_than_lpt(self, times, m):
        r = dual_approx_schedule(times, m, eps=0.2)
        assert r.makespan <= lpt_schedule(times, m).makespan * (1 + 1e-9)

    @given(estimates_strategy(1, 10), st.integers(min_value=1, max_value=3))
    def test_assignment_loads_consistent(self, times, m):
        r = dual_approx_schedule(times, m, eps=0.3)
        loads = [0.0] * m
        for pos, j in enumerate(r.order):
            loads[r.assignment[pos]] += times[j]
        assert loads == pytest.approx(list(r.loads))
        assert sum(loads) == pytest.approx(sum(times))

    def test_small_eps_near_optimal(self):
        times = [3.0, 3.0, 2.0, 2.0, 2.0]
        r = dual_approx_schedule(times, 2, eps=0.05)
        assert r.makespan <= 6.0 * 1.11  # OPT=6, within 1+2eps

    def test_eps_validated(self):
        with pytest.raises(ValueError):
            dual_approx_schedule([1.0], 1, eps=0.0)
