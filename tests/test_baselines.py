"""Unit tests for repro.schedulers.baselines."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.schedulers.baselines import (
    random_schedule,
    round_robin_schedule,
    single_machine_pile,
    spt_schedule,
)
from repro.schedulers.list_scheduling import list_schedule
from tests.conftest import estimates_strategy


class TestRoundRobin:
    def test_cyclic_assignment(self):
        r = round_robin_schedule([1.0] * 5, 2)
        assert r.assignment == (0, 1, 0, 1, 0)

    def test_loads(self):
        r = round_robin_schedule([1.0, 2.0, 3.0], 2)
        assert r.loads == (4.0, 2.0)


class TestRandom:
    def test_deterministic_given_seed(self):
        a = random_schedule([1.0] * 10, 3, seed=5)
        b = random_schedule([1.0] * 10, 3, seed=5)
        assert a.assignment == b.assignment

    def test_different_seeds(self):
        a = random_schedule([1.0] * 20, 3, seed=1)
        b = random_schedule([1.0] * 20, 3, seed=2)
        assert a.assignment != b.assignment

    @given(estimates_strategy(1, 15), st.integers(min_value=1, max_value=4))
    def test_valid_machines(self, times, m):
        r = random_schedule(times, m, seed=0)
        assert all(0 <= i < m for i in r.assignment)
        assert sum(r.loads) == pytest.approx(sum(times))


class TestSpt:
    def test_order_is_ascending(self):
        r = spt_schedule([3.0, 1.0, 2.0], 1)
        assert r.order == (1, 2, 0)

    @given(estimates_strategy(1, 12), st.integers(min_value=1, max_value=4))
    def test_same_load_conservation(self, times, m):
        r = spt_schedule(times, m)
        assert sum(r.loads) == pytest.approx(sum(times))


class TestSingleMachinePile:
    def test_everything_on_zero(self):
        r = single_machine_pile([1.0, 2.0], 3)
        assert r.assignment == (0, 0)
        assert r.loads == (3.0, 0.0, 0.0)

    @given(estimates_strategy(1, 12), st.integers(min_value=1, max_value=4))
    def test_is_upper_anchor(self, times, m):
        """Any real scheduler beats (or ties) the pile."""
        pile = single_machine_pile(times, m)
        ls = list_schedule(times, m)
        assert ls.makespan <= pile.makespan * (1 + 1e-9)
