"""Unit tests for repro.reporting (table/figure builders)."""

from __future__ import annotations

import pytest

from repro.analysis.csvio import read_csv
from repro.reporting import (
    fig1_report,
    fig2_report,
    fig3_report,
    fig3_series_rows,
    fig4_report,
    fig5_report,
    fig6_report,
    fig6_series_rows,
    table1_report,
    table2_report,
)


class TestTable1:
    def test_contains_all_theorems(self):
        out = table1_report()
        for marker in ("Th. 1", "Th. 2", "Th. 3", "Th. 4", "Graham"):
            assert marker in out

    def test_evaluated_at_paper_params(self):
        out = table1_report()
        assert "m = 210" in out
        for alpha in ("1.1", "1.5", "2"):
            assert alpha in out

    def test_custom_params(self):
        out = table1_report(alphas=(1.25,), m=12, ks=(2,))
        assert "m = 12" in out
        assert "LS-Group k=2" in out


class TestTable2:
    def test_contains_guarantee_forms(self):
        out = table2_report()
        assert "SABO_D" in out and "ABO_D" in out
        for marker in ("Th. 5", "Th. 6", "Th. 7", "Th. 8"):
            assert marker in out

    def test_paper_parameterizations(self):
        out = table2_report()
        assert "m = 5" in out


class TestFig1:
    def test_contains_gantt_and_ratio(self):
        out = fig1_report()
        assert "M0" in out  # gantt rows
        assert "measured ratio" in out
        assert "lambda=3, m=6" in out

    def test_measured_below_asymptotic_bound(self):
        out = fig1_report()
        ratio = float(
            [l for l in out.splitlines() if "measured ratio" in l][0].split("=")[1]
        )
        bound = float(
            [l for l in out.splitlines() if "Theorem-1 bound" in l][0].split("=")[1]
        )
        assert 1.0 <= ratio <= bound + 1e-9


class TestFig2:
    def test_structure(self):
        out = fig2_report()
        assert "group G1" in out and "group G2" in out
        assert "Phase 1" in out and "Phase 2" in out
        assert "|M_j| = 3" in out


class TestFig3:
    def test_three_panels(self):
        out = fig3_report()
        assert out.count("Figure 3 —") == 3

    def test_csv_written(self):
        fig3_report()
        from repro.analysis.csvio import results_dir

        rows = read_csv(results_dir() / "fig3_ratio_replication.csv")
        strategies = {r["strategy"] for r in rows}
        assert strategies == {
            "lower_bound",
            "lpt_no_choice",
            "lpt_no_restriction",
            "ls_group",
        }

    def test_series_rows_complete(self):
        rows = fig3_series_rows(1.5, 210)
        group_rows = [r for r in rows if r["strategy"] == "ls_group"]
        assert len(group_rows) == 16  # divisors of 210

    def test_findings_printed(self):
        out = fig3_report()
        assert "min replicas for LS-Group to beat No Choice" in out


class TestFig4AndFig5:
    def test_fig4_shows_split(self):
        out = fig4_report()
        assert "S1" in out and "S2" in out
        assert "guarantees" in out

    def test_fig5_shows_replication(self):
        out = fig5_report()
        assert "replicated everywhere" in out
        assert "Mem_max" in out

    def test_abo_memory_at_least_sabo(self):
        mem4 = float(
            [l for l in fig4_report().splitlines() if l.startswith("Mem_max")][0]
            .split("=")[1]
            .split("(")[0]
        )
        mem5 = float(
            [l for l in fig5_report().splitlines() if l.startswith("Mem_max")][0]
            .split("=")[1]
            .split("(")[0]
        )
        assert mem5 >= mem4


class TestFig6:
    def test_three_panels(self):
        out = fig6_report()
        assert out.count("Figure 6 —") == 3

    def test_csv_series(self):
        rows = fig6_series_rows()
        panels = {r["panel"] for r in rows}
        assert len(panels) == 3
        algos = {r["algorithm"] for r in rows}
        assert algos == {"sabo", "abo"}

    def test_crossover_annotation(self):
        out = fig6_report()
        assert "better makespan guarantee" in out
