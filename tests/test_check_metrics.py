"""Tests for the metrics-reference doc gate (repro.tools.check_metrics).

The tool derives the ``docs/observability.md`` metrics table from an AST
scan of the package; these tests pin the extraction rules (literals
verbatim, f-strings as ``*`` families, variables skipped) and the
verify/--write contract — plus the real-repo invariant CI relies on: the
committed table matches the committed code.
"""

from __future__ import annotations

import pytest

from repro.tools.check_metrics import (
    BEGIN_MARKER,
    END_MARKER,
    extract_block,
    main,
    render_table,
    scan_metrics,
)


def write_pkg(root, source, name="mod.py"):
    root.mkdir(parents=True, exist_ok=True)
    (root / name).write_text(source, encoding="utf-8")
    return root


class TestScanMetrics:
    def test_literals_and_spans(self, tmp_path):
        root = write_pkg(
            tmp_path / "pkg",
            "def f(tracer, registry):\n"
            "    tracer.count('grid.cells_done')\n"
            "    registry.gauge('sim.makespan').set(1.0)\n"
            "    registry.timer('phase1.solve').observe(0.1)\n"
            "    with tracer.span('simulate'):\n"
            "        pass\n",
        )
        metrics = scan_metrics(root)
        assert metrics["grid.cells_done"]["kind"] == "counter"
        assert metrics["sim.makespan"]["kind"] == "gauge"
        assert metrics["phase1.solve"]["kind"] == "timer"
        # Spans register the timer their exit observes.
        assert metrics["span.simulate"]["kind"] == "timer"
        assert metrics["grid.cells_done"]["modules"] == {"mod.py"}

    def test_fstrings_become_wildcard_families(self, tmp_path):
        root = write_pkg(
            tmp_path / "pkg",
            "def f(tracer, name):\n"
            "    tracer.count(f'grid.strategy.{name}')\n",
        )
        assert "grid.strategy.*" in scan_metrics(root)

    def test_plain_variables_are_forwarded_not_minted(self, tmp_path):
        root = write_pkg(
            tmp_path / "pkg",
            "def f(registry, name):\n"
            "    registry.timer(name).observe(0.1)\n",
        )
        assert scan_metrics(root) == {}

    def test_kind_conflict_raises(self, tmp_path):
        root = write_pkg(
            tmp_path / "pkg",
            "def f(tracer, registry):\n"
            "    tracer.count('x')\n"
            "    registry.gauge('x').set(1.0)\n",
        )
        with pytest.raises(ValueError, match="minted as both"):
            scan_metrics(root)

    def test_tools_subtree_excluded(self, tmp_path):
        root = tmp_path / "pkg"
        write_pkg(root, "def f(tracer):\n    tracer.count('real')\n")
        write_pkg(root / "tools", "def f(tracer):\n    tracer.count('fake')\n")
        metrics = scan_metrics(root)
        assert "real" in metrics and "fake" not in metrics

    def test_multiple_modules_recorded(self, tmp_path):
        root = tmp_path / "pkg"
        write_pkg(root, "def f(t):\n    t.count('c')\n", name="a.py")
        write_pkg(root, "def g(t):\n    t.count('c')\n", name="b.py")
        assert scan_metrics(root)["c"]["modules"] == {"a.py", "b.py"}


class TestRenderAndExtract:
    def test_table_sorted_with_markers(self):
        table = render_table(
            {
                "b": {"kind": "counter", "modules": {"m.py"}},
                "a": {"kind": "gauge", "modules": {"m.py"}},
            }
        )
        lines = table.splitlines()
        assert lines[0] == BEGIN_MARKER and lines[-1] == END_MARKER
        assert lines.index("| `a` | gauge | `m.py` |") < lines.index(
            "| `b` | counter | `m.py` |"
        )

    def test_extract_round_trips(self):
        table = render_table({"a": {"kind": "counter", "modules": {"m.py"}}})
        assert extract_block(f"intro\n\n{table}\n\noutro\n") == table

    def test_extract_missing_markers(self):
        assert extract_block("no markers here") is None


class TestMainCli:
    def doc_with_block(self, tmp_path, block):
        doc = tmp_path / "doc.md"
        doc.write_text(f"# Metrics\n\n{block}\n", encoding="utf-8")
        return doc

    def pkg(self, tmp_path, source="def f(t):\n    t.count('c')\n"):
        return write_pkg(tmp_path / "pkg", source)

    def test_fresh_table_passes(self, tmp_path, capsys):
        root = self.pkg(tmp_path)
        doc = self.doc_with_block(tmp_path, render_table(scan_metrics(root)))
        assert main(["--root", str(root), "--doc", str(doc)]) == 0
        assert "OK" in capsys.readouterr().out

    def test_stale_table_fails_with_diff(self, tmp_path, capsys):
        root = self.pkg(tmp_path)
        doc = self.doc_with_block(
            tmp_path, f"{BEGIN_MARKER}\nold junk\n{END_MARKER}"
        )
        assert main(["--root", str(root), "--doc", str(doc)]) == 1
        err = capsys.readouterr().err
        assert "stale" in err and "-old junk" in err

    def test_write_regenerates_then_verifies_clean(self, tmp_path):
        root = self.pkg(tmp_path)
        doc = self.doc_with_block(
            tmp_path, f"{BEGIN_MARKER}\nold junk\n{END_MARKER}"
        )
        assert main(["--root", str(root), "--doc", str(doc), "--write"]) == 0
        assert "`c`" in doc.read_text()
        assert main(["--root", str(root), "--doc", str(doc)]) == 0

    def test_missing_markers_fail_even_with_write(self, tmp_path, capsys):
        root = self.pkg(tmp_path)
        doc = tmp_path / "doc.md"
        doc.write_text("no markers\n", encoding="utf-8")
        assert main(["--root", str(root), "--doc", str(doc)]) == 1
        assert main(["--root", str(root), "--doc", str(doc), "--write"]) == 1
        assert "has no" in capsys.readouterr().err

    def test_kind_conflict_reported_as_emission_bug(self, tmp_path, capsys):
        root = self.pkg(
            tmp_path,
            "def f(t, r):\n    t.count('x')\n    r.gauge('x').set(1)\n",
        )
        doc = self.doc_with_block(tmp_path, f"{BEGIN_MARKER}\n{END_MARKER}")
        assert main(["--root", str(root), "--doc", str(doc)]) == 1
        assert "minted as both" in capsys.readouterr().err


class TestCommittedDocs:
    def test_repo_table_matches_repo_code(self, capsys):
        # The same invariant the CI lint job enforces.
        assert main([]) == 0
        assert "OK" in capsys.readouterr().out
