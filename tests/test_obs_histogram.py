"""Histogram Timer and cross-worker merge tests (repro.obs.metrics/merge).

Two properties carry the parallel-sweep telemetry story:

* **count-exactness** — merging per-worker histograms yields bucket
  counts identical to one timer observing every value serially, so the
  parent's percentiles cover every worker observation;
* **depth re-basing** — replaying worker events under an open parent
  span stack produces a trace that still nests and schema-validates,
  even when grids nest inside grids.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import JsonlSink, MemorySink, observed
from repro.obs.merge import merge_registry_summary, replay_events
from repro.obs.metrics import BUCKET_BOUNDS, MetricsRegistry, Timer
from repro.obs.validate import validate_trace

durations = st.floats(
    min_value=1e-7, max_value=5e3, allow_nan=False, allow_infinity=False
)


class TestTimerHistogram:
    def test_single_observation_reports_itself_everywhere(self):
        timer = Timer("t")
        timer.observe(0.123)
        assert timer.p50 == pytest.approx(0.123)
        assert timer.p90 == pytest.approx(0.123)
        assert timer.p99 == pytest.approx(0.123)
        assert timer.percentile(1.0) == pytest.approx(0.123)

    def test_percentiles_clamped_to_observed_range(self):
        timer = Timer("t")
        for value in (0.010, 0.011, 0.012):
            timer.observe(value)
        assert 0.010 <= timer.p50 <= 0.012
        assert 0.010 <= timer.p99 <= 0.012

    def test_percentiles_order_and_accuracy(self):
        timer = Timer("t")
        for exponent in range(-3, 2):  # 1ms .. 10s, one per decade
            timer.observe(10.0 ** exponent)
        assert timer.p50 <= timer.p90 <= timer.p99
        # p99 lands in the top bucket; log-bucket resolution is ~1.78x.
        assert timer.p99 == pytest.approx(10.0, rel=0.8)

    def test_overflow_bucket_beyond_bounds(self):
        timer = Timer("t")
        timer.observe(5000.0)  # above the 1000s top bound
        assert timer.buckets[len(BUCKET_BOUNDS)] == 1
        assert timer.p99 == pytest.approx(5000.0)  # clamped to max

    def test_empty_timer_quantile_is_mean_zero(self):
        timer = Timer("t")
        assert timer.p50 == 0.0

    def test_invalid_quantile_rejected(self):
        timer = Timer("t")
        with pytest.raises(ValueError):
            timer.percentile(0.0)
        with pytest.raises(ValueError):
            timer.percentile(1.5)

    def test_bucket_counts_sparse_round_trip(self):
        timer = Timer("t")
        for value in (0.001, 0.002, 1.0):
            timer.observe(value)
        sparse = timer.bucket_counts()
        assert sum(sparse.values()) == 3
        other = Timer("u")
        other.merge(
            count=timer.count, total=timer.total, minimum=timer.min,
            maximum=timer.max, buckets=sparse,
        )
        assert other.buckets == timer.buckets

    def test_merge_without_buckets_keeps_count_but_not_quantiles(self):
        timer = Timer("t")
        timer.merge(count=3, total=3.0, minimum=0.5, maximum=2.0)
        assert timer.count == 3
        assert sum(timer.buckets) == 0
        assert timer.p50 == pytest.approx(1.0)  # falls back to the mean

    def test_merge_empty_is_noop(self):
        timer = Timer("t")
        timer.merge(count=0, total=0.0, minimum=math.inf, maximum=0.0)
        assert timer.count == 0 and timer.min == math.inf

    @given(st.lists(durations, min_size=1, max_size=60), st.integers(2, 5))
    @settings(max_examples=60, deadline=None)
    def test_merged_histogram_is_count_exact(self, values, workers):
        serial = Timer("serial")
        for value in values:
            serial.observe(value)

        registry = MetricsRegistry()
        for w in range(workers):
            chunk = values[w::workers]
            if not chunk:
                continue
            worker_registry = MetricsRegistry()
            worker_timer = worker_registry.timer("t")
            for value in chunk:
                worker_timer.observe(value)
            merge_registry_summary(registry, worker_registry.summary())

        merged = registry.timer("t")
        assert merged.count == serial.count
        assert merged.buckets == serial.buckets
        assert merged.total == pytest.approx(serial.total)
        assert merged.min == serial.min and merged.max == serial.max
        for q in (0.5, 0.9, 0.99):
            assert merged.percentile(q) == pytest.approx(
                serial.percentile(q), rel=1e-9, abs=1e-12
            )


class TestMergeRegistrySummary:
    def test_counters_add_and_gauges_last_write_wins(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(1)
        worker = MetricsRegistry()
        worker.counter("c").inc(2)
        worker.gauge("g").set(7.0)
        merge_registry_summary(registry, worker.summary())
        assert registry.counters["c"].value == 3
        assert registry.gauges["g"].value == 7.0


def worker_chunk(spans):
    """Serialize a balanced worker chunk: each span holds its children."""
    events = []
    seq = 0

    def emit(kind, name, depth, **payload):
        nonlocal seq
        events.append(
            {"v": 1, "seq": seq, "ts": 0.001 * seq, "kind": kind,
             "name": name, "depth": depth, "payload": payload}
        )
        seq += 1

    def walk(node, depth):
        name, children = node
        emit("span_start", name, depth)
        for child in children:
            walk(child, depth + 1)
        emit("span_end", name, depth, duration_s=0.001)

    for span in spans:
        walk(span, 0)
    return events


span_trees = st.recursive(
    st.tuples(st.sampled_from(["cell", "phase1", "phase2"]), st.just([])),
    lambda children: st.tuples(
        st.sampled_from(["grid", "chunk"]), st.lists(children, max_size=3)
    ),
    max_leaves=8,
)


class TestReplayDepthRebasing:
    def replay_under_parent(self, tmp_path, chunk_events, parent_depth):
        path = tmp_path / "trace.jsonl"
        with observed(JsonlSink(path)) as tracer:
            # Open parent_depth nested spans, replay inside the innermost
            # (a worker chunk arriving mid-grid), then unwind.
            import contextlib

            with contextlib.ExitStack() as stack:
                for level in range(parent_depth):
                    stack.enter_context(tracer.span(f"outer{level}"))
                replay_events(tracer, chunk_events, worker=1)
        return path

    def test_replay_at_depth_passes_validation(self, tmp_path):
        chunk = worker_chunk([("grid", [("cell", []), ("cell", [])])])
        path = self.replay_under_parent(tmp_path, chunk, parent_depth=2)
        stats, errors = validate_trace(path)
        assert errors == []
        assert stats["span_start"] == 2 + 3  # outers + replayed

    def test_replayed_depths_are_rebased(self):
        chunk = worker_chunk([("cell", [])])
        sink = MemorySink()
        with observed(sink) as tracer:
            with tracer.span("run_grid"):
                replay_events(tracer, chunk, worker=3)
        replayed = [e for e in sink.events if e.name == "cell"]
        assert [e.depth for e in replayed] == [1, 1]  # 0 + base depth 1
        assert all(e.payload["worker"] == 3 for e in replayed)
        # Worker-local provenance survives in the payload.
        assert replayed[0].payload["worker_seq"] == 0

    def test_counter_and_manifest_records_not_replayed(self):
        chunk = [
            {"kind": "counter", "name": "c", "depth": 0, "payload": {"value": 1}},
            {"kind": "manifest", "name": "m", "depth": 0, "payload": {}},
        ]
        sink = MemorySink()
        with observed(sink) as tracer:
            assert replay_events(tracer, chunk) == 0

    def test_disabled_tracer_is_noop(self):
        from repro.obs.tracer import get_tracer

        assert replay_events(get_tracer(), worker_chunk([("cell", [])])) == 0

    @given(
        spans=st.lists(span_trees, min_size=1, max_size=3),
        parent_depth=st.integers(min_value=0, max_value=3),
    )
    @settings(max_examples=40, deadline=None)
    def test_any_balanced_chunk_rebases_to_a_valid_trace(
        self, spans, parent_depth, tmp_path_factory
    ):
        # Nested parallel grids: a chunk replayed at arbitrary parent depth
        # (grid inside grid) must still nest and validate.
        import contextlib

        chunk = worker_chunk(spans)
        path = tmp_path_factory.mktemp("replay") / "trace.jsonl"
        with observed(JsonlSink(path)) as tracer:
            with contextlib.ExitStack() as stack:
                for level in range(parent_depth):
                    stack.enter_context(tracer.span(f"outer{level}"))
                replayed = replay_events(tracer, chunk, worker=0)
        assert replayed == len(chunk)
        stats, errors = validate_trace(path)
        assert errors == []
        assert stats["span_start"] == parent_depth + sum(
            1 for e in chunk if e["kind"] == "span_start"
        )


class TestSummaryCarriesBuckets:
    def test_summary_includes_percentiles_and_sparse_buckets(self):
        registry = MetricsRegistry()
        timer = registry.timer("t")
        for value in (0.01, 0.02, 0.4):
            timer.observe(value)
        stats = registry.summary()["timers"]["t"]
        assert stats["count"] == 3
        assert set(stats["buckets"]) == set(timer.bucket_counts())
        assert stats["p50_s"] == pytest.approx(timer.p50)
        assert stats["p90_s"] == pytest.approx(timer.p90)
        assert stats["p99_s"] == pytest.approx(timer.p99)
