"""Tests for Strategy 3 — LS-Group (Theorem 4) and the LPT-Group ablation."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.ratios import measured_ratio, run_strategy
from repro.core.bounds import ub_ls_group
from repro.core.strategies import LPTGroup, LSGroup, equal_groups
from repro.core.model import make_instance
from repro.schedulers.list_scheduling import balance_gap, greedy_assign_heap
from repro.uncertainty.realization import truthful_realization
from repro.uncertainty.stochastic import sample_realization
from tests.conftest import instances


class TestEqualGroups:
    def test_partition(self):
        assert equal_groups(6, 2) == [[0, 1, 2], [3, 4, 5]]

    def test_k_equals_m(self):
        assert equal_groups(3, 3) == [[0], [1], [2]]

    def test_k_one(self):
        assert equal_groups(4, 1) == [[0, 1, 2, 3]]

    def test_non_divisor_rejected(self):
        with pytest.raises(ValueError):
            equal_groups(6, 4)


class TestPlacement:
    @pytest.fixture
    def inst(self):
        return make_instance([6.0, 5.0, 4.0, 3.0, 2.0, 1.0, 1.0, 1.0], m=6, alpha=1.5)

    def test_replication_is_m_over_k(self, inst):
        for k in (1, 2, 3, 6):
            p = LSGroup(k).place(inst)
            assert p.max_replication() == inst.m // k
            assert p.min_replication() == inst.m // k

    def test_group_assignment_is_list_scheduling(self, inst):
        p = LSGroup(2).place(inst)
        expected = greedy_assign_heap(inst.estimates, inst.input_order(), 2)
        got = p.meta["group_of_task"]
        by_task = [0] * inst.n
        for pos, j in enumerate(expected.order):
            by_task[j] = expected.assignment[pos]
        assert list(got) == by_task

    def test_group_balance_property(self, inst):
        """Phase-1 estimated group loads differ by at most the largest
        estimate (the fact Theorem 4's proof rests on)."""
        for k in (2, 3):
            p = LSGroup(k).place(inst)
            group_of_task = p.meta["group_of_task"]
            loads = [0.0] * k
            for j, g in enumerate(group_of_task):
                loads[g] += inst.tasks[j].estimate
            assert balance_gap(loads) <= inst.max_estimate + 1e-9

    def test_k_must_divide_m(self, inst):
        with pytest.raises(ValueError, match="divide"):
            LSGroup(4).place(inst)

    def test_k_validated_at_construction(self):
        with pytest.raises(ValueError):
            LSGroup(0)


class TestExecution:
    def test_tasks_stay_in_their_group(self):
        inst = make_instance([3.0, 2.0, 2.0, 1.0, 1.0, 1.0], m=4, alpha=1.5)
        strategy = LSGroup(2)
        p = strategy.place(inst)
        outcome = run_strategy(strategy, inst, truthful_realization(inst))
        groups = p.meta["groups"]
        group_of_task = p.meta["group_of_task"]
        for j in range(inst.n):
            assert outcome.trace.machine_of(j) in groups[group_of_task[j]]

    def test_k1_equals_full_replication_ls(self):
        """One group containing all machines = online LS on everything."""
        inst = make_instance([4.0, 3.0, 2.0, 2.0, 1.0], m=2, alpha=1.5)
        outcome = run_strategy(LSGroup(1), inst, truthful_realization(inst))
        # Online LS in input order: M0<-4, M1<-3; t=3 M1<-2; t=4 M0<-2; t=5 M1<-1
        assert outcome.makespan == pytest.approx(6.0)

    def test_km_equals_ls_placement_no_choice(self):
        """k=m pins each task to its own singleton group = LS placement."""
        inst = make_instance([4.0, 3.0, 2.0, 2.0, 1.0], m=2, alpha=1.5)
        strategy = LSGroup(2)
        p = strategy.place(inst)
        assert p.is_no_replication()


class TestTheorem4Guarantee:
    @given(
        instances(min_n=2, max_n=10, max_m=4),
        st.sampled_from([1, 2, 3, 4]),
        st.integers(0, 2),
    )
    def test_ratio_within_guarantee(self, inst, k, seed):
        if inst.m % k != 0:
            return
        real = sample_realization(inst, "bimodal_extreme", seed)
        rec = measured_ratio(LSGroup(k), inst, real, exact_limit=12)
        if rec.optimum.optimal:
            assert rec.ratio <= rec.guarantee * (1 + 1e-9)

    def test_guarantee_formula(self):
        inst = make_instance([1.0] * 8, m=6, alpha=1.5)
        assert LSGroup(3).guarantee(inst) == pytest.approx(ub_ls_group(1.5, 6, 3))


class TestLPTGroupAblation:
    def test_name(self):
        assert LPTGroup(2).name == "lpt_group[k=2]"

    def test_uses_lpt_order(self):
        inst = make_instance([1.0, 5.0, 3.0, 2.0], m=2, alpha=1.5)
        p = LPTGroup(2).place(inst)
        # LPT order: 1,2,3,0 -> groups: 1->0, 2->1, 3->1? LS over estimates:
        # task1(5)->g0, task2(3)->g1, task3(2)->g1, task0(1)->g1? loads g0=5,g1=3+2=5? then task0->g1 (load 5 vs 5 tie->g0)
        # Just check it differs from input-order LS placement.
        p_ls = LSGroup(2).place(inst)
        assert p.meta["group_of_task"] != p_ls.meta["group_of_task"]

    @given(instances(min_n=4, max_n=10, max_m=3), st.integers(0, 2))
    def test_often_at_least_as_good_as_ls_group(self, inst, seed):
        """Not a theorem — just run both and record feasibility; the
        aggregate comparison lives in bench E3.  Here we only require the
        LPT variant to produce valid schedules within Theorem 4's bound
        shape when the optimum is exact."""
        k = 1 if inst.m in (1, 5) else inst.m  # divisors always valid
        real = sample_realization(inst, "log_uniform", seed)
        rec = measured_ratio(LPTGroup(k), inst, real, exact_limit=12)
        assert rec.ratio >= 1.0 - 1e-9
