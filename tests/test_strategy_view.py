"""Unit tests for SchedulerView and FixedOrderPolicy (repro.core.strategy)."""

from __future__ import annotations

import pytest

from repro.core.model import make_instance
from repro.core.placement import everywhere_placement, single_machine_placement
from repro.core.strategy import FixedOrderPolicy, OnlinePolicy, SchedulerView


@pytest.fixture
def inst():
    return make_instance([3.0, 2.0, 1.0], m=2, alpha=1.5)


@pytest.fixture
def view(inst):
    return SchedulerView(inst, everywhere_placement(inst))


class TestSchedulerView:
    def test_static_data(self, view, inst):
        assert view.instance is inst
        assert view.estimate(0) == 3.0
        assert view.allowed_machines(1) == frozenset({0, 1})

    def test_initial_dynamic_state(self, view):
        assert view.pending_tasks() == [0, 1, 2]
        assert not view.is_started(0)
        assert not view.is_completed(0)
        assert view.now == 0.0
        assert view.running_on(0) is None

    def test_start_complete_cycle(self, view):
        view._mark_started(0, 1)
        assert view.is_started(0)
        assert view.running_on(1) == 0
        assert view.pending_tasks() == [1, 2]
        view._advance(3.0)
        view._mark_completed(0, 3.3)
        assert view.is_completed(0)
        assert view.running_on(1) is None
        assert view.revealed_actual(0) == 3.3
        assert view.now == 3.0

    def test_revealed_actual_raises_before_completion(self, view):
        with pytest.raises(KeyError):
            view.revealed_actual(0)
        view._mark_started(0, 0)
        with pytest.raises(KeyError):
            view.revealed_actual(0)

    def test_pending_on_respects_placement(self, inst):
        p = single_machine_placement(inst, [0, 1, 0])
        v = SchedulerView(inst, p)
        assert v.pending_on(0) == [0, 2]
        assert v.pending_on(1) == [1]


class TestFixedOrderPolicy:
    def test_dispatch_in_order(self, inst, view):
        policy = FixedOrderPolicy([2, 0, 1])
        assert policy.select(0, view) == 2
        view._mark_started(2, 0)
        assert policy.select(1, view) == 0
        view._mark_started(0, 1)
        assert policy.select(0, view) == 1

    def test_respects_placement_restriction(self, inst):
        p = single_machine_placement(inst, [1, 0, 1])
        v = SchedulerView(inst, p)
        policy = FixedOrderPolicy([0, 1, 2])
        # Machine 0 may only run task 1 (the first allowed in order).
        assert policy.select(0, v) == 1
        # Machine 1 gets task 0 even though task 1 precedes it in order.
        assert policy.select(1, v) == 0

    def test_returns_none_when_exhausted(self, inst, view):
        policy = FixedOrderPolicy([0, 1, 2])
        for tid in (0, 1, 2):
            view._mark_started(tid, 0)
        assert policy.select(0, view) is None

    def test_skips_started(self, inst, view):
        policy = FixedOrderPolicy([0, 1, 2])
        view._mark_started(0, 0)
        view._mark_started(1, 1)
        assert policy.select(0, view) == 2

    def test_earlier_restricted_task_not_lost(self, inst):
        """A restricted task earlier in the order must still be found after
        later tasks have started (regression for cursor-style bugs)."""
        p = single_machine_placement(inst, [1, 0, 0])
        v = SchedulerView(inst, p)
        policy = FixedOrderPolicy([0, 1, 2])
        # Machine 0 polls first: task 0 is pinned to machine 1, so it gets 1.
        assert policy.select(0, v) == 1
        v._mark_started(1, 0)
        assert policy.select(0, v) == 2
        v._mark_started(2, 0)
        # Now machine 1 polls: task 0 must still be delivered.
        assert policy.select(1, v) == 0

    def test_satisfies_protocol(self):
        assert isinstance(FixedOrderPolicy([]), OnlinePolicy)
