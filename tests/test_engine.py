"""Unit tests for the discrete-event engine (repro.simulation.engine)."""

from __future__ import annotations

import pytest

from repro.core.model import make_instance
from repro.core.placement import everywhere_placement, single_machine_placement
from repro.core.strategy import FixedOrderPolicy, SchedulerView
from repro.simulation.engine import SimulationError, simulate
from repro.uncertainty.realization import factors_realization, truthful_realization


@pytest.fixture
def inst():
    return make_instance([4.0, 3.0, 2.0, 1.0], m=2, alpha=2.0)


class TestBasicExecution:
    def test_pinned_tasks_run_where_pinned(self, inst):
        p = single_machine_placement(inst, [0, 1, 0, 1])
        trace = simulate(p, truthful_realization(inst), FixedOrderPolicy(range(4)))
        assert trace.assignment() == [0, 1, 0, 1]
        assert trace.makespan == 6.0  # machine0: 4+2, machine1: 3+1

    def test_everywhere_greedy_matches_online_ls(self, inst):
        p = everywhere_placement(inst)
        trace = simulate(p, truthful_realization(inst), FixedOrderPolicy(range(4)))
        # LS in input order with actual times 4,3,2,1:
        # t=0: M0<-0, M1<-1; t=3: M1<-2; t=4: M0<-3 -> loads (5, 5)
        assert trace.makespan == 5.0

    def test_trace_validates(self, inst):
        p = everywhere_placement(inst)
        real = truthful_realization(inst)
        trace = simulate(p, real, FixedOrderPolicy(range(4)))
        trace.validate(p, real)

    def test_deterministic(self, inst):
        p = everywhere_placement(inst)
        real = factors_realization(inst, [1.5, 0.8, 1.0, 2.0])
        t1 = simulate(p, real, FixedOrderPolicy(inst.lpt_order()))
        t2 = simulate(p, real, FixedOrderPolicy(inst.lpt_order()))
        assert t1.runs == t2.runs

    def test_label_propagated(self, inst):
        p = everywhere_placement(inst)
        trace = simulate(p, truthful_realization(inst), FixedOrderPolicy(range(4)), label="xyz")
        assert trace.label == "xyz"


class TestSemiClairvoyance:
    def test_actual_durations_drive_dispatch(self, inst):
        """A machine whose task finishes early gets the next task —
        the adaptivity that full replication buys."""
        p = everywhere_placement(inst)
        # Estimates 4,3,2,1 but actuals invert machines: task0 takes 2, task1 takes 6.
        real = factors_realization(inst, [0.5, 2.0, 1.0, 1.0])
        trace = simulate(p, real, FixedOrderPolicy(range(4)))
        # t=0: M0<-0 (2), M1<-1 (6); t=2: M0<-2 (2); t=4: M0<-3 (1) -> M0 load 5, M1 6
        assert trace.machine_of(2) == 0
        assert trace.machine_of(3) == 0
        assert trace.makespan == 6.0

    def test_view_hides_unfinished_durations(self, inst):
        """The policy cannot read an unfinished task's actual time."""
        seen: list[Exception] = []

        class Spy:
            def select(self, machine: int, view: SchedulerView) -> int | None:
                for tid in view.pending_tasks():
                    try:
                        view.revealed_actual(tid)
                    except KeyError as exc:
                        seen.append(exc)
                for tid in view.pending_on(machine):
                    return tid
                return None

        p = everywhere_placement(inst)
        simulate(p, truthful_realization(inst), Spy())
        assert seen  # every pre-completion peek raised

    def test_completed_durations_revealed(self, inst):
        revealed: dict[int, float] = {}

        class Spy:
            def select(self, machine: int, view: SchedulerView) -> int | None:
                for tid in range(view.instance.n):
                    if view.is_completed(tid):
                        revealed[tid] = view.revealed_actual(tid)
                for tid in view.pending_on(machine):
                    return tid
                return None

        p = everywhere_placement(inst)
        real = factors_realization(inst, [0.5, 1.0, 1.0, 1.0])
        simulate(p, real, Spy())
        assert revealed[0] == pytest.approx(2.0)


class TestPolicyErrors:
    def test_invalid_task_id(self, inst):
        class Bad:
            def select(self, machine, view):
                return 99

        with pytest.raises(SimulationError, match="invalid task id"):
            simulate(everywhere_placement(inst), truthful_realization(inst), Bad())

    def test_placement_violation(self, inst):
        class Bad:
            def select(self, machine, view):
                # Ignores the placement: hands the first pending task to any
                # machine; all tasks are pinned to machine 0.
                pending = view.pending_tasks()
                return pending[0] if pending else None

        p = single_machine_placement(inst, [0, 0, 0, 0])
        with pytest.raises(SimulationError, match="data is only on"):
            simulate(p, truthful_realization(inst), Bad())

    def test_double_start_rejected(self, inst):
        class Bad:
            def select(self, machine, view):
                return 0  # always task 0, even after it started

        with pytest.raises(SimulationError, match="already-started"):
            simulate(everywhere_placement(inst), truthful_realization(inst), Bad())

    def test_deadlock_detected(self, inst):
        class Lazy:
            def select(self, machine, view):
                return None

        with pytest.raises(SimulationError, match="unscheduled tasks"):
            simulate(everywhere_placement(inst), truthful_realization(inst), Lazy())

    def test_realization_instance_mismatch(self, inst):
        other = make_instance([1.0, 1.0, 1.0, 1.0], m=2, alpha=2.0)
        with pytest.raises(SimulationError, match="different instance"):
            simulate(
                everywhere_placement(inst),
                truthful_realization(other),
                FixedOrderPolicy(range(4)),
            )


class TestReleaseTimes:
    def test_release_delays_start(self, inst):
        p = everywhere_placement(inst)
        trace = simulate(
            p,
            truthful_realization(inst),
            FixedOrderPolicy(range(4)),
            release_times=[0.0, 0.0, 10.0, 0.0],
        )
        assert trace.runs[2].start >= 10.0
        trace.validate(p, truthful_realization(inst))

    def test_machine_wakes_for_release(self):
        """With one machine and one late task, the machine must re-poll at
        the release time instead of retiring."""
        inst = make_instance([1.0, 1.0], m=1, alpha=1.0)
        p = everywhere_placement(inst)
        trace = simulate(
            p,
            truthful_realization(inst),
            FixedOrderPolicy(range(2)),
            release_times=[0.0, 5.0],
        )
        assert trace.runs[1].start == pytest.approx(5.0)

    def test_release_times_validated(self, inst):
        p = everywhere_placement(inst)
        with pytest.raises(SimulationError, match="cover all"):
            simulate(p, truthful_realization(inst), FixedOrderPolicy(range(4)), release_times=[0.0])
        with pytest.raises(SimulationError, match=">= 0"):
            simulate(
                p,
                truthful_realization(inst),
                FixedOrderPolicy(range(4)),
                release_times=[-1.0, 0.0, 0.0, 0.0],
            )

    def test_early_selection_rejected(self, inst):
        class Eager:
            def select(self, machine, view):
                return 2  # released at t=10, machine idles at t=0

        with pytest.raises(SimulationError, match="before its release"):
            simulate(
                everywhere_placement(inst),
                truthful_realization(inst),
                Eager(),
                release_times=[0.0, 0.0, 10.0, 0.0],
            )
