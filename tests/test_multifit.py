"""Unit and property tests for repro.schedulers.multifit."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exact.optimal import optimal_makespan
from repro.schedulers.lpt import lpt_schedule
from repro.schedulers.multifit import MULTIFIT_RATIO, ffd_pack, multifit_schedule
from tests.conftest import estimates_strategy


class TestFfdPack:
    def test_fits_when_capacity_ample(self):
        a = ffd_pack([3.0, 2.0, 1.0], m=2, capacity=6.0)
        assert a is not None
        loads = [0.0, 0.0]
        for j, i in enumerate(a):
            loads[i] += [3.0, 2.0, 1.0][j]
        assert max(loads) <= 6.0

    def test_fails_when_capacity_too_small(self):
        assert ffd_pack([3.0, 3.0, 3.0], m=2, capacity=3.5) is None

    def test_fails_when_single_task_too_big(self):
        assert ffd_pack([5.0], m=3, capacity=4.0) is None

    def test_capacity_zero(self):
        assert ffd_pack([1.0], m=1, capacity=0.0) is None

    def test_exact_capacity_accepted(self):
        a = ffd_pack([2.0, 2.0], m=2, capacity=2.0)
        assert a is not None
        assert a[0] != a[1]

    @given(estimates_strategy(1, 12), st.integers(min_value=1, max_value=4))
    def test_pack_respects_capacity(self, times, m):
        cap = sum(times)  # always feasible on one bin
        a = ffd_pack(times, m, cap)
        assert a is not None
        loads = [0.0] * m
        for j, i in enumerate(a):
            loads[i] += times[j]
        assert max(loads) <= cap * (1 + 1e-9)


class TestMultifit:
    def test_beats_or_matches_lpt(self):
        # Classic instance where MULTIFIT beats LPT.
        times = [3.0, 3.0, 2.0, 2.0, 2.0]
        mf = multifit_schedule(times, 2)
        lpt = lpt_schedule(times, 2)
        assert mf.makespan <= lpt.makespan
        assert mf.makespan == 6.0  # optimal here

    @given(estimates_strategy(1, 11), st.integers(min_value=1, max_value=4))
    def test_never_worse_than_lpt(self, times, m):
        assert (
            multifit_schedule(times, m).makespan
            <= lpt_schedule(times, m).makespan * (1 + 1e-9)
        )

    @given(estimates_strategy(1, 10), st.integers(min_value=1, max_value=4))
    def test_13_11_guarantee(self, times, m):
        opt = optimal_makespan(times, m, exact_limit=12)
        if opt.optimal:
            assert multifit_schedule(times, m).makespan <= MULTIFIT_RATIO * opt.value * (
                1 + 1e-9
            )

    @given(estimates_strategy(1, 12), st.integers(min_value=1, max_value=4))
    def test_assignment_complete_and_consistent(self, times, m):
        r = multifit_schedule(times, m)
        assert len(r.assignment) == len(times)
        loads = [0.0] * m
        for pos, j in enumerate(r.order):
            loads[r.assignment[pos]] += times[j]
        assert loads == pytest.approx(list(r.loads))

    def test_iterations_validated(self):
        with pytest.raises(ValueError):
            multifit_schedule([1.0], 1, iterations=0)
