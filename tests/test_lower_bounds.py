"""Unit and property tests for repro.schedulers.lower_bounds."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exact.optimal import optimal_makespan
from repro.schedulers.lower_bounds import (
    average_load_bound,
    combined_lower_bound,
    kth_group_bound,
    lp_bound,
    max_task_bound,
    pair_bound,
)
from tests.conftest import estimates_strategy


class TestIndividualBounds:
    def test_average_load(self):
        assert average_load_bound([4.0, 4.0], 2) == 4.0

    def test_max_task(self):
        assert max_task_bound([1.0, 9.0, 3.0]) == 9.0

    def test_pair_bound_applies(self):
        # m=2, sorted desc: 5,4,3 -> p_(2)+p_(3) = 4+3.
        assert pair_bound([5.0, 4.0, 3.0], 2) == 7.0

    def test_pair_bound_zero_when_n_le_m(self):
        assert pair_bound([5.0, 4.0], 2) == 0.0

    def test_kth_group_bound(self):
        # m=2, 5 equal tasks: q=1 -> 2*t[2], q=2 -> 3*t[4].
        assert kth_group_bound([2.0] * 5, 2) == 6.0

    def test_kth_group_bound_zero_when_small(self):
        assert kth_group_bound([1.0, 2.0], 2) == 0.0

    def test_lp_bound(self):
        assert lp_bound([10.0, 1.0], 2) == 10.0
        assert lp_bound([3.0, 3.0, 3.0, 3.0], 2) == 6.0


class TestSoundness:
    """Every bound must be <= the exact optimum."""

    @given(estimates_strategy(1, 11), st.integers(min_value=1, max_value=4))
    def test_all_bounds_below_optimum(self, times, m):
        opt = optimal_makespan(times, m, exact_limit=12)
        if not opt.optimal:
            return
        tol = 1 + 1e-9
        assert average_load_bound(times, m) <= opt.value * tol
        assert max_task_bound(times) <= opt.value * tol
        assert pair_bound(times, m) <= opt.value * tol
        assert kth_group_bound(times, m) <= opt.value * tol
        assert combined_lower_bound(times, m) <= opt.value * tol

    @given(estimates_strategy(1, 15), st.integers(min_value=1, max_value=5))
    def test_combined_is_max_of_parts(self, times, m):
        combined = combined_lower_bound(times, m)
        assert combined == pytest.approx(
            max(
                average_load_bound(times, m),
                max_task_bound(times),
                pair_bound(times, m),
                kth_group_bound(times, m),
            )
        )

    def test_combined_tight_on_identical_tasks(self):
        # q*m+1 structure: 7 unit tasks on 3 machines -> ceil(7/3)=3 per
        # machine at best... combined bound must reach 3 via kth_group(q=2).
        assert combined_lower_bound([1.0] * 7, 3) == 3.0
        assert optimal_makespan([1.0] * 7, 3).value == 3.0
