"""Tests for the adaptive estimate-refinement extension."""

from __future__ import annotations

import math

import pytest

from repro.adaptive import EstimateRefiner, IterativeSession
from repro.core.strategies import LPTNoChoice, LPTNoRestriction
from repro.core.model import make_instance
from repro.uncertainty.realization import factors_realization, truthful_realization
from repro.workloads.generators import uniform_instance


@pytest.fixture
def inst():
    return make_instance([4.0, 3.0, 2.0, 1.0], m=2, alpha=2.0)


class TestEstimateRefiner:
    def test_truthful_observation_keeps_estimates(self, inst):
        r = EstimateRefiner(inst, eta=0.5)
        r.observe(truthful_realization(inst))
        assert r.estimates == pytest.approx(list(inst.estimates))
        assert r.effective_alpha() == pytest.approx(1.0)

    def test_full_eta_jumps_to_observation(self, inst):
        r = EstimateRefiner(inst, eta=1.0)
        real = factors_realization(inst, [2.0, 0.5, 1.0, 1.0])
        r.observe(real)
        assert r.estimates[0] == pytest.approx(8.0)
        assert r.estimates[1] == pytest.approx(1.5)

    def test_half_eta_geometric_mean(self, inst):
        r = EstimateRefiner(inst, eta=0.5)
        real = factors_realization(inst, [2.0, 1.0, 1.0, 1.0])
        r.observe(real)
        # sqrt(4 * 8) = 5.657...
        assert r.estimates[0] == pytest.approx(math.sqrt(4.0 * 8.0))

    def test_effective_alpha_tracks_worst_miss(self, inst):
        r = EstimateRefiner(inst, eta=0.0)
        real = factors_realization(inst, [2.0, 0.5, 1.1, 1.0])
        r.observe(real)
        assert r.effective_alpha() == pytest.approx(2.0)

    def test_repeated_observation_converges(self, inst):
        """Observing the same biased durations repeatedly drives the
        effective alpha to ~1."""
        r = EstimateRefiner(inst, eta=0.5)
        actuals = tuple(e * f for e, f in zip(inst.estimates, [2.0, 0.5, 1.5, 1.0]))
        current = inst
        for _ in range(12):
            real_factors = [a / e for a, e in zip(actuals, r.estimates)]
            clipped = [min(max(f, 1 / current.alpha), current.alpha) for f in real_factors]
            real = factors_realization(current, clipped)
            r.observe(real)
            current = r.refined_instance(alpha=2.0)
        assert r.effective_alpha() < 1.05

    def test_refined_instance_carries_metadata(self, inst):
        r = EstimateRefiner(inst, eta=0.3)
        r.observe(truthful_realization(inst))
        refined = r.refined_instance()
        assert refined.m == inst.m
        assert refined.n == inst.n
        assert refined.alpha >= 1.0

    def test_eta_validated(self, inst):
        with pytest.raises(ValueError):
            EstimateRefiner(inst, eta=1.5)


class TestIterativeSession:
    def test_runs_and_reports(self):
        inst = uniform_instance(20, 4, alpha=2.0, seed=1)
        session = IterativeSession(inst, LPTNoChoice(), seed=3)
        results = session.run(5, refine=True)
        assert len(results) == 5
        assert all(r.makespan > 0 for r in results)
        assert [r.iteration for r in results] == list(range(5))

    def test_refinement_shrinks_effective_alpha(self):
        inst = uniform_instance(24, 4, alpha=2.0, seed=2)
        session = IterativeSession(inst, LPTNoChoice(), bias_fraction=0.8, seed=5)
        results = session.run(8, refine=True, eta=0.7)
        assert results[-1].effective_alpha < results[0].effective_alpha

    def test_no_refinement_keeps_alpha_high(self):
        inst = uniform_instance(24, 4, alpha=2.0, seed=2)
        session = IterativeSession(inst, LPTNoChoice(), bias_fraction=0.8, seed=5)
        results = session.run(8, refine=False)
        # Persistent bias never learned: misses stay roughly constant.
        assert results[-1].effective_alpha > 1.2

    def test_refinement_improves_pinned_makespan(self):
        """With a mostly-learnable bias, refined estimates let the pinned
        strategy re-balance; later iterations beat early ones on average."""
        totals = {True: 0.0, False: 0.0}
        for seed in range(4):
            inst = uniform_instance(30, 5, alpha=2.0, seed=seed)
            for refine in (True, False):
                session = IterativeSession(
                    inst, LPTNoChoice(), bias_fraction=0.9, seed=100 + seed
                )
                results = session.run(6, refine=refine, eta=0.8)
                totals[refine] += sum(r.ratio_vs_lb for r in results[-3:]) / 3
        assert totals[True] <= totals[False] * (1 + 1e-9)

    def test_deterministic(self):
        inst = uniform_instance(15, 3, alpha=1.8, seed=0)
        a = IterativeSession(inst, LPTNoRestriction(), seed=9).run(4)
        b = IterativeSession(inst, LPTNoRestriction(), seed=9).run(4)
        assert [r.makespan for r in a] == [r.makespan for r in b]

    def test_bias_fraction_validated(self):
        inst = uniform_instance(5, 2, alpha=1.5, seed=0)
        with pytest.raises(ValueError):
            IterativeSession(inst, LPTNoChoice(), bias_fraction=1.2)
