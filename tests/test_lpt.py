"""Unit and property tests for repro.schedulers.lpt."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exact.optimal import optimal_makespan
from repro.schedulers.lpt import (
    critical_task,
    lpt_assignment_by_task,
    lpt_order,
    lpt_schedule,
)
from tests.conftest import estimates_strategy


class TestLptOrder:
    def test_sorted_descending(self):
        assert lpt_order([1.0, 3.0, 2.0]) == [1, 2, 0]

    def test_ties_by_index(self):
        assert lpt_order([2.0, 2.0, 2.0]) == [0, 1, 2]


class TestLptSchedule:
    def test_docstring_example(self):
        assert lpt_schedule([2.0, 3.0, 2.0, 2.0], m=2).makespan == 5.0

    def test_classic_worst_case(self):
        # n = 2m+1 equal-ish tasks: LPT ratio approaches 4/3 - 1/(3m).
        # m=2: tasks 3,3,2,2,2 -> LPT gives 7, OPT = 6.
        times = [3.0, 3.0, 2.0, 2.0, 2.0]
        r = lpt_schedule(times, 2)
        assert r.makespan == 7.0
        assert optimal_makespan(times, 2).value == 6.0

    def test_perfect_fit(self):
        r = lpt_schedule([4.0, 3.0, 2.0, 1.0], m=2)
        assert r.makespan == 5.0

    def test_assignment_by_task_alignment(self):
        times = [1.0, 5.0, 2.0]
        by_task = lpt_assignment_by_task(times, 2)
        loads = [0.0, 0.0]
        for j, i in enumerate(by_task):
            loads[i] += times[j]
        assert max(loads) == lpt_schedule(times, 2).makespan


class TestCriticalTask:
    def test_identifies_last_on_critical_machine(self):
        # times 3,3,2,2,2 on m=2: loads (3+2+2, 3+2) = (7, 5); the last task
        # placed on the load-7 machine is the critical one.
        r = lpt_schedule([3.0, 3.0, 2.0, 2.0, 2.0], 2)
        l = critical_task(r, [3.0, 3.0, 2.0, 2.0, 2.0])
        machine_of_l = r.assignment[list(r.order).index(l)]
        assert r.loads[machine_of_l] == r.makespan

    @given(estimates_strategy(1, 12), st.integers(min_value=1, max_value=4))
    def test_critical_task_on_makespan_machine(self, times, m):
        r = lpt_schedule(times, m)
        l = critical_task(r, times)
        machine_of_l = r.assignment[list(r.order).index(l)]
        assert r.loads[machine_of_l] == pytest.approx(r.makespan)


class TestLptGuarantees:
    @given(estimates_strategy(1, 10), st.integers(min_value=1, max_value=4))
    def test_graham_4_3_bound(self, times, m):
        """LPT <= (4/3 - 1/(3m)) OPT, verified against the exact optimum."""
        r = lpt_schedule(times, m)
        opt = optimal_makespan(times, m, exact_limit=12)
        if opt.optimal:
            assert r.makespan <= (4.0 / 3.0 - 1.0 / (3 * m)) * opt.value * (1 + 1e-9)

    @given(estimates_strategy(1, 15), st.integers(min_value=1, max_value=5))
    def test_lpt_never_worse_than_ls_bound(self, times, m):
        r = lpt_schedule(times, m)
        bound = sum(times) / m + (m - 1) / m * max(times)
        assert r.makespan <= bound * (1 + 1e-9)

    @given(estimates_strategy(2, 12), st.integers(min_value=2, max_value=4))
    def test_theorem2_bookkeeping_inequalities(self, times, m):
        """The two structural facts Theorem 2's proof uses about LPT."""
        r = lpt_schedule(times, m)
        l = critical_task(r, times)
        p_l = times[l]
        c_tilde = r.makespan
        # Eq. (2): C̃_max <= (sum + (m-1) p_l) / m
        assert c_tilde <= (sum(times) + (m - 1) * p_l) / m + 1e-9
        # LPT property: sum - p_l >= m (C̃_max - p_l)
        assert sum(times) - p_l >= m * (c_tilde - p_l) - 1e-9
