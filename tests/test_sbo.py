"""Unit tests for the SBO_Δ split (repro.memory.sbo)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.model import make_instance
from repro.memory.sbo import sbo_split
from repro.workloads.memory_workloads import planted_two_class
from tests.conftest import sized_instances


class TestSplitRule:
    def test_planted_classes_recovered(self):
        inst = planted_two_class(4, 6, m=3)
        split = sbo_split(inst, delta=1.0)
        # Tasks 0..3 are time-heavy/small-size; 4..9 memory-heavy/quick.
        assert set(split.s1) == set(range(4))
        assert set(split.s2) == set(range(4, 10))

    def test_partition_complete_and_disjoint(self, sized_instance):
        split = sbo_split(sized_instance, delta=1.0)
        assert sorted(split.s1 + split.s2) == list(range(sized_instance.n))

    def test_threshold_condition_verified(self, sized_instance):
        delta = 0.7
        split = sbo_split(sized_instance, delta)
        c1 = split.pi1.objective
        m2 = split.pi2.objective
        for j in split.s2:
            t = sized_instance.tasks[j]
            assert t.estimate / c1 <= delta * t.size / m2 + 1e-12
        for j in split.s1:
            t = sized_instance.tasks[j]
            assert t.estimate / c1 > delta * t.size / m2 - 1e-12

    def test_delta_zero_rejected(self, sized_instance):
        with pytest.raises(ValueError):
            sbo_split(sized_instance, 0.0)

    def test_all_zero_sizes_all_time_intensive(self):
        inst = make_instance([1.0, 2.0], m=2, sizes=[0.0, 0.0])
        split = sbo_split(inst, delta=1.0)
        assert split.s2 == ()
        assert set(split.s1) == {0, 1}


class TestDeltaMonotonicity:
    @given(sized_instances(min_n=2, max_n=10, max_m=3))
    def test_s2_grows_with_delta(self, inst):
        """Raising Δ moves tasks from S1 to S2 (more memory-routed)."""
        small = set(sbo_split(inst, 0.1).s2)
        large = set(sbo_split(inst, 10.0).s2)
        assert small <= large

    def test_extreme_deltas(self):
        inst = planted_two_class(3, 3, m=2)
        tiny = sbo_split(inst, 1e-6)
        assert tiny.s2 == ()  # nothing memory-intensive enough
        huge = sbo_split(inst, 1e6)
        assert huge.s1 == ()  # everything memory-routed


class TestCombinedAssignment:
    def test_machines_come_from_right_schedule(self, sized_instance):
        split = sbo_split(sized_instance, delta=1.0)
        assignment = split.combined_assignment()
        for j in split.s1:
            assert assignment[j] == split.pi1.assignment[j]
        for j in split.s2:
            assert assignment[j] == split.pi2.assignment[j]

    def test_certain_model_guarantees(self):
        """The classical SBO bi-objective bounds hold on the estimates:
        makespan <= (1+Δ)·C̃^π1, memory <= (1+1/Δ)·Mem^π2."""
        inst = planted_two_class(5, 8, m=3)
        for delta in (0.5, 1.0, 2.0):
            split = sbo_split(inst, delta)
            assignment = split.combined_assignment()
            loads = [0.0] * inst.m
            mem = [0.0] * inst.m
            for j, i in enumerate(assignment):
                loads[i] += inst.tasks[j].estimate
                mem[i] += inst.tasks[j].size
            assert max(loads) <= (1 + delta) * split.pi1.objective * (1 + 1e-9)
            assert max(mem) <= (1 + 1 / delta) * split.pi2.objective * (1 + 1e-9)
