"""Tests for the vectorized batch backend and its grid fast path.

The load-bearing property: for every ``supports_batch`` strategy, the
batch sweep's makespans — and the grid records built from them — are
**bit-identical** to the per-event :class:`EventKernel` path, across
random instances, realization models, and seeds.  Everything the flag
does not cover must fall back transparently.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import numpy as np

from repro.analysis.experiment import ExperimentGrid
from repro.analysis.ratios import run_strategy
from repro.core.model import Instance, make_instance
from repro.core.placement import Placement
from repro.core.strategy import FixedOrderPolicy, TwoPhaseStrategy
from repro.registry import capabilities_of, full_sweep, make_strategy, strategy_entries
from repro.simulation.batch import (
    BatchPlan,
    BatchUnsupported,
    OrderReplayPlan,
    PhaseSplitPlan,
    PinnedReplayPlan,
    batch_makespans,
    build_plan,
    supports_batch,
    sweep_makespans,
)
from repro.uncertainty.stochastic import sample_realization

# One exemplar spec list per registry family, used by the per-family
# bit-exactness property tests below *and* by the CI batch-equivalence
# matrix (`pytest tests/test_batch.py -k <family>`).  Kept in sync with
# the registry by ``test_family_map_covers_every_flagged_entry``.
FAMILY_SPECS: dict[str, tuple[str, ...]] = {
    "schedulers": (
        "baseline[round_robin]",
        "baseline[spt]",
        "baseline[random,seed=5]",
        "baseline[single_pile]",
    ),
    "core": (
        "lpt_no_choice",
        "lpt_no_restriction",
        "ls_group[k=2]",
        "lpt_group[k=2]",
        "nonclairvoyant_ls[shuffle=3]",
        "overlap_windows[k=2,w=2]",
        "overlap_windows[k=3,w=2]",
        "selective[0.3,count]",
        "selective[0.5,work]",
        "budgeted[B=40]",
    ),
    "adaptive": ("refined[lpt_no_choice]", "refined[ls_group[k=2]]"),
    "hetero": ("risk_aware[0]", "risk_aware[0.4]", "risk_aware[1]"),
    "robust": ("robust_pinned",),
    "memory": ("sabo[delta=1]", "abo[delta=1]", "capped[C=100]"),
}


def _rand_instance(n: int, m: int, alpha: float, seed: int) -> Instance:
    rng = random.Random(seed)
    return make_instance(
        [rng.uniform(0.2, 10.0) for _ in range(n)], m, alpha, name=f"rand{seed}"
    )


def _rand_sized_instance(n: int, m: int, alpha: float, seed: int) -> Instance:
    """Like :func:`_rand_instance` but with nonzero memory sizes, so the
    memory-family phase splits are exercised nontrivially."""
    rng = random.Random(seed)
    return make_instance(
        [rng.uniform(0.2, 10.0) for _ in range(n)],
        m,
        alpha,
        sizes=[rng.uniform(0.05, 2.0) for _ in range(n)],
        name=f"sized{seed}",
    )


def _batchable(m: int) -> list[TwoPhaseStrategy]:
    """Every sweep strategy for ``m`` that declares supports_batch."""
    found = [s for s in full_sweep(m, include_ablation=True) if supports_batch(s)]
    assert found, "the sweep should always contain batchable strategies"
    return found


class TestCapabilityFlag:
    def test_core_families_declare_it(self):
        for spec in ("lpt_no_choice", "lpt_no_restriction", "ls_group[k=2]",
                     "lpt_group[k=2]"):
            caps = capabilities_of(make_strategy(spec))
            assert caps is not None and caps.supports_batch, spec
            assert "supports_batch" in caps.flags()

    def test_memory_robust_and_hetero_families_declare_it(self):
        for spec in ("capped[C=5.0]", "abo[delta=0.5]", "sabo[delta=0.5]",
                     "nonclairvoyant_ls", "risk_aware[0.3]", "robust_pinned",
                     "selective[0.3,count]", "budgeted[B=10]",
                     "baseline[round_robin]", "overlap_windows[k=2,w=2]"):
            strategy = make_strategy(spec)
            caps = capabilities_of(strategy)
            assert caps is not None and caps.supports_batch, spec
            assert supports_batch(strategy)

    def test_barrier_ablation_flag_stays_but_compile_refuses(self):
        """The barrier ablation shares ABO's registry entry (flag True) but
        its dispatch stalls on remote pinned state — ``build_plan`` must
        refuse it so the grid falls back to the event kernel."""
        strategy = make_strategy("abo[delta=0.5,barrier]")
        assert supports_batch(strategy)
        inst = _rand_sized_instance(10, 4, 1.5, 21)
        with pytest.raises(BatchUnsupported, match="barrier"):
            build_plan(strategy, inst)

    def test_family_map_covers_every_flagged_entry(self):
        """Every statically flagged registry entry has at least one exemplar
        spec in FAMILY_SPECS, under its own family key — so a new
        ``supports_batch`` flag cannot dodge the per-family CI matrix."""
        covered = {
            spec.split("[")[0]
            for specs in FAMILY_SPECS.values()
            for spec in specs
        }
        for entry in strategy_entries():
            caps = entry.capabilities
            if caps is None or not caps.supports_batch:
                continue
            assert entry.name in covered, f"{entry.name} missing from FAMILY_SPECS"
            assert any(
                spec.split("[")[0] == entry.name
                for spec in FAMILY_SPECS[entry.family]
            ), f"{entry.name} listed under the wrong family"

    def test_unregistered_strategy_is_not_batchable(self):
        class Anon(TwoPhaseStrategy):
            name = "anon"

            def place(self, instance):  # pragma: no cover - never called
                raise NotImplementedError

            def make_policy(self, instance, placement):  # pragma: no cover
                raise NotImplementedError

        assert not supports_batch(Anon())


class TestBuildPlan:
    def test_everywhere_placement_ranges(self):
        inst = _rand_instance(10, 4, 1.5, 0)
        plan = build_plan(make_strategy("lpt_no_restriction"), inst)
        assert list(plan.lo) == [0] * inst.n
        assert list(plan.hi) == [inst.m] * inst.n
        assert sorted(plan.order) == list(range(inst.n))
        assert plan.guarantee is not None

    def test_group_placement_partitions(self):
        inst = _rand_instance(12, 6, 2.0, 1)
        plan = build_plan(make_strategy("ls_group[k=3]"), inst)
        spans = {(int(a), int(b)) for a, b in zip(plan.lo, plan.hi)}
        assert spans <= {(0, 2), (2, 4), (4, 6)}

    def test_incompatible_k_propagates_value_error(self):
        inst = _rand_instance(8, 6, 1.5, 2)
        with pytest.raises(ValueError):
            build_plan(make_strategy("ls_group[k=4]"), inst)

    def test_non_fixed_order_policy_rejected(self):
        class AdaptiveToy(TwoPhaseStrategy):
            name = "adaptive_toy"

            def place(self, instance):
                return Placement(
                    instance,
                    tuple(frozenset(range(instance.m)) for _ in range(instance.n)),
                )

            def make_policy(self, instance, placement):
                class P:
                    def select(self, machine, view):  # pragma: no cover
                        return None

                return P()

        inst = _rand_instance(6, 3, 1.5, 3)
        with pytest.raises(BatchUnsupported, match="FixedOrderPolicy"):
            build_plan(AdaptiveToy(), inst)

    def test_overlapping_ranges_take_order_replay(self):
        class OverlapToy(TwoPhaseStrategy):
            name = "overlap_toy"

            def place(self, instance):
                sets = [frozenset({0, 1}), frozenset({1, 2})]
                sets += [frozenset({0, 1})] * (instance.n - 2)
                return Placement(instance, tuple(sets))

            def make_policy(self, instance, placement):
                return FixedOrderPolicy(range(instance.n))

        inst = _rand_instance(5, 3, 1.5, 4)
        plan = build_plan(OverlapToy(), inst)
        assert isinstance(plan, OrderReplayPlan)
        self._assert_plan_matches_kernel(OverlapToy(), plan, inst)

    def test_non_contiguous_sets_take_order_replay(self):
        class GappyToy(TwoPhaseStrategy):
            name = "gappy_toy"

            def place(self, instance):
                return Placement(
                    instance, tuple(frozenset({0, 2}) for _ in range(instance.n))
                )

            def make_policy(self, instance, placement):
                return FixedOrderPolicy(range(instance.n))

        inst = _rand_instance(5, 3, 1.5, 5)
        plan = build_plan(GappyToy(), inst)
        assert isinstance(plan, OrderReplayPlan)
        self._assert_plan_matches_kernel(GappyToy(), plan, inst)

    def test_plan_tiers_by_decision_structure(self):
        inst = _rand_sized_instance(14, 4, 2.0, 6)
        tiers = {
            "lpt_group[k=2]": BatchPlan,
            "sabo[delta=1]": BatchPlan,
            "abo[delta=1]": PhaseSplitPlan,
            "selective[0.3,count]": PinnedReplayPlan,
            "risk_aware[0.4]": PinnedReplayPlan,
        }
        for spec, tier in tiers.items():
            plan = build_plan(make_strategy(spec), inst)
            assert type(plan) is tier, f"{spec}: {type(plan).__name__}"

    @staticmethod
    def _assert_plan_matches_kernel(strategy, plan, inst):
        rows, refs = [], []
        for seed in range(4):
            realization = sample_realization(inst, "uniform", seed)
            rows.append(list(realization.actuals))
            refs.append(run_strategy(strategy, inst, realization).makespan)
        swept = sweep_makespans(plan, np.asarray(rows))
        assert swept.tolist() == refs


class TestSweepShape:
    def test_wrong_width_rejected(self):
        inst = _rand_instance(7, 3, 1.5, 6)
        plan = build_plan(make_strategy("lpt_no_choice"), inst)
        import numpy as np

        with pytest.raises(ValueError, match="actuals"):
            sweep_makespans(plan, np.zeros((2, inst.n + 1)))

    def test_single_row_convenience(self):
        inst = _rand_instance(7, 3, 1.5, 7)
        realization = sample_realization(inst, "uniform", 0)
        one = batch_makespans(
            make_strategy("lpt_no_choice"), inst, list(realization.actuals)
        )
        assert len(one) == 1


class TestBitExactEquality:
    """The exactness contract, per strategy and at grid granularity."""

    @settings(max_examples=30, deadline=None)
    @given(
        n=st.integers(min_value=4, max_value=32),
        m=st.sampled_from([2, 3, 4, 6, 8]),
        alpha=st.floats(min_value=1.0, max_value=3.0, allow_nan=False),
        seed=st.integers(min_value=0, max_value=10_000),
        model=st.sampled_from(["uniform", "log_uniform", "bimodal_extreme"]),
    )
    def test_every_batchable_strategy_matches_event_kernel(
        self, n, m, alpha, seed, model
    ):
        inst = _rand_instance(n, m, alpha, seed)
        realization = sample_realization(inst, model, seed + 1)
        for strategy in _batchable(m):
            outcome = run_strategy(strategy, inst, realization)
            (swept,) = batch_makespans(strategy, inst, [realization.actuals])
            assert swept == outcome.makespan, (
                f"{strategy.name}: batch {swept!r} != kernel {outcome.makespan!r}"
            )

    @settings(max_examples=10, deadline=None)
    @given(
        n=st.integers(min_value=4, max_value=24),
        seed=st.integers(min_value=0, max_value=1_000),
    )
    def test_grid_records_identical(self, n, seed):
        inst = _rand_instance(n, 6, 2.0, seed)
        kwargs = dict(
            strategies=["lpt_no_choice", "lpt_no_restriction", "ls_group[k=3]",
                        "lpt_group[k=2]"],
            instances=[inst],
            realization_models=["uniform"],
            seeds=[0, 1],
        )
        batched = ExperimentGrid(**kwargs)
        serial = ExperimentGrid(batch=False, **kwargs)
        assert batched.run() == serial.run()
        assert batched.batched_cells == batched.total_cells()
        assert serial.batched_cells == 0


class TestFamilyBitExact:
    """Per-family exactness: one parametrized property per registry family,
    so the CI batch-equivalence matrix (`-k <family>`) names the regressing
    family in the job list."""

    @pytest.mark.parametrize("family", sorted(FAMILY_SPECS))
    @settings(max_examples=12, deadline=None)
    @given(
        n=st.integers(min_value=4, max_value=28),
        m=st.sampled_from([2, 3, 4, 6]),
        alpha=st.floats(min_value=1.0, max_value=3.0, allow_nan=False),
        seed=st.integers(min_value=0, max_value=10_000),
        model=st.sampled_from(["uniform", "log_uniform", "bimodal_extreme"]),
    )
    def test_family_matches_event_kernel(self, family, n, m, alpha, seed, model):
        inst = _rand_sized_instance(n, m, alpha, seed)
        realization = sample_realization(inst, model, seed + 1)
        checked = 0
        for spec in FAMILY_SPECS[family]:
            strategy = make_strategy(spec)
            try:
                plan = build_plan(strategy, inst)
            except ValueError:
                # Phase 1 rejects this instance (e.g. k does not divide m,
                # or B < n) — the grid skips such cells on both paths.
                continue
            outcome = run_strategy(strategy, inst, realization)
            (swept,) = sweep_makespans(
                plan, np.asarray([list(realization.actuals)])
            )
            assert swept == outcome.makespan, (
                f"{spec}: batch {swept!r} != kernel {outcome.makespan!r}"
            )
            checked += 1
        assert checked, f"no spec in family {family!r} was feasible"


class TestTransparentFallback:
    @pytest.fixture
    def inst(self):
        rng = random.Random(11)
        return make_instance(
            [rng.uniform(0.5, 8.0) for _ in range(18)],
            6,
            2.0,
            sizes=[rng.uniform(0.1, 1.0) for _ in range(18)],
            name="fallback",
        )

    def test_mixed_grid_matches_serial(self, inst):
        """The memory/adaptive families now compile to plans; the barrier
        ablation (flagged but refused at compile) falls back to the event
        kernel inside the same batch-enabled grid."""
        kwargs = dict(
            strategies=["lpt_no_choice", "capped[C=5.0]", "abo[delta=0.5]",
                        "abo[delta=0.5,barrier]", "nonclairvoyant_ls",
                        "ls_group[k=2]"],
            instances=[inst],
            realization_models=["uniform"],
            seeds=[0, 1],
        )
        batched = ExperimentGrid(**kwargs)
        serial = ExperimentGrid(batch=False, **kwargs)
        assert batched.run() == serial.run()
        # Every strategy but the barrier ablation took the sweep.
        assert batched.batched_cells == 5 * 2

    def test_incompatible_k_still_skips(self, inst):
        """A batchable strategy whose Phase 1 rejects the instance produces
        the same SkippedCell entries through the fallback."""
        kwargs = dict(
            strategies=["ls_group[k=4]", "lpt_no_choice"],  # 4 does not divide 6
            instances=[inst],
            realization_models=["uniform"],
            seeds=[0, 1],
        )
        batched = ExperimentGrid(**kwargs)
        serial = ExperimentGrid(batch=False, **kwargs)
        assert batched.run() == serial.run()
        assert [s.strategy for s in batched.skipped] == [
            s.strategy for s in serial.skipped
        ]
        assert len(batched.skipped) == 2

    def test_parallel_batch_grid_identical(self, inst):
        kwargs = dict(
            strategies=["lpt_no_choice", "ls_group[k=3]", "abo[delta=0.5]"],
            instances=[inst],
            realization_models=["uniform"],
            seeds=[0, 1, 2],
        )
        pooled = ExperimentGrid(workers=2, **kwargs)
        serial = ExperimentGrid(batch=False, **kwargs)
        assert pooled.run() == serial.run()


class TestBatchParallelComposition:
    """Packs shard across the pool instead of running in one process."""

    @pytest.fixture
    def insts(self):
        rng = random.Random(23)
        return [
            make_instance(
                [rng.uniform(0.5, 8.0) for _ in range(16)],
                4,
                2.0,
                sizes=[rng.uniform(0.1, 1.0) for _ in range(16)],
                name=f"comp{i}",
            )
            for i in range(2)
        ]

    def test_batched_parallel_equals_batched_serial_equals_kernel(self, insts):
        kwargs = dict(
            strategies=["lpt_no_choice", "ls_group[k=2]", "abo[delta=0.5]",
                        "sabo[delta=1]", "selective[0.3,count]",
                        "risk_aware[0.4]"],
            instances=insts,
            realization_models=["uniform", "bimodal_extreme"],
            seeds=[0, 1],
        )
        pooled = ExperimentGrid(workers=2, **kwargs)
        serial = ExperimentGrid(**kwargs)
        kernel = ExperimentGrid(batch=False, **kwargs)
        pooled_records = pooled.run()
        serial_records = serial.run()
        kernel_records = kernel.run()
        assert pooled_records == serial_records == kernel_records
        # Both batch paths served every cell from plans; the kernel none.
        assert pooled.batched_cells == pooled.total_cells()
        assert serial.batched_cells == serial.total_cells()
        assert kernel.batched_cells == 0

    def test_unsupported_pack_degrades_in_worker_without_poisoning_chunk(
        self, insts
    ):
        """The barrier ablation is capability-flagged, so its cells ship to
        the pool as a pack — the worker's compile refuses it and runs
        those cells through the event kernel, while the packs sharing its
        chunk still take the sweep."""
        kwargs = dict(
            strategies=["abo[delta=0.5,barrier]", "abo[delta=0.5]",
                        "lpt_no_choice"],
            instances=insts,
            realization_models=["uniform"],
            seeds=[0, 1, 2],
        )
        pooled = ExperimentGrid(workers=2, **kwargs)
        kernel = ExperimentGrid(batch=False, **kwargs)
        assert pooled.run() == kernel.run()
        # 2 instances x 3 seeds for each of the two compilable strategies.
        assert pooled.batched_cells == 2 * 2 * 3
        assert not pooled.skipped
