"""Documentation tests: every code block in the docs actually runs.

Broken snippets are the fastest way to lose a user; these tests extract
the fenced ``python`` blocks from the tutorial and the README and execute
them in order, plus run the package-level doctest.
"""

from __future__ import annotations

import doctest
import re
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parents[1]

_FENCE = re.compile(r"```python\n(.*?)```", re.DOTALL)


def _python_blocks(path: Path) -> list[str]:
    return _FENCE.findall(path.read_text())


class TestTutorial:
    def test_has_blocks(self):
        blocks = _python_blocks(ROOT / "docs" / "tutorial.md")
        assert len(blocks) >= 8

    def test_all_blocks_execute_in_order(self):
        blocks = _python_blocks(ROOT / "docs" / "tutorial.md")
        namespace: dict = {}
        for i, block in enumerate(blocks):
            try:
                exec(compile(block, f"tutorial-block-{i}", "exec"), namespace)
            except Exception as exc:  # pragma: no cover - failure reporting
                pytest.fail(f"tutorial block {i} failed: {exc}\n---\n{block}")


class TestReadme:
    def test_quickstart_block_executes(self):
        blocks = _python_blocks(ROOT / "README.md")
        assert blocks, "README must contain a python quickstart"
        namespace: dict = {}
        for i, block in enumerate(blocks):
            exec(compile(block, f"readme-block-{i}", "exec"), namespace)


class TestPackageDoctest:
    def test_module_docstring_examples(self):
        import repro

        results = doctest.testmod(repro, verbose=False)
        assert results.failed == 0
        assert results.attempted >= 1  # the quickstart example ran
