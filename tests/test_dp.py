"""Unit and property tests for repro.exact.dp."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exact.bnb import branch_and_bound
from repro.exact.dp import dp_load_vector, dp_two_machines, scale_to_integers


class TestScaleToIntegers:
    def test_integers_pass_through(self):
        assert scale_to_integers([1.0, 2.0, 3.0]) == [1, 2, 3]

    def test_halves_scaled(self):
        assert scale_to_integers([0.5, 1.5]) == [1, 3]

    def test_mixed_denominators(self):
        assert scale_to_integers([1 / 3, 1 / 4]) == [4, 3]

    def test_rejects_huge_scale(self):
        with pytest.raises(ValueError):
            scale_to_integers([1.0, 1e10 + 0.123456789])


class TestTwoMachineDp:
    def test_even_partition(self):
        assert dp_two_machines([1.0, 2.0, 3.0]) == 3.0

    def test_odd_partition(self):
        assert dp_two_machines([3.0, 3.0, 2.0, 2.0, 2.0]) == 6.0

    def test_unbalanced(self):
        assert dp_two_machines([10.0, 1.0, 1.0]) == 10.0

    def test_fractional_times(self):
        assert dp_two_machines([1.5, 1.5, 1.0]) == 2.5

    @given(
        st.lists(
            st.integers(min_value=1, max_value=60).map(float), min_size=1, max_size=14
        )
    )
    def test_matches_branch_and_bound(self, times):
        assert dp_two_machines(times) == pytest.approx(
            branch_and_bound(times, 2).makespan
        )


class TestLoadVectorDp:
    def test_single_machine(self):
        assert dp_load_vector([1.0, 2.0], 1) == 3.0

    def test_n_le_m(self):
        assert dp_load_vector([4.0, 2.0], 5) == 4.0

    def test_known_instance(self):
        assert dp_load_vector([3.0, 3.0, 2.0, 2.0, 2.0], 2) == 6.0

    def test_three_machines(self):
        assert dp_load_vector([5.0, 4.0, 3.0, 3.0, 3.0], 3) == 7.0

    @given(
        st.lists(
            st.floats(min_value=0.5, max_value=20.0, allow_nan=False),
            min_size=1,
            max_size=9,
        ),
        st.integers(min_value=1, max_value=3),
    )
    def test_matches_branch_and_bound(self, times, m):
        assert dp_load_vector(times, m) == pytest.approx(
            branch_and_bound(times, m).makespan
        )

    def test_state_limit_raises(self):
        times = [float(1 + (j * 997) % 89) + 0.137 * j for j in range(14)]
        with pytest.raises(RuntimeError, match="frontier"):
            dp_load_vector(times, 3, state_limit=5)
