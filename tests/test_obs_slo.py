"""Tests for the SLO evaluator (repro.obs.slo) and its robustness bridge.

The design rule under test everywhere: evaluation is fail-closed — an
objective over a metric the run never recorded FAILs rather than passing
vacuously.
"""

from __future__ import annotations

import math

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import Objective, evaluate, parse_objectives


def registry_with(timer_values=(), counters=(), gauges=()):
    registry = MetricsRegistry()
    for name, values in timer_values:
        timer = registry.timer(name)
        for value in values:
            timer.observe(value)
    for name, value in counters:
        registry.counter(name).inc(value)
    for name, value in gauges:
        registry.gauge(name).set(value)
    return registry


class TestObjectiveParse:
    def test_timer_stat_form(self):
        objective = Objective.parse("p99(grid.cell) < 2s")
        assert objective.stat == "p99"
        assert objective.target == "grid.cell"
        assert objective.op == "<"
        assert objective.threshold == 2.0

    def test_bare_scalar_form(self):
        objective = Objective.parse("survival_rate >= 0.95")
        assert objective.stat is None
        assert objective.target == "survival_rate"
        assert objective.threshold == 0.95

    @pytest.mark.parametrize(
        "text,threshold",
        [
            ("p50(x) < 250ms", 0.25),
            ("p50(x) < 1500us", 0.0015),
            ("survival_rate >= 95%", 0.95),
            ("mean(x) <= 1.5s", 1.5),
            ("count(x) == 4", 4.0),
        ],
    )
    def test_units_scale(self, text, threshold):
        assert Objective.parse(text).threshold == pytest.approx(threshold)

    def test_unknown_stat_rejected(self):
        with pytest.raises(ValueError, match="unknown statistic"):
            Objective.parse("p42(x) < 1")

    def test_garbage_rejected(self):
        with pytest.raises(ValueError, match="unparseable"):
            Objective.parse("what even is this")

    def test_parse_objectives_skips_blanks_and_comments(self):
        objectives = parse_objectives(
            ["", "# a comment", "p99(x) < 1s", "   ", "y >= 2"]
        )
        assert [o.text for o in objectives] == ["p99(x) < 1s", "y >= 2"]


class TestEvaluate:
    def test_timer_stats_resolve_with_span_prefix(self):
        registry = registry_with(
            timer_values=[("span.grid.cell", [0.1, 0.2, 0.3])]
        )
        report = evaluate(
            ["p99(grid.cell) < 2s", "count(grid.cell) == 3",
             "max(grid.cell) >= 300ms"],
            registry=registry,
        )
        assert report.passed
        assert all(r.detail == "timer span.grid.cell" for r in report.results)

    def test_missing_metric_fails_closed(self):
        report = evaluate(["p99(ghost) < 10s"], registry=MetricsRegistry())
        assert not report.passed
        (result,) = report.results
        assert result.observed is None
        assert result.detail == "metric not recorded"

    def test_bare_names_resolve_extras_then_gauges_then_counters(self):
        registry = registry_with(
            counters=[("sim.restarts", 3)], gauges=[("sim.makespan", 28.0)]
        )
        report = evaluate(
            ["sim.restarts <= 3", "sim.makespan < 30", "survival_rate >= 0.9"],
            registry=registry,
            extras={"survival_rate": 1.0},
        )
        assert report.passed
        details = [r.detail for r in report.results]
        assert details == ["counter", "gauge", "extras"]

    def test_extras_shadow_registry(self):
        registry = registry_with(gauges=[("x", 100.0)])
        report = evaluate(["x < 1"], registry=registry, extras={"x": 0.5})
        assert report.passed  # extras win

    def test_count_falls_back_to_counters(self):
        registry = registry_with(counters=[("grid.cells_done", 6)])
        report = evaluate(["count(grid.cells_done) >= 6"], registry=registry)
        assert report.passed

    def test_failing_threshold(self):
        registry = registry_with(timer_values=[("span.x", [5.0])])
        report = evaluate(["p99(x) < 2s"], registry=registry)
        assert not report.passed
        assert report.failures[0].observed == pytest.approx(5.0)

    def test_report_rows_render_status_and_missing_observed(self):
        report = evaluate(["ghost >= 1"], registry=MetricsRegistry())
        (row,) = report.rows()
        assert row["status"] == "FAIL"
        assert row["observed"] == "-"

    def test_as_dict_is_json_shaped(self):
        import json

        registry = registry_with(counters=[("c", 1)])
        payload = json.loads(
            json.dumps(evaluate(["c == 1"], registry=registry).as_dict())
        )
        assert payload["passed"] is True
        assert payload["objectives"][0]["objective"] == "c == 1"

    def test_accepts_pre_parsed_objectives(self):
        registry = registry_with(counters=[("c", 1)])
        report = evaluate([Objective.parse("c == 1")], registry=registry)
        assert report.passed


class TestRobustnessBridge:
    def run_records(self):
        import repro
        from repro.analysis.robustness import run_fault_grid
        from repro.faults import RandomCrashes
        from repro.uncertainty.stochastic import sample_realization
        from repro.workloads.generators import uniform_instance

        import numpy as np

        strategies = [repro.LPTNoRestriction()]
        model = RandomCrashes(2, count=(0, 1), window=(0.0, 5.0))
        rng = np.random.default_rng(7)
        plans = [model.sample(rng) for _ in range(4)]
        instances = [uniform_instance(6, 2, alpha=1.5, seed=i) for i in range(4)]
        realizations = [
            sample_realization(inst, "log_uniform", i)
            for i, inst in enumerate(instances)
        ]
        return run_fault_grid(strategies, instances, realizations, plans)

    def test_slo_report_exposes_fault_statistics(self):
        from repro.analysis.robustness import slo_report
        from repro.obs import MemorySink, observed

        with observed(MemorySink()) as tracer:
            records = self.run_records()
            registry = tracer.registry
        report = slo_report(
            records,
            ["survival_rate >= 0.95", "runs == 4", "p99(fault_run) < 5s"],
            registry=registry,
        )
        assert report.passed

    def test_no_survivors_fails_inflation_objective_closed(self):
        from repro.analysis.robustness import FaultRunRecord, slo_report

        dead = [
            FaultRunRecord(
                strategy="s", replication=1, scenario=0, n_faults=1,
                survived=False, makespan=math.nan, baseline_makespan=1.0,
                inflation=math.nan, restarts=0, error="boom",
            )
        ]
        report = slo_report(
            dead, ["mean_inflation < 2.0"], registry=MetricsRegistry()
        )
        assert not report.passed
        assert report.failures[0].detail == "metric not recorded"


class TestCliDemo:
    def test_inject_demo_passes_slo_and_exits_zero(self, capsys):
        from repro.cli import main

        assert main(
            ["obs", "--n", "12", "--m", "4", "--inject", "every=2,fails=1",
             "--metrics"]
        ) == 0
        out = capsys.readouterr().out
        assert "SLO report" in out
        assert "FAIL" not in out

    def test_bad_inject_spec_fails_cleanly(self, capsys):
        from repro.cli import main

        assert main(["obs", "--inject", "nonsense=1"]) == 2
