"""Tests for opt-in per-cell profiling (repro.obs.profiling) and its
grid integration: ``--profile`` puts cProfile top-N rows into cell span
attributes and ``profile.<func>`` registry timers, which the grid
manifest ranks into a ``profile`` block.
"""

from __future__ import annotations

import json

import pytest

from repro.obs import MemorySink, observed
from repro.obs.metrics import MetricsRegistry
from repro.obs.profiling import (
    ENV_VAR,
    ProfileSpec,
    active_spec,
    configure,
    fold_rows,
    profile_call,
    reset,
)


@pytest.fixture(autouse=True)
def clean_profiling_state(monkeypatch):
    monkeypatch.delenv(ENV_VAR, raising=False)
    reset()
    yield
    reset()


class TestProfileSpecParse:
    @pytest.mark.parametrize("text", ["1", "on", "true", "yes", "ON", "True"])
    def test_bare_switch_arms_defaults(self, text):
        assert ProfileSpec.parse(text) == ProfileSpec()

    def test_top_key(self):
        assert ProfileSpec.parse("top=8").top == 8

    def test_trailing_comma_tolerated(self):
        assert ProfileSpec.parse("top=3,").top == 3

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="unknown profiling key"):
            ProfileSpec.parse("depth=2")

    def test_non_positive_top_rejected(self):
        with pytest.raises(ValueError, match="top must be"):
            ProfileSpec.parse("top=0")


class TestActivation:
    def test_nothing_armed_by_default(self):
        assert active_spec() is None

    def test_configure_wins(self):
        configure(ProfileSpec(top=2))
        assert active_spec() == ProfileSpec(top=2)

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "top=7")
        assert active_spec() == ProfileSpec(top=7)

    def test_configure_shadows_env(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "top=7")
        configure(ProfileSpec(top=3))
        assert active_spec().top == 3

    def test_reset_restores_env_fallback(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "on")
        configure(ProfileSpec(top=3))
        reset()
        assert active_spec() == ProfileSpec()


def busy(n):
    total = 0
    for i in range(n):
        total += i * i
    return total


class TestProfileCall:
    def test_result_passes_through(self):
        result, rows = profile_call(busy, 1000)
        assert result == busy(1000)
        assert rows

    def test_rows_ranked_by_cumulative_time_and_capped(self):
        _, rows = profile_call(busy, 50_000, top=3)
        assert len(rows) <= 3
        cums = [row["cum_s"] for row in rows]
        assert cums == sorted(cums, reverse=True)

    def test_rows_are_json_scalars(self):
        _, rows = profile_call(busy, 1000)
        for row in json.loads(json.dumps(rows)):
            assert set(row) == {"func", "calls", "cum_s", "self_s"}
            assert isinstance(row["calls"], int)

    def test_exception_propagates_with_profiler_disabled(self):
        def bad():
            raise RuntimeError("boom")

        with pytest.raises(RuntimeError, match="boom"):
            profile_call(bad)
        # The profiler was disabled on the way out: profiling again works.
        assert profile_call(busy, 100)[1]


class TestFoldRows:
    def test_rows_become_profile_timers(self):
        registry = MetricsRegistry()
        fold_rows(registry, [{"func": "a.py:1:f", "calls": 2, "cum_s": 0.5,
                              "self_s": 0.1}])
        timer = registry.timers["profile.a.py:1:f"]
        assert timer.count == 1
        assert timer.total == pytest.approx(0.5)

    def test_repeat_folds_aggregate_across_cells(self):
        registry = MetricsRegistry()
        for cum in (0.5, 0.25):
            fold_rows(registry, [{"func": "a.py:1:f", "cum_s": cum,
                                  "calls": 1, "self_s": cum}])
        timer = registry.timers["profile.a.py:1:f"]
        assert timer.count == 2  # cells where the function was hot
        assert timer.total == pytest.approx(0.75)
        assert timer.max == pytest.approx(0.5)


class TestGridIntegration:
    def run_profiled_grid(self):
        import repro
        from repro.analysis.experiment import ExperimentGrid

        configure(ProfileSpec(top=3))
        sink = MemorySink()
        with observed(sink) as tracer:
            ExperimentGrid(
                strategies=[repro.LPTNoChoice()],
                instances=[repro.uniform_instance(8, 2, alpha=1.5, seed=0)],
                realization_models=["log_uniform"],
                seeds=(0,),
                batch=False,
            ).run()
            registry = tracer.registry
        return sink, registry

    def test_cell_spans_carry_profile_rows(self):
        sink, _ = self.run_profiled_grid()
        ends = [e for e in sink.by_kind("span_end") if e.name == "grid.cell"]
        assert ends
        for end in ends:
            rows = end.payload["profile"]
            assert 1 <= len(rows) <= 3
            assert all("cum_s" in row for row in rows)

    def test_registry_aggregates_profile_timers(self):
        _, registry = self.run_profiled_grid()
        hot = {n: t for n, t in registry.timers.items()
               if n.startswith("profile.")}
        assert hot
        assert all(t.count >= 1 for t in hot.values())

    def test_grid_manifest_ranks_hot_functions(self):
        sink, _ = self.run_profiled_grid()
        (manifest,) = [e for e in sink.by_kind("manifest")
                       if e.payload.get("kind") == "grid"]
        profile = manifest.payload["params"]["profile"]
        assert profile
        cums = [row["cum_s"] for row in profile]
        assert cums == sorted(cums, reverse=True)
        assert all(set(row) == {"func", "cells", "cum_s"} for row in profile)

    def test_unprofiled_grid_has_no_profile_attrs(self):
        import repro
        from repro.analysis.experiment import ExperimentGrid

        sink = MemorySink()
        with observed(sink):
            ExperimentGrid(
                strategies=[repro.LPTNoChoice()],
                instances=[repro.uniform_instance(8, 2, alpha=1.5, seed=0)],
                realization_models=["log_uniform"],
                seeds=(0,),
                batch=False,
            ).run()
        ends = [e for e in sink.by_kind("span_end") if e.name == "grid.cell"]
        assert ends
        assert all("profile" not in e.payload for e in ends)
