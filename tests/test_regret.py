"""Tests for scenario-based min-max regret evaluation."""

from __future__ import annotations

import pytest

from repro.analysis.regret import (
    build_scenarios,
    evaluate_scenarios,
    minmax_regret_choice,
)
from repro.core.strategies import LPTNoChoice, LPTNoRestriction, LSGroup
from repro.workloads.generators import uniform_instance


@pytest.fixture
def inst():
    return uniform_instance(12, 4, alpha=2.0, seed=3)


class TestBuildScenarios:
    def test_includes_truthful_and_samples(self, inst):
        scenarios = build_scenarios(inst, models=("uniform",), seeds=(0, 1))
        assert len(scenarios) == 3
        assert scenarios[0].label == "truthful"

    def test_without_truthful(self, inst):
        scenarios = build_scenarios(
            inst, models=("uniform",), seeds=(0,), include_truthful=False
        )
        assert len(scenarios) == 1


class TestEvaluateScenarios:
    def test_regret_nonnegative_when_exact(self, inst):
        scenarios = build_scenarios(inst, seeds=(0, 1))
        evals = evaluate_scenarios(
            [LPTNoChoice(), LPTNoRestriction()], inst, scenarios, exact_limit=14
        )
        for e in evals:
            if e.all_optima_exact:
                assert e.max_abs_regret >= -1e-9
                assert e.max_rel_regret >= -1e-9
            assert e.mean_rel_regret <= e.max_rel_regret + 1e-12
            assert e.scenarios == len(scenarios)

    def test_worst_scenario_labeled(self, inst):
        scenarios = build_scenarios(inst, models=("bimodal_extreme",), seeds=(0,))
        evals = evaluate_scenarios([LPTNoChoice()], inst, scenarios)
        assert evals[0].worst_scenario in {"truthful", "bimodal_extreme"}

    def test_empty_scenarios_rejected(self, inst):
        with pytest.raises(ValueError):
            evaluate_scenarios([LPTNoChoice()], inst, [])


class TestMinmaxChoice:
    def test_picks_smallest_max_regret(self, inst):
        scenarios = build_scenarios(inst, seeds=(0, 1, 2))
        evals = evaluate_scenarios(
            [LPTNoChoice(), LSGroup(2), LPTNoRestriction()], inst, scenarios,
            exact_limit=14,
        )
        winner = minmax_regret_choice(evals)
        assert winner.max_rel_regret == min(e.max_rel_regret for e in evals)

    def test_full_replication_usually_wins(self, inst):
        """Under a scenario set with extreme corners, the most flexible
        strategy should be the min-max-regret choice."""
        scenarios = build_scenarios(inst, models=("bimodal_extreme",), seeds=(0, 1, 2, 3))
        evals = evaluate_scenarios(
            [LPTNoChoice(), LPTNoRestriction()], inst, scenarios, exact_limit=14
        )
        winner = minmax_regret_choice(evals)
        assert winner.strategy == "lpt_no_restriction"

    def test_absolute_variant(self, inst):
        scenarios = build_scenarios(inst, seeds=(0,))
        evals = evaluate_scenarios(
            [LPTNoChoice(), LPTNoRestriction()], inst, scenarios, exact_limit=14
        )
        winner = minmax_regret_choice(evals, relative=False)
        assert winner.max_abs_regret == min(e.max_abs_regret for e in evals)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            minmax_regret_choice([])
