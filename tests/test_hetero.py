"""Tests for heterogeneous per-task uncertainty (repro.hetero)."""

from __future__ import annotations

import math

import pytest

from repro.analysis.ratios import run_strategy
from repro.core.model import make_instance
from repro.core.strategies import SelectiveReplication
from repro.hetero import (
    HeteroUncertainty,
    RiskAwareReplication,
    hetero_realization,
    hetero_workload,
)


@pytest.fixture
def hetero():
    inst = make_instance([8.0, 6.0, 2.0, 1.0], m=2, alpha=2.0)
    # Big tasks are well-profiled; small ones are wild.
    return HeteroUncertainty(inst, (1.05, 1.05, 2.0, 2.0))


class TestHeteroUncertainty:
    def test_validation_length(self):
        inst = make_instance([1.0, 2.0], m=2, alpha=2.0)
        with pytest.raises(ValueError, match="cover all"):
            HeteroUncertainty(inst, (1.5,))

    def test_validation_cap(self):
        inst = make_instance([1.0], m=1, alpha=1.5)
        with pytest.raises(ValueError, match="exceeds"):
            HeteroUncertainty(inst, (2.0,))

    def test_validation_below_one(self):
        inst = make_instance([1.0], m=1, alpha=1.5)
        with pytest.raises(ValueError):
            HeteroUncertainty(inst, (0.9,))

    def test_risk_scores(self, hetero):
        # risk = p̃ (a - 1/a): task0 = 8*(1.05-1/1.05), task2 = 2*(2-0.5)=3.
        assert hetero.risk(2) == pytest.approx(3.0)
        assert hetero.risk(0) == pytest.approx(8.0 * (1.05 - 1 / 1.05))
        # The short wild task out-risks the long profiled one.
        assert hetero.risk(2) > hetero.risk(0)

    def test_risk_order(self, hetero):
        order = hetero.risk_order()
        assert order[0] == 2  # riskiest
        assert order[1] == 3

    def test_total_risk(self, hetero):
        assert hetero.total_risk() == pytest.approx(sum(hetero.risks()))


class TestHeteroRealization:
    def test_respects_per_task_bands(self, hetero):
        real = hetero_realization(hetero, seed=1)
        for j, a in enumerate(hetero.alphas):
            f = real.factor(j)
            assert 1 / a - 1e-9 <= f <= a + 1e-9

    def test_extreme_at_band_edges(self, hetero):
        real = hetero_realization(hetero, seed=2, extreme=True)
        for j, a in enumerate(hetero.alphas):
            f = real.factor(j)
            assert math.isclose(f, a, rel_tol=1e-9) or math.isclose(
                f, 1 / a, rel_tol=1e-9
            )

    def test_valid_for_homogeneous_model(self, hetero):
        """Per-task bands under the cap remain valid global realizations."""
        real = hetero_realization(hetero, seed=3, extreme=True)
        # Construction through factors_realization already validated this;
        # double-check the worst factor.
        assert max(max(f, 1 / f) for f in real.factors()) <= hetero.instance.alpha + 1e-9

    def test_deterministic(self, hetero):
        a = hetero_realization(hetero, seed=7).actuals
        b = hetero_realization(hetero, seed=7).actuals
        assert a == b


class TestHeteroWorkload:
    def test_mixed_alphas(self):
        h = hetero_workload(100, 4, novel_fraction=0.3, seed=1)
        alphas = set(h.alphas)
        assert alphas == {1.05, 2.0}
        novel = sum(1 for a in h.alphas if a == 2.0)
        assert 15 <= novel <= 45  # ~30% of 100

    def test_validates(self):
        with pytest.raises(ValueError, match="alpha_profiled"):
            hetero_workload(10, 2, alpha_novel=1.2, alpha_profiled=1.5)


class TestRiskAwareReplication:
    def test_replicates_riskiest_not_biggest(self, hetero):
        strategy = RiskAwareReplication(hetero, fraction=0.5)
        placement = strategy.place(hetero.instance)
        critical = set(placement.meta["critical"])
        # The wild small tasks, not the profiled big ones.
        assert 2 in critical
        assert 0 not in critical

    def test_fraction_endpoints(self, hetero):
        empty = RiskAwareReplication(hetero, 0.0).place(hetero.instance)
        assert empty.is_no_replication()
        full = RiskAwareReplication(hetero, 1.0).place(hetero.instance)
        # Everything with positive risk is replicated (all tasks here).
        assert full.is_full_replication()

    def test_wrong_instance_rejected(self, hetero):
        other = make_instance([1.0, 1.0, 1.0, 1.0], m=2, alpha=2.0)
        with pytest.raises(ValueError, match="uncertainty profile"):
            RiskAwareReplication(hetero, 0.5).place(other)

    def test_feasible_end_to_end(self):
        h = hetero_workload(20, 4, seed=5)
        strategy = RiskAwareReplication(h, 0.6)
        real = hetero_realization(h, seed=6, extreme=True)
        outcome = run_strategy(strategy, h.instance, real)
        outcome.trace.validate(outcome.placement, real)

    def test_beats_size_based_at_equal_budget(self):
        """On mixed-certainty workloads, insuring by risk beats insuring by
        size at comparable replica counts (aggregate over seeds)."""
        risk_total = size_total = 0.0
        for seed in range(6):
            h = hetero_workload(24, 4, novel_fraction=0.3, seed=seed)
            real = hetero_realization(h, seed=100 + seed, extreme=True)
            risk_strategy = RiskAwareReplication(h, 0.8)
            risk_placement = risk_strategy.place(h.instance)
            budget = risk_placement.total_replicas()
            # Size-based selective with a fraction chosen to match budget.
            frac = (budget - h.instance.n) / (h.instance.n * (h.instance.m - 1))
            size_strategy = SelectiveReplication(min(max(frac, 0.0), 1.0))
            risk_total += run_strategy(risk_strategy, h.instance, real).makespan
            size_total += run_strategy(size_strategy, h.instance, real).makespan
        assert risk_total <= size_total * (1 + 0.02)
