"""Tests for the parallel grid backend (repro.analysis.parallel)."""

from __future__ import annotations

import pytest

from repro.analysis.experiment import ExperimentGrid, run_grid
from repro.analysis.parallel import (
    CellSpec,
    default_chunk_size,
    enumerate_cells,
    execute_cells,
)
from repro.core.strategies import LPTNoChoice, LPTNoRestriction, LSGroup
from repro.obs import MemorySink, observed
from repro.uncertainty.realization import truthful_realization
from repro.workloads.generators import uniform_instance


@pytest.fixture
def instances():
    return [uniform_instance(10, 2, alpha=1.5, seed=s) for s in range(2)]


def _strategies():
    return [LPTNoChoice(), LPTNoRestriction()]


class TestEnumerateCells:
    def test_serial_nesting_order(self, instances):
        cells = enumerate_cells(
            _strategies(), instances, ["uniform", "log_uniform"], (0, 1), 22
        )
        assert len(cells) == 2 * 2 * 2 * 2
        assert [c.index for c in cells] == list(range(16))
        # Innermost loop is strategies; outermost is instances.
        assert cells[0].strategy.name == "lpt_no_choice"
        assert cells[1].strategy.name == "lpt_no_restriction"
        assert cells[0].instance is cells[7].instance
        assert cells[8].instance is instances[1]

    def test_groups_share_realizations(self, instances):
        cells = enumerate_cells(_strategies(), instances, ["uniform"], (0, 1), 22)
        # Two strategies per (instance, model, seed) group.
        groups = [c.group for c in cells]
        assert groups == [0, 0, 1, 1, 2, 2, 3, 3]

    def test_realization_is_deterministic(self, instances):
        cells = enumerate_cells(_strategies(), instances, ["log_uniform"], (3,), 22)
        a = cells[0].realization()
        b = cells[0].realization()
        assert a.actuals == b.actuals


class TestDefaultChunkSize:
    def test_four_chunks_per_worker(self):
        assert default_chunk_size(160, 4) == 10

    def test_never_zero(self):
        assert default_chunk_size(1, 8) == 1
        assert default_chunk_size(0, 4) == 1


class TestParallelEquivalence:
    def test_records_identical_to_serial(self, instances):
        args = (_strategies() + [LSGroup(2)], instances, ["log_uniform", "bimodal_extreme"])
        kwargs = {"seeds": (0, 1), "exact_limit": 12}
        serial = run_grid(*args, **kwargs)
        parallel = run_grid(*args, **kwargs, workers=2)
        assert serial == parallel  # same order, same values

    def test_skips_identical_to_serial(self, instances):
        # LSGroup(4) cannot split m=2: every cell skips, in both modes.
        serial_grid = ExperimentGrid(
            strategies=[LSGroup(4)], instances=instances, realization_models=["uniform"]
        )
        parallel_grid = ExperimentGrid(
            strategies=[LSGroup(4)],
            instances=instances,
            realization_models=["uniform"],
            workers=2,
        )
        assert serial_grid.run() == [] == parallel_grid.run()
        assert serial_grid.skipped == parallel_grid.skipped
        assert parallel_grid.skipped[0].strategy == "ls_group[k=4]"

    def test_progress_fires_in_cell_order(self, instances):
        seen: list[tuple[int, int]] = []
        run_grid(
            _strategies(),
            instances,
            ["uniform"],
            workers=2,
            progress=lambda done, total, rec: seen.append((done, total)),
        )
        assert seen == [(1, 4), (2, 4), (3, 4), (4, 4)]

    def test_explicit_chunk_size(self, instances):
        serial = run_grid(_strategies(), instances, ["uniform"])
        chunked = run_grid(_strategies(), instances, ["uniform"], workers=2, chunk_size=1)
        assert serial == chunked


class TestUnpicklableFallback:
    def test_custom_factory_runs_inline(self, instances):
        # A closure factory cannot cross the process boundary; the backend
        # must fall back to inline execution and still return records.
        factory = lambda inst, seed: truthful_realization(inst)  # noqa: E731
        records = run_grid(_strategies(), instances[:1], [factory], workers=2)
        assert len(records) == 2
        assert records[0].realization == "truthful"


class TestExecuteCells:
    def test_empty(self):
        assert execute_cells([], workers=4) == ([], [])

    def test_outcomes_sorted_by_index(self, instances):
        cells = enumerate_cells(_strategies(), instances, ["uniform"], (0,), 22)
        outcomes, _ = execute_cells(cells, workers=2, chunk_size=1)
        assert [o.index for o in outcomes] == list(range(len(cells)))

    def test_worker_traces_only_when_traced(self, instances):
        cells = enumerate_cells(_strategies(), instances, ["uniform"], (0,), 22)
        _, untraced = execute_cells(cells, workers=2)
        assert untraced == []
        with observed(MemorySink()):
            _, traced = execute_cells(cells, workers=2, traced=True)
        assert traced
        assert all(t.events for t in traced)


class TestParallelObservability:
    def test_worker_events_and_metrics_merge(self, instances):
        # batch=False: this test is about per-cell worker spans crossing
        # the IPC boundary, so force every cell through the pool.
        sink = MemorySink()
        with observed(sink) as tracer:
            records = run_grid(
                _strategies(),
                instances,
                ["log_uniform"],
                seeds=(0, 1),
                workers=2,
                batch=False,
            )
            assert tracer.registry.counters["grid.cells_done"].value == len(records) == 8
            timers = tracer.registry.timers
            assert timers["grid.strategy.lpt_no_choice"].count == 4
        cell_spans = [e for e in sink.by_kind("span_start") if e.name == "grid.cell"]
        assert len(cell_spans) == 8
        assert all("worker" in e.payload for e in cell_spans)
        manifests = [e for e in sink.by_kind("manifest") if e.payload["kind"] == "grid"]
        assert manifests[0].payload["params"]["workers"] == 2

    def test_merged_trace_passes_validation(self, instances, tmp_path):
        from repro.obs import JsonlSink
        from repro.obs.tracer import disable, enable, get_tracer
        from repro.obs.validate import validate_trace

        path = tmp_path / "parallel.jsonl"
        enable(JsonlSink(path))
        try:
            run_grid(_strategies(), instances, ["uniform"], workers=2)
            get_tracer().snapshot_counters()
        finally:
            disable()
        stats, errors = validate_trace(path)
        assert errors == []
        assert stats["spans"] >= 5  # run_grid + 4 replayed grid.cell spans


class TestCellSpec:
    def test_frozen_and_indexed(self, instances):
        spec = CellSpec(
            index=3,
            group=1,
            strategy=LPTNoChoice(),
            instance=instances[0],
            model="uniform",
            model_name="uniform",
            seed=0,
            exact_limit=22,
        )
        with pytest.raises(AttributeError):
            spec.index = 4


class TestSpecTransport:
    """Strategies cross the pool boundary as canonical spec strings."""

    def test_registered_strategies_encode_to_refs(self, instances):
        from repro.analysis.parallel import _decode_chunk, _encode_chunk, _StrategyRef

        cells = enumerate_cells(
            [LPTNoChoice(), LSGroup(2)], instances, ["uniform"], (0,), 22
        )
        encoded = _encode_chunk(cells)
        assert all(isinstance(c.strategy, _StrategyRef) for c in encoded)
        assert encoded[1].strategy.spec == "ls_group[k=2]"
        decoded = _decode_chunk(encoded)
        assert [c.strategy.name for c in decoded] == [
            c.strategy.name for c in cells
        ]
        # One rebuilt instance per distinct spec within the chunk.
        assert decoded[0].strategy is decoded[2].strategy

    def test_unregistered_strategy_passes_through(self, instances):
        from repro.analysis.parallel import _decode_chunk, _encode_chunk

        class Local(LPTNoChoice):
            name = "local_variant"

        cells = enumerate_cells([Local()], instances, ["uniform"], (0,), 22)
        encoded = _encode_chunk(cells)
        assert encoded[0].strategy is cells[0].strategy  # object shipped as-is
        assert _decode_chunk(encoded)[0].strategy is cells[0].strategy

    def test_pooled_results_match_serial_for_param_strategies(self, instances):
        records_serial = run_grid(
            ["ls_group[k=2]", "lpt_group[k=2]"], instances, ["uniform"],
            seeds=(0, 1), batch=False,
        )
        records_pooled = run_grid(
            ["ls_group[k=2]", "lpt_group[k=2]"], instances, ["uniform"],
            seeds=(0, 1), workers=2, batch=False,
        )
        assert records_pooled == records_serial
