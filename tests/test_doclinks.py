"""The doc-link lint: extraction, slugging, and the repo's own docs."""

from pathlib import Path

from repro.tools.check_doclinks import (
    check_file,
    check_hub,
    extract_links,
    heading_slugs,
    main,
)

REPO = Path(__file__).resolve().parents[1]


def test_extract_links_finds_inline_and_skips_fences():
    text = (
        "See [guide](docs/guide.md) and ![img](pic.png).\n"
        "```python\n"
        "x = '[not a link](nope.md)'\n"
        "```\n"
        "External [site](https://example.com) and [anchor](#section).\n"
    )
    targets = [t for _, t in extract_links(text)]
    assert targets == ["docs/guide.md", "pic.png", "https://example.com", "#section"]


def test_heading_slugs_follow_github_rules():
    text = (
        "# The perf-trajectory artifact (`BENCH_perf.json`)\n"
        "## Phase 2: dispatch!\n"
        "## Phase 2: dispatch!\n"
    )
    slugs = heading_slugs(text)
    assert "the-perf-trajectory-artifact-bench_perfjson" in slugs
    assert "phase-2-dispatch" in slugs
    assert "phase-2-dispatch-1" in slugs  # duplicate headings dedup


def test_broken_link_and_anchor_detected(tmp_path):
    (tmp_path / "a.md").write_text(
        "# A\n[ok](b.md)\n[missing](c.md)\n[bad](b.md#nope)\n[good](b.md#b)\n"
    )
    (tmp_path / "b.md").write_text("# B\n")
    violations = check_file(tmp_path / "a.md", tmp_path)
    assert len(violations) == 2
    assert any("c.md does not exist" in v for v in violations)
    assert any("#nope" in v for v in violations)


def test_hub_completeness_check(tmp_path):
    docs = tmp_path / "docs"
    docs.mkdir()
    (docs / "architecture.md").write_text("# Hub\n[one](one.md)\n")
    (docs / "one.md").write_text("# One\n")
    (docs / "two.md").write_text("# Two\n")
    violations = check_hub(docs / "architecture.md", docs, tmp_path)
    assert len(violations) == 1 and "two.md" in violations[0]


def test_repo_docs_are_link_clean(monkeypatch, capsys):
    monkeypatch.chdir(REPO)
    assert main([]) == 0


def test_architecture_hub_links_every_doc():
    docs = REPO / "docs"
    assert not check_hub(docs / "architecture.md", docs, REPO)
