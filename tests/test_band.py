"""Unit and property tests for repro.uncertainty.band."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.uncertainty.band import UncertaintyBand, band_from_interval


class TestBandBasics:
    def test_interval(self):
        band = UncertaintyBand(2.0)
        assert band.interval(4.0) == (2.0, 8.0)

    def test_low_high(self):
        band = UncertaintyBand(1.5)
        assert band.low(3.0) == 2.0
        assert band.high(3.0) == 4.5

    def test_width_ratio_is_alpha_squared(self):
        assert UncertaintyBand(3.0).width_ratio() == 9.0

    def test_rejects_alpha_below_one(self):
        with pytest.raises(ValueError):
            UncertaintyBand(0.9)

    def test_is_certain(self):
        assert UncertaintyBand(1.0).is_certain()
        assert not UncertaintyBand(1.01).is_certain()


class TestContainsAndClamp:
    def test_contains_interior(self):
        assert UncertaintyBand(2.0).contains(4.0, 5.0)

    def test_contains_edges(self):
        band = UncertaintyBand(2.0)
        assert band.contains(4.0, 2.0)
        assert band.contains(4.0, 8.0)

    def test_not_contains_outside(self):
        band = UncertaintyBand(2.0)
        assert not band.contains(4.0, 1.9)
        assert not band.contains(4.0, 8.2)

    def test_clamp_projects(self):
        band = UncertaintyBand(2.0)
        assert band.clamp(4.0, 100.0) == 8.0
        assert band.clamp(4.0, 0.1) == 2.0
        assert band.clamp(4.0, 5.0) == 5.0

    def test_clamp_factor(self):
        band = UncertaintyBand(2.0)
        assert band.clamp_factor(3.0) == 2.0
        assert band.clamp_factor(0.1) == 0.5
        assert band.clamp_factor(1.2) == 1.2

    @given(
        st.floats(min_value=1.0, max_value=10.0),
        st.floats(min_value=0.01, max_value=100.0),
        st.floats(min_value=0.001, max_value=1000.0),
    )
    def test_clamped_value_always_contained(self, alpha, estimate, actual):
        band = UncertaintyBand(alpha)
        assert band.contains(estimate, band.clamp(estimate, actual))


class TestCompose:
    def test_compose_multiplies(self):
        c = UncertaintyBand(1.5).compose(UncertaintyBand(2.0))
        assert c.alpha == 3.0

    def test_compose_identity(self):
        b = UncertaintyBand(1.7)
        assert b.compose(UncertaintyBand(1.0)).alpha == b.alpha


class TestBandFromInterval:
    def test_symmetric_interval(self):
        est, band = band_from_interval(1.0, 4.0)
        assert math.isclose(est, 2.0)
        assert math.isclose(band.alpha, 2.0)

    def test_degenerate_interval(self):
        est, band = band_from_interval(3.0, 3.0)
        assert est == 3.0
        assert band.alpha == 1.0

    def test_rejects_inverted(self):
        with pytest.raises(ValueError):
            band_from_interval(4.0, 1.0)

    @given(
        st.floats(min_value=0.01, max_value=100.0),
        st.floats(min_value=1.0, max_value=100.0),
    )
    def test_interval_round_trip(self, lo, ratio):
        hi = lo * ratio
        est, band = band_from_interval(lo, hi)
        blo, bhi = band.interval(est)
        # The returned band's interval must cover the original interval.
        assert blo <= lo * (1 + 1e-9)
        assert bhi >= hi * (1 - 1e-9)
