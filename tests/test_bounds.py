"""Unit and property tests for repro.core.bounds (every theorem's formula)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.bounds import (
    abo_beats_sabo_on_makespan,
    abo_makespan_guarantee,
    abo_memory_guarantee,
    divisors,
    guarantee_table_row,
    lb_no_replication,
    lb_no_replication_limit,
    ls_group_crossover_alpha,
    min_groups_for_ratio,
    sabo_makespan_guarantee,
    sabo_memory_guarantee,
    ub_graham_ls,
    ub_lpt_classic,
    ub_lpt_no_choice,
    ub_lpt_no_restriction,
    ub_lpt_no_restriction_raw,
    ub_ls_group,
    zenith_impossibility_memory,
)

alphas = st.floats(min_value=1.0, max_value=4.0)
machines = st.integers(min_value=1, max_value=500)


class TestTheorem1LowerBound:
    def test_formula(self):
        # alpha=2, m=3: 4*3/(4+2) = 2.
        assert lb_no_replication(2.0, 3) == pytest.approx(2.0)

    def test_alpha_one_gives_one(self):
        assert lb_no_replication(1.0, 10) == pytest.approx(10 / 10)

    def test_limit_is_alpha_squared(self):
        assert lb_no_replication_limit(1.5) == pytest.approx(2.25)

    @given(alphas, machines)
    def test_bounded_by_limit(self, alpha, m):
        assert lb_no_replication(alpha, m) <= lb_no_replication_limit(alpha) + 1e-12

    @given(alphas)
    def test_converges_to_limit(self, alpha):
        assert lb_no_replication(alpha, 10**7) == pytest.approx(
            lb_no_replication_limit(alpha), rel=1e-4
        )

    @given(alphas, machines)
    def test_at_least_one(self, alpha, m):
        assert lb_no_replication(alpha, m) >= 1.0 - 1e-12


class TestTheorem2UpperBound:
    def test_formula(self):
        # alpha=1, m=2: 2*2/(2+1) = 4/3 — collapses to an LPT-style bound.
        assert ub_lpt_no_choice(1.0, 2) == pytest.approx(4.0 / 3.0)

    @given(alphas, machines)
    def test_dominates_lower_bound(self, alpha, m):
        """Theorem 2's guarantee can never beat Theorem 1's impossibility."""
        assert ub_lpt_no_choice(alpha, m) >= lb_no_replication(alpha, m) - 1e-12

    @given(alphas, machines)
    def test_at_most_twice_lower_bound_shape(self, alpha, m):
        # 2a²m/(2a²+m-1) <= 2 * a²m/(a²+m-1)
        assert ub_lpt_no_choice(alpha, m) <= 2 * lb_no_replication(alpha, m) + 1e-12

    @given(alphas)
    def test_monotone_in_m(self, alpha):
        vals = [ub_lpt_no_choice(alpha, m) for m in (1, 2, 4, 16, 256)]
        assert all(a <= b + 1e-12 for a, b in zip(vals, vals[1:]))


class TestTheorem3UpperBound:
    def test_raw_formula(self):
        assert ub_lpt_no_restriction_raw(2.0, 4) == pytest.approx(1 + 0.75 * 2.0)

    def test_combined_uses_graham_for_large_alpha(self):
        m = 4
        assert ub_lpt_no_restriction(3.0, m) == pytest.approx(ub_graham_ls(m))

    def test_combined_uses_raw_for_small_alpha(self):
        m = 4
        assert ub_lpt_no_restriction(1.1, m) == pytest.approx(
            ub_lpt_no_restriction_raw(1.1, m)
        )

    def test_crossover_at_sqrt2(self):
        assert ls_group_crossover_alpha() == pytest.approx(math.sqrt(2.0))
        m = 100
        a = math.sqrt(2.0)
        assert ub_lpt_no_restriction_raw(a, m) == pytest.approx(ub_graham_ls(m))

    @given(alphas, machines)
    def test_combined_never_exceeds_graham(self, alpha, m):
        assert ub_lpt_no_restriction(alpha, m) <= ub_graham_ls(m) + 1e-12


class TestGrahamAndLpt:
    @given(machines)
    def test_graham_below_two(self, m):
        assert 1.0 <= ub_graham_ls(m) < 2.0

    @given(machines)
    def test_lpt_classic_below_4_3(self, m):
        assert 1.0 <= ub_lpt_classic(m) < 4.0 / 3.0 + 1e-12


class TestTheorem4LsGroup:
    def test_k_equals_one_is_full_replication_shape(self):
        # k=1: a²/a² * 1 + (m-1)/m = 1 + (m-1)/m = 2 - 1/m.
        assert ub_ls_group(1.7, 10, 1) == pytest.approx(2.0 - 1.0 / 10)

    def test_k_equals_m_close_to_no_choice(self):
        """Paper remark: at k=m the LS-Group guarantee is close to
        LPT-No Choice's when m is large and alpha moderate."""
        m, alpha = 210, 1.2
        assert ub_ls_group(alpha, m, m) == pytest.approx(
            ub_lpt_no_choice(alpha, m), rel=0.35
        )

    def test_paper_value_alpha2_k3(self):
        """Paper narrative: at alpha=2, m=210, replication on 3 machines
        (k=70) gives a ratio below 6."""
        assert ub_ls_group(2.0, 210, 70) < 6.0

    @given(st.floats(min_value=1.0, max_value=3.0))
    def test_more_groups_worse_guarantee(self, alpha):
        """For fixed m, guarantee degrades as k grows (less replication)."""
        m = 210
        vals = [ub_ls_group(alpha, m, k) for k in divisors(m)]
        assert all(a <= b + 1e-9 for a, b in zip(vals, vals[1:]))

    def test_rejects_non_divisor(self):
        with pytest.raises(ValueError):
            ub_ls_group(1.5, 10, 3)


class TestMinGroupsForRatio:
    def test_achievable_target(self):
        m, alpha = 210, 2.0
        k = min_groups_for_ratio(alpha, m, target_ratio=6.0)
        assert k is not None
        assert ub_ls_group(alpha, m, k) <= 6.0

    def test_unachievable_target(self):
        assert min_groups_for_ratio(2.0, 210, target_ratio=1.0) is None


class TestDivisors:
    def test_210(self):
        ds = divisors(210)
        assert ds[0] == 1 and ds[-1] == 210
        assert len(ds) == 16  # 210 = 2*3*5*7

    def test_prime(self):
        assert divisors(7) == [1, 7]

    @given(st.integers(min_value=1, max_value=300))
    def test_all_divide(self, m):
        assert all(m % k == 0 for k in divisors(m))


class TestMemoryGuarantees:
    def test_sabo_makespan(self):
        assert sabo_makespan_guarantee(math.sqrt(2), 4 / 3, 1.0) == pytest.approx(
            2 * 2 * 4 / 3
        )

    def test_sabo_memory(self):
        assert sabo_memory_guarantee(4 / 3, 2.0) == pytest.approx(1.5 * 4 / 3)

    def test_abo_makespan(self):
        assert abo_makespan_guarantee(math.sqrt(3), 1.0, 1.0, 5) == pytest.approx(
            2 - 0.2 + 3.0
        )

    def test_abo_memory(self):
        assert abo_memory_guarantee(1.0, 2.0, 5) == pytest.approx(1 + 2.5)

    @given(
        st.floats(min_value=1.0, max_value=3.0),
        st.floats(min_value=1.0, max_value=2.0),
        st.floats(min_value=0.01, max_value=100.0),
    )
    def test_sabo_tradeoff_monotone(self, alpha, rho, delta):
        """Raising Δ strictly worsens makespan and improves memory."""
        up = delta * 2
        assert sabo_makespan_guarantee(alpha, rho, up) > sabo_makespan_guarantee(
            alpha, rho, delta
        )
        assert sabo_memory_guarantee(rho, up) < sabo_memory_guarantee(rho, delta)

    def test_abo_beats_sabo_rule(self):
        assert abo_beats_sabo_on_makespan(2.0, 1.0)
        assert not abo_beats_sabo_on_makespan(1.2, 1.0)


class TestImpossibilityFrontier:
    def test_hyperbola(self):
        # (a-1)(b-1) = 1: a=2 -> b=2; a=1.5 -> b=3.
        assert zenith_impossibility_memory(2.0) == pytest.approx(2.0)
        assert zenith_impossibility_memory(1.5) == pytest.approx(3.0)

    def test_ratio_one_impossible(self):
        assert math.isinf(zenith_impossibility_memory(1.0))

    @given(st.floats(min_value=1.001, max_value=50.0))
    def test_product_identity(self, r):
        b = zenith_impossibility_memory(r)
        assert (r - 1) * (b - 1) == pytest.approx(1.0)


class TestGuaranteeTableRow:
    def test_contains_all_strategies(self):
        row = guarantee_table_row(1.5, 6)
        assert "lpt_no_choice" in row
        assert "lower_bound_no_replication" in row
        assert "ls_group[k=1]" in row
        assert "ls_group[k=6]" in row

    def test_custom_ks(self):
        row = guarantee_table_row(1.5, 6, ks=[2])
        assert "ls_group[k=2]" in row
        assert "ls_group[k=3]" not in row
