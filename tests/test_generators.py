"""Unit tests for repro.workloads.generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.workloads.generators import (
    WORKLOAD_FAMILIES,
    bimodal_instance,
    bounded_pareto_instance,
    exponential_instance,
    generate,
    identical_instance,
    staircase_instance,
    uniform_instance,
)

ALL_FAMILIES = sorted(WORKLOAD_FAMILIES) + ["identical", "staircase"]


class TestCommonContract:
    @pytest.mark.parametrize("family", ALL_FAMILIES)
    def test_shape_and_params(self, family):
        inst = generate(family, 30, 4, 1.5, seed=0)
        assert inst.n == 30
        assert inst.m == 4
        assert inst.alpha == 1.5
        assert all(t.estimate > 0 for t in inst)
        assert inst.name

    @pytest.mark.parametrize("family", sorted(WORKLOAD_FAMILIES))
    def test_deterministic_given_seed(self, family):
        a = generate(family, 20, 3, 1.2, seed=42)
        b = generate(family, 20, 3, 1.2, seed=42)
        assert a.estimates == b.estimates

    @pytest.mark.parametrize("family", sorted(WORKLOAD_FAMILIES))
    def test_seed_changes_output(self, family):
        a = generate(family, 20, 3, 1.2, seed=1)
        b = generate(family, 20, 3, 1.2, seed=2)
        assert a.estimates != b.estimates

    def test_unknown_family(self):
        with pytest.raises(ValueError, match="unknown workload family"):
            generate("nope", 10, 2)


class TestUniform:
    def test_range(self):
        inst = uniform_instance(200, 2, seed=0, lo=2.0, hi=5.0)
        assert all(2.0 <= t.estimate <= 5.0 for t in inst)

    def test_bad_range(self):
        with pytest.raises(ValueError):
            uniform_instance(10, 2, seed=0, lo=5.0, hi=2.0)


class TestExponential:
    def test_floor_respected(self):
        inst = exponential_instance(500, 2, seed=0, mean=0.01, floor=0.5)
        assert all(t.estimate >= 0.5 for t in inst)


class TestBoundedPareto:
    def test_within_bounds(self):
        inst = bounded_pareto_instance(500, 2, seed=0, lo=1.0, hi=100.0)
        assert all(1.0 - 1e-9 <= t.estimate <= 100.0 + 1e-9 for t in inst)

    def test_heavy_tail(self):
        """A heavy-tailed sample's max should dwarf its median."""
        inst = bounded_pareto_instance(2000, 2, seed=0, shape=1.1, lo=1.0, hi=10000.0)
        ests = np.asarray(inst.estimates)
        assert ests.max() > 20 * np.median(ests)

    def test_bad_bounds(self):
        with pytest.raises(ValueError):
            bounded_pareto_instance(10, 2, seed=0, lo=2.0, hi=2.0)


class TestBimodal:
    def test_two_modes(self):
        inst = bimodal_instance(500, 2, seed=0, short=1.0, long=50.0, p_long=0.3, jitter=0.0)
        ests = set(inst.estimates)
        assert ests == {1.0, 50.0}

    def test_p_long_extremes(self):
        all_short = bimodal_instance(50, 2, seed=0, p_long=0.0, jitter=0.0)
        assert set(all_short.estimates) == {1.0}
        all_long = bimodal_instance(50, 2, seed=0, p_long=1.0, jitter=0.0, long=20.0)
        assert set(all_long.estimates) == {20.0}

    def test_p_long_validated(self):
        with pytest.raises(ValueError):
            bimodal_instance(10, 2, p_long=1.5)


class TestDeterministicFamilies:
    def test_identical(self):
        inst = identical_instance(10, 3, 2.0)
        assert set(inst.estimates) == {1.0}

    def test_staircase(self):
        inst = staircase_instance(4, 2)
        assert inst.estimates == (4.0, 3.0, 2.0, 1.0)

    def test_generate_ignores_seed_for_deterministic(self):
        a = generate("identical", 5, 2, seed=1)
        b = generate("identical", 5, 2, seed=2)
        assert a.estimates == b.estimates
