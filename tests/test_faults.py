"""Tests for the unified fault-injection subsystem (repro.faults).

Covers the fault-plan value objects and validation, the seeded scenario
generators, back-compat trace identity with the legacy ``failures=``
shim, and the engine semantics of recovery, degraded speed, and
correlated failures — including the same-instant event-ordering edge
cases the completion-token machinery exists for.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.model import make_instance
from repro.core.placement import everywhere_placement, single_machine_placement
from repro.core.strategy import FixedOrderPolicy
from repro.faults import (
    CorrelatedFailure,
    CrashRecover,
    CrashStop,
    DegradedInterval,
    FaultPlan,
    RackFailure,
    RandomCrashes,
    StragglerSlowdowns,
    merge_plans,
)
from repro.simulation.engine import SimulationError, simulate
from repro.uncertainty.realization import truthful_realization


@pytest.fixture
def inst():
    return make_instance([4.0, 3.0, 2.0, 2.0, 1.0], m=2, alpha=1.5)


@pytest.fixture
def inst3():
    return make_instance([4.0, 3.0, 2.0, 2.0, 1.0], m=3, alpha=1.5)


def _run(inst, **kwargs):
    p = everywhere_placement(inst)
    real = truthful_realization(inst)
    trace = simulate(p, real, FixedOrderPolicy(range(inst.n)), **kwargs)
    return p, real, trace


class TestFaultPlan:
    def test_empty_plan_is_falsy_and_fault_free(self, inst):
        assert not FaultPlan()
        assert FaultPlan().describe() == "fault-free"
        _, _, healthy = _run(inst)
        _, _, trace = _run(inst, faults=FaultPlan())
        assert trace.runs == healthy.runs

    def test_from_failures_preserves_order(self):
        plan = FaultPlan.from_failures({3: 2.0, 1: 1.0})
        assert plan.crashes() == [(2.0, 3, math.inf), (1.0, 1, math.inf)]

    def test_crashes_expand_correlated(self):
        plan = FaultPlan.of(CorrelatedFailure((2, 0), 5.0, 1.5))
        assert plan.crashes() == [(5.0, 2, 1.5), (5.0, 0, 1.5)]

    def test_machines_and_counts(self):
        plan = FaultPlan.of(
            CrashStop(0, 1.0),
            CrashRecover(1, 2.0, 3.0),
            DegradedInterval(2, 0.0, 4.0, 0.5),
            CorrelatedFailure((3, 4), 6.0),
        )
        assert plan.machines() == {0, 1, 2, 3, 4}
        assert plan.counts() == {
            "crash_stop": 1, "crash_recover": 1, "degraded": 1, "correlated": 1,
        }
        assert "degraded=1" in plan.describe()

    def test_merge_plans_concatenates(self):
        a = FaultPlan.of(CrashStop(0, 1.0))
        b = FaultPlan.of(DegradedInterval(1, 0.0, 2.0, 0.5))
        merged = merge_plans([a, b])
        assert merged.faults == a.faults + b.faults

    def test_plan_is_hashable_and_picklable(self):
        import pickle

        plan = FaultPlan.of(CrashStop(0, 1.0), CorrelatedFailure((1, 2), 3.0))
        assert hash(plan) == hash(pickle.loads(pickle.dumps(plan)))


class TestValidation:
    @pytest.mark.parametrize(
        "plan, match",
        [
            (FaultPlan.of(CrashStop(9, 1.0)), "outside"),
            (FaultPlan.of(CrashStop(0, -1.0)), ">= 0"),
            (FaultPlan.of(CrashRecover(0, 1.0, 0.0)), "downtime"),
            (FaultPlan.of(DegradedInterval(0, -1.0, 2.0, 0.5)), "start"),
            (FaultPlan.of(DegradedInterval(0, 2.0, 2.0, 0.5)), "empty"),
            (FaultPlan.of(DegradedInterval(0, 0.0, 2.0, 0.0)), "factor"),
            (
                FaultPlan.of(
                    DegradedInterval(0, 0.0, 3.0, 0.5),
                    DegradedInterval(0, 2.0, 4.0, 0.7),
                ),
                "overlap",
            ),
        ],
    )
    def test_rejects_malformed(self, plan, match):
        with pytest.raises(ValueError, match=match):
            plan.validate(2)

    def test_accepts_well_formed(self):
        FaultPlan.of(
            CrashRecover(0, 1.0, 2.0),
            DegradedInterval(1, 0.0, 2.0, 0.5),
            DegradedInterval(1, 2.0, 4.0, 0.7),  # touching is not overlap
            CorrelatedFailure((0, 1), 3.0),
        ).validate(2)

    def test_engine_wraps_validation_errors(self, inst):
        with pytest.raises(SimulationError, match="outside"):
            _run(inst, faults=FaultPlan.of(CrashStop(9, 1.0)))

    def test_engine_rejects_both_fault_arguments(self, inst):
        with pytest.raises(SimulationError, match="not both"):
            _run(inst, failures={0: 1.0}, faults=FaultPlan.of(CrashStop(0, 1.0)))


class TestBackCompatEquivalence:
    """``faults=`` must reproduce the legacy ``failures=`` path exactly."""

    def test_from_failures_trace_identical(self, inst):
        _, _, legacy = _run(inst, failures={0: 1.0})
        _, _, plan = _run(inst, faults=FaultPlan.from_failures({0: 1.0}))
        assert plan.runs == legacy.runs
        assert plan.aborted == legacy.aborted

    def test_infinite_downtime_recover_is_crash_stop(self, inst):
        _, _, legacy = _run(inst, failures={0: 1.0})
        _, _, recover = _run(
            inst, faults=FaultPlan.of(CrashRecover(0, 1.0, math.inf))
        )
        assert recover.runs == legacy.runs
        assert recover.aborted == legacy.aborted

    def test_stranding_matches_legacy(self, inst):
        p = single_machine_placement(inst, [0, 1, 0, 1, 0])
        real = truthful_realization(inst)
        with pytest.raises(SimulationError, match="lost to machine failures"):
            simulate(
                p, real, FixedOrderPolicy(range(5)),
                faults=FaultPlan.of(CrashStop(0, 1.0)),
            )


class TestCrashRecover:
    def test_recovered_machine_takes_work_again(self, inst):
        """Machine 0 dies at t=1 and rejoins at t=1.5; FixedOrder re-picks
        the aborted task 0 on it.  The superseded completion event from the
        first attempt must not fire (completion-token staleness)."""
        p, real, trace = _run(
            inst, faults=FaultPlan.of(CrashRecover(0, 1.0, 0.5))
        )
        trace.validate(p, real)
        run0 = trace.runs[0]
        assert run0.machine == 0
        assert run0.start == pytest.approx(1.5)
        assert run0.duration == pytest.approx(4.0)  # full rerun, no stale credit
        assert trace.aborted[0].tid == 0

    def test_recovery_saves_pinned_placement(self, inst):
        p = single_machine_placement(inst, [0, 1, 0, 1, 0])
        real = truthful_realization(inst)
        trace = simulate(
            p, real, FixedOrderPolicy(range(5)),
            faults=FaultPlan.of(CrashRecover(0, 1.0, 2.0)),
        )
        trace.validate(p, real)
        assert {r.machine for r in trace.runs if r.tid in (0, 2, 4)} == {0}

    def test_recovery_beats_permanent_loss(self, inst):
        _, _, stop = _run(inst, faults=FaultPlan.of(CrashStop(0, 1.0)))
        _, _, recover = _run(inst, faults=FaultPlan.of(CrashRecover(0, 1.0, 0.5)))
        assert recover.makespan <= stop.makespan


class TestDegradedSpeed:
    def test_remaining_work_rescales_at_boundary(self, inst):
        """Machine 0 at half speed on [0, 2): task 0 (work 4) does 1 unit
        by t=2 and the remaining 3 at full speed — ends at exactly 5."""
        p, real, trace = _run(
            inst, faults=FaultPlan.of(DegradedInterval(0, 0.0, 2.0, 0.5))
        )
        trace.validate(p, real, check_durations=False)
        assert trace.runs[0].machine == 0
        assert trace.runs[0].end == pytest.approx(5.0)
        # The healthy machine is untouched.
        assert trace.runs[1].duration == pytest.approx(3.0)

    def test_duration_check_flags_degraded_runs(self, inst):
        p, real, trace = _run(
            inst, faults=FaultPlan.of(DegradedInterval(0, 0.0, 2.0, 0.5))
        )
        with pytest.raises(ValueError, match="realization says"):
            trace.validate(p, real)

    def test_dispatch_inside_interval_runs_slow(self, inst):
        """A whole-run degradation stretches every task on that machine."""
        p, real, trace = _run(
            inst, faults=FaultPlan.of(DegradedInterval(0, 0.0, math.inf, 0.5))
        )
        trace.validate(p, real, check_durations=False)
        for run in trace.runs:
            if run.machine == 0:
                assert run.duration == pytest.approx(2 * real.actual(run.tid))

    def test_burst_factor_speeds_up(self, inst):
        _, _, healthy = _run(inst)
        _, _, burst = _run(
            inst, faults=FaultPlan.of(DegradedInterval(0, 0.0, math.inf, 2.0))
        )
        assert burst.makespan < healthy.makespan

    def test_no_free_speedup_from_late_interval(self, inst):
        """An interval that starts after the machine went idle changes
        nothing retroactively."""
        _, _, healthy = _run(inst)
        _, _, late = _run(
            inst, faults=FaultPlan.of(DegradedInterval(0, 50.0, 60.0, 0.1))
        )
        assert late.runs == healthy.runs


class TestCorrelatedFailure:
    def test_rack_loss_strands_rack_pinned_tasks(self, inst3):
        p = single_machine_placement(inst3, [0, 1, 0, 1, 2])
        real = truthful_realization(inst3)
        with pytest.raises(SimulationError, match="lost to machine failures"):
            simulate(
                p, real, FixedOrderPolicy(range(5)),
                faults=FaultPlan.of(CorrelatedFailure((0, 1), 0.0)),
            )

    def test_replication_survives_rack_loss(self, inst3):
        p, real, trace = _run(
            inst3, faults=FaultPlan.of(CorrelatedFailure((0, 1), 1.0))
        )
        trace.validate(p, real)
        assert all(r.machine == 2 for r in trace.runs if r.end > 1.0)

    def test_rack_with_downtime_recovers(self, inst3):
        p = single_machine_placement(inst3, [0, 1, 0, 1, 2])
        real = truthful_realization(inst3)
        trace = simulate(
            p, real, FixedOrderPolicy(range(5)),
            faults=FaultPlan.of(CorrelatedFailure((0, 1), 0.0, downtime=2.0)),
        )
        trace.validate(p, real)


class TestSameInstantEdgeCases:
    def test_completion_wins_failure_tie(self, inst):
        """A failure at exactly a task's completion instant processes the
        completion first (EventKind order) — no spurious abort."""
        _, real, trace = _run(inst, faults=FaultPlan.of(CrashStop(0, 4.0)))
        assert not any(a.end == pytest.approx(4.0) for a in trace.aborted) or (
            trace.runs[0].end == pytest.approx(4.0)
        )
        assert trace.runs[0].machine == 0
        assert trace.runs[0].end == pytest.approx(4.0)

    def test_two_machines_fail_same_instant_survivable(self, inst3):
        p, real, trace = _run(
            inst3,
            faults=FaultPlan.of(CrashStop(0, 1.0), CrashStop(1, 1.0)),
        )
        trace.validate(p, real)
        assert len(trace.aborted) == 2
        assert all(r.machine == 2 for r in trace.runs)

    def test_two_machines_fail_same_instant_stranded(self, inst):
        with pytest.raises(SimulationError, match="lost to machine failures"):
            _run(inst, faults=FaultPlan.of(CrashStop(0, 1.0), CrashStop(1, 1.0)))

    def test_failure_at_t0_before_dispatch(self, inst):
        """MACHINE_FAILURE (priority 2) beats MACHINE_IDLE (priority 5) at
        t=0: the doomed machine never dispatches anything."""
        p, real, trace = _run(inst, faults=FaultPlan.of(CrashStop(0, 0.0)))
        trace.validate(p, real)
        assert all(r.machine == 1 for r in trace.runs)
        assert not trace.aborted

    def test_duplicate_crash_on_down_machine_absorbed(self, inst):
        _, _, once = _run(inst, faults=FaultPlan.of(CrashStop(0, 1.0)))
        _, _, twice = _run(
            inst, faults=FaultPlan.of(CrashStop(0, 1.0), CrashStop(0, 2.0))
        )
        assert twice.runs == once.runs
        assert twice.aborted == once.aborted


class TestMergedPlanOutages:
    """Merged plans hitting one machine behave as the union of outages.

    Regression suite for the ``merge_plans`` / ``CorrelatedFailure``
    interaction audit: overlapping or same-instant outages on one machine
    must extend its downtime (never shorten it), and the documented
    same-instant ordering — completion beats failure, failure beats
    recovery — must survive merging.
    """

    def test_merged_same_instant_takes_longest_downtime(self, inst):
        merged = merge_plans(
            [
                FaultPlan.of(CrashRecover(0, 1.0, 0.5)),
                FaultPlan.of(CrashRecover(0, 1.0, 3.0)),
            ]
        )
        _, _, got = _run(inst, faults=merged)
        _, _, want = _run(inst, faults=FaultPlan.of(CrashRecover(0, 1.0, 3.0)))
        assert got.runs == want.runs
        assert got.aborted == want.aborted

    def test_crash_at_recovery_instant_extends_outage(self, inst):
        """A crash landing exactly when an earlier outage ends is NOT
        absorbed: MACHINE_FAILURE outranks MACHINE_RECOVERY at the tie, so
        the downtime extends and the stale recovery is discarded."""
        merged = merge_plans(
            [
                FaultPlan.of(CrashRecover(0, 1.0, 1.0)),
                FaultPlan.of(CrashRecover(0, 2.0, 2.0)),
            ]
        )
        _, _, got = _run(inst, faults=merged)
        _, _, want = _run(inst, faults=FaultPlan.of(CrashRecover(0, 1.0, 3.0)))
        assert got.runs == want.runs

    def test_overlapping_outages_union(self, inst):
        merged = merge_plans(
            [
                FaultPlan.of(CrashRecover(0, 1.0, 2.0)),
                FaultPlan.of(CrashRecover(0, 2.0, 5.0)),
            ]
        )
        _, _, got = _run(inst, faults=merged)
        _, _, want = _run(inst, faults=FaultPlan.of(CrashRecover(0, 1.0, 6.0)))
        assert got.runs == want.runs

    def test_shorter_nested_outage_never_shortens(self, inst):
        merged = merge_plans(
            [
                FaultPlan.of(CrashRecover(0, 1.0, 5.0)),
                FaultPlan.of(CrashRecover(0, 2.0, 1.0)),
            ]
        )
        _, _, got = _run(inst, faults=merged)
        _, _, want = _run(inst, faults=FaultPlan.of(CrashRecover(0, 1.0, 5.0)))
        assert got.runs == want.runs

    def test_permanent_crash_during_outage_wins(self, inst):
        merged = merge_plans(
            [
                FaultPlan.of(CrashRecover(0, 1.0, 2.0)),
                FaultPlan.of(CrashStop(0, 2.0)),
            ]
        )
        _, _, got = _run(inst, faults=merged)
        _, _, want = _run(inst, faults=FaultPlan.of(CrashStop(0, 1.0)))
        assert got.runs == want.runs

    def test_completion_beats_failure_tie_after_merge(self, inst):
        """Task 0 (work 4) completes at exactly t=4; two merged correlated
        plans both killing machine 0 at t=4 must still lose the tie."""
        merged = merge_plans(
            [
                FaultPlan.of(CorrelatedFailure((0,), 4.0, 2.0)),
                FaultPlan.of(CorrelatedFailure((0,), 4.0)),
            ]
        )
        p, real, trace = _run(inst, faults=merged)
        trace.validate(p, real)
        assert trace.runs[0].machine == 0
        assert trace.runs[0].end == pytest.approx(4.0)
        assert not any(a.tid == 0 for a in trace.aborted)


class TestFaultModels:
    def test_random_crashes_reproducible(self):
        model = RandomCrashes(m=6, count=(0, 3), window=(0.0, 10.0))
        a = model.sample(np.random.default_rng(42))
        b = model.sample(np.random.default_rng(42))
        assert a == b

    def test_random_crashes_includes_control_arm(self):
        model = RandomCrashes(m=4, count=(0, 0))
        assert not model.sample(np.random.default_rng(0))

    def test_random_crashes_distinct_machines(self):
        model = RandomCrashes(m=4, count=(4, 4), window=(0.0, 5.0))
        plan = model.sample(np.random.default_rng(1))
        machines = [m for _, m, _ in plan.crashes()]
        assert sorted(machines) == [0, 1, 2, 3]
        plan.validate(4)

    def test_random_crashes_downtime_range(self):
        model = RandomCrashes(m=4, count=(2, 2), downtime=(1.0, 2.0))
        plan = model.sample(np.random.default_rng(3))
        assert all(isinstance(f, CrashRecover) for f in plan.faults)
        assert all(1.0 <= f.downtime <= 2.0 for f in plan.faults)

    def test_rack_failure_contiguous_members(self):
        model = RackFailure(m=6, racks=3)
        plan = model.sample(np.random.default_rng(5))
        (fault,) = plan.faults
        assert isinstance(fault, CorrelatedFailure)
        assert len(fault.machines) == 2
        lo = fault.machines[0]
        assert fault.machines == (lo, lo + 1) and lo % 2 == 0
        assert math.isinf(fault.downtime)

    def test_rack_failure_downtime_scalar_and_range(self):
        scalar = RackFailure(m=4, racks=2, downtime=3.0)
        (fault,) = scalar.sample(np.random.default_rng(1)).faults
        assert fault.downtime == 3.0
        ranged = RackFailure(m=4, racks=2, downtime=(1.0, 2.0))
        (fault,) = ranged.sample(np.random.default_rng(1)).faults
        assert 1.0 <= fault.downtime <= 2.0

    def test_rack_failure_requires_divisibility(self):
        with pytest.raises(ValueError, match="divide"):
            RackFailure(m=5, racks=2)

    def test_straggler_bounds(self):
        model = StragglerSlowdowns(
            m=5, prob=1.0, factors=(0.3, 0.8), window=(0.0, 10.0), durations=(2.0, 8.0)
        )
        plan = model.sample(np.random.default_rng(7))
        slows = plan.slowdowns()
        assert len(slows) == 5
        for s in slows:
            assert 0.3 <= s.factor <= 0.8
            assert 0.0 <= s.start <= 10.0
            assert 2.0 <= s.end - s.start <= 8.0
        plan.validate(5)

    def test_sampled_plans_run_end_to_end(self, inst3):
        rng = np.random.default_rng(11)
        model = RandomCrashes(m=3, count=(0, 1), window=(0.0, 6.0), downtime=(0.5, 2.0))
        for _ in range(5):
            p, real, trace = _run(inst3, faults=model.sample(rng))
            trace.validate(p, real)
