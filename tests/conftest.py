"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import os

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, settings

from repro.core.model import Instance, make_instance

# Default hypothesis profile: modest example counts so the full suite stays
# fast.  Set REPRO_THOROUGH=1 (e.g. nightly CI) for a 10x deeper sweep of
# every property test.
settings.register_profile(
    "default",
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile(
    "thorough",
    max_examples=400,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("thorough" if os.environ.get("REPRO_THOROUGH") else "default")


# ---------------------------------------------------------------------------
# Hypothesis strategies for instances/realizations
# ---------------------------------------------------------------------------

def estimates_strategy(min_n: int = 1, max_n: int = 12) -> st.SearchStrategy[list[float]]:
    """Lists of well-behaved positive estimates."""
    return st.lists(
        st.floats(min_value=0.1, max_value=100.0, allow_nan=False, allow_infinity=False),
        min_size=min_n,
        max_size=max_n,
    )


@st.composite
def instances(
    draw: st.DrawFn,
    *,
    min_n: int = 1,
    max_n: int = 12,
    max_m: int = 5,
    alphas: tuple[float, ...] = (1.0, 1.2, 1.5, 2.0, 3.0),
) -> Instance:
    """Random small instances (estimates, m, alpha)."""
    ests = draw(estimates_strategy(min_n, max_n))
    m = draw(st.integers(min_value=1, max_value=max_m))
    alpha = draw(st.sampled_from(alphas))
    return make_instance(ests, m, alpha)


@st.composite
def sized_instances(
    draw: st.DrawFn,
    *,
    min_n: int = 1,
    max_n: int = 12,
    max_m: int = 5,
) -> Instance:
    """Random small instances with memory sizes."""
    inst = draw(instances(min_n=min_n, max_n=max_n, max_m=max_m))
    sizes = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=50.0, allow_nan=False),
            min_size=inst.n,
            max_size=inst.n,
        )
    )
    return inst.with_sizes(sizes)


@st.composite
def factor_vectors(draw: st.DrawFn, instance: Instance) -> list[float]:
    """Admissible factor vectors for a given instance."""
    a = instance.alpha
    return draw(
        st.lists(
            st.floats(min_value=1.0 / a, max_value=a, allow_nan=False),
            min_size=instance.n,
            max_size=instance.n,
        )
    )


# ---------------------------------------------------------------------------
# Plain fixtures
# ---------------------------------------------------------------------------

@pytest.fixture
def small_instance() -> Instance:
    """A hand-checkable 6-task, 2-machine instance with alpha=1.5."""
    return make_instance([5.0, 4.0, 3.0, 3.0, 2.0, 1.0], m=2, alpha=1.5)


@pytest.fixture
def sized_instance() -> Instance:
    """A small memory-aware instance (times and sizes)."""
    return make_instance(
        [8.0, 7.0, 2.0, 1.5, 1.0, 1.0],
        m=3,
        alpha=1.4,
        sizes=[1.0, 0.5, 6.0, 5.0, 4.0, 4.0],
    )
