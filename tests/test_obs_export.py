"""Tests for the OpenMetrics exposition writer (repro.obs.export)."""

from __future__ import annotations

import pytest

from repro.obs import JsonlSink, observed
from repro.obs.export import (
    registry_from_trace,
    render_openmetrics,
    sanitize,
    validate_exposition,
    write_exposition,
)
from repro.obs.metrics import BUCKET_BOUNDS, MetricsRegistry


def sample_registry():
    registry = MetricsRegistry()
    registry.counter("sim.dispatches").inc(20)
    registry.counter("grid.cells_done").inc(4)
    registry.gauge("sim.makespan").set(28.47)
    timer = registry.timer("span.grid.cell")
    for value in (0.01, 0.02, 0.04, 0.5):
        timer.observe(value)
    return registry


class TestSanitize:
    def test_dots_become_underscores(self):
        assert sanitize("span.grid.cell") == "span_grid_cell"

    def test_leading_digit_gets_prefixed(self):
        assert sanitize("9lives") == "_9lives"

    def test_exotic_chars(self):
        assert sanitize("grid.strategy.ls_group[k=3]") == "grid_strategy_ls_group_k_3_"


class TestRenderOpenmetrics:
    def test_counters_gauges_timers(self):
        text = render_openmetrics(sample_registry().summary())
        assert "# TYPE repro_sim_dispatches counter" in text
        assert "repro_sim_dispatches_total 20" in text
        assert "# TYPE repro_sim_makespan gauge" in text
        assert "repro_sim_makespan 28.47" in text
        assert "# TYPE repro_span_grid_cell_seconds summary" in text
        assert 'repro_span_grid_cell_seconds{quantile="0.99"}' in text
        assert "repro_span_grid_cell_seconds_count 4" in text
        assert text.endswith("# EOF\n")

    def test_histogram_family_is_distinct_and_cumulative(self):
        text = render_openmetrics(sample_registry().summary())
        assert "# TYPE repro_span_grid_cell_seconds_hist histogram" in text
        bucket_lines = [
            line for line in text.splitlines()
            if line.startswith("repro_span_grid_cell_seconds_hist_bucket")
        ]
        counts = [int(line.rsplit(" ", 1)[1]) for line in bucket_lines]
        assert counts == sorted(counts)  # cumulative
        assert counts[-1] == 4
        assert 'le="+Inf"' in bucket_lines[-1]

    def test_histograms_can_be_disabled(self):
        text = render_openmetrics(sample_registry().summary(), histograms=False)
        assert "_hist" not in text

    def test_custom_prefix(self):
        text = render_openmetrics(sample_registry().summary(), prefix="acme")
        assert "acme_sim_dispatches_total" in text
        assert "repro_" not in text

    def test_empty_registry_is_just_eof(self):
        assert render_openmetrics(MetricsRegistry().summary()) == "# EOF\n"


class TestValidateExposition:
    def test_sample_registry_round_trips(self):
        text = render_openmetrics(sample_registry().summary())
        families, errors = validate_exposition(text)
        assert errors == []
        assert families["repro_sim_dispatches"] == "counter"
        assert families["repro_span_grid_cell_seconds"] == "summary"
        assert families["repro_span_grid_cell_seconds_hist"] == "histogram"

    def test_missing_eof_flagged(self):
        text = render_openmetrics(sample_registry().summary())
        _, errors = validate_exposition(text.replace("# EOF\n", ""))
        assert any("EOF" in e for e in errors)

    def test_garbage_line_flagged(self):
        _, errors = validate_exposition("!!not a metric!!\n# EOF\n")
        assert errors

    def test_text_after_eof_flagged(self):
        _, errors = validate_exposition("# EOF\nrepro_x_total 1\n")
        assert errors


class TestRegistryFromTrace:
    def trace(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with observed(JsonlSink(path)) as tracer:
            with tracer.span("phase1"):
                tracer.count("phase1.placements")
            with tracer.span("phase2"):
                pass
            # Counters travel as shutdown snapshots (the CLI does this
            # before closing a trace).
            tracer.snapshot_counters()
        return path

    def test_counters_and_span_timers_rebuilt(self, tmp_path):
        registry = registry_from_trace(self.trace(tmp_path))
        assert registry.counters["phase1.placements"].value == 1
        assert registry.timers["span.phase1"].count == 1
        assert registry.timers["span.phase2"].count == 1
        assert registry.timers["span.phase1"].total > 0

    def test_rebuilt_registry_exports_cleanly(self, tmp_path):
        registry = registry_from_trace(self.trace(tmp_path))
        families, errors = validate_exposition(
            render_openmetrics(registry.summary())
        )
        assert errors == []
        assert "repro_span_phase1_seconds" in families


class TestWriteExposition:
    def test_writes_and_creates_parents(self, tmp_path):
        out = write_exposition(
            sample_registry().summary(), tmp_path / "deep" / "telemetry.prom"
        )
        assert out.read_text().endswith("# EOF\n")


class TestBucketBounds:
    def test_log_spacing_four_per_decade(self):
        assert len(BUCKET_BOUNDS) == 37
        assert BUCKET_BOUNDS[0] == pytest.approx(1e-6)
        assert BUCKET_BOUNDS[-1] == pytest.approx(1e3)
        ratio = BUCKET_BOUNDS[1] / BUCKET_BOUNDS[0]
        assert ratio == pytest.approx(10 ** 0.25)


class TestCliExport:
    def test_export_subcommand(self, tmp_path, capsys):
        from repro.cli import main

        trace = tmp_path / "t.jsonl"
        with observed(JsonlSink(trace)) as tracer:
            with tracer.span("simulate"):
                tracer.count("sim.dispatches", 8)
        out = tmp_path / "telemetry.prom"
        assert main(
            ["obs", "export", str(trace), "--format", "openmetrics",
             "--out", str(out)]
        ) == 0
        families, errors = validate_exposition(out.read_text())
        assert errors == [] and families

    def test_export_missing_trace_fails(self, tmp_path):
        from repro.cli import main

        assert main(
            ["obs", "export", str(tmp_path / "no.jsonl"),
             "--format", "openmetrics"]
        ) == 1
