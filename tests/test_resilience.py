"""Tests for the hardened experiment substrate (retry / timeout / quarantine).

Uses the deterministic cell-fault injector (:mod:`repro.faults.inject`)
to make grid cells fail on purpose, then asserts the substrate's
promises: transient failures retry to the bit-identical clean result,
poisoned cells quarantine as structured skips without aborting the
sweep, timeouts convert runaway cells into quarantines, and none of it
ever reaches the on-disk cache.
"""

from __future__ import annotations

import time

import pytest

import repro.analysis.ratios as ratios_module
from repro.analysis.cache import CellCache
from repro.analysis.experiment import ExperimentGrid, run_grid
from repro.analysis.parallel import (
    DEFAULT_RETRY,
    CellTimeout,
    RetryPolicy,
    enumerate_cells,
    run_cell_resilient,
)
from repro.core.strategies import LPTNoChoice, LPTNoRestriction
from repro.faults import inject
from repro.faults.inject import CellFaultSpec, InjectedFault
from repro.obs import MemorySink, observed, validate_record
from repro.workloads.generators import uniform_instance

FAST_RETRY = RetryPolicy(max_attempts=3, backoff_s=0.0)


@pytest.fixture(autouse=True)
def _clean_injection():
    yield
    inject.reset()


def _grid(**overrides) -> ExperimentGrid:
    base = dict(
        strategies=[LPTNoChoice(), LPTNoRestriction()],
        instances=[uniform_instance(8, 2, alpha=1.5, seed=0)],
        realization_models=["log_uniform"],
        seeds=(0, 1),
        retry=FAST_RETRY,
    )
    base.update(overrides)
    return ExperimentGrid(**base)


class TestCellFaultSpec:
    def test_parse_round_trip(self):
        assert CellFaultSpec.parse("every=3,fails=1") == CellFaultSpec(every=3, fails=1)
        assert CellFaultSpec.parse("only=5,fails=-1") == CellFaultSpec(
            every=1, fails=-1, only=5
        )

    def test_parse_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown fault-injection key"):
            CellFaultSpec.parse("evry=3")

    def test_parse_rejects_nonpositive_every(self):
        with pytest.raises(ValueError, match="every"):
            CellFaultSpec.parse("every=0")

    def test_targets(self):
        assert CellFaultSpec(every=3).targets(0)
        assert CellFaultSpec(every=3).targets(6)
        assert not CellFaultSpec(every=3).targets(4)
        assert CellFaultSpec(only=2).targets(2)
        assert not CellFaultSpec(only=2).targets(0)

    def test_check_fails_then_succeeds(self):
        inject.configure(CellFaultSpec(every=1, fails=2))
        with pytest.raises(InjectedFault):
            inject.check(0)
        with pytest.raises(InjectedFault):
            inject.check(0)
        inject.check(0)  # third attempt passes

    def test_poison_never_succeeds(self):
        inject.configure(CellFaultSpec(only=0, fails=-1))
        for _ in range(5):
            with pytest.raises(InjectedFault):
                inject.check(0)
        inject.check(1)  # untargeted cell is clean

    def test_env_var_fallback(self, monkeypatch):
        monkeypatch.setenv(inject.ENV_VAR, "every=2,fails=1")
        assert inject.active_spec() == CellFaultSpec(every=2, fails=1)
        inject.configure(CellFaultSpec(only=9))
        assert inject.active_spec() == CellFaultSpec(only=9)  # configured wins

    def test_no_spec_is_a_noop(self):
        assert inject.active_spec() is None
        inject.check(0)


class TestRetryPolicy:
    @pytest.mark.parametrize(
        "kwargs, match",
        [
            ({"max_attempts": 0}, "max_attempts"),
            ({"backoff_s": -1.0}, "backoff_s"),
            ({"backoff_factor": 0.5}, "backoff_factor"),
            ({"timeout_s": 0.0}, "timeout_s"),
        ],
    )
    def test_rejects_malformed(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            RetryPolicy(**kwargs)

    def test_default_has_no_timeout(self):
        assert DEFAULT_RETRY.timeout_s is None
        assert DEFAULT_RETRY.max_attempts == 3


class TestTransientRetry:
    def test_records_bit_identical_to_clean_run(self):
        clean = _grid().run()
        inject.configure(CellFaultSpec(every=1, fails=1))
        grid = _grid()
        faulty = grid.run()
        assert faulty == clean
        assert grid.resilience == {"retries": 4, "timeouts": 0, "quarantined": 0}
        assert not grid.skipped

    def test_retry_events_are_schema_valid(self):
        inject.configure(CellFaultSpec(only=0, fails=1))
        with observed(MemorySink()) as tracer:
            _grid().run()
            retries = [
                ev for ev in tracer.sinks[0].events if ev.name == "grid.cell_retry"
            ]
        assert len(retries) == 1
        assert validate_record(retries[0].as_dict()) == []

    def test_exhaustion_quarantines_without_aborting(self):
        inject.configure(CellFaultSpec(only=2, fails=-1))
        grid = _grid()
        records = grid.run()
        assert len(records) == 3  # the other cells completed
        (skip,) = grid.skipped
        assert skip.kind == "quarantined"
        assert skip.attempts == FAST_RETRY.max_attempts
        assert "InjectedFault" in skip.error
        assert grid.resilience["quarantined"] == 1
        assert grid.resilience["retries"] == FAST_RETRY.max_attempts - 1

    def test_manifest_carries_resilience(self):
        inject.configure(CellFaultSpec(only=0, fails=1))
        with observed(MemorySink()) as tracer:
            _grid().run()
            manifests = [
                ev
                for ev in tracer.sinks[0].events
                if ev.kind == "manifest" and ev.name == "grid"
            ]
        assert manifests[-1].payload["params"]["resilience"] == {
            "retries": 1, "timeouts": 0, "quarantined": 0,
        }

    def test_parallel_env_injection_matches_serial_clean(self, monkeypatch):
        clean = _grid().run()
        monkeypatch.setenv(inject.ENV_VAR, "every=2,fails=1")
        faulty = run_grid(
            [LPTNoChoice(), LPTNoRestriction()],
            [uniform_instance(8, 2, alpha=1.5, seed=0)],
            ["log_uniform"],
            seeds=(0, 1),
            workers=2,
            retry=FAST_RETRY,
        )
        assert faulty == clean


class TestTimeouts:
    def test_runaway_cell_is_quarantined(self, monkeypatch):
        def _slow(*args, **kwargs):
            time.sleep(0.25)
            raise AssertionError("timed-out attempt must not be used")

        monkeypatch.setattr(ratios_module, "measured_ratio", _slow)
        (spec,) = enumerate_cells(
            [LPTNoChoice()], [uniform_instance(8, 2, alpha=1.5, seed=0)],
            ["log_uniform"], [0], 22,
        )
        retry = RetryPolicy(max_attempts=2, backoff_s=0.0, timeout_s=0.02)
        outcome = run_cell_resilient(spec, retry=retry)
        assert outcome.skipped is not None
        assert outcome.skipped.kind == "quarantined"
        assert outcome.timed_out == 2
        assert "CellTimeout" in outcome.skipped.error

    def test_fast_cell_unaffected_by_timeout(self):
        (spec,) = enumerate_cells(
            [LPTNoChoice()], [uniform_instance(8, 2, alpha=1.5, seed=0)],
            ["log_uniform"], [0], 22,
        )
        outcome = run_cell_resilient(
            spec, retry=RetryPolicy(max_attempts=2, backoff_s=0.0, timeout_s=30.0)
        )
        assert outcome.record is not None
        assert outcome.attempts == 1 and outcome.timed_out == 0

    def test_cell_timeout_is_a_runtime_error(self):
        assert issubclass(CellTimeout, RuntimeError)


class TestCacheInteraction:
    def test_quarantined_outcome_never_cached(self, tmp_path):
        cache = CellCache(tmp_path / "cache")
        inject.configure(CellFaultSpec(only=1, fails=-1))
        grid = _grid(cache=cache)
        first = grid.run()
        assert len(first) == 3
        assert cache.stores == 3  # the quarantined cell was refused

        # With the poison gone, a warm rerun recomputes exactly that cell.
        inject.reset()
        warm_cache = CellCache(tmp_path / "cache")
        warm_grid = _grid(cache=warm_cache)
        warm = warm_grid.run()
        assert len(warm) == 4
        assert not warm_grid.skipped
        assert (warm_cache.hits, warm_cache.misses) == (3, 1)

    def test_transient_retry_result_is_cached_normally(self, tmp_path):
        cache = CellCache(tmp_path / "cache")
        inject.configure(CellFaultSpec(every=1, fails=1))
        _grid(cache=cache).run()
        assert cache.stores == 4
        inject.reset()
        warm_cache = CellCache(tmp_path / "cache")
        clean = _grid().run()
        assert _grid(cache=warm_cache).run() == clean
        assert warm_cache.hits == 4
