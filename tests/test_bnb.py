"""Unit and property tests for repro.exact.bnb."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exact.bnb import branch_and_bound
from repro.schedulers.lower_bounds import combined_lower_bound
from repro.schedulers.lpt import lpt_schedule
from tests.conftest import estimates_strategy


class TestClosedForms:
    def test_single_machine(self):
        r = branch_and_bound([1.0, 2.0, 3.0], 1)
        assert r.makespan == 6.0
        assert r.assignment == (0, 0, 0)

    def test_one_task_per_machine(self):
        r = branch_and_bound([5.0, 1.0], 4)
        assert r.makespan == 5.0

    def test_optimal_flag(self):
        assert branch_and_bound([1.0], 1).optimal


class TestKnownOptima:
    def test_lpt_suboptimal_instance(self):
        # LPT gives 7 here; OPT is 6 (3+3 | 2+2+2).
        r = branch_and_bound([3.0, 3.0, 2.0, 2.0, 2.0], 2)
        assert r.makespan == 6.0

    def test_partition_instance(self):
        r = branch_and_bound([7.0, 5.0, 4.0, 3.0, 1.0], 2)
        assert r.makespan == 10.0

    def test_three_machines(self):
        r = branch_and_bound([5.0, 4.0, 3.0, 3.0, 3.0], 3)
        assert r.makespan == 7.0

    def test_identical_tasks(self):
        r = branch_and_bound([1.0] * 7, 3)
        assert r.makespan == 3.0

    def test_assignment_achieves_makespan(self):
        times = [4.0, 3.0, 3.0, 2.0, 2.0, 1.0]
        r = branch_and_bound(times, 3)
        loads = [0.0] * 3
        for j, i in enumerate(r.assignment):
            loads[i] += times[j]
        assert max(loads) == pytest.approx(r.makespan)


class TestAgainstBounds:
    @given(estimates_strategy(1, 11), st.integers(min_value=1, max_value=4))
    def test_sandwiched_by_bounds(self, times, m):
        r = branch_and_bound(times, m)
        lb = combined_lower_bound(times, m)
        ub = lpt_schedule(times, m).makespan
        assert lb <= r.makespan * (1 + 1e-9)
        assert r.makespan <= ub * (1 + 1e-9)

    @given(estimates_strategy(1, 11), st.integers(min_value=1, max_value=4))
    def test_assignment_feasible(self, times, m):
        r = branch_and_bound(times, m)
        assert len(r.assignment) == len(times)
        assert all(0 <= i < m for i in r.assignment)
        loads = [0.0] * m
        for j, i in enumerate(r.assignment):
            loads[i] += times[j]
        assert max(loads) == pytest.approx(r.makespan)

    @given(estimates_strategy(2, 9))
    def test_monotone_in_machines(self, times):
        """Adding machines can only decrease the optimal makespan."""
        prev = None
        for m in (1, 2, 3):
            cur = branch_and_bound(times, m).makespan
            if prev is not None:
                assert cur <= prev * (1 + 1e-9)
            prev = cur


class TestNodeLimit:
    def test_limit_raises(self):
        times = [float(17 + (j * 7919) % 101) / 10 for j in range(18)]
        with pytest.raises(RuntimeError, match="node_limit"):
            branch_and_bound(times, 4, node_limit=10)

    def test_nodes_reported(self):
        r = branch_and_bound([3.0, 3.0, 2.0, 2.0, 2.0], 2)
        assert r.nodes >= 1
