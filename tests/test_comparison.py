"""Tests for paired strategy comparison (repro.analysis.comparison)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.comparison import PairedComparison, compare_strategies, sign_test_pvalue
from repro.core.strategies import LPTNoChoice, LPTNoRestriction
from repro.uncertainty.stochastic import sample_realization
from repro.workloads.generators import uniform_instance


class TestSignTest:
    def test_no_pairs(self):
        assert sign_test_pvalue(0, 0) == 1.0

    def test_balanced_not_significant(self):
        assert sign_test_pvalue(5, 5) > 0.5

    def test_lopsided_significant(self):
        assert sign_test_pvalue(15, 0) < 0.001

    def test_symmetry(self):
        assert sign_test_pvalue(10, 2) == pytest.approx(sign_test_pvalue(2, 10))

    @given(st.integers(0, 20), st.integers(0, 20))
    def test_valid_probability(self, w, l):
        p = sign_test_pvalue(w, l)
        assert 0.0 <= p <= 1.0

    def test_exact_small_case(self):
        # 3 wins, 0 losses: two-sided p = 2 * (1/8) = 0.25.
        assert sign_test_pvalue(3, 0) == pytest.approx(0.25)


class TestCompareStrategies:
    def _cases(self, n_cases=8, alpha=2.0):
        cases = []
        for seed in range(n_cases):
            inst = uniform_instance(16, 4, alpha=alpha, seed=seed)
            real = sample_realization(inst, "bimodal_extreme", 50 + seed)
            cases.append((inst, real))
        return cases

    def test_self_comparison_all_ties(self):
        cases = self._cases(4)
        cmp = compare_strategies(LPTNoChoice(), LPTNoChoice(), cases)
        assert cmp.ties == 4
        assert cmp.mean_diff == pytest.approx(0.0)
        assert cmp.geo_mean_ratio == pytest.approx(1.0)
        assert not cmp.a_better

    def test_full_replication_beats_pinned_under_extremes(self):
        cmp = compare_strategies(LPTNoRestriction(), LPTNoChoice(), self._cases(12))
        assert cmp.wins_a >= cmp.wins_b
        assert cmp.geo_mean_ratio <= 1.0 + 1e-9
        assert cmp.mean_diff <= 1e-9

    def test_symmetry_of_direction(self):
        cases = self._cases(6)
        ab = compare_strategies(LPTNoRestriction(), LPTNoChoice(), cases)
        ba = compare_strategies(LPTNoChoice(), LPTNoRestriction(), cases)
        assert ab.mean_diff == pytest.approx(-ba.mean_diff)
        assert ab.wins_a == ba.wins_b
        assert ab.geo_mean_ratio == pytest.approx(1.0 / ba.geo_mean_ratio)

    def test_render(self):
        cmp = compare_strategies(LPTNoRestriction(), LPTNoChoice(), self._cases(3))
        out = cmp.render()
        assert "W/T/L" in out and "p=" in out

    def test_empty_cases_rejected(self):
        with pytest.raises(ValueError):
            compare_strategies(LPTNoChoice(), LPTNoChoice(), [])
