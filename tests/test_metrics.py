"""Tests for schedule metrics (repro.simulation.metrics)."""

from __future__ import annotations

import pytest

from repro.analysis.ratios import run_strategy
from repro.core.strategies import LPTNoRestriction
from repro.core.model import make_instance
from repro.simulation.metrics import (
    load_imbalance,
    machine_utilization,
    max_flow_time,
    mean_flow_time,
    mean_stretch,
    metrics_summary,
    total_completion_time,
)
from repro.simulation.trace import ScheduleTrace, TaskRun
from repro.uncertainty.realization import truthful_realization
from repro.workloads.generators import uniform_instance


@pytest.fixture
def trace():
    # M0: task0 [0,4); M1: task1 [0,2), task2 [2,3).
    return ScheduleTrace(
        (
            TaskRun(0, 0, 0.0, 4.0),
            TaskRun(1, 1, 0.0, 2.0),
            TaskRun(2, 1, 2.0, 3.0),
        )
    )


@pytest.fixture
def inst():
    return make_instance([4.0, 2.0, 1.0], m=2, alpha=1.0)


class TestBasicMetrics:
    def test_total_completion_time(self, trace):
        assert total_completion_time(trace) == 9.0

    def test_mean_flow_time_zero_releases(self, trace):
        assert mean_flow_time(trace) == pytest.approx(3.0)

    def test_flow_time_with_releases(self, trace):
        # Task 2 released at 1 -> flow 2 instead of 3.
        assert mean_flow_time(trace, [0.0, 0.0, 1.0]) == pytest.approx((4 + 2 + 2) / 3)
        assert max_flow_time(trace, [0.0, 0.0, 1.0]) == 4.0

    def test_release_length_validated(self, trace):
        with pytest.raises(ValueError):
            mean_flow_time(trace, [0.0])

    def test_mean_stretch(self, trace, inst):
        real = truthful_realization(inst)
        # stretches: 4/4=1, 2/2=1, 3/1=3 -> mean 5/3.
        assert mean_stretch(trace, real) == pytest.approx(5 / 3)

    def test_utilization(self, trace):
        # busy 7 over 2 machines x makespan 4.
        assert machine_utilization(trace, 2) == pytest.approx(7 / 8)

    def test_load_imbalance(self, trace):
        # loads (4, 3); mean 3.5 -> 4/3.5.
        assert load_imbalance(trace, 2) == pytest.approx(4 / 3.5)

    def test_summary_keys(self, trace, inst):
        real = truthful_realization(inst)
        summary = metrics_summary(trace, real, 2)
        assert set(summary) == {
            "makespan",
            "total_completion_time",
            "mean_flow_time",
            "max_flow_time",
            "mean_stretch",
            "machine_utilization",
            "load_imbalance",
        }
        assert summary["makespan"] == 4.0


class TestOnRealSchedules:
    def test_invariants(self):
        inst = uniform_instance(20, 4, alpha=1.5, seed=0)
        from repro.uncertainty.stochastic import sample_realization

        real = sample_realization(inst, "log_uniform", 1)
        outcome = run_strategy(LPTNoRestriction(), inst, real)
        summary = metrics_summary(outcome.trace, real, inst.m)
        assert 0 < summary["machine_utilization"] <= 1.0
        assert summary["load_imbalance"] >= 1.0
        assert summary["mean_stretch"] >= 1.0
        assert summary["mean_flow_time"] <= summary["max_flow_time"]
        assert summary["max_flow_time"] <= summary["makespan"] + 1e-9
