"""Unit tests for repro.uncertainty.correlated."""

from __future__ import annotations

import numpy as np
import pytest

from repro.uncertainty.correlated import (
    clustered_factors,
    size_correlated_factors,
    trending_factors,
)
from repro.workloads.generators import uniform_instance


@pytest.fixture
def inst():
    return uniform_instance(40, 4, alpha=2.0, seed=3)


class TestClustered:
    def test_respects_band(self, inst):
        real = clustered_factors(inst, seed=0, clusters=4)
        a = inst.alpha
        assert all(1 / a - 1e-9 <= f <= a + 1e-9 for f in real.factors())

    def test_exactly_k_distinct_factors(self, inst):
        real = clustered_factors(inst, seed=0, clusters=4)
        distinct = {round(f, 12) for f in real.factors()}
        assert len(distinct) <= 4

    def test_cluster_membership_round_robin(self, inst):
        real = clustered_factors(inst, seed=0, clusters=4)
        fs = real.factors()
        # Tasks j and j+4 share a cluster, hence a factor.
        for j in range(inst.n - 4):
            assert fs[j] == pytest.approx(fs[j + 4])

    def test_deterministic(self, inst):
        assert (
            clustered_factors(inst, seed=9).actuals == clustered_factors(inst, seed=9).actuals
        )

    def test_clusters_validated(self, inst):
        with pytest.raises(ValueError):
            clustered_factors(inst, clusters=0)

    def test_alpha_one(self):
        certain = uniform_instance(10, 2, alpha=1.0, seed=0)
        real = clustered_factors(certain, seed=0)
        assert all(f == pytest.approx(1.0) for f in real.factors())


class TestTrending:
    def test_respects_band(self, inst):
        real = trending_factors(inst, seed=0)
        a = inst.alpha
        assert all(1 / a - 1e-9 <= f <= a + 1e-9 for f in real.factors())

    def test_overall_upward_trend(self, inst):
        real = trending_factors(inst, seed=0, drift=1.0)
        fs = np.log(real.factors())
        first, last = fs[: inst.n // 4].mean(), fs[-inst.n // 4 :].mean()
        assert last > first

    def test_zero_drift_near_one(self, inst):
        real = trending_factors(inst, seed=0, drift=0.0)
        assert all(abs(np.log(f)) <= 0.1 * np.log(inst.alpha) + 1e-9 for f in real.factors())

    def test_drift_validated(self, inst):
        with pytest.raises(ValueError):
            trending_factors(inst, drift=1.5)

    def test_alpha_one(self):
        certain = uniform_instance(10, 2, alpha=1.0, seed=0)
        real = trending_factors(certain, seed=0)
        assert all(f == pytest.approx(1.0) for f in real.factors())


class TestSizeCorrelated:
    def test_respects_band(self, inst):
        real = size_correlated_factors(inst, seed=0)
        a = inst.alpha
        assert all(1 / a - 1e-9 <= f <= a + 1e-9 for f in real.factors())

    def test_positive_direction_inflates_largest(self, inst):
        real = size_correlated_factors(inst, seed=0, direction=+1)
        ests = np.asarray(inst.estimates)
        fs = np.asarray(real.factors())
        big = fs[ests >= np.percentile(ests, 80)]
        small = fs[ests <= np.percentile(ests, 20)]
        assert big.mean() > small.mean()

    def test_negative_direction_deflates_largest(self, inst):
        real = size_correlated_factors(inst, seed=0, direction=-1)
        ests = np.asarray(inst.estimates)
        fs = np.asarray(real.factors())
        big = fs[ests >= np.percentile(ests, 80)]
        small = fs[ests <= np.percentile(ests, 20)]
        assert big.mean() < small.mean()

    def test_direction_validated(self, inst):
        with pytest.raises(ValueError, match="direction"):
            size_correlated_factors(inst, direction=0)

    def test_identical_estimates_handled(self):
        from repro.workloads.generators import identical_instance

        inst = identical_instance(10, 2, alpha=2.0)
        real = size_correlated_factors(inst, seed=0)
        assert len(real) == 10
