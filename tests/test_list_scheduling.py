"""Unit and property tests for repro.schedulers.list_scheduling."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.schedulers.list_scheduling import (
    AssignmentResult,
    balance_gap,
    greedy_assign_heap,
    list_schedule,
)
from tests.conftest import estimates_strategy


class TestListSchedule:
    def test_docstring_example(self):
        r = list_schedule([3.0, 2.0, 2.0], m=2)
        assert r.assignment == (0, 1, 1)
        assert r.makespan == 4.0

    def test_single_machine(self):
        r = list_schedule([1.0, 2.0, 3.0], m=1)
        assert r.assignment == (0, 0, 0)
        assert r.makespan == 6.0

    def test_more_machines_than_tasks(self):
        r = list_schedule([2.0, 1.0], m=4)
        assert r.makespan == 2.0
        assert set(r.assignment) == {0, 1}

    def test_tie_breaks_to_lowest_machine(self):
        r = list_schedule([1.0, 1.0, 1.0], m=3)
        assert r.assignment == (0, 1, 2)

    def test_custom_order(self):
        # Taking the big task last reproduces the classic LS worst case.
        r = list_schedule([1.0, 1.0, 2.0], m=2, order=[0, 1, 2])
        assert r.makespan == 3.0
        r2 = list_schedule([1.0, 1.0, 2.0], m=2, order=[2, 0, 1])
        assert r2.makespan == 2.0

    def test_order_validates_range(self):
        with pytest.raises(ValueError, match="outside"):
            list_schedule([1.0], 1, order=[5])

    def test_order_validates_duplicates(self):
        with pytest.raises(ValueError, match="repeats"):
            list_schedule([1.0, 2.0], 1, order=[0, 0])

    def test_initial_loads(self):
        r = list_schedule([1.0], m=2, initial_loads=[5.0, 0.0])
        assert r.assignment == (1,)
        assert r.loads == (5.0, 1.0)

    def test_initial_loads_validated(self):
        with pytest.raises(ValueError, match="length"):
            list_schedule([1.0], m=2, initial_loads=[1.0])
        with pytest.raises(ValueError, match="finite"):
            list_schedule([1.0], m=2, initial_loads=[-1.0, 0.0])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            list_schedule([], m=2)

    def test_rejects_zero_machines(self):
        with pytest.raises(ValueError):
            list_schedule([1.0], m=0)


class TestAssignmentResult:
    def test_machine_tasks(self):
        r = list_schedule([3.0, 2.0, 2.0], m=2)
        assert r.machine_tasks() == [[0], [1, 2]]

    def test_m_property(self):
        assert list_schedule([1.0], m=3).m == 3


class TestGrahamProperties:
    @given(estimates_strategy(1, 15), st.integers(min_value=1, max_value=5))
    def test_graham_bound(self, times, m):
        """LS makespan <= sum/m + (m-1)/m * max — the classical guarantee
        against the LP lower bound."""
        r = list_schedule(times, m)
        bound = sum(times) / m + (m - 1) / m * max(times)
        assert r.makespan <= bound * (1 + 1e-9)

    @given(estimates_strategy(1, 15), st.integers(min_value=1, max_value=5))
    def test_loads_sum_to_total(self, times, m):
        r = list_schedule(times, m)
        assert sum(r.loads) == pytest.approx(sum(times))

    @given(estimates_strategy(2, 15), st.integers(min_value=2, max_value=5))
    def test_balance_property(self, times, m):
        """Final loads of any two machines differ by at most the largest task.

        This is the Phase-1 group-balance fact used in Theorem 4's proof.
        """
        r = list_schedule(times, m)
        assert balance_gap(r.loads) <= max(times) * (1 + 1e-9)

    @given(estimates_strategy(1, 15), st.integers(min_value=1, max_value=5))
    def test_assignment_in_range(self, times, m):
        r = list_schedule(times, m)
        assert all(0 <= i < m for i in r.assignment)

    @given(estimates_strategy(1, 12), st.integers(min_value=1, max_value=4))
    def test_no_machine_idle_while_another_overloaded(self, times, m):
        """Greedy invariant: when task t was placed on machine i, i had the
        minimum load; so the final min load >= final max load - max task."""
        r = list_schedule(times, m)
        if len(times) >= m:
            assert min(r.loads) >= r.makespan - max(times) - 1e-9


class TestBalanceGap:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            balance_gap([])

    def test_simple(self):
        assert balance_gap([3.0, 1.0, 2.0]) == 2.0


class TestGreedyAssignHeap:
    def test_partial_order(self):
        r = greedy_assign_heap([10.0, 1.0, 2.0], order=[1, 2], m=2)
        assert r.order == (1, 2)
        assert sum(r.loads) == pytest.approx(3.0)

    def test_result_type(self):
        assert isinstance(greedy_assign_heap([1.0], [0], 1), AssignmentResult)
