"""Health state machine, circuit breaker, and bulkhead behavior."""

from __future__ import annotations

import pytest

from repro.chaos.policy import (
    BreakerState,
    Bulkhead,
    CircuitBreaker,
    HealthPolicy,
    HealthState,
    HealthTracker,
)


@pytest.fixture
def tracker() -> HealthTracker:
    return HealthTracker(
        HealthPolicy(
            suspect_after=1, quarantine_after=2, probation_after=5.0, recover_after=2
        )
    )


class TestHealthTracker:
    def test_unknown_entities_are_healthy(self, tracker):
        assert tracker.state("m0") is HealthState.HEALTHY
        assert tracker.states() == {}

    def test_escalation_to_quarantine(self, tracker):
        # suspect_after=1: first failure suspects.  quarantine_after=2
        # counts failures *while suspect* (entry reset the counter), so
        # the total run to quarantine is 1 + 2 = 3.
        assert tracker.observe_failure("m0", 1.0) is HealthState.SUSPECT
        assert tracker.observe_failure("m0", 2.0) is HealthState.SUSPECT
        assert tracker.observe_failure("m0", 3.0) is HealthState.QUARANTINED
        assert [t.new for t in tracker.transitions] == [
            HealthState.SUSPECT,
            HealthState.QUARANTINED,
        ]

    def test_parole_then_full_recovery(self, tracker):
        for t in (1.0, 2.0, 3.0):
            tracker.observe_failure("m0", t)
        # Probation window counts from quarantine entry (t=3).
        assert tracker.tick(7.0) == []
        paroled = tracker.tick(8.0)
        assert [p.new for p in paroled] == [HealthState.RECOVERED]
        # recover_after=2 successes promote back to healthy.
        assert tracker.observe_success("m0", 9.0) is HealthState.RECOVERED
        assert tracker.observe_success("m0", 10.0) is HealthState.HEALTHY

    def test_failure_during_probation_requarantines(self, tracker):
        for t in (1.0, 2.0, 3.0):
            tracker.observe_failure("m0", t)
        tracker.tick(8.0)
        assert tracker.observe_failure("m0", 9.0) is HealthState.QUARANTINED
        assert tracker.transitions[-1].reason == "failure during probation"

    def test_failure_while_quarantined_extends_window(self, tracker):
        for t in (1.0, 2.0, 3.0):
            tracker.observe_failure("m0", t)
        tracker.observe_failure("m0", 6.0)  # pushes `since` to 6.0
        assert tracker.tick(8.5) == []
        assert tracker.tick(11.0) != []

    def test_completion_counts_only_during_probation(self, tracker):
        # A suspect machine finishing tasks is not evidence it stopped
        # crashing: completions must not erase crash history.
        tracker.observe_failure("m0", 1.0)
        for t in (2.0, 3.0, 4.0):
            assert tracker.observe_completion("m0", t) is HealthState.SUSPECT
        assert tracker.observe_failure("m0", 5.0) is HealthState.SUSPECT
        assert tracker.observe_failure("m0", 6.0) is HealthState.QUARANTINED
        tracker.tick(12.0)
        assert tracker.observe_completion("m0", 13.0) is HealthState.RECOVERED
        assert tracker.observe_completion("m0", 14.0) is HealthState.HEALTHY

    def test_on_enter_actions_fire_with_transition(self, tracker):
        seen = []
        tracker.on_enter(HealthState.QUARANTINED, lambda tr: seen.append(tr))
        for t in (1.0, 2.0, 3.0):
            tracker.observe_failure("m0", t)
        assert len(seen) == 1
        assert seen[0].entity == "m0"
        assert seen[0].old is HealthState.SUSPECT
        assert seen[0].at == 3.0

    def test_counts(self, tracker):
        tracker.observe_failure("m0", 1.0)
        tracker.observe_success("m1", 1.0)
        counts = tracker.counts()
        assert counts["suspect"] == 1
        assert counts["healthy"] == 1
        assert counts["quarantined"] == 0

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            HealthPolicy(suspect_after=0)
        with pytest.raises(ValueError):
            HealthPolicy(probation_after=0.0)


class TestCircuitBreaker:
    def test_trips_after_consecutive_failures(self):
        breaker = CircuitBreaker(failure_threshold=3, cooldown=5.0)
        for t in (1.0, 2.0):
            breaker.record_failure(t)
        assert breaker.state is BreakerState.CLOSED
        breaker.record_failure(3.0)
        assert breaker.state is BreakerState.OPEN
        assert breaker.opened == 1
        assert not breaker.allow(4.0)
        assert breaker.rejected == 1

    def test_success_resets_the_failure_run(self):
        breaker = CircuitBreaker(failure_threshold=2, cooldown=5.0)
        breaker.record_failure(1.0)
        breaker.record_success(1.5)
        breaker.record_failure(2.0)
        assert breaker.state is BreakerState.CLOSED

    def test_half_open_probe_success_closes(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown=5.0)
        breaker.record_failure(0.0)
        assert not breaker.allow(4.9)
        assert breaker.allow(5.0)  # first probe after cooldown
        assert breaker.state is BreakerState.HALF_OPEN
        assert not breaker.allow(5.1)  # probe budget (1) exhausted
        breaker.record_success(5.2)
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allow(5.3)

    def test_half_open_probe_failure_reopens(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown=5.0)
        breaker.record_failure(0.0)
        assert breaker.allow(5.0)
        breaker.record_failure(5.1)
        assert breaker.state is BreakerState.OPEN
        assert breaker.opened == 2
        # Cooldown restarts from the reopen time.
        assert not breaker.allow(9.0)
        assert breaker.allow(10.1)

    def test_as_dict(self):
        breaker = CircuitBreaker(failure_threshold=2, cooldown=3.0)
        d = breaker.as_dict()
        assert d["state"] == "closed"
        assert d["failure_threshold"] == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(cooldown=0.0)


class TestBulkhead:
    def test_acquire_release_cycle(self):
        bulkhead = Bulkhead(capacity=2)
        assert bulkhead.try_acquire()
        assert bulkhead.try_acquire()
        assert not bulkhead.try_acquire()
        assert bulkhead.rejected == 1
        bulkhead.release()
        assert bulkhead.try_acquire()

    def test_check_tracks_external_occupancy(self):
        bulkhead = Bulkhead(capacity=3)
        assert bulkhead.check(2)
        assert not bulkhead.check(3)
        assert not bulkhead.check(7)
        assert bulkhead.rejected == 2
        assert bulkhead.in_flight == 7

    def test_release_underflow_raises(self):
        with pytest.raises(RuntimeError):
            Bulkhead(capacity=1).release()

    def test_validation(self):
        with pytest.raises(ValueError):
            Bulkhead(capacity=0)
