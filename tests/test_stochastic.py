"""Unit and property tests for repro.uncertainty.stochastic."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.uncertainty.stochastic import (
    STOCHASTIC_MODELS,
    beta_factors,
    bimodal_extreme_factors,
    log_uniform_factors,
    lognormal_factors,
    sample_realization,
    uniform_factors,
)
from repro.workloads.generators import uniform_instance
from tests.conftest import instances

ALL_MODELS = sorted(STOCHASTIC_MODELS)


@pytest.fixture
def inst():
    return uniform_instance(50, 4, alpha=2.0, seed=7)


class TestAllModels:
    @pytest.mark.parametrize("model", ALL_MODELS)
    def test_respects_band(self, model, inst):
        real = sample_realization(inst, model, seed=3)
        a = inst.alpha
        for j in range(inst.n):
            f = real.factor(j)
            assert 1.0 / a - 1e-9 <= f <= a + 1e-9

    @pytest.mark.parametrize("model", ALL_MODELS)
    def test_deterministic_given_seed(self, model, inst):
        r1 = sample_realization(inst, model, seed=11)
        r2 = sample_realization(inst, model, seed=11)
        assert r1.actuals == r2.actuals

    @pytest.mark.parametrize("model", ALL_MODELS)
    def test_different_seeds_differ(self, model, inst):
        r1 = sample_realization(inst, model, seed=1)
        r2 = sample_realization(inst, model, seed=2)
        assert r1.actuals != r2.actuals

    @pytest.mark.parametrize("model", ALL_MODELS)
    def test_label_set(self, model, inst):
        assert sample_realization(inst, model, seed=0).label

    def test_unknown_model_raises(self, inst):
        with pytest.raises(ValueError, match="unknown stochastic model"):
            sample_realization(inst, "nope")

    @pytest.mark.parametrize("model", ALL_MODELS)
    def test_alpha_one_gives_truthful(self, model):
        certain = uniform_instance(20, 3, alpha=1.0, seed=5)
        real = sample_realization(certain, model, seed=0)
        for j in range(certain.n):
            assert math.isclose(real.actual(j), certain.tasks[j].estimate)


class TestUniform:
    def test_covers_band(self, inst):
        real = uniform_factors(inst, seed=0)
        fs = real.factors()
        assert min(fs) < 1.0 < max(fs)


class TestLogUniform:
    def test_symmetric_in_log(self, inst):
        big = uniform_instance(4000, 4, alpha=2.0, seed=1)
        real = log_uniform_factors(big, seed=0)
        mean_log = float(np.mean(np.log(real.factors())))
        assert abs(mean_log) < 0.05


class TestLognormal:
    def test_sigma_frac_validated(self, inst):
        with pytest.raises(ValueError):
            lognormal_factors(inst, seed=0, sigma_frac=0.0)

    def test_clamped_to_band(self, inst):
        real = lognormal_factors(inst, seed=0, sigma_frac=5.0)
        a = inst.alpha
        assert all(1 / a - 1e-9 <= f <= a + 1e-9 for f in real.factors())


class TestBimodal:
    def test_only_extremes(self, inst):
        real = bimodal_extreme_factors(inst, seed=0)
        a = inst.alpha
        for f in real.factors():
            assert math.isclose(f, a) or math.isclose(f, 1.0 / a)

    def test_p_up_one(self, inst):
        real = bimodal_extreme_factors(inst, seed=0, p_up=1.0)
        assert all(math.isclose(f, inst.alpha) for f in real.factors())

    def test_p_up_zero(self, inst):
        real = bimodal_extreme_factors(inst, seed=0, p_up=0.0)
        assert all(math.isclose(f, 1.0 / inst.alpha) for f in real.factors())

    def test_p_up_validated(self, inst):
        with pytest.raises(ValueError):
            bimodal_extreme_factors(inst, seed=0, p_up=1.5)


class TestBeta:
    def test_skew_up(self, inst):
        real = beta_factors(inst, seed=0, a=8.0, b=1.0)
        assert float(np.mean(np.log(real.factors()))) > 0

    def test_skew_down(self, inst):
        real = beta_factors(inst, seed=0, a=1.0, b=8.0)
        assert float(np.mean(np.log(real.factors()))) < 0

    def test_params_validated(self, inst):
        with pytest.raises(ValueError):
            beta_factors(inst, seed=0, a=0.0)


class TestPropertyAcrossInstances:
    @given(instances(min_n=1, max_n=10), st.sampled_from(ALL_MODELS))
    def test_any_instance_any_model(self, inst, model):
        real = sample_realization(inst, model, seed=0)
        assert len(real) == inst.n

    def test_generator_object_accepted(self, inst):
        rng = np.random.default_rng(5)
        real = uniform_factors(inst, rng)
        assert len(real) == inst.n
