"""Unit and property tests for repro.memory.pareto."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.memory.pareto import BiPoint, dominates, front_area, pareto_front, zenith_value

points = st.builds(
    BiPoint,
    st.floats(min_value=0.1, max_value=10.0),
    st.floats(min_value=0.1, max_value=10.0),
)


class TestDominates:
    def test_strict_domination(self):
        assert dominates(BiPoint(1, 1), BiPoint(2, 2))
        assert dominates(BiPoint(1, 2), BiPoint(2, 2))

    def test_equal_not_strict(self):
        assert not dominates(BiPoint(1, 1), BiPoint(1, 1))
        assert dominates(BiPoint(1, 1), BiPoint(1, 1), strict=False)

    def test_incomparable(self):
        assert not dominates(BiPoint(1, 3), BiPoint(3, 1))
        assert not dominates(BiPoint(3, 1), BiPoint(1, 3))


class TestParetoFront:
    def test_simple(self):
        pts = [BiPoint(1, 3), BiPoint(2, 2), BiPoint(3, 1), BiPoint(3, 3)]
        front = pareto_front(pts)
        assert [(p.makespan, p.memory) for p in front] == [(1, 3), (2, 2), (3, 1)]

    def test_duplicates_collapsed(self):
        pts = [BiPoint(1, 1), BiPoint(1, 1)]
        assert len(pareto_front(pts)) == 1

    def test_single_point(self):
        assert pareto_front([BiPoint(5, 5)]) == [BiPoint(5, 5)]

    @given(st.lists(points, min_size=1, max_size=30))
    def test_front_is_mutually_nondominated(self, pts):
        front = pareto_front(pts)
        for a in front:
            for b in front:
                if a is not b:
                    assert not dominates(a, b)

    @given(st.lists(points, min_size=1, max_size=30))
    def test_every_point_dominated_or_on_front(self, pts):
        front = pareto_front(pts)
        coords = {p.as_tuple() for p in front}
        for p in pts:
            assert p.as_tuple() in coords or any(
                dominates(f, p, strict=False) for f in front
            )

    @given(st.lists(points, min_size=1, max_size=30))
    def test_sorted_by_makespan(self, pts):
        front = pareto_front(pts)
        xs = [p.makespan for p in front]
        assert xs == sorted(xs)


class TestZenith:
    def test_max_norm(self):
        assert zenith_value(BiPoint(2, 3)) == 3.0

    def test_weights(self):
        assert zenith_value(BiPoint(2, 3), make_weight=2.0) == 4.0

    def test_rejects_bad_weights(self):
        with pytest.raises(ValueError):
            zenith_value(BiPoint(1, 1), make_weight=0.0)


class TestFrontArea:
    def test_single_point_rectangle(self):
        area = front_area([BiPoint(1, 1)], ref=(3, 3))
        assert area == pytest.approx(4.0)

    def test_staircase(self):
        area = front_area([BiPoint(1, 2), BiPoint(2, 1)], ref=(3, 3))
        # strips: [1,2]x(3-2) + [2,3]x(3-1) = 1 + 2 = 3.
        assert area == pytest.approx(3.0)

    def test_point_outside_ref_ignored(self):
        assert front_area([BiPoint(5, 5)], ref=(3, 3)) == 0.0

    @given(st.lists(points, min_size=1, max_size=20))
    def test_area_nonnegative_and_bounded(self, pts):
        ref = (11.0, 11.0)
        area = front_area(pts, ref=ref)
        assert 0.0 <= area <= ref[0] * ref[1]

    @given(st.lists(points, min_size=1, max_size=15), points)
    def test_adding_point_never_shrinks_area(self, pts, extra):
        ref = (11.0, 11.0)
        assert front_area(pts + [extra], ref=ref) >= front_area(pts, ref=ref) - 1e-9
