"""Smoke tests: every example script runs to completion and prints results.

Examples are user-facing documentation; a broken example is a broken API
promise, so each one runs in-process (fast) with its ``main()`` invoked.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[1] / "examples"
EXAMPLES = sorted(p.stem for p in EXAMPLES_DIR.glob("*.py"))


def _load(name: str):
    spec = importlib.util.spec_from_file_location(
        f"examples_{name}", EXAMPLES_DIR / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)  # type: ignore[union-attr]
    return module


def test_at_least_three_examples_exist():
    assert len(EXAMPLES) >= 3
    assert "quickstart" in EXAMPLES


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name, capsys):
    module = _load(name)
    module.main()
    out = capsys.readouterr().out
    assert len(out.splitlines()) >= 5, f"{name} printed almost nothing"


def test_quickstart_shows_monotone_tradeoff(capsys):
    """The quickstart's core message: guarantees improve with replication."""
    _load("quickstart").main()
    out = capsys.readouterr().out
    assert "lpt_no_choice" in out
    assert "lpt_no_restriction" in out
    assert "makespan" in out
