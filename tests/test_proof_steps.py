"""Tests for the numeric proof verification (repro.theory)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.theory import (
    check_lemma1_chain,
    check_theorem1_chain,
    check_theorem2_chain,
    check_theorem3_chain,
    check_theorem4_chain,
    verify_all,
)
from repro.uncertainty.stochastic import sample_realization
from repro.workloads.generators import generate, uniform_instance
from tests.conftest import instances


class TestTheorem1Chain:
    @pytest.mark.parametrize("lam,m,alpha", [(1, 2, 1.5), (3, 4, 2.0), (5, 3, 1.2)])
    def test_all_steps_hold(self, lam, m, alpha):
        check = check_theorem1_chain(lam, m, alpha)
        assert check.all_hold, check.render()

    def test_unbalanced_b(self):
        check = check_theorem1_chain(2, 3, 1.5, b=4)
        assert check.all_hold, check.render()

    def test_render(self):
        out = check_theorem1_chain(2, 2, 1.5).render()
        assert "Theorem 1" in out and "ok" in out


class TestTheorem2Chain:
    @given(instances(min_n=4, max_n=12, max_m=4))
    @settings(max_examples=25)
    def test_random_instances(self, inst):
        check = check_theorem2_chain(inst)
        assert check.all_hold, check.render()

    def test_worked_example(self):
        inst = generate("staircase", 8, 3, 1.5)
        check = check_theorem2_chain(inst)
        assert check.steps, "expected a non-trivial chain"
        assert check.all_hold, check.render()

    def test_single_task_machines_skipped(self):
        inst = uniform_instance(2, 2, alpha=1.5, seed=0)
        check = check_theorem2_chain(inst)
        assert not check.steps
        assert check.notes


class TestLemma1Chain:
    @given(instances(min_n=5, max_n=12, max_m=3), st.integers(0, 3))
    @settings(max_examples=25)
    def test_random_instances(self, inst, seed):
        real = sample_realization(inst, "bimodal_extreme", seed)
        check = check_lemma1_chain(inst, real)
        assert check.all_hold, check.render()


class TestTheorem3Chain:
    @given(instances(min_n=4, max_n=12, max_m=4), st.integers(0, 3))
    @settings(max_examples=25)
    def test_random_instances(self, inst, seed):
        real = sample_realization(inst, "log_uniform", seed)
        check = check_theorem3_chain(inst, real)
        assert check.all_hold, check.render()


class TestTheorem4Chain:
    @given(instances(min_n=4, max_n=12, max_m=4), st.integers(0, 2))
    @settings(max_examples=25)
    def test_all_divisors(self, inst, seed):
        real = sample_realization(inst, "bimodal_extreme", seed)
        for k in range(1, inst.m + 1):
            if inst.m % k:
                continue
            check = check_theorem4_chain(inst, real, k)
            assert check.all_hold, check.render()


class TestVerifyAll:
    def test_full_battery(self):
        inst = generate("uniform", 12, 4, 1.8, seed=3)
        real = sample_realization(inst, "bimodal_extreme", 9)
        checks = verify_all(inst, real)
        # Th.1, Th.2, Lemma 1, Th.3 + one Th.4 per divisor of 4.
        assert len(checks) == 4 + 3
        for c in checks:
            assert c.all_hold, c.render()

    def test_failures_listed(self):
        from repro.theory.proof_steps import ProofCheck

        c = ProofCheck("demo")
        c.require("impossible", 2.0, 1.0)
        assert not c.all_hold
        assert len(c.failures()) == 1
        assert "FAIL" in c.render()
