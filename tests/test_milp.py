"""Tests for the MILP exact solver (cross-validation oracle)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exact.bnb import branch_and_bound
from repro.exact.milp import milp_makespan
from tests.conftest import estimates_strategy


class TestClosedForms:
    def test_single_machine(self):
        r = milp_makespan([1.0, 2.0], 1)
        assert r.makespan == 3.0

    def test_one_task_per_machine(self):
        r = milp_makespan([5.0, 1.0], 3)
        assert r.makespan == 5.0


class TestKnownInstances:
    def test_lpt_suboptimal_instance(self):
        assert milp_makespan([3.0, 3.0, 2.0, 2.0, 2.0], 2).makespan == pytest.approx(6.0)

    def test_three_machines(self):
        assert milp_makespan([5.0, 4.0, 3.0, 3.0, 3.0], 3).makespan == pytest.approx(7.0)

    def test_assignment_is_consistent(self):
        times = [4.0, 3.0, 3.0, 2.0, 2.0, 1.0]
        r = milp_makespan(times, 3)
        loads = [0.0] * 3
        for j, i in enumerate(r.assignment):
            loads[i] += times[j]
        assert max(loads) == pytest.approx(r.makespan)

    def test_without_symmetry_breaking(self):
        r = milp_makespan([3.0, 3.0, 2.0, 2.0, 2.0], 2, symmetry_breaking=False)
        assert r.makespan == pytest.approx(6.0)


class TestCrossValidation:
    @given(estimates_strategy(1, 10), st.integers(min_value=1, max_value=4))
    @settings(max_examples=25)
    def test_agrees_with_branch_and_bound(self, times, m):
        """Two independently implemented exact solvers must agree."""
        assert milp_makespan(times, m).makespan == pytest.approx(
            branch_and_bound(times, m).makespan, rel=1e-6
        )
