"""Unit and property tests for repro.core.model."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.model import Instance, Task, make_instance
from tests.conftest import instances


class TestTask:
    def test_basic_construction(self):
        t = Task(0, 2.5, 1.0)
        assert t.tid == 0
        assert t.estimate == 2.5
        assert t.size == 1.0

    def test_default_size_zero(self):
        assert Task(1, 1.0).size == 0.0

    def test_rejects_non_positive_estimate(self):
        with pytest.raises(ValueError):
            Task(0, 0.0)

    def test_rejects_negative_size(self):
        with pytest.raises(ValueError):
            Task(0, 1.0, -1.0)

    def test_rejects_negative_tid(self):
        with pytest.raises(ValueError):
            Task(-1, 1.0)

    def test_bounds(self):
        t = Task(0, 4.0)
        lo, hi = t.bounds(2.0)
        assert lo == 2.0
        assert hi == 8.0

    def test_bounds_alpha_one(self):
        lo, hi = Task(0, 3.0).bounds(1.0)
        assert lo == hi == 3.0

    def test_admits_interior(self):
        assert Task(0, 4.0).admits(5.0, 2.0)

    def test_admits_edges_with_tolerance(self):
        t = Task(0, 1.0)
        assert t.admits(1.0 / 1.5, 1.5)
        assert t.admits(1.5, 1.5)

    def test_rejects_outside_band(self):
        t = Task(0, 4.0)
        assert not t.admits(8.5, 2.0)
        assert not t.admits(1.9, 2.0)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            Task(0, 1.0).estimate = 2.0  # type: ignore[misc]


class TestInstanceConstruction:
    def test_make_instance(self):
        inst = make_instance([3.0, 1.0], m=2, alpha=1.5)
        assert inst.n == 2
        assert inst.m == 2
        assert inst.alpha == 1.5
        assert inst.estimates == (3.0, 1.0)

    def test_make_instance_with_sizes(self):
        inst = make_instance([1.0, 2.0], 2, sizes=[5.0, 0.0])
        assert inst.sizes == (5.0, 0.0)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            make_instance([], 2)

    def test_rejects_size_length_mismatch(self):
        with pytest.raises(ValueError, match="same length"):
            make_instance([1.0], 1, sizes=[1.0, 2.0])

    def test_rejects_bad_tid_numbering(self):
        with pytest.raises(ValueError, match="numbered contiguously"):
            Instance((Task(1, 1.0),), m=1, alpha=1.0)

    def test_rejects_non_task(self):
        with pytest.raises(TypeError):
            Instance((1.0,), m=1, alpha=1.0)  # type: ignore[arg-type]

    def test_rejects_alpha_below_one(self):
        with pytest.raises(ValueError):
            make_instance([1.0], 1, alpha=0.5)

    def test_name_not_compared(self):
        a = make_instance([1.0], 1, name="a")
        b = make_instance([1.0], 1, name="b")
        assert a == b


class TestInstanceAccessors:
    def test_iter_and_len(self, small_instance):
        assert len(small_instance) == 6
        assert [t.tid for t in small_instance] == list(range(6))

    def test_task_lookup(self, small_instance):
        assert small_instance.task(2).estimate == 3.0

    def test_machines_range(self, small_instance):
        assert list(small_instance.machines) == [0, 1]

    def test_total_and_max_estimate(self, small_instance):
        assert small_instance.total_estimate == 18.0
        assert small_instance.max_estimate == 5.0

    def test_average_estimated_load(self, small_instance):
        assert small_instance.average_estimated_load() == 9.0

    def test_total_size_default_zero(self, small_instance):
        assert small_instance.total_size == 0.0


class TestOrders:
    def test_lpt_order(self):
        inst = make_instance([1.0, 5.0, 3.0], 2)
        assert inst.lpt_order() == [1, 2, 0]

    def test_lpt_order_tie_by_id(self):
        inst = make_instance([2.0, 2.0, 2.0], 2)
        assert inst.lpt_order() == [0, 1, 2]

    def test_spt_order(self):
        inst = make_instance([1.0, 5.0, 3.0], 2)
        assert inst.spt_order() == [0, 2, 1]

    def test_input_order(self, small_instance):
        assert small_instance.input_order() == list(range(6))

    @given(instances(min_n=2, max_n=10))
    def test_lpt_order_is_permutation_and_sorted(self, inst):
        order = inst.lpt_order()
        assert sorted(order) == list(range(inst.n))
        ests = [inst.tasks[j].estimate for j in order]
        assert all(a >= b for a, b in zip(ests, ests[1:]))


class TestDerivation:
    def test_with_alpha(self, small_instance):
        inst2 = small_instance.with_alpha(2.0)
        assert inst2.alpha == 2.0
        assert inst2.estimates == small_instance.estimates

    def test_with_m(self, small_instance):
        assert small_instance.with_m(4).m == 4

    def test_with_sizes(self, small_instance):
        inst2 = small_instance.with_sizes([1, 2, 3, 4, 5, 6])
        assert inst2.sizes == (1, 2, 3, 4, 5, 6)

    def test_with_sizes_wrong_length(self, small_instance):
        with pytest.raises(ValueError):
            small_instance.with_sizes([1.0])

    def test_subset_renumbers(self, small_instance):
        sub = small_instance.subset([3, 5])
        assert sub.n == 2
        assert sub.tasks[0].tid == 0
        assert sub.tasks[0].estimate == 3.0
        assert sub.tasks[1].estimate == 1.0

    def test_subset_rejects_empty(self, small_instance):
        with pytest.raises(ValueError):
            small_instance.subset([])

    def test_subset_rejects_out_of_range(self, small_instance):
        with pytest.raises(ValueError):
            small_instance.subset([99])


class TestInstanceProperties:
    @given(instances())
    def test_totals_consistent(self, inst):
        assert math.isclose(inst.total_estimate, sum(inst.estimates))
        assert inst.max_estimate == max(inst.estimates)
        assert inst.average_estimated_load() <= inst.total_estimate

    @given(instances(), st.floats(min_value=1.0, max_value=5.0))
    def test_band_contains_estimate(self, inst, alpha):
        inst = inst.with_alpha(alpha)
        for t in inst:
            lo, hi = t.bounds(inst.alpha)
            assert lo <= t.estimate <= hi
