"""Property tests combining the engine extensions.

Release times, machine speeds and failure injection each have their own
tests; real deployments combine them.  These tests drive the engine with
all extensions at once and check the global invariants still hold.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.placement import everywhere_placement
from repro.core.strategy import FixedOrderPolicy
from repro.core.strategies import LPTNoRestriction, LSGroup
from repro.simulation.engine import SimulationError, simulate
from repro.uncertainty.stochastic import sample_realization
from repro.workloads.generators import uniform_instance
from tests.conftest import instances


class TestSpeedsPlusReleases:
    @given(instances(min_n=2, max_n=10, max_m=4), st.integers(0, 2))
    @settings(max_examples=20)
    def test_feasible_and_release_respected(self, inst, seed):
        real = sample_realization(inst, "log_uniform", seed)
        releases = [0.0 if j % 2 == 0 else float(j) for j in range(inst.n)]
        speeds = [1.0 + 0.5 * (i % 3) for i in range(inst.m)]
        p = everywhere_placement(inst)
        trace = simulate(
            p,
            real,
            FixedOrderPolicy(inst.lpt_order()),
            release_times=releases,
            speeds=speeds,
        )
        trace.validate(p, real, speeds=speeds)
        for j, r in enumerate(releases):
            assert trace.runs[j].start >= r - 1e-9


class TestSpeedsPlusFailures:
    def test_restart_duration_uses_new_machine_speed(self):
        from repro.core.model import make_instance
        from repro.uncertainty.realization import truthful_realization

        inst = make_instance([4.0, 1.0], m=2, alpha=1.5)
        p = everywhere_placement(inst)
        real = truthful_realization(inst)
        # Machine 0 runs at speed 2 (task 0 would take 2s), fails at t=1.
        trace = simulate(
            p,
            real,
            FixedOrderPolicy(range(2)),
            speeds=[2.0, 1.0],
            failures={0: 1.0},
        )
        trace.validate(p, real, speeds=[2.0, 1.0])
        run0 = trace.runs[0]
        assert run0.machine == 1
        assert run0.duration == pytest.approx(4.0)  # full speed-1 duration


class TestAllThreeExtensions:
    @given(st.integers(0, 4))
    @settings(max_examples=10)
    def test_full_stack(self, seed):
        inst = uniform_instance(16, 4, alpha=1.6, seed=seed)
        real = sample_realization(inst, "uniform", seed)
        strategy = LPTNoRestriction()
        placement = strategy.place(inst)
        releases = [0.0] * 12 + [5.0] * 4
        speeds = [1.0, 1.5, 0.75, 1.25]
        trace = simulate(
            placement,
            real,
            strategy.make_policy(inst, placement),
            release_times=releases,
            speeds=speeds,
            failures={2: 8.0},
        )
        trace.validate(placement, real, speeds=speeds)
        # No run on the failed machine extends past its failure time.
        for r in trace.runs + trace.aborted:
            if r.machine == 2:
                assert r.end <= 8.0 + 1e-9
        # Total successful work equals the realization's total.
        work = sum(
            r.duration * speeds[r.machine] for r in trace.runs
        )
        assert work == pytest.approx(real.total)

    def test_group_strategy_full_stack(self):
        inst = uniform_instance(18, 6, alpha=1.5, seed=7)
        real = sample_realization(inst, "log_uniform", 8)
        strategy = LSGroup(2)
        placement = strategy.place(inst)
        # Fail one machine of group 0; its work must stay inside group 0.
        trace = simulate(
            placement,
            real,
            strategy.make_policy(inst, placement),
            speeds=[1.0] * 6,
            failures={1: 4.0},
        )
        trace.validate(placement, real)
        groups = placement.meta["groups"]
        group_of_task = placement.meta["group_of_task"]
        for j in range(inst.n):
            assert trace.machine_of(j) in groups[group_of_task[j]]
