"""Metrics-reference check: the docs table must match the code's emissions.

``docs/observability.md`` carries a generated reference table of every
metric name the library emits (between ``<!-- metrics-reference:begin -->``
and ``<!-- metrics-reference:end -->`` markers).  Hand-maintained metric
tables rot the moment someone renames a counter; this check makes the
table *derived*: an AST walk over ``src/repro`` collects every
``tracer.count("...")`` / ``registry.gauge("...")`` /
``registry.timer("...")`` / ``tracer.span("...")`` call site, and the
doc block must match the regenerated table byte for byte.

Name extraction rules:

* string literals are taken verbatim (``tracer.count("grid.cells_done")``
  → counter ``grid.cells_done``);
* ``tracer.span("phase1")`` registers the timer the span observes on
  exit, ``span.phase1``;
* f-strings become wildcard rows with each interpolation collapsed to
  ``*`` (``f"grid.strategy.{name}"`` → timer ``grid.strategy.*``) —
  dynamic families are documented as families;
* non-literal arguments (plain variables, as in the merge layer's
  re-emission loops) are skipped: they forward names collected
  elsewhere, they don't mint them.

``repro/tools`` itself is excluded — bench harnesses emit synthetic
no-op names that are never recorded.

Usage::

    python -m repro.tools.check_metrics           # verify, exit 1 on drift
    python -m repro.tools.check_metrics --write   # regenerate the block

CI runs the verify mode on every push; run ``--write`` after adding or
renaming a metric and commit the doc change alongside the code.
"""

from __future__ import annotations

import ast
import sys
from argparse import ArgumentParser
from collections.abc import Sequence
from pathlib import Path

__all__ = ["scan_metrics", "render_table", "extract_block", "main"]

BEGIN_MARKER = "<!-- metrics-reference:begin -->"
END_MARKER = "<!-- metrics-reference:end -->"
DEFAULT_DOC = "docs/observability.md"

#: AST call-attribute → metric kind.  ``span`` call sites register the
#: ``span.{name}`` timer their ``__exit__`` observes.
_METHODS = {"count": "counter", "gauge": "gauge", "timer": "timer", "span": "span"}


def _literal_name(node: ast.expr) -> str | None:
    """The metric name a call argument mints, or None if it forwards one.

    Plain string constants come back verbatim; f-strings come back with
    every interpolated field collapsed to ``*``; anything else (a
    variable, an attribute) is a forwarded name and yields None.
    """
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if isinstance(node, ast.JoinedStr):
        parts: list[str] = []
        for piece in node.values:
            if isinstance(piece, ast.Constant) and isinstance(piece.value, str):
                parts.append(piece.value)
            else:
                parts.append("*")
        return "".join(parts)
    return None


def scan_metrics(root: Path) -> dict[str, dict[str, object]]:
    """Walk ``root`` and collect every minted metric name.

    Returns ``{name: {"kind": str, "modules": set[str]}}`` keyed by
    metric name, with ``modules`` holding repo-relative source paths.
    Raises ``ValueError`` when one name is minted with two different
    kinds — that is a bug at the emission site, not a doc problem.
    """
    metrics: dict[str, dict[str, object]] = {}
    for path in sorted(root.rglob("*.py")):
        rel = path.relative_to(root).as_posix()
        if rel.startswith("tools/"):
            continue
        tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
        for node in ast.walk(tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _METHODS
                and node.args
            ):
                continue
            name = _literal_name(node.args[0])
            if name is None:
                continue
            kind = _METHODS[node.func.attr]
            if kind == "span":
                kind, name = "timer", f"span.{name}"
            entry = metrics.setdefault(name, {"kind": kind, "modules": set()})
            if entry["kind"] != kind:
                raise ValueError(
                    f"metric {name!r} minted as both {entry['kind']} and "
                    f"{kind} (latest: {rel})"
                )
            entry["modules"].add(rel)  # type: ignore[union-attr]
    return metrics


def render_table(metrics: dict[str, dict[str, object]]) -> str:
    """The markdown reference block, markers included, sorted by name."""
    lines = [
        BEGIN_MARKER,
        "| metric | kind | emitted by |",
        "|--------|------|------------|",
    ]
    for name in sorted(metrics):
        kind = metrics[name]["kind"]
        modules = ", ".join(f"`{m}`" for m in sorted(metrics[name]["modules"]))
        lines.append(f"| `{name}` | {kind} | {modules} |")
    lines.append(END_MARKER)
    return "\n".join(lines)


def extract_block(text: str) -> str | None:
    """The current marker-delimited block in ``text``, or None if absent."""
    begin = text.find(BEGIN_MARKER)
    end = text.find(END_MARKER)
    if begin == -1 or end == -1 or end < begin:
        return None
    return text[begin : end + len(END_MARKER)]


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point: verify (default) or ``--write`` the doc block."""
    parser = ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root", default="src/repro", help="package root to scan (default: src/repro)"
    )
    parser.add_argument(
        "--doc", default=DEFAULT_DOC, help=f"doc to check (default: {DEFAULT_DOC})"
    )
    parser.add_argument(
        "--write", action="store_true", help="regenerate the block in place"
    )
    args = parser.parse_args(argv)

    root = Path(args.root)
    doc = Path(args.doc)
    try:
        metrics = scan_metrics(root)
    except ValueError as exc:
        print(f"check_metrics: {exc}", file=sys.stderr)
        return 1
    expected = render_table(metrics)

    text = doc.read_text(encoding="utf-8") if doc.exists() else ""
    current = extract_block(text)
    if current is None:
        print(
            f"check_metrics: {doc} has no {BEGIN_MARKER} … {END_MARKER} block",
            file=sys.stderr,
        )
        if not args.write:
            return 1
        print("add the markers where the table belongs, then rerun --write")
        return 1

    if current == expected:
        print(f"check_metrics: OK — {len(metrics)} metrics documented in {doc}")
        return 0
    if args.write:
        doc.write_text(text.replace(current, expected), encoding="utf-8")
        print(f"check_metrics: rewrote {doc} ({len(metrics)} metrics)")
        return 0
    import difflib

    diff = difflib.unified_diff(
        current.splitlines(), expected.splitlines(), "docs", "code", lineterm=""
    )
    for line in diff:
        print(line, file=sys.stderr)
    print(
        f"check_metrics: {doc} metrics table is stale — run "
        "python -m repro.tools.check_metrics --write",
        file=sys.stderr,
    )
    return 1


if __name__ == "__main__":
    sys.exit(main())
