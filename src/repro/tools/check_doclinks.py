"""Doc-link lint: every relative markdown link and anchor must resolve.

Documentation rots through its links first: a renamed doc, a reworded
heading, and the cross-reference silently points nowhere.  This lint
walks ``README.md`` and ``docs/*.md`` (plus any extra paths given),
extracts every inline markdown link, and checks:

* **relative file targets exist** (``docs/service.md``, ``../README.md``
  — resolved from the linking file's directory; external ``http(s)://``
  and ``mailto:`` targets are out of scope);
* **anchors resolve**: ``file.md#some-heading`` (and same-file
  ``#heading``) must match a heading in the target, using GitHub's
  slugging rules (lowercase, punctuation stripped, spaces to hyphens,
  duplicate slugs suffixed ``-1``, ``-2``, ...);
* **the architecture hub is complete**: ``docs/architecture.md`` must
  link every other file in ``docs/`` — it is the documented entry point,
  so a doc it misses is unreachable from the front door.

Usage::

    python -m repro.tools.check_doclinks             # lint README + docs/
    python -m repro.tools.check_doclinks PATH ...    # lint specific files

Exit code 0 when clean, 1 with one ``path:line: message`` per violation —
CI runs it in the lint stage.  Pure text processing; nothing is imported
or rendered.
"""

from __future__ import annotations

import argparse
import re
import sys
from collections.abc import Sequence
from pathlib import Path

__all__ = ["extract_links", "heading_slugs", "check_file", "check_hub", "main"]

#: Inline markdown links/images: ``[text](target)`` — title suffixes
#: (``[x](y "title")``) are split off, nested parens are not supported
#: (GitHub requires escaping them anyway).
_LINK_RE = re.compile(r"!?\[[^\]]*\]\(\s*(<[^>]*>|[^)\s]+)(?:\s+\"[^\"]*\")?\s*\)")
_HEADING_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
_EXTERNAL = ("http://", "https://", "mailto:", "ftp://")


def extract_links(text: str) -> list[tuple[int, str]]:
    """All inline link targets in ``text`` as ``(line_number, target)``.

    Fenced code blocks are skipped — a ``[x](y)`` inside an example
    snippet is content, not a cross-reference.
    """
    links: list[tuple[int, str]] = []
    in_fence = False
    for lineno, line in enumerate(text.splitlines(), start=1):
        stripped = line.lstrip()
        if stripped.startswith("```") or stripped.startswith("~~~"):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in _LINK_RE.finditer(line):
            target = match.group(1).strip()
            if target.startswith("<") and target.endswith(">"):
                target = target[1:-1].strip()
            links.append((lineno, target))
    return links


def _slugify(heading: str) -> str:
    """GitHub's anchor slug for one heading text."""
    # Inline code/emphasis markers and links render away before slugging.
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", heading)
    text = text.replace("`", "").replace("*", "").strip().lower()
    text = re.sub(r"[^\w\s-]", "", text, flags=re.UNICODE)
    return re.sub(r"\s+", "-", text.strip())


def heading_slugs(text: str) -> set[str]:
    """Every anchor a markdown file exposes (GitHub slugging + dedup)."""
    counts: dict[str, int] = {}
    slugs: set[str] = set()
    in_fence = False
    for line in text.splitlines():
        stripped = line.lstrip()
        if stripped.startswith("```") or stripped.startswith("~~~"):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = _HEADING_RE.match(line)
        if not match:
            continue
        slug = _slugify(match.group(2))
        seen = counts.get(slug, 0)
        counts[slug] = seen + 1
        slugs.add(slug if seen == 0 else f"{slug}-{seen}")
    return slugs


def check_file(path: Path, root: Path) -> list[str]:
    """Lint one markdown file; returns ``path:line: message`` violations."""
    text = path.read_text(encoding="utf-8")
    rel = path.relative_to(root) if path.is_relative_to(root) else path
    violations: list[str] = []
    for lineno, target in extract_links(text):
        if target.startswith(_EXTERNAL) or not target:
            continue
        file_part, _, anchor = target.partition("#")
        if file_part:
            resolved = (path.parent / file_part).resolve()
            if not resolved.exists():
                violations.append(
                    f"{rel}:{lineno}: broken link '{target}' "
                    f"({file_part} does not exist)"
                )
                continue
            anchor_host = resolved
        else:
            anchor_host = path  # same-file '#anchor'
        if anchor and anchor_host.suffix == ".md":
            if anchor not in heading_slugs(anchor_host.read_text(encoding="utf-8")):
                violations.append(
                    f"{rel}:{lineno}: broken anchor '#{anchor}' "
                    f"(no such heading in {anchor_host.name})"
                )
    return violations


def check_hub(hub: Path, docs_dir: Path, root: Path) -> list[str]:
    """Verify the architecture hub links every doc in ``docs/``."""
    if not hub.exists():
        return [f"{hub.relative_to(root)}:1: architecture hub is missing"]
    linked = {
        (hub.parent / target.partition("#")[0]).resolve()
        for _, target in extract_links(hub.read_text(encoding="utf-8"))
        if target and not target.startswith(_EXTERNAL)
    }
    violations = []
    for doc in sorted(docs_dir.glob("*.md")):
        if doc.resolve() == hub.resolve():
            continue
        if doc.resolve() not in linked:
            violations.append(
                f"{hub.relative_to(root)}:1: does not link {doc.relative_to(root)} "
                "(the hub must reach every doc)"
            )
    return violations


def _default_paths(root: Path) -> list[Path]:
    paths = [root / "README.md"]
    paths.extend(sorted((root / "docs").glob("*.md")))
    return [p for p in paths if p.exists()]


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.check_doclinks",
        description="check that relative markdown links and anchors resolve",
    )
    parser.add_argument(
        "paths", nargs="*", type=Path, help="files/dirs to lint (default: README + docs/)"
    )
    parser.add_argument(
        "--root", type=Path, default=Path.cwd(), help="repository root (default: cwd)"
    )
    parser.add_argument(
        "--no-hub-check",
        action="store_true",
        help="skip the 'architecture.md links every doc' completeness check",
    )
    args = parser.parse_args(argv)
    root = args.root.resolve()
    if args.paths:
        files: list[Path] = []
        for path in args.paths:
            if path.is_dir():
                files.extend(sorted(path.rglob("*.md")))
            else:
                files.append(path)
    else:
        files = _default_paths(root)
    violations: list[str] = []
    for path in files:
        violations.extend(check_file(path.resolve(), root))
    if not args.no_hub_check and not args.paths:
        violations.extend(check_hub(root / "docs" / "architecture.md", root / "docs", root))
    for violation in violations:
        print(violation)
    if violations:
        print(f"\n{len(violations)} doc-link violation(s)", file=sys.stderr)
        return 1
    count = len(files)
    print(f"doc links OK ({count} file(s) checked)")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
