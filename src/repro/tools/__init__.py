"""Developer tooling shipped with the library.

Not part of the paper reproduction itself — these are the maintenance
commands CI runs to keep the codebase honest:

* :mod:`repro.tools.check_docstrings` — fail when a public module or
  class is missing its docstring (``python -m repro.tools.check_docstrings``).
* :mod:`repro.tools.check_registry` — fail when a shipped
  ``TwoPhaseStrategy`` subclass has no strategy-registry entry
  (``python -m repro.tools.check_registry``).
* :mod:`repro.tools.strategy_docs` — generate ``docs/strategies.md``
  from the registry; ``--check`` fails CI when the catalog is stale.
"""
