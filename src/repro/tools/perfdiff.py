"""Markdown diff of two perfbench result files, for CI step summaries.

``repro.tools.perfbench --check`` is the *gate*: it fails the build when a
speedup leaves its tolerance band.  This module is the *report*: given the
committed ``BENCH_perf.json`` baseline and a freshly measured file, it
renders a GitHub-flavoured markdown table of scenario medians and derived
ratios so the perf-smoke job's step summary shows **what moved**, not just
pass/fail.  CI appends the output to ``$GITHUB_STEP_SUMMARY``::

    python -m repro.tools.perfdiff BENCH_perf.json /tmp/BENCH_perf.fresh.json

Scenarios present on only one side are reported as *new* / *removed*
rather than erroring, so the summary stays useful on the very PR that
introduces a scenario.  The tool never fails the build: exit code is 0
whenever both files parse (2 on unreadable input).
"""

from __future__ import annotations

import argparse
import json
import sys
from collections.abc import Mapping, Sequence
from pathlib import Path

__all__ = ["diff_markdown", "main"]

# Flag a scenario row when its fresh median drifts more than this factor
# from the baseline — purely cosmetic (the enforced bands live in
# perfbench.check_regression), but it makes the summary scannable.
DRIFT_FLAG = 0.30


def _fmt_seconds(value: float | None) -> str:
    if value is None:
        return "—"
    if value < 1e-3:
        return f"{value * 1e6:.0f} µs"
    if value < 1.0:
        return f"{value * 1e3:.2f} ms"
    return f"{value:.3f} s"


def _fmt_derived(value: object) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, (int, float)):
        return f"{value:.3f}"
    return json.dumps(value, sort_keys=True)


def _median(block: Mapping[str, object] | None) -> float | None:
    if isinstance(block, Mapping):
        value = block.get("median_s")
        if isinstance(value, (int, float)):
            return float(value)
    return None


def _scenario_rows(
    baseline: Mapping[str, object], fresh: Mapping[str, object]
) -> list[str]:
    base_sc = baseline.get("scenarios", {})
    fresh_sc = fresh.get("scenarios", {})
    names = sorted(set(base_sc) | set(fresh_sc))
    rows = []
    for name in names:
        old = _median(base_sc.get(name))
        new = _median(fresh_sc.get(name))
        if old is None:
            note = "🆕 new scenario"
        elif new is None:
            note = "removed"
        else:
            ratio = new / old if old > 0 else float("inf")
            note = f"{ratio:.2f}x"
            if ratio > 1.0 + DRIFT_FLAG:
                note += " ⚠️ slower"
            elif ratio < 1.0 - DRIFT_FLAG:
                note += " 🚀 faster"
        rows.append(f"| `{name}` | {_fmt_seconds(old)} | {_fmt_seconds(new)} | {note} |")
    return rows


def _derived_rows(
    baseline: Mapping[str, object], fresh: Mapping[str, object]
) -> list[str]:
    base_d = baseline.get("derived", {})
    fresh_d = fresh.get("derived", {})
    rows = []
    for key in sorted(set(base_d) | set(fresh_d)):
        old = base_d.get(key)
        new = fresh_d.get(key)
        if isinstance(old, Mapping) or isinstance(new, Mapping):
            continue  # nested blobs (tracer call counts) don't table well
        mark = "" if old == new or old is None or new is None else " ±"
        rows.append(
            f"| `{key}` | {_fmt_derived(old) if key in base_d else '—'} "
            f"| {_fmt_derived(new) if key in fresh_d else '—'} |{mark}"
        )
    return rows


def diff_markdown(
    baseline: Mapping[str, object], fresh: Mapping[str, object]
) -> str:
    """Render the baseline-vs-fresh comparison as a markdown document."""
    lines = ["## Perf bench: fresh vs committed baseline", ""]
    base_host = baseline.get("host", {})
    fresh_host = fresh.get("host", {})
    lines.append(
        f"Baseline `{base_host.get('git_describe', '?')}` → "
        f"fresh `{fresh_host.get('git_describe', '?')}` "
        f"(repeats={fresh.get('repeats', '?')}, quick={fresh.get('quick', '?')})"
    )
    lines += ["", "| scenario | baseline median | fresh median | fresh/baseline |"]
    lines.append("|---|---:|---:|---|")
    lines += _scenario_rows(baseline, fresh)
    lines += ["", "| derived | baseline | fresh |", "|---|---:|---:|"]
    lines += _derived_rows(baseline, fresh)
    lines.append("")
    return "\n".join(lines)


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; prints markdown, returns the process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", type=Path, help="committed BENCH_perf.json")
    parser.add_argument("fresh", type=Path, help="freshly measured results file")
    args = parser.parse_args(argv)
    try:
        baseline = json.loads(args.baseline.read_text(encoding="utf-8"))
        fresh = json.loads(args.fresh.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        print(f"perfdiff: cannot read inputs: {exc}", file=sys.stderr)
        return 2
    print(diff_markdown(baseline, fresh))
    return 0


if __name__ == "__main__":
    sys.exit(main())
