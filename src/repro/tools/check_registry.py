"""Registry completeness check: every shipped strategy must be registered.

The strategy-plugin registry (:mod:`repro.registry`) is only useful if it
is *complete* — a new :class:`~repro.core.strategy.TwoPhaseStrategy`
subclass that skips its ``@register_strategy`` decorator is invisible to
``make_strategy``, the ``repro strategies`` CLI, capability enforcement,
and the generated ``docs/strategies.md`` catalog.  This check walks every
module under the ``repro`` package, collects the concrete public
``TwoPhaseStrategy`` subclasses defined there, and fails when any of them
lacks a registry entry.

Usage::

    python -m repro.tools.check_registry

Exit code 0 when every strategy is registered, 1 with one line per
unregistered class.  CI runs it on every push; add a
``@register_strategy`` declaration (see :func:`repro.registry.register_strategy`)
to fix a failure.
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil
import sys
from collections.abc import Sequence

__all__ = ["unregistered_strategies", "main"]


def _strategy_classes() -> list[type]:
    """Every concrete public ``TwoPhaseStrategy`` subclass in ``repro``."""
    import repro
    from repro.core.strategy import TwoPhaseStrategy

    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        importlib.import_module(info.name)

    classes: list[type] = []
    seen: set[type] = set()
    stack: list[type] = list(TwoPhaseStrategy.__subclasses__())
    while stack:
        cls = stack.pop()
        if cls in seen:
            continue
        seen.add(cls)
        stack.extend(cls.__subclasses__())
        if (
            cls.__module__.startswith("repro.")
            and not cls.__name__.startswith("_")
            and not inspect.isabstract(cls)
        ):
            classes.append(cls)
    return sorted(classes, key=lambda c: (c.__module__, c.__qualname__))


def unregistered_strategies() -> list[type]:
    """Concrete shipped strategy classes with no registry entry."""
    from repro.registry import entry_for, strategy_entries

    strategy_entries()  # force the builtin families to load first
    return [cls for cls in _strategy_classes() if entry_for(cls) is None]


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point: print one line per unregistered strategy class."""
    missing = unregistered_strategies()
    for cls in missing:
        print(
            f"{cls.__module__}.{cls.__qualname__}: TwoPhaseStrategy subclass "
            "has no registry entry — add @register_strategy(...)",
            file=sys.stderr,
        )
    if missing:
        print(f"{len(missing)} unregistered strategies", file=sys.stderr)
        return 1
    from repro.registry import strategy_entries

    print(f"registry completeness: OK ({len(strategy_entries())} entries)")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
