"""Docstring lint: every public module and class must say what it is for.

The reproduction guide (``docs/reproduction_guide.md``) maps theorems to
modules; that mapping only stays trustworthy if each module states its
purpose at the top.  This lint enforces the floor: a **module docstring**
on every public module (anything not underscore-prefixed, ``__init__.py``
included) and a **class docstring** on every public top-level class.

Usage::

    python -m repro.tools.check_docstrings            # lint the repro package
    python -m repro.tools.check_docstrings PATH ...   # lint specific files/dirs

Exit code 0 when clean, 1 with one ``path:line: message`` per violation —
CI runs it on every push.  Purely ``ast``-based: nothing is imported, so
the lint is safe on any tree.
"""

from __future__ import annotations

import argparse
import ast
import sys
from collections.abc import Sequence
from pathlib import Path

__all__ = ["check_file", "check_paths", "main"]


def _is_public_module(path: Path) -> bool:
    stem = path.stem
    if stem == "__init__":
        return True
    return not stem.startswith("_")


def check_file(path: Path) -> list[str]:
    """Lint one source file; returns ``path:line: message`` violations."""
    try:
        tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    except SyntaxError as exc:
        return [f"{path}:{exc.lineno or 0}: unparseable ({exc.msg})"]
    violations: list[str] = []
    if _is_public_module(path) and ast.get_docstring(tree) is None:
        violations.append(f"{path}:1: public module is missing a docstring")
    for node in tree.body:
        if isinstance(node, ast.ClassDef) and not node.name.startswith("_"):
            if ast.get_docstring(node) is None:
                violations.append(
                    f"{path}:{node.lineno}: public class {node.name!r} "
                    "is missing a docstring"
                )
    return violations


def check_paths(paths: Sequence[Path]) -> list[str]:
    """Lint every ``.py`` file under ``paths`` (files or directories)."""
    files: list[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        else:
            files.append(path)
    violations: list[str] = []
    for file in files:
        violations.extend(check_file(file))
    return violations


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.check_docstrings",
        description="Fail when public modules/classes lack docstrings.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to lint (default: the installed repro package)",
    )
    args = parser.parse_args(argv)
    paths = args.paths
    if not paths:
        import repro

        paths = [Path(repro.__file__).resolve().parent]
    violations = check_paths(paths)
    for violation in violations:
        print(violation, file=sys.stderr)
    if violations:
        print(f"{len(violations)} docstring violations", file=sys.stderr)
        return 1
    print("docstring lint: OK")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
