"""Performance-trajectory harness (``repro bench`` / ``python -m repro.tools.perfbench``).

Times a fixed set of named scenarios through the public substrate and
emits a schema-versioned JSON artifact (``BENCH_perf.json`` at the repo
root) so the repository carries its own performance trajectory:

* ``single_cell`` — one :func:`~repro.analysis.ratios.measured_ratio`
  call (the per-cell event-kernel path end to end);
* ``eventkernel_sweep`` — the quick grid with ``batch=False`` (every
  cell through :class:`~repro.simulation.kernel.EventKernel`);
* ``batch_sweep`` — the same grid with the vectorized batch backend
  (:mod:`repro.simulation.batch`);
* ``memory_eventkernel_sweep`` / ``memory_batch_sweep`` — the same
  instance swept by the memory/robust/hetero exemplars
  (:data:`_MEMORY_STRATEGIES`), kernel vs compiled plans; the derived
  ``batch_memory_speedup_x`` (gated: absolute floor always, baseline
  band when the key exists) measures what the plan-compiler tiers
  bought the families that used to fall back to the kernel, and the
  derived ``batch_coverage`` (fraction of registered strategies with
  ``supports_batch``, gated ≥ :data:`DEFAULT_COVERAGE_FLOOR`) keeps the
  registry from quietly growing kernel-bound families;
* ``cached_resweep`` — the same grid served warm from a
  :class:`~repro.analysis.cache.CellCache`;
* ``parallel_grid`` — the same grid fanned over a 2-process pool with
  the batch backend off (isolates pool overhead + per-cell kernel);
* ``tracer_overhead`` — the cost of the *disabled* tracer path: one
  untraced reference run counts how many span/event/count calls actually
  reach the disabled tracer (the kernel's hot loop routes per-event
  counters through a null observer, so only un-hoisted call sites —
  grid orchestration spans and analysis counters — hit it), then the
  scenario times that many disabled-path calls back-to-back.  The
  derived ``tracer_overhead_pct`` (relative to the event-kernel sweep)
  is gated at <:data:`DEFAULT_OVERHEAD_LIMIT_PCT`% in ``--check`` — a
  regression guard against unguarded per-event instrumentation landing
  in a hot loop, which multiplies the call count a few hundredfold;
* ``service_loadgen`` — one end-to-end
  :func:`~repro.service.loadgen.run_burst`: the placement daemon comes
  up on loopback TCP, seeded synthetic tenants stream admissions (with
  scripted idempotency retries) through Phase-1 placement, the queue
  drains through Phase-2 dispatch, and the daemon shuts down.  The
  derived ``service_zero_drop`` flag (every admitted task completed,
  zero request errors) is gated fresh-run-only in ``--check``;
  ``service_throughput_rps`` is recorded for the trajectory but never
  gated (absolute, hardware-dependent);
* ``chaos_soak`` — one virtual-time :func:`~repro.chaos.soak.run_soak`
  over a small fleet with a rack failure landing mid-run: the
  failure-aware admission path, task re-placement, health tracking, and
  the no-fault control arm, end to end.  Purely informational — its
  derived scalars (``soak_min_availability``, ``soak_inflation``) ride
  along in the trajectory but are **never** gated here; the survival
  invariants are owned by ``tests/test_chaos_soak.py`` and the CI
  ``chaos-soak-smoke`` job, and duplicating them in the perf gate would
  double-report one failure.

Before any timing, the harness asserts that the batch, serial, and
parallel runs produce **identical record lists** — the bench doubles as
an end-to-end equality gate.

**CI regression gate** (``--check``): re-measures and compares the
*derived, scale-free* metric ``batch_speedup_x`` (event-kernel median /
batch median, both measured in the same process on the same machine)
against the committed baseline with a two-sided tolerance, plus a hard
floor, plus the fresh-run-only ``tracer_overhead_pct`` ceiling.
Absolute times are recorded for trajectory plots but never gated — they
vary with runner hardware; the ratios do not.

Schema (``repro.perfbench/1``)::

    {
      "schema": "repro.perfbench/1",
      "quick": bool,
      "repeats": int,
      "host": {... environment_info ..., "cpu_count": int},
      "grid": {family, n, m, alpha, strategies, model, seeds, cells},
      "scenarios": {name: {"median_s", "stdev_s", "min_s", "runs"}},
      "derived": {"batch_speedup_x", "cache_speedup_x", "records_equal",
                  "tracer_overhead_pct", "tracer_calls",
                  "service_zero_drop", "service_throughput_rps",
                  "soak_min_availability", "soak_inflation"}
    }

A ``*.manifest.json`` provenance sidecar (with the wall-clock timestamp
and git describe) is written next to the JSON; the artifact itself stays
timestamp-free.

**Perf trajectory**: whenever an artifact is written, a timestamped row
(schema ``repro.perfbench-history/1``) is appended to
``results/BENCH_history.jsonl`` (next to ``--out`` when that is given),
with a manifest sidecar — so the performance curve accumulates across
PRs instead of only storing the latest snapshot.  ``--no-history`` opts
out; ``--check`` without ``--out`` writes neither artifact nor history.
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import sys
import time
from collections.abc import Callable, Sequence
from pathlib import Path
from typing import Any

SCHEMA = "repro.perfbench/1"
HISTORY_SCHEMA = "repro.perfbench-history/1"
DEFAULT_OUT = "BENCH_perf.json"
DEFAULT_HISTORY = "results/BENCH_history.jsonl"
#: Two-sided relative tolerance on ``batch_speedup_x`` vs the baseline.
DEFAULT_TOLERANCE = 0.30
#: Hard floor: the batch backend must stay at least this many times
#: faster than the per-cell event kernel, regardless of the baseline.
DEFAULT_FLOOR = 2.0
#: Ceiling on the disabled-tracer overhead estimate, percent of the
#: untraced event-kernel sweep.  Fresh-run-only (no baseline involved).
DEFAULT_OVERHEAD_LIMIT_PCT = 2.0
#: Floor on ``batch_coverage`` — the fraction of registered strategies
#: whose capability set declares ``supports_batch``.  Fresh-run-only.
DEFAULT_COVERAGE_FLOOR = 0.8
#: The derived speedup ratios gated in ``--check``: each must clear the
#: absolute floor on every fresh run (baseline key present or not), and
#: additionally stay inside the ±tolerance band *when* the committed
#: baseline carries the key — a fresh scenario must not silently pass.
GATED_SPEEDUPS = ("batch_speedup_x", "batch_memory_speedup_x")

__all__ = [
    "SCHEMA",
    "HISTORY_SCHEMA",
    "DEFAULT_TOLERANCE",
    "DEFAULT_FLOOR",
    "DEFAULT_OVERHEAD_LIMIT_PCT",
    "DEFAULT_COVERAGE_FLOOR",
    "GATED_SPEEDUPS",
    "run_bench",
    "batch_coverage",
    "check_regression",
    "append_history",
    "main",
]


def _grid_config(quick: bool) -> dict[str, Any]:
    if quick:
        return {
            "family": "uniform",
            "n": 60,
            "m": 8,
            "alpha": 2.0,
            "instance_seed": 0,
            "strategies": [
                "lpt_no_choice",
                "lpt_no_restriction",
                "ls_group[k=4]",
                "lpt_group[k=2]",
            ],
            "model": "log_uniform",
            "seeds": [1000 + s for s in range(6)],
            "memory_strategies": _MEMORY_STRATEGIES,
        }
    return {
        "family": "uniform",
        "n": 120,
        "m": 12,
        "alpha": 2.0,
        "instance_seed": 0,
        "strategies": [
            "lpt_no_choice",
            "lpt_no_restriction",
            "ls_group[k=4]",
            "ls_group[k=6]",
            "lpt_group[k=3]",
        ],
        "model": "log_uniform",
        "seeds": [1000 + s for s in range(10)],
        "memory_strategies": _MEMORY_STRATEGIES,
    }


#: The families that were event-kernel-bound before the plan compiler
#: grew the phase-split and replay tiers: one exemplar per family
#: (memory × 3, robust, hetero, selective-replication).  The
#: ``memory_*`` scenarios sweep these over the same instance/model/seeds
#: as the main grid, so ``batch_memory_speedup_x`` measures exactly what
#: these cells cost on the old batch path (which fell back to the
#: kernel) versus the compiled plans.
_MEMORY_STRATEGIES = [
    "sabo[delta=1]",
    "abo[delta=1]",
    "capped[C=1000]",
    "robust_pinned",
    "risk_aware[0.5]",
    "selective[0.25,count]",
]


def batch_coverage() -> float:
    """Fraction of registered strategies declaring ``supports_batch``.

    Counts statically declared capabilities (entries with dynamic
    per-instance capabilities count only if their static set has the
    flag), so the number is a property of the registry, not of any
    particular grid.
    """
    from repro.registry import strategy_entries

    entries = strategy_entries()
    flagged = sum(
        1
        for e in entries
        if e.capabilities is not None and e.capabilities.supports_batch
    )
    return flagged / len(entries)


def _count_tracer_calls(reference_run: Callable[[], Any]) -> dict[str, int]:
    """Count the disabled-path instrumentation calls one untraced sweep makes.

    Wraps the disabled singleton's span/event/count entry points with
    tallying shims and runs ``reference_run`` once.  Only the call sites
    that do *not* hoist ``tracer.enabled`` reach the tracer with tracing
    off (the kernel's per-event counters go through a null observer), so
    this is exactly the instrumentation work an untraced sweep pays —
    the work the ``tracer_overhead`` scenario then times.
    """
    from repro.obs.tracer import get_tracer

    tracer = get_tracer()
    assert not tracer.enabled, "reference run must be untraced"
    tally = {"spans": 0, "events": 0, "counts": 0}
    orig_span, orig_event, orig_count = tracer.span, tracer.event, tracer.count

    def span(name, **attrs):
        tally["spans"] += 1
        return orig_span(name, **attrs)

    def event(name, **payload):
        tally["events"] += 1
        orig_event(name, **payload)

    def count(name, delta=1):
        tally["counts"] += 1
        orig_count(name, delta)

    tracer.span, tracer.event, tracer.count = span, event, count
    try:
        reference_run()
    finally:
        del tracer.span, tracer.event, tracer.count
    return tally


def _disabled_tracer_calls(calls: dict[str, int]) -> None:
    """Issue ``calls``-many disabled-path tracer invocations back to back.

    Timing this is what instrumentation costs an untraced sweep at the
    tracer boundary (hot loops additionally pay only a hoisted
    ``enabled`` branch, which never reaches these entry points).
    """
    from repro.obs.tracer import get_tracer

    tracer = get_tracer()
    assert not tracer.enabled, "tracer must be disabled for the overhead scenario"
    for _ in range(calls["spans"]):
        with tracer.span("perf.noop"):
            pass
    for _ in range(calls["events"]):
        tracer.event("perf.noop")
    for _ in range(calls["counts"]):
        tracer.count("perf.noop")


def _time_scenario(fn: Callable[[], Any], repeats: int) -> dict[str, Any]:
    fn()  # untimed warmup: first calls pay import/allocator costs
    runs: list[float] = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        runs.append(time.perf_counter() - t0)
    return {
        "median_s": statistics.median(runs),
        "stdev_s": statistics.stdev(runs) if len(runs) > 1 else 0.0,
        "min_s": min(runs),
        "runs": runs,
    }


def run_bench(*, quick: bool = True, repeats: int | None = None) -> dict[str, Any]:
    """Measure every scenario and return the schema-versioned payload.

    Raises ``AssertionError`` if the batch / serial / parallel record
    lists diverge — a perf artifact must never be produced from runs
    that disagree on the records.
    """
    import tempfile

    from repro.analysis.cache import CellCache
    from repro.analysis.experiment import ExperimentGrid
    from repro.analysis.ratios import measured_ratio
    from repro.obs.provenance import environment_info
    from repro.registry import make_strategy
    from repro.uncertainty import sample_realization
    from repro.workloads import generate

    cfg = _grid_config(quick)
    if repeats is None:
        repeats = 3 if quick else 5
    instance = generate(
        cfg["family"], cfg["n"], cfg["m"], cfg["alpha"], cfg["instance_seed"]
    )

    def grid(**overrides: Any) -> ExperimentGrid:
        kwargs: dict[str, Any] = dict(
            strategies=list(cfg["strategies"]),
            instances=[instance],
            realization_models=[cfg["model"]],
            seeds=list(cfg["seeds"]),
        )
        kwargs.update(overrides)
        return ExperimentGrid(**kwargs)

    def memory_grid(**overrides: Any) -> ExperimentGrid:
        kwargs: dict[str, Any] = dict(
            strategies=list(cfg["memory_strategies"]),
            instances=[instance],
            realization_models=[cfg["model"]],
            seeds=list(cfg["seeds"]),
        )
        kwargs.update(overrides)
        return ExperimentGrid(**kwargs)

    # Equality gate first: producing a perf artifact from divergent
    # backends would be worse than producing none.  The memory grid also
    # exercises the batch × parallel composition (packs sharded across
    # the pool) against the serial kernel.
    serial_records = grid(batch=False).run()
    batch_records = grid(batch=True).run()
    parallel_records = grid(batch=False, workers=2).run()
    records_equal = serial_records == batch_records == parallel_records
    assert records_equal, "batch/serial/parallel record lists diverged"
    mem_serial = memory_grid(batch=False).run()
    mem_batch = memory_grid(batch=True).run()
    mem_pooled = memory_grid(batch=True, workers=2).run()
    memory_records_equal = mem_serial == mem_batch == mem_pooled
    records_equal = records_equal and memory_records_equal
    assert memory_records_equal, (
        "memory-family batch/serial/batched-parallel record lists diverged"
    )

    strategy = make_strategy("lpt_no_restriction")
    realization = sample_realization(instance, cfg["model"], cfg["seeds"][0])

    scenarios: dict[str, dict[str, Any]] = {}
    scenarios["single_cell"] = _time_scenario(
        lambda: measured_ratio(strategy, instance, realization), repeats
    )
    scenarios["eventkernel_sweep"] = _time_scenario(
        lambda: grid(batch=False).run(), repeats
    )
    scenarios["batch_sweep"] = _time_scenario(lambda: grid(batch=True).run(), repeats)

    # The newly batchable families, kernel vs compiled plans: before the
    # phase-split/replay tiers these cells took the event kernel even
    # with batch=True, so this pair measures the end-to-end win of the
    # wider batch tier on its own cells.
    scenarios["memory_eventkernel_sweep"] = _time_scenario(
        lambda: memory_grid(batch=False).run(), repeats
    )
    scenarios["memory_batch_sweep"] = _time_scenario(
        lambda: memory_grid(batch=True).run(), repeats
    )

    with tempfile.TemporaryDirectory(prefix="perfbench-cache-") as cache_dir:
        grid(cache=CellCache(cache_dir)).run()  # cold run populates
        scenarios["cached_resweep"] = _time_scenario(
            lambda: grid(cache=CellCache(cache_dir)).run(), repeats
        )

    scenarios["parallel_grid"] = _time_scenario(
        lambda: grid(batch=False, workers=2).run(), repeats
    )

    tracer_calls = _count_tracer_calls(lambda: grid(batch=False).run())
    scenarios["tracer_overhead"] = _time_scenario(
        lambda: _disabled_tracer_calls(tracer_calls), repeats
    )

    # One whole daemon lifecycle per run: admissions in, queue drained,
    # daemon down.  tasks_per_tenant covers one RETRY_EVERY period so the
    # dedup path is always on the timed path; the tracer stays disabled
    # (run_burst never enables it), so the overhead tally above is
    # untouched by this scenario.
    from repro.service.loadgen import RETRY_EVERY, run_burst

    svc_tenants = 30 if quick else 80
    last_burst: list[Any] = []

    def _service_burst() -> None:
        last_burst[:] = [
            run_burst(
                svc_tenants,
                RETRY_EVERY,
                seed=cfg["instance_seed"],
                concurrency=16,
            )
        ]

    scenarios["service_loadgen"] = _time_scenario(_service_burst, repeats)
    burst = last_burst[0]
    service_zero_drop = (
        burst.errors == 0
        and burst.final_status.get("admitted") == burst.final_status.get("done")
    )

    # One virtual-time soak per run: sustained seeded arrivals against
    # the failure-aware scheduler while a rack dies mid-run, plus the
    # no-fault control arm.  Informational only — never gated here (the
    # survival invariants live in tests/test_chaos_soak.py and the CI
    # chaos-soak-smoke job).
    from repro.chaos import ChaosSchedule, FleetTopology, SoakConfig, run_soak

    topo = FleetTopology(
        zones=1, racks_per_zone=4, machines_per_rack=2 if quick else 3
    )
    soak_config = SoakConfig(
        topology=topo,
        seed=cfg["instance_seed"],
        duration=12.0 if quick else 30.0,
        rate=4.0,
        sample_every=1.0,
        schedule=ChaosSchedule.rack(topo, 1, at=4.0, downtime=5.0),
    )
    last_soak: list[Any] = []

    def _chaos_soak() -> None:
        last_soak[:] = [run_soak(soak_config)]

    scenarios["chaos_soak"] = _time_scenario(_chaos_soak, repeats)
    soak_summary = last_soak[0].summary

    # Speedups gate CI, so derive them from min_s: timing noise is purely
    # additive, making the minimum the most reproducible point estimate.
    ek = scenarios["eventkernel_sweep"]["min_s"]
    mem_ek = scenarios["memory_eventkernel_sweep"]["min_s"]
    derived = {
        "batch_speedup_x": ek / scenarios["batch_sweep"]["min_s"],
        "batch_memory_speedup_x": mem_ek / scenarios["memory_batch_sweep"]["min_s"],
        "batch_coverage": batch_coverage(),
        "cache_speedup_x": ek / scenarios["cached_resweep"]["min_s"],
        "records_equal": records_equal,
        "tracer_calls": tracer_calls,
        "tracer_overhead_pct": 100.0 * scenarios["tracer_overhead"]["min_s"] / ek,
        "service_zero_drop": service_zero_drop,
        "service_throughput_rps": burst.throughput_rps,
        "soak_min_availability": soak_summary["min_availability"],
        "soak_inflation": soak_summary["inflation"],
    }
    return {
        "schema": SCHEMA,
        "quick": quick,
        "repeats": repeats,
        "host": {**environment_info(), "cpu_count": os.cpu_count()},
        "grid": {
            "family": cfg["family"],
            "n": cfg["n"],
            "m": cfg["m"],
            "alpha": cfg["alpha"],
            "strategies": cfg["strategies"],
            "memory_strategies": cfg["memory_strategies"],
            "model": cfg["model"],
            "seeds": len(cfg["seeds"]),
            "cells": len(cfg["strategies"]) * len(cfg["seeds"]),
        },
        "scenarios": scenarios,
        "derived": derived,
    }


def write_payload(payload: dict[str, Any], out: str | Path) -> Path:
    """Write the artifact plus its provenance manifest sidecar."""
    from repro.obs.provenance import bench_manifest

    path = Path(out)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    bench_manifest(
        path.stem, schema=payload["schema"], quick=payload["quick"]
    ).write(path.with_suffix(".manifest.json"))
    return path


def append_history(payload: dict[str, Any], history: str | Path) -> Path:
    """Append one timestamped trajectory row; returns the history path.

    Rows are schema-versioned (``repro.perfbench-history/1``) and compact
    — scenario medians plus the derived ratios — so the file stays small
    while accumulating across PRs.  A ``*.manifest.json`` sidecar is
    (re)written next to it with the row count and git describe, and when
    the history lives in the repo's ``results/`` directory the file is
    also published to the artifact store as the volatile
    ``BENCH_history`` CURATED artifact (see docs/artifacts.md).
    """
    import datetime

    from repro.obs.provenance import bench_manifest

    path = Path(history)
    path.parent.mkdir(parents=True, exist_ok=True)
    row = {
        "schema": HISTORY_SCHEMA,
        "ts": datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        ),
        "quick": payload["quick"],
        "repeats": payload["repeats"],
        "cells": payload["grid"]["cells"],
        "git_describe": payload["host"].get("git_describe"),
        "scenarios": {
            name: s["median_s"] for name, s in payload["scenarios"].items()
        },
        "derived": {
            k: v for k, v in payload["derived"].items() if not isinstance(v, dict)
        },
    }
    with path.open("a", encoding="utf-8") as fh:
        fh.write(json.dumps(row, sort_keys=True) + "\n")
    rows = sum(1 for line in path.read_text(encoding="utf-8").splitlines() if line)
    artifact_id = None
    refs: tuple[Any, ...] = ()
    from repro.analysis.csvio import results_dir
    from repro.store import ArtifactStore, code_ref, publish_curated

    if path.parent.resolve() == results_dir().resolve():
        refs = (code_ref("repro.tools.perfbench"),)
        artifact = publish_curated(path.stem, store=ArtifactStore(), refs=refs)
        artifact_id = artifact.artifact_id if artifact is not None else None
    bench_manifest(
        path.stem, schema=HISTORY_SCHEMA, rows=rows, refs=refs, artifact_id=artifact_id
    ).write(path.with_suffix(".manifest.json"))
    return path


def check_regression(
    fresh: dict[str, Any],
    baseline: dict[str, Any],
    *,
    tolerance: float = DEFAULT_TOLERANCE,
    floor: float = DEFAULT_FLOOR,
) -> list[str]:
    """Compare a fresh measurement against the committed baseline.

    Returns a list of human-readable failures (empty = pass).  Only the
    scale-free speedup ratios (:data:`GATED_SPEEDUPS`) are gated —
    absolute scenario times are informational because CI runners vary in
    speed; each ratio is measured within one process on one machine and
    cancels that out.  Every gated ratio must clear the absolute
    ``floor`` on the *fresh* run unconditionally; the ±``tolerance``
    drift band applies only when the committed baseline also carries the
    key, so a freshly introduced scenario is floor-gated from its first
    CI run instead of silently passing until re-baselined.
    """
    problems: list[str] = []
    for payload, label in ((fresh, "fresh"), (baseline, "baseline")):
        if payload.get("schema") != SCHEMA:
            problems.append(
                f"{label} artifact has schema {payload.get('schema')!r}, "
                f"expected {SCHEMA!r}"
            )
    if problems:
        return problems
    if not fresh["derived"]["records_equal"]:
        problems.append("fresh run: batch/serial/parallel records diverged")
    if fresh["derived"].get("service_zero_drop") is False:
        problems.append(
            "fresh run: service_loadgen burst dropped tasks or saw request "
            "errors — the daemon must complete every admitted task"
        )
    overhead = fresh["derived"].get("tracer_overhead_pct")
    if overhead is not None and overhead >= DEFAULT_OVERHEAD_LIMIT_PCT:
        problems.append(
            f"tracer_overhead_pct {overhead:.3f}% is at or above the "
            f"{DEFAULT_OVERHEAD_LIMIT_PCT}% ceiling — the disabled tracer "
            "path must stay near-free"
        )
    coverage = fresh["derived"].get("batch_coverage")
    if coverage is not None and coverage < DEFAULT_COVERAGE_FLOOR:
        problems.append(
            f"batch_coverage {coverage:.3f} is below the "
            f"{DEFAULT_COVERAGE_FLOOR} floor — too few registered "
            "strategies declare supports_batch"
        )
    for key in GATED_SPEEDUPS:
        speedup = fresh["derived"].get(key)
        if speedup is None:
            continue  # older artifact from before this scenario existed
        if speedup < floor:
            problems.append(
                f"{key} {speedup:.2f} is below the hard floor {floor:.2f}"
            )
        base = baseline["derived"].get(key)
        if base is None:
            # Fresh scenario with no committed history: the floor above
            # already gated it; there is no band to compare against.
            continue
        lo, hi = base * (1 - tolerance), base * (1 + tolerance)
        if not lo <= speedup <= hi:
            direction = "regressed" if speedup < lo else "improved"
            problems.append(
                f"{key} {speedup:.2f} {direction} outside "
                f"[{lo:.2f}, {hi:.2f}] (baseline {base:.2f} ± {tolerance:.0%}); "
                "if intentional, re-baseline by committing the fresh "
                f"{DEFAULT_OUT}"
            )
    return problems


def _summarize(payload: dict[str, Any]) -> str:
    lines = [
        f"perfbench ({'quick' if payload['quick'] else 'full'}, "
        f"{payload['repeats']} repeats, grid of {payload['grid']['cells']} cells):"
    ]
    for name, s in payload["scenarios"].items():
        lines.append(
            f"  {name:24s} median {s['median_s'] * 1e3:9.2f} ms "
            f"(± {s['stdev_s'] * 1e3:.2f} ms)"
        )
    d = payload["derived"]
    lines.append(
        f"  batch speedup {d['batch_speedup_x']:.2f}x, "
        f"cache speedup {d['cache_speedup_x']:.2f}x, "
        f"records equal: {d['records_equal']}"
    )
    if "batch_memory_speedup_x" in d:
        lines.append(
            f"  memory/robust/hetero batch speedup "
            f"{d['batch_memory_speedup_x']:.2f}x, "
            f"batch coverage {d['batch_coverage']:.2f} "
            f"(floor {DEFAULT_COVERAGE_FLOOR})"
        )
    if "tracer_overhead_pct" in d:
        calls = d.get("tracer_calls", {})
        total = sum(calls.values()) if isinstance(calls, dict) else 0
        lines.append(
            f"  disabled-tracer overhead {d['tracer_overhead_pct']:.3f}% "
            f"of the event-kernel sweep ({total} instrumentation calls)"
        )
    if "service_throughput_rps" in d:
        lines.append(
            f"  service loadgen {d['service_throughput_rps']:.0f} req/s, "
            f"zero drop: {d['service_zero_drop']}"
        )
    if "soak_min_availability" in d:
        lines.append(
            f"  chaos soak min availability {d['soak_min_availability']:.3f}, "
            f"inflation {d['soak_inflation']:.3f} (informational, not gated)"
        )
    return "\n".join(lines)


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.perfbench",
        description="measure the perf scenarios and write/check BENCH_perf.json",
    )
    parser.add_argument(
        "--quick", action="store_true", help="small grid, 3 repeats (the CI mode)"
    )
    parser.add_argument(
        "--repeats", type=int, default=None, help="timing repeats per scenario"
    )
    parser.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help=f"write the artifact here (default: {DEFAULT_OUT}; with --check, "
        "fresh measurements are only written when PATH is given)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="re-measure and gate batch_speedup_x against --baseline",
    )
    parser.add_argument(
        "--baseline",
        default=DEFAULT_OUT,
        metavar="PATH",
        help=f"committed baseline for --check (default: {DEFAULT_OUT})",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help=f"two-sided relative drift allowed (default: {DEFAULT_TOLERANCE})",
    )
    parser.add_argument(
        "--floor",
        type=float,
        default=DEFAULT_FLOOR,
        help=f"hard minimum batch speedup (default: {DEFAULT_FLOOR})",
    )
    parser.add_argument(
        "--history",
        default=None,
        metavar="PATH",
        help="perf-trajectory JSONL to append to (default: "
        f"{DEFAULT_HISTORY}, or BENCH_history.jsonl next to --out); "
        "only written when the artifact is written",
    )
    parser.add_argument(
        "--no-history",
        action="store_true",
        help="skip appending the perf-trajectory row",
    )
    args = parser.parse_args(argv)

    payload = run_bench(quick=args.quick, repeats=args.repeats)
    print(_summarize(payload))

    def _history(out_path: str) -> None:
        # History rides along with the artifact: a pure --check run (no
        # --out) measures without writing, so it must not dirty the tree.
        if args.no_history:
            return
        history = args.history or str(
            Path(out_path).parent / Path(DEFAULT_HISTORY).name
            if args.out
            else DEFAULT_HISTORY
        )
        print(f"history row appended to {append_history(payload, history)}")

    if args.check:
        baseline_path = Path(args.baseline)
        if not baseline_path.exists():
            print(f"perfbench: no baseline at {baseline_path}", file=sys.stderr)
            return 2
        baseline = json.loads(baseline_path.read_text())
        problems = check_regression(
            payload, baseline, tolerance=args.tolerance, floor=args.floor
        )
        if args.out:
            print(f"fresh artifact written to {write_payload(payload, args.out)}")
            _history(args.out)
        if problems:
            for p in problems:
                print(f"perfbench: FAIL: {p}", file=sys.stderr)
            return 1
        print(
            f"perfbench: OK — batch_speedup_x {payload['derived']['batch_speedup_x']:.2f} "
            f"within {args.tolerance:.0%} of baseline "
            f"{baseline['derived']['batch_speedup_x']:.2f}"
        )
        return 0

    out = args.out or DEFAULT_OUT
    print(f"artifact written to {write_payload(payload, out)}")
    _history(out)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
