"""Trace analytics: span forests, self-time, and critical-path attribution.

The tracer (PR 1) records *what happened*; this module answers *where the
time went*.  From a stream of trace events (a ``trace.jsonl`` file, a
:class:`~repro.obs.sink.MemorySink` buffer) it reconstructs the span
forest and computes:

* **per-span-name aggregates** — count, total, self-time (duration minus
  children), and exact ``p50/p90/p99/max`` latency order statistics;
* **critical-path attribution** — the root span's wall clock decomposed
  into self-time contributions per span label (``grid.cell`` spans are
  labelled by their strategy × instance attributes, so a grid run's table
  answers "which cells dominate wall clock").  Self-times telescope, so
  the attribution column always sums to the root duration exactly — the
  invariant ``repro obs analyze`` is gated on in CI;
* **the dominant chain** — root → heaviest child → … → leaf, the single
  path a latency optimisation should walk first.

Traces merged from parallel workers (:mod:`repro.obs.merge`) analyse
unchanged: replayed worker spans carry real worker durations, so a parent
span's self-time can go *negative* where worker wall clock overlaps — the
tables surface that as overlap rather than hiding it, and the telescoping
sum still matches the root duration.

CLI: ``repro obs analyze trace.jsonl [--json] [--top N]``.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

__all__ = [
    "SpanNode",
    "TraceAnalysis",
    "build_forest",
    "span_label",
    "analyze_events",
    "analyze_file",
    "exact_percentile",
]


@dataclass
class SpanNode:
    """One reconstructed span: timing, attributes, and children.

    ``duration`` comes from the ``span_end`` payload's ``duration_s`` —
    for replayed worker spans that is the *worker's* measured wall time,
    not the parent replay time, so analysis stays truthful across the
    parallel merge.
    """

    name: str
    depth: int
    start_ts: float
    attrs: dict[str, Any] = field(default_factory=dict)
    duration: float = 0.0
    worker: int | str | None = None
    children: list["SpanNode"] = field(default_factory=list)

    @property
    def child_time(self) -> float:
        return sum(child.duration for child in self.children)

    @property
    def self_time(self) -> float:
        """Duration minus children — negative when workers overlap."""
        return self.duration - self.child_time


def _as_record(event: Any) -> dict[str, Any]:
    return event if isinstance(event, dict) else event.as_dict()


def build_forest(events: Iterable[Any]) -> list[SpanNode]:
    """Reconstruct top-level spans (with nested children) from events.

    ``events`` are :class:`~repro.obs.events.TraceEvent` objects or their
    ``as_dict()`` records, in emission order.  Unbalanced tails (a trace
    cut off mid-span) close open spans with the duration observed so far,
    so partially-written traces still analyse.
    """
    forest: list[SpanNode] = []
    stack: list[SpanNode] = []
    last_ts = 0.0
    for event in events:
        record = _as_record(event)
        kind = record.get("kind")
        last_ts = record.get("ts", last_ts)
        if kind == "span_start":
            payload = dict(record.get("payload", {}))
            node = SpanNode(
                name=record.get("name", ""),
                depth=record.get("depth", len(stack)),
                start_ts=payload.get("worker_ts", record.get("ts", 0.0)),
                attrs=payload,
                worker=payload.get("worker"),
            )
            if stack:
                stack[-1].children.append(node)
            else:
                forest.append(node)
            stack.append(node)
        elif kind == "span_end":
            if not stack:
                continue
            node = stack.pop()
            payload = record.get("payload", {})
            duration = payload.get("duration_s")
            node.duration = (
                float(duration)
                if isinstance(duration, (int, float))
                else max(0.0, record.get("ts", node.start_ts) - node.start_ts)
            )
            node.attrs.update(
                {k: v for k, v in payload.items() if k not in node.attrs}
            )
    while stack:  # truncated trace: close with what we saw
        node = stack.pop()
        node.duration = max(0.0, last_ts - node.start_ts)
        node.attrs.setdefault("truncated", True)
    return forest


def span_label(node: SpanNode) -> str:
    """Human label grouping attribution rows (strategy × instance aware)."""
    strategy = node.attrs.get("strategy")
    instance = node.attrs.get("instance")
    if strategy and instance:
        return f"{node.name}[{strategy}×{instance}]"
    if strategy:
        return f"{node.name}[{strategy}]"
    return node.name


def exact_percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile over the full sample (offline = exact)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[rank - 1]


def _walk(forest: Sequence[SpanNode]) -> Iterable[SpanNode]:
    stack = list(reversed(forest))
    while stack:
        node = stack.pop()
        yield node
        stack.extend(reversed(node.children))


@dataclass
class TraceAnalysis:
    """The full analysis of one trace; renders as tables or JSON.

    ``attribution`` decomposes ``root_duration_s`` into per-label
    self-time contributions (``total_attributed_s`` equals the root
    duration by construction); ``spans`` carries per-name aggregates and
    ``chain`` the dominant root→leaf path.
    """

    root_name: str
    root_duration_s: float
    spans: list[dict[str, Any]]
    attribution: list[dict[str, Any]]
    chain: list[dict[str, Any]]
    total_attributed_s: float
    events: int = 0
    workers: int = 0

    @property
    def attribution_error(self) -> float:
        """Relative gap between attributed time and the root duration."""
        if self.root_duration_s <= 0:
            return 0.0
        return abs(self.total_attributed_s - self.root_duration_s) / self.root_duration_s

    def as_dict(self) -> dict[str, Any]:
        return {
            "root": {
                "name": self.root_name,
                "duration_s": self.root_duration_s,
            },
            "events": self.events,
            "workers": self.workers,
            "spans": self.spans,
            "critical_path": {
                "total_attributed_s": self.total_attributed_s,
                "attribution_error": self.attribution_error,
                "entries": self.attribution,
                "chain": self.chain,
            },
        }


def _aggregate_spans(forest: Sequence[SpanNode]) -> list[dict[str, Any]]:
    by_name: dict[str, dict[str, Any]] = {}
    durations: dict[str, list[float]] = {}
    for node in _walk(forest):
        agg = by_name.setdefault(
            node.name,
            {"span": node.name, "count": 0, "total s": 0.0, "self s": 0.0},
        )
        agg["count"] += 1
        agg["total s"] += node.duration
        agg["self s"] += node.self_time
        durations.setdefault(node.name, []).append(node.duration)
    rows = []
    for name in sorted(by_name, key=lambda n: -by_name[n]["total s"]):
        agg = by_name[name]
        values = durations[name]
        agg["mean s"] = agg["total s"] / agg["count"]
        agg["p50 s"] = exact_percentile(values, 0.50)
        agg["p90 s"] = exact_percentile(values, 0.90)
        agg["p99 s"] = exact_percentile(values, 0.99)
        agg["max s"] = max(values)
        rows.append(agg)
    return rows


def _attribution(
    root: SpanNode, *, top: int | None = None
) -> tuple[list[dict[str, Any]], float]:
    """Self-time decomposition of the root's subtree, grouped by label.

    Self-times telescope — every node's duration is its self-time plus
    its children's durations — so the group totals sum *exactly* to the
    root duration, parallel overlap included (overlap shows up as a
    negative parent self-time row, not as a silently dropped remainder).
    """
    groups: dict[str, dict[str, Any]] = {}
    total = 0.0
    for node in _walk([root]):
        label = span_label(node)
        row = groups.setdefault(
            label, {"span": label, "count": 0, "self s": 0.0}
        )
        row["count"] += 1
        row["self s"] += node.self_time
        total += node.self_time
    rows = sorted(groups.values(), key=lambda r: -r["self s"])
    for row in rows:
        row["share"] = row["self s"] / root.duration if root.duration else 0.0
    if top is not None and len(rows) > top:
        head, tail = rows[:top], rows[top:]
        rest = {
            "span": f"(… {len(tail)} more)",
            "count": sum(r["count"] for r in tail),
            "self s": sum(r["self s"] for r in tail),
            "share": sum(r["share"] for r in tail),
        }
        rows = head + [rest]
    return rows, total


def _dominant_chain(root: SpanNode) -> list[dict[str, Any]]:
    chain: list[dict[str, Any]] = []
    node: SpanNode | None = root
    while node is not None:
        chain.append(
            {
                "depth": node.depth,
                "span": span_label(node),
                "duration s": node.duration,
                "self s": node.self_time,
                "share": node.duration / root.duration if root.duration else 0.0,
            }
        )
        node = max(node.children, key=lambda c: c.duration, default=None)
    return chain


def analyze_events(
    events: Iterable[Any], *, top: int | None = None
) -> TraceAnalysis:
    """Analyze a stream of trace events (see module doc for the output).

    Multiple top-level spans (e.g. a ``repro run`` trace with ``phase1``
    and ``phase2`` side by side) are folded under a synthetic ``(trace)``
    root whose duration is their sum, so attribution always has a single
    100% reference.
    """
    materialized = [_as_record(e) for e in events]
    forest = build_forest(materialized)
    if not forest:
        return TraceAnalysis(
            root_name="(empty)",
            root_duration_s=0.0,
            spans=[],
            attribution=[],
            chain=[],
            total_attributed_s=0.0,
            events=len(materialized),
        )
    if len(forest) == 1:
        root = forest[0]
    else:
        root = SpanNode(name="(trace)", depth=0, start_ts=forest[0].start_ts)
        root.children = list(forest)
        root.duration = root.child_time
    workers = {
        record.get("payload", {}).get("worker")
        for record in materialized
        if isinstance(record.get("payload"), dict)
        and record["payload"].get("worker") is not None
    }
    attribution, total = _attribution(root, top=top)
    return TraceAnalysis(
        root_name=root.name,
        root_duration_s=root.duration,
        spans=_aggregate_spans([root] if root.name == "(trace)" else forest),
        attribution=attribution,
        chain=_dominant_chain(root),
        total_attributed_s=total,
        events=len(materialized),
        workers=len(workers),
    )


def analyze_file(path: str | Path, *, top: int | None = None) -> TraceAnalysis:
    """Analyze a JSONL trace file (the ``repro obs analyze`` entry point)."""
    from repro.obs.sink import read_jsonl

    return analyze_events(read_jsonl(path), top=top)
