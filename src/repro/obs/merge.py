"""Cross-process observability merge.

The parallel experiment backend (:mod:`repro.analysis.parallel`) runs grid
cells in worker processes.  Each worker records into its *own* tracer —
a private :class:`~repro.obs.sink.MemorySink` plus a private
:class:`~repro.obs.metrics.MetricsRegistry` — because sharing the parent's
sinks across ``fork`` would interleave writes and corrupt JSONL traces.
This module folds those per-worker observations back into the parent:

* :func:`replay_events` re-emits a worker's serialized events through the
  parent tracer.  Replayed events get fresh parent sequence numbers and
  timestamps (keeping the trace schema-valid: ``seq`` monotone, ``ts``
  from one epoch) while the worker's original ``seq``/``ts`` and its pid
  travel in the payload (``worker``, ``worker_seq``, ``worker_ts``) so
  offline analysis can reconstruct per-worker timelines.
* :func:`merge_registry_summary` folds a worker registry's
  ``summary()`` dict into the parent registry: counters add, gauges
  last-write-wins, timers merge their count/total/min/max *and* their
  histogram buckets, so the parent's ``p50``/``p90``/``p99`` estimates
  cover every worker observation count-exactly.

Both are no-ops against a disabled tracer, like all obs entry points.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer

__all__ = ["replay_events", "merge_registry_summary"]

#: Worker event kinds that are *not* replayed: ``counter`` snapshots and
#: ``manifest`` records are per-process summaries the parent either
#: rebuilds from the merged registry or emits itself.
_SKIP_KINDS = frozenset({"counter", "manifest"})


def replay_events(
    tracer: Tracer,
    events: Iterable[dict[str, Any]],
    *,
    worker: int | str | None = None,
) -> int:
    """Re-emit serialized worker events through ``tracer``; returns the count.

    ``events`` are ``TraceEvent.as_dict()`` records shipped back from a
    worker process.  Events are replayed in the worker's emission order,
    with their depths re-based onto the parent's currently open span
    stack — a worker chunk's spans are balanced, so the merged stream
    still nests properly and passes ``repro.obs.validate``.
    """
    if not tracer.enabled:
        return 0
    base_depth = len(tracer._stack)
    replayed = 0
    for ev in events:
        kind = ev.get("kind")
        if kind in _SKIP_KINDS or kind is None:
            continue
        payload = dict(ev.get("payload", {}))
        payload["worker_seq"] = ev.get("seq")
        payload["worker_ts"] = ev.get("ts")
        if worker is not None:
            payload["worker"] = worker
        tracer._emit(kind, ev.get("name", ""), base_depth + ev.get("depth", 0), payload)
        replayed += 1
    return replayed


def merge_registry_summary(registry: MetricsRegistry, summary: dict[str, Any]) -> None:
    """Fold one worker registry ``summary()`` dict into ``registry``."""
    for name, value in summary.get("counters", {}).items():
        registry.counter(name).inc(int(value))
    for name, value in summary.get("gauges", {}).items():
        registry.gauge(name).set(float(value))
    for name, stats in summary.get("timers", {}).items():
        registry.timer(name).merge(
            count=int(stats.get("count", 0)),
            total=float(stats.get("total_s", 0.0)),
            minimum=float(stats.get("min_s", 0.0)),
            maximum=float(stats.get("max_s", 0.0)),
            buckets=stats.get("buckets"),
        )
