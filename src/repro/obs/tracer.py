"""Nestable-span tracer with a near-free disabled path.

The design constraint is the ROADMAP's: the simulator is a hot path that
future PRs will drive millions of times, so instrumentation must cost
~nothing when observability is off.  The disabled path is therefore:

* ``tracer.span(...)`` returns one shared no-op context manager — no
  allocation, no clock read;
* ``tracer.count(...)`` / ``tracer.event(...)`` return after a single
  attribute check;
* hot loops may hoist ``tracer.enabled`` into a local bool and skip the
  call entirely.

When enabled, spans nest via an explicit stack, timestamps come from
``time.perf_counter`` (monotonic, sub-microsecond), and every span
start/end, point event, and manifest fans out to the attached
:mod:`~repro.obs.sink` objects while counts land in the
:class:`~repro.obs.metrics.MetricsRegistry`.

A process-global default tracer (:func:`get_tracer`) is what the library
instruments against; it is **disabled** until :func:`enable` (or the
:func:`observed` context manager, or a CLI ``--trace`` flag) turns it on.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Iterator

from repro.obs.events import TraceEvent
from repro.obs.metrics import MetricsRegistry
from repro.obs.sink import MemorySink, Sink

__all__ = ["Span", "Tracer", "get_tracer", "enable", "disable", "observed"]


class _NoopSpan:
    """The shared do-nothing span the disabled path hands out."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False

    def set(self, **attrs: Any) -> "_NoopSpan":
        return self


_NOOP_SPAN = _NoopSpan()


class Span:
    """One live span; use only via ``with tracer.span(name, **attrs):``.

    Attributes set at creation (and via :meth:`set` while open) travel in
    the ``span_start``/``span_end`` event payloads; the end event also
    carries ``duration_s``.
    """

    __slots__ = ("tracer", "name", "attrs", "depth", "start", "end")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict[str, Any]) -> None:
        self.tracer = tracer
        self.name = name
        self.attrs = attrs
        self.depth = 0
        self.start = 0.0
        self.end = 0.0

    def set(self, **attrs: Any) -> "Span":
        """Attach attributes discovered mid-span (e.g. the result size)."""
        self.attrs.update(attrs)
        return self

    @property
    def duration(self) -> float:
        return self.end - self.start

    def __enter__(self) -> "Span":
        tr = self.tracer
        self.depth = len(tr._stack)
        tr._stack.append(self)
        self.start = time.perf_counter()
        tr._emit("span_start", self.name, self.depth, dict(self.attrs))
        return self

    def __exit__(self, exc_type: object, *exc: object) -> bool:
        self.end = time.perf_counter()
        tr = self.tracer
        if tr._stack and tr._stack[-1] is self:
            tr._stack.pop()
        payload = dict(self.attrs)
        payload["duration_s"] = self.duration
        if exc_type is not None:
            payload["error"] = getattr(exc_type, "__name__", str(exc_type))
        tr._emit("span_end", self.name, self.depth, payload)
        tr.registry.timer(f"span.{self.name}").observe(self.duration)
        return False


class Tracer:
    """Span/event recorder fanning out to sinks and a metrics registry."""

    def __init__(
        self,
        *,
        enabled: bool = True,
        sinks: list[Sink] | None = None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.enabled = enabled
        self.sinks: list[Sink] = list(sinks) if sinks is not None else []
        self.registry = registry if registry is not None else MetricsRegistry()
        self._stack: list[Span] = []
        self._seq = 0
        self._epoch = time.perf_counter()

    # -- recording --------------------------------------------------------

    def span(self, name: str, **attrs: Any) -> Span | _NoopSpan:
        """Open a nestable timed span (no-op when disabled)."""
        if not self.enabled:
            return _NOOP_SPAN
        return Span(self, name, attrs)

    def event(self, name: str, **payload: Any) -> None:
        """Record a point event (dispatch, completion, ...)."""
        if not self.enabled:
            return
        self._emit("event", name, len(self._stack), payload)

    def count(self, name: str, delta: int = 1) -> None:
        """Increment a registry counter (no-op when disabled)."""
        if not self.enabled:
            return
        self.registry.counter(name).inc(delta)

    def snapshot_counters(self) -> None:
        """Emit one ``counter`` event per registry counter.

        Called before a sink closes so a JSONL trace carries its final
        totals and is self-contained for offline analysis.
        """
        if not self.enabled:
            return
        for name, counter in sorted(self.registry.counters.items()):
            self._emit("counter", name, len(self._stack), {"value": counter.value})

    def manifest(self, manifest: Any) -> None:
        """Attach a :class:`~repro.obs.provenance.RunManifest` to the trace."""
        if not self.enabled:
            return
        payload = manifest.as_dict() if hasattr(manifest, "as_dict") else dict(manifest)
        self._emit("manifest", payload.get("kind", "run"), len(self._stack), payload)

    def _emit(self, kind: str, name: str, depth: int, payload: dict[str, Any]) -> None:
        ev = TraceEvent(
            seq=self._seq,
            ts=time.perf_counter() - self._epoch,
            kind=kind,
            name=name,
            depth=depth,
            payload=payload,
        )
        self._seq += 1
        for sink in self.sinks:
            sink.emit(ev)

    # -- lifecycle --------------------------------------------------------

    def add_sink(self, sink: Sink) -> Sink:
        self.sinks.append(sink)
        return sink

    def reset(self) -> None:
        """Clear sequence, span stack, sinks, and metrics."""
        for sink in self.sinks:
            sink.close()
        self.sinks = []
        self.registry.reset()
        self._stack = []
        self._seq = 0
        self._epoch = time.perf_counter()

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()


#: The process-global default tracer — disabled until :func:`enable`.
_DEFAULT = Tracer(enabled=False)


def get_tracer() -> Tracer:
    """The tracer all library instrumentation reports to."""
    return _DEFAULT


def enable(
    *sinks: Sink,
    reset: bool = True,
    registry: MetricsRegistry | None = None,
) -> Tracer:
    """Turn the global tracer on, attaching ``sinks`` (default: a fresh
    :class:`MemorySink`).  Returns the tracer for chaining."""
    tr = _DEFAULT
    if reset:
        tr.reset()
    if registry is not None:
        tr.registry = registry
    for sink in sinks if sinks else (MemorySink(),):
        tr.add_sink(sink)
    tr.enabled = True
    return tr


def disable() -> Tracer:
    """Turn the global tracer off and close its sinks (data is kept in
    any :class:`MemorySink` still referenced by the caller)."""
    tr = _DEFAULT
    tr.enabled = False
    tr.close()
    return tr


@contextmanager
def observed(*sinks: Sink, registry: MetricsRegistry | None = None) -> Iterator[Tracer]:
    """``with observed(MemorySink()) as tracer:`` — scoped enablement.

    Restores the previous enabled/sink/registry state on exit, so nested
    library code and tests can't leak a hot tracer into later runs.
    """
    tr = _DEFAULT
    prev_enabled = tr.enabled
    prev_sinks = tr.sinks
    prev_registry = tr.registry
    prev_stack, prev_seq = tr._stack, tr._seq
    tr.sinks = list(sinks) if sinks else [MemorySink()]
    tr.registry = registry if registry is not None else MetricsRegistry()
    tr._stack, tr._seq = [], 0
    tr._epoch = time.perf_counter()
    tr.enabled = True
    try:
        yield tr
    finally:
        tr.close()
        tr.enabled = prev_enabled
        tr.sinks = prev_sinks
        tr.registry = prev_registry
        tr._stack, tr._seq = prev_stack, prev_seq
