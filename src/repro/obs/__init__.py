"""Structured observability: tracing, metrics, and run provenance.

The layer every other subsystem reports into:

* :mod:`repro.obs.tracer` — nestable spans + point events, no-op unless
  enabled (:func:`enable` / :func:`observed` / CLI ``--trace``);
* :mod:`repro.obs.metrics` — named counters, gauges, histogram timers;
* :mod:`repro.obs.events` / :mod:`repro.obs.sink` — the structured event
  record and where it goes (ring buffer, JSONL file, stdlib logging);
* :mod:`repro.obs.provenance` — :class:`RunManifest` records tying every
  result back to its exact configuration;
* :mod:`repro.obs.validate` — schema validation for trace files
  (``python -m repro.obs.validate trace.jsonl``);
* :mod:`repro.obs.merge` — fold worker-process events and metrics back
  into the parent tracer (the parallel grid backend's trace merge);
* :mod:`repro.obs.analyze` — span-forest reconstruction, self-time and
  critical-path attribution (``repro obs analyze trace.jsonl``);
* :mod:`repro.obs.export` — OpenMetrics/Prometheus text exposition
  (``repro obs export`` / ``repro sweep --metrics-out``);
* :mod:`repro.obs.slo` — declarative latency/availability objectives
  evaluated fail-closed against recorded metrics;
* :mod:`repro.obs.profiling` — opt-in cProfile hooks for grid cells
  (``repro sweep --profile``).

Quickstart::

    from repro.obs import MemorySink, observed

    with observed(MemorySink()) as tracer:
        rec = repro.measured_ratio(strategy, inst, real)
        print(tracer.registry.summary()["counters"])
"""

# NOTE: repro.obs.validate is deliberately NOT imported here — importing
# it from the package __init__ would trip CPython's double-import warning
# when CI runs ``python -m repro.obs.validate``.  Import it directly:
# ``from repro.obs.validate import validate_trace``.
from repro.obs.analyze import SpanNode, TraceAnalysis, analyze_events, analyze_file
from repro.obs.events import (
    EVENT_KINDS,
    EVENT_PAYLOAD_FIELDS,
    SCHEMA_VERSION,
    TraceEvent,
    validate_record,
)
from repro.obs.export import (
    registry_from_trace,
    render_openmetrics,
    validate_exposition,
    write_exposition,
)
from repro.obs.merge import merge_registry_summary, replay_events
from repro.obs.metrics import BUCKET_BOUNDS, Counter, Gauge, MetricsRegistry, Timer
from repro.obs.slo import Objective, SLOReport, evaluate as evaluate_slo, parse_objectives
from repro.obs.provenance import RunManifest, bench_manifest, environment_info, run_manifest
from repro.obs.sink import JsonlSink, LoggingSink, MemorySink, Sink, read_jsonl
from repro.obs.tracer import Span, Tracer, disable, enable, get_tracer, observed

__all__ = [
    "TraceEvent",
    "EVENT_KINDS",
    "EVENT_PAYLOAD_FIELDS",
    "SCHEMA_VERSION",
    "validate_record",
    "Counter",
    "Gauge",
    "Timer",
    "MetricsRegistry",
    "Sink",
    "MemorySink",
    "JsonlSink",
    "LoggingSink",
    "read_jsonl",
    "Span",
    "Tracer",
    "get_tracer",
    "enable",
    "disable",
    "observed",
    "RunManifest",
    "run_manifest",
    "bench_manifest",
    "environment_info",
    "replay_events",
    "merge_registry_summary",
    "BUCKET_BOUNDS",
    "SpanNode",
    "TraceAnalysis",
    "analyze_events",
    "analyze_file",
    "render_openmetrics",
    "registry_from_trace",
    "write_exposition",
    "validate_exposition",
    "Objective",
    "SLOReport",
    "parse_objectives",
    "evaluate_slo",
]
