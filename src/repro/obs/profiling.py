"""Opt-in per-cell cProfile hooks for the experiment grid.

Tracing says *which* grid cell is slow; profiling says *why*.  Because
cProfile costs real overhead, it is strictly opt-in and mirrors the
fault-injection activation pattern (:mod:`repro.faults.inject`): a
:class:`ProfileSpec` is armed either programmatically
(:func:`configure`) or through the ``REPRO_PROFILE_CELLS`` environment
variable — which propagates into pool worker processes, so
``repro sweep --workers 2 --profile`` profiles cells inside the workers
with zero plumbing.  When nothing is armed, :func:`active_spec` is one
dict/env lookup and the grid runs unprofiled.

:func:`profile_call` wraps one callable, returning its result plus the
top-N rows by cumulative time (``{"func": "file.py:123:name", "calls",
"cum_s", "self_s"}``).  The substrate folds those rows into the cell's
span attributes (visible in ``repro obs analyze`` output) and into the
registry as ``profile.<func>`` timers so hot functions aggregate across
cells and surface in the grid manifest.
"""

from __future__ import annotations

import cProfile
import os
import pstats
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, TypeVar

from repro.obs.metrics import MetricsRegistry

__all__ = [
    "ENV_VAR",
    "ProfileSpec",
    "configure",
    "active_spec",
    "reset",
    "profile_call",
    "fold_rows",
]

#: Environment variable carrying a :meth:`ProfileSpec.parse` string.
ENV_VAR = "REPRO_PROFILE_CELLS"

_T = TypeVar("_T")


@dataclass(frozen=True)
class ProfileSpec:
    """How to profile grid cells.

    Attributes
    ----------
    top:
        Rows kept per profiled call, ranked by cumulative time.
    """

    top: int = 5

    @staticmethod
    def parse(text: str) -> "ProfileSpec":
        """Parse ``"top=8"`` form (``"1"``/``"on"`` arm the defaults)."""
        text = text.strip()
        if text.lower() in ("1", "on", "true", "yes"):
            return ProfileSpec()
        fields: dict[str, int] = {"top": 5}
        for part in text.split(","):
            part = part.strip()
            if not part:
                continue
            key, _, value = part.partition("=")
            key = key.strip()
            if key not in fields:
                raise ValueError(
                    f"unknown profiling key {key!r} in {text!r} "
                    f"(expected {sorted(fields)})"
                )
            fields[key] = int(value)
        spec = ProfileSpec(**fields)
        if spec.top <= 0:
            raise ValueError(f"top must be >= 1, got {spec.top}")
        return spec


#: Programmatic override; ``None`` falls back to the environment.
_CONFIGURED: ProfileSpec | None = None


def configure(spec: ProfileSpec | None) -> None:
    """Set (or with ``None``, clear) the in-process profiling spec."""
    global _CONFIGURED
    _CONFIGURED = spec


def active_spec() -> ProfileSpec | None:
    """The spec in effect: the configured one, else the environment's."""
    if _CONFIGURED is not None:
        return _CONFIGURED
    text = os.environ.get(ENV_VAR, "").strip()
    return ProfileSpec.parse(text) if text else None


def reset() -> None:
    """Clear configuration (test teardown)."""
    configure(None)


def _func_label(func: tuple[str, int, str]) -> str:
    """``(file, line, name)`` → compact ``"file.py:123:name"`` label."""
    filename, line, name = func
    if filename.startswith("~"):  # builtins have no file
        return name.strip("<>")
    return f"{Path(filename).name}:{line}:{name}"


def profile_call(
    func: Callable[..., _T],
    *args: Any,
    top: int = 5,
    **kwargs: Any,
) -> tuple[_T, list[dict[str, Any]]]:
    """Run ``func`` under cProfile; return ``(result, top-N rows)``.

    Rows are ranked by cumulative time and JSON-serializable:
    ``{"func": "file.py:123:name", "calls": int, "cum_s": float,
    "self_s": float}`` — compact enough to travel in span attributes and
    the grid manifest without bloating either.
    """
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        result = func(*args, **kwargs)
    finally:
        profiler.disable()
    stats = pstats.Stats(profiler)
    rows: list[dict[str, Any]] = []
    entries = sorted(
        stats.stats.items(),  # type: ignore[attr-defined]
        key=lambda item: item[1][3],  # cumulative time
        reverse=True,
    )
    for func_key, (cc, nc, tt, ct, _callers) in entries:
        label = _func_label(func_key)
        if label.startswith(("profile_call", "profiling.py")):
            continue  # the wrapper itself is not interesting
        rows.append(
            {
                "func": label,
                "calls": int(nc),
                "cum_s": round(float(ct), 6),
                "self_s": round(float(tt), 6),
            }
        )
        if len(rows) >= top:
            break
    return result, rows


def fold_rows(
    registry: MetricsRegistry, rows: list[dict[str, Any]]
) -> None:
    """Aggregate profile rows into ``profile.<func>`` registry timers.

    Each row merges as one observation of its cumulative time, so across
    a grid the timer's ``count`` is "cells where this function appeared
    in the top-N" and ``total`` its summed cumulative seconds — enough to
    rank hot functions in the manifest without shipping raw pstats.
    """
    for row in rows:
        cum = float(row.get("cum_s", 0.0))
        registry.timer(f"profile.{row['func']}").merge(
            count=1, total=cum, minimum=cum, maximum=cum
        )
