"""Run provenance: every result traceable to its exact configuration.

A :class:`RunManifest` freezes what produced a result — the instance
parameters, strategy, seed, realization model, library/python versions,
``git describe`` when a checkout is available, and timing totals — so a
CSV row under ``results/`` or a bench artifact can always be traced back
to the code and configuration that emitted it.  Manifests are emitted
into traces (``kind="manifest"`` events) by :func:`repro.simulate` and
:func:`repro.run_grid` when tracing is on, and written as sidecar
``*.manifest.json`` files by the bench harness unconditionally.
"""

from __future__ import annotations

import json
import platform
import subprocess
import sys
import time
from dataclasses import dataclass, field
from functools import lru_cache
from pathlib import Path
from typing import Any

__all__ = ["RunManifest", "run_manifest", "bench_manifest", "environment_info"]


@lru_cache(maxsize=1)
def _git_describe() -> str | None:
    """``git describe --always --dirty`` of the source checkout, if any."""
    try:
        out = subprocess.run(
            ["git", "describe", "--always", "--dirty", "--tags"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    return out.stdout.strip() or None if out.returncode == 0 else None


@lru_cache(maxsize=1)
def environment_info() -> dict[str, Any]:
    """Library/interpreter/platform identity, computed once per process."""
    from repro import __version__

    return {
        "repro_version": __version__,
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "git_describe": _git_describe(),
        "argv0": sys.argv[0] if sys.argv else None,
    }


@dataclass(frozen=True)
class RunManifest:
    """Frozen provenance record for one run/grid/bench invocation.

    Attributes
    ----------
    kind:
        What produced it: ``"simulate"``, ``"grid"``, ``"bench"``, ...
    label:
        Human identifier (trace label, bench name, grid description).
    params:
        The run's configuration (n, m, alpha, strategy, seed, model, ...).
    timing:
        Wall-time totals in seconds (keys are phase names).
    environment:
        Output of :func:`environment_info`.
    created_unix:
        ``time.time()`` at creation (the one wall-clock field; everything
        inside traces uses monotonic offsets instead).
    refs:
        Typed provenance refs (:mod:`repro.store.refs`) linking the run
        to the code, configuration, and store artifacts behind it.
    artifact_id:
        Content ID of the store artifact this manifest describes, when
        the run published one.
    """

    kind: str
    label: str
    params: dict[str, Any] = field(default_factory=dict)
    timing: dict[str, float] = field(default_factory=dict)
    environment: dict[str, Any] = field(default_factory=environment_info)
    created_unix: float = field(default_factory=time.time)
    refs: tuple[Any, ...] = ()
    artifact_id: str | None = None

    def as_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "label": self.label,
            "params": dict(self.params),
            "timing": dict(self.timing),
            "environment": dict(self.environment),
            "created_unix": self.created_unix,
            "refs": [r.as_dict() if hasattr(r, "as_dict") else r for r in self.refs],
            "artifact_id": self.artifact_id,
        }

    def to_json(self, *, indent: int | None = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent, sort_keys=True, default=str)

    def write(self, path: str | Path) -> Path:
        """Write the manifest as pretty JSON; returns the path."""
        p = Path(path)
        p.parent.mkdir(parents=True, exist_ok=True)
        p.write_text(self.to_json() + "\n", encoding="utf-8")
        return p


def run_manifest(
    kind: str,
    label: str,
    *,
    params: dict[str, Any] | None = None,
    timing: dict[str, float] | None = None,
    refs: tuple[Any, ...] = (),
    artifact_id: str | None = None,
) -> RunManifest:
    """Build a manifest with the current environment attached."""
    return RunManifest(
        kind=kind,
        label=label,
        params=dict(params) if params else {},
        timing=dict(timing) if timing else {},
        refs=tuple(refs),
        artifact_id=artifact_id,
    )


def bench_manifest(
    name: str,
    *,
    refs: tuple[Any, ...] = (),
    artifact_id: str | None = None,
    **params: Any,
) -> RunManifest:
    """Manifest for one bench artifact (the ``results/`` sidecar files).

    Snapshots the global tracer's metrics when any were recorded, so a
    traced bench run carries its own counters in the sidecar.  ``refs``
    and ``artifact_id`` link the sidecar to the store artifact the bench
    published (see :mod:`repro.store`).
    """
    from repro.obs.tracer import get_tracer

    registry = get_tracer().registry
    summary = registry.summary()
    if any(summary[k] for k in ("counters", "gauges", "timers")):
        params = {**params, "metrics": summary}
    return run_manifest("bench", name, params=params, refs=refs, artifact_id=artifact_id)
