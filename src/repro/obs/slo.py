"""Declarative service-level objectives over recorded metrics.

An objective is one line of text, e.g.::

    p99(grid.cell) < 2s
    mean(phase2) <= 150ms
    survival_rate >= 95%
    count(sim.restarts) <= 40

Two shapes: ``stat(target) op threshold`` applies a statistic (``p50``,
``p90``, ``p99``, ``mean``, ``max``, ``min``, ``count``, ``total``) to a
registry timer (``target`` resolves to the timer named ``target`` or
``span.target``, matching the tracer's naming) or, for ``count``, to a
counter; bare ``name op threshold`` reads a scalar from the caller's
``extras`` dict (fault-run statistics like ``survival_rate``), a gauge,
or a counter.  Thresholds accept ``s``/``ms``/``us`` duration suffixes
and ``%`` (divided by 100, so ``95%`` ≡ ``0.95``).

Evaluation is **fail-closed**: an objective whose metric was never
recorded fails with ``observed=None`` rather than passing vacuously — a
chaos run that silently stopped emitting latency data should page, not
pass.  :func:`repro.analysis.robustness.slo_report` wires this into
fault-injection runs; ``repro obs --inject`` demos it end-to-end.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, Iterable, Sequence

from repro.obs.metrics import MetricsRegistry, Timer

__all__ = ["Objective", "SLOResult", "SLOReport", "parse_objectives", "evaluate"]

_OBJECTIVE_RE = re.compile(
    r"^\s*(?:(?P<stat>[a-z0-9_]+)\s*\(\s*(?P<target>[^()\s][^()]*?)\s*\)"
    r"|(?P<name>[A-Za-z_][A-Za-z0-9_.]*))"
    r"\s*(?P<op>==|<=|>=|<|>)\s*"
    r"(?P<value>[-+]?[0-9]*\.?[0-9]+(?:[eE][-+]?[0-9]+)?)\s*"
    r"(?P<unit>s|ms|us|%)?\s*$"
)

_UNIT_SCALE = {None: 1.0, "s": 1.0, "ms": 1e-3, "us": 1e-6, "%": 1e-2}

_TIMER_STATS = frozenset(
    {"p50", "p90", "p99", "mean", "max", "min", "count", "total"}
)

_OPS = {
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "==": lambda a, b: a == b,
}


@dataclass(frozen=True)
class Objective:
    """One parsed objective; ``stat`` is ``None`` for bare-scalar form."""

    text: str
    stat: str | None
    target: str
    op: str
    threshold: float

    @classmethod
    def parse(cls, text: str) -> "Objective":
        match = _OBJECTIVE_RE.match(text)
        if not match:
            raise ValueError(
                f"unparseable objective {text!r} "
                "(expected 'stat(metric) op threshold' or 'name op threshold')"
            )
        stat = match.group("stat")
        if stat is not None and stat not in _TIMER_STATS:
            raise ValueError(
                f"unknown statistic {stat!r} in {text!r} "
                f"(known: {', '.join(sorted(_TIMER_STATS))})"
            )
        threshold = float(match.group("value")) * _UNIT_SCALE[match.group("unit")]
        return cls(
            text=text.strip(),
            stat=stat,
            target=(match.group("target") or match.group("name")).strip(),
            op=match.group("op"),
            threshold=threshold,
        )


@dataclass(frozen=True)
class SLOResult:
    """One evaluated objective: observed value (None = missing) and verdict."""

    objective: Objective
    observed: float | None
    passed: bool
    detail: str = ""

    def as_dict(self) -> dict[str, Any]:
        return {
            "objective": self.objective.text,
            "observed": self.observed,
            "threshold": self.objective.threshold,
            "passed": self.passed,
            "detail": self.detail,
        }


@dataclass
class SLOReport:
    """All objective verdicts for one run; renders as rows or JSON."""

    results: list[SLOResult]

    @property
    def passed(self) -> bool:
        return all(r.passed for r in self.results)

    @property
    def failures(self) -> list[SLOResult]:
        return [r for r in self.results if not r.passed]

    def rows(self) -> list[dict[str, object]]:
        return [
            {
                "objective": r.objective.text,
                "observed": "-" if r.observed is None else f"{r.observed:.6g}",
                "threshold": f"{r.objective.op} {r.objective.threshold:.6g}",
                "status": "PASS" if r.passed else "FAIL",
            }
            for r in self.results
        ]

    def as_dict(self) -> dict[str, Any]:
        return {
            "passed": self.passed,
            "objectives": [r.as_dict() for r in self.results],
        }


def parse_objectives(texts: Iterable[str]) -> list[Objective]:
    """Parse many objective lines (blank lines and ``#`` comments skipped)."""
    objectives = []
    for text in texts:
        stripped = text.strip()
        if stripped and not stripped.startswith("#"):
            objectives.append(Objective.parse(stripped))
    return objectives


def _timer_stat(timer: Timer, stat: str) -> float:
    if stat == "p50":
        return timer.p50
    if stat == "p90":
        return timer.p90
    if stat == "p99":
        return timer.p99
    if stat == "mean":
        return timer.mean
    if stat == "max":
        return timer.max
    if stat == "min":
        return timer.min if timer.count else 0.0
    if stat == "count":
        return float(timer.count)
    return timer.total  # "total"


def _resolve(
    objective: Objective,
    registry: MetricsRegistry | None,
    extras: dict[str, float],
) -> tuple[float | None, str]:
    """Find the observed value for one objective (None = not recorded)."""
    target = objective.target
    if objective.stat is not None:
        if registry is not None:
            timer = registry.timers.get(target) or registry.timers.get(
                f"span.{target}"
            )
            if timer is not None and timer.count > 0:
                return _timer_stat(timer, objective.stat), f"timer {timer.name}"
            if objective.stat == "count" and target in registry.counters:
                return float(registry.counters[target].value), f"counter {target}"
        if objective.stat == "count" and target in extras:
            return float(extras[target]), "extras"
        return None, "metric not recorded"
    if target in extras:
        return float(extras[target]), "extras"
    if registry is not None:
        if target in registry.gauges:
            return registry.gauges[target].value, "gauge"
        if target in registry.counters:
            return float(registry.counters[target].value), "counter"
    return None, "metric not recorded"


def evaluate(
    objectives: Sequence[Objective | str],
    *,
    registry: MetricsRegistry | None = None,
    extras: dict[str, float] | None = None,
) -> SLOReport:
    """Evaluate objectives against a registry and/or a scalar ``extras`` map.

    Strings are parsed on the fly.  Missing metrics fail closed (see
    module doc).
    """
    extras = extras or {}
    results = []
    for item in objectives:
        objective = item if isinstance(item, Objective) else Objective.parse(item)
        observed, detail = _resolve(objective, registry, extras)
        passed = observed is not None and _OPS[objective.op](
            observed, objective.threshold
        )
        results.append(
            SLOResult(
                objective=objective, observed=observed, passed=passed, detail=detail
            )
        )
    return SLOReport(results=results)
