"""Structured trace events and their schema.

Every observable occurrence — a span opening or closing, a simulator
dispatch, a run manifest — is one :class:`TraceEvent`: a monotonic
sequence number, a wall-clock offset from the tracer's epoch, a kind from
a closed vocabulary, a name, the nesting depth at emission time, and a
flat JSON-serializable payload.  The closed schema is what makes traces
machine-checkable: :func:`validate_record` (and the ``python -m
repro.obs.validate`` entry point built on it) rejects any record a future
refactor might garble, so the trace format is a contract, not a habit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = [
    "TraceEvent",
    "EVENT_KINDS",
    "EVENT_PAYLOAD_FIELDS",
    "SCHEMA_VERSION",
    "validate_record",
]

#: Bumped whenever a backwards-incompatible field change lands.
SCHEMA_VERSION = 1

#: The closed vocabulary of event kinds.
EVENT_KINDS = frozenset(
    {
        "span_start",  # a tracer span opened
        "span_end",    # a tracer span closed (payload carries duration_s)
        "event",       # a point event (dispatch, completion, failure, ...)
        "counter",     # an explicit counter snapshot
        "manifest",    # a RunManifest attached to the trace
    }
)

#: Payload values must be JSON scalars (or None); nested containers are
#: flattened by the caller before emission.
_SCALAR_TYPES = (str, int, float, bool, type(None))

#: Required payload fields for known simulator point events (``kind ==
#: "event"``).  Extra fields are always allowed (worker replay adds
#: provenance keys, for instance); missing required fields are schema
#: violations — an engine refactor that drops a field fails validation.
EVENT_PAYLOAD_FIELDS: dict[str, tuple[str, ...]] = {
    "dispatch": ("task", "machine", "t"),
    "completion": ("task", "machine", "t"),
    "restart": ("task", "machine", "t"),
    "machine_failure": ("machine", "t"),
    "machine_recovery": ("machine", "t"),
    "machine_degraded": ("machine", "factor", "t"),
    "grid.cell_retry": ("strategy", "instance", "attempt", "error"),
    "grid.cell_quarantined": ("strategy", "instance", "attempts", "error"),
    "grid.batch_pack": ("strategy", "instance", "cells"),
    "service.admit": ("task", "tenant", "t"),
    "service.dispatch": ("task", "machine", "t"),
    "service.complete": ("task", "machine", "t"),
    "service.machine_failure": ("machine", "t"),
    "service.machine_recovery": ("machine", "t"),
    "service.replaced": ("task", "machine", "t"),
    "service.shed": ("tenant", "reason", "t"),
    "policy.transition": ("entity", "old", "new", "t"),
    "chaos.inject": ("machines", "downtime", "t"),
}


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One structured observation.

    Attributes
    ----------
    seq:
        Monotonically increasing per tracer, starting at 0.
    ts:
        Seconds since the tracer's epoch (``time.perf_counter`` based, so
        monotonic and sub-microsecond).
    kind:
        One of :data:`EVENT_KINDS`.
    name:
        The span or event name (e.g. ``"simulate"``, ``"dispatch"``).
    depth:
        Span-stack depth at emission (0 = top level).
    payload:
        Flat mapping of JSON scalars.
    """

    seq: int
    ts: float
    kind: str
    name: str
    depth: int = 0
    payload: dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        """The JSONL wire form (includes the schema version)."""
        return {
            "v": SCHEMA_VERSION,
            "seq": self.seq,
            "ts": self.ts,
            "kind": self.kind,
            "name": self.name,
            "depth": self.depth,
            "payload": self.payload,
        }

    @staticmethod
    def from_dict(record: dict[str, Any]) -> "TraceEvent":
        """Inverse of :meth:`as_dict` (validates first)."""
        errors = validate_record(record)
        if errors:
            raise ValueError(f"invalid trace record: {'; '.join(errors)}")
        return TraceEvent(
            seq=record["seq"],
            ts=record["ts"],
            kind=record["kind"],
            name=record["name"],
            depth=record["depth"],
            payload=dict(record["payload"]),
        )


def validate_record(record: object) -> list[str]:
    """Schema-check one decoded JSONL record; returns human-readable errors.

    An empty list means the record is valid.  Checks field presence,
    types, the closed ``kind`` vocabulary, and payload flatness.
    """
    errors: list[str] = []
    if not isinstance(record, dict):
        return [f"record must be an object, got {type(record).__name__}"]
    v = record.get("v")
    if v != SCHEMA_VERSION:
        errors.append(f"schema version must be {SCHEMA_VERSION}, got {v!r}")
    seq = record.get("seq")
    if not isinstance(seq, int) or isinstance(seq, bool) or seq < 0:
        errors.append(f"seq must be a non-negative int, got {seq!r}")
    ts = record.get("ts")
    if not isinstance(ts, (int, float)) or isinstance(ts, bool) or ts < 0:
        errors.append(f"ts must be a non-negative number, got {ts!r}")
    kind = record.get("kind")
    if kind not in EVENT_KINDS:
        errors.append(f"kind must be one of {sorted(EVENT_KINDS)}, got {kind!r}")
    name = record.get("name")
    if not isinstance(name, str):
        errors.append(f"name must be a string, got {name!r}")
    depth = record.get("depth")
    if not isinstance(depth, int) or isinstance(depth, bool) or depth < 0:
        errors.append(f"depth must be a non-negative int, got {depth!r}")
    payload = record.get("payload")
    if not isinstance(payload, dict):
        errors.append(f"payload must be an object, got {type(payload).__name__}")
    else:
        for key, value in payload.items():
            if not isinstance(key, str):
                errors.append(f"payload key {key!r} is not a string")
            if not isinstance(value, _SCALAR_TYPES) and not isinstance(value, (list, dict)):
                errors.append(
                    f"payload[{key!r}] has non-JSON type {type(value).__name__}"
                )
    if kind == "span_end" and isinstance(payload, dict):
        dur = payload.get("duration_s")
        if not isinstance(dur, (int, float)) or isinstance(dur, bool) or dur < 0:
            errors.append(
                f"span_end payload must carry a non-negative duration_s, got {dur!r}"
            )
    if kind == "event" and isinstance(payload, dict) and isinstance(name, str):
        required = EVENT_PAYLOAD_FIELDS.get(name)
        if required:
            for field_name in required:
                if field_name not in payload:
                    errors.append(
                        f"event {name!r} payload is missing required field "
                        f"{field_name!r}"
                    )
    return errors
