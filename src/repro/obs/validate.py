"""Trace-file validation: ``python -m repro.obs.validate trace.jsonl``.

Checks a JSONL trace line-by-line against the event schema
(:func:`repro.obs.events.validate_record`) plus the cross-record
invariants the schema alone can't express:

* ``seq`` strictly increasing from 0;
* ``ts`` non-decreasing (monotonic clock);
* every ``span_end`` matches the innermost open ``span_start`` (proper
  nesting), and no span is left open at EOF.

Exit code 0 on a valid trace, 1 otherwise — CI runs this after a traced
``repro run`` so trace-format regressions fail fast.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections.abc import Sequence
from pathlib import Path

from repro.obs.events import validate_record

__all__ = ["validate_trace", "main"]


def validate_trace(path: str | Path) -> tuple[dict[str, int], list[str]]:
    """Validate one JSONL trace file.

    Returns ``(stats, errors)`` where ``stats`` counts records by kind
    (plus ``"records"`` and ``"spans"``) and ``errors`` is human-readable,
    each prefixed with the offending line number.  Empty ``errors`` means
    the trace is valid.
    """
    errors: list[str] = []
    stats: dict[str, int] = {"records": 0, "spans": 0}
    open_spans: list[tuple[str, int]] = []  # (name, depth)
    prev_seq = -1
    prev_ts = -1.0
    with Path(path).open(encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            stats["records"] += 1
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                errors.append(f"line {lineno}: not valid JSON ({exc})")
                continue
            record_errors = validate_record(record)
            if record_errors:
                errors.extend(f"line {lineno}: {e}" for e in record_errors)
                continue
            kind = record["kind"]
            stats[kind] = stats.get(kind, 0) + 1
            if record["seq"] != prev_seq + 1:
                errors.append(
                    f"line {lineno}: seq {record['seq']} breaks the monotonic "
                    f"sequence (previous was {prev_seq})"
                )
            prev_seq = record["seq"]
            if record["ts"] < prev_ts:
                errors.append(
                    f"line {lineno}: ts {record['ts']} went backwards "
                    f"(previous was {prev_ts})"
                )
            prev_ts = record["ts"]
            if kind == "span_start":
                if record["depth"] != len(open_spans):
                    errors.append(
                        f"line {lineno}: span_start {record['name']!r} at depth "
                        f"{record['depth']} but {len(open_spans)} spans are open"
                    )
                open_spans.append((record["name"], record["depth"]))
                stats["spans"] += 1
            elif kind == "span_end":
                if not open_spans:
                    errors.append(
                        f"line {lineno}: span_end {record['name']!r} with no open span"
                    )
                else:
                    name, depth = open_spans.pop()
                    if name != record["name"] or depth != record["depth"]:
                        errors.append(
                            f"line {lineno}: span_end {record['name']!r}@{record['depth']} "
                            f"does not match innermost open span {name!r}@{depth}"
                        )
    for name, depth in open_spans:
        errors.append(f"EOF: span {name!r}@{depth} was never closed")
    return stats, errors


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.validate",
        description="Validate a repro JSONL trace against the event schema.",
    )
    parser.add_argument("trace", help="path to the trace .jsonl file")
    parser.add_argument(
        "--quiet", action="store_true", help="suppress the per-kind summary"
    )
    args = parser.parse_args(argv)
    try:
        stats, errors = validate_trace(args.trace)
    except OSError as exc:
        print(f"error: cannot read {args.trace}: {exc}", file=sys.stderr)
        return 1
    if not args.quiet:
        for key in sorted(stats):
            print(f"{key:12s} {stats[key]}")
    if errors:
        for err in errors:
            print(f"INVALID  {err}", file=sys.stderr)
        print(f"{args.trace}: INVALID ({len(errors)} errors)", file=sys.stderr)
        return 1
    print(f"{args.trace}: OK ({stats['records']} records, {stats['spans']} spans)")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
