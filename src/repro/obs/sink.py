"""Pluggable event sinks: where :class:`~repro.obs.events.TraceEvent`\\ s go.

Three zero-dependency sinks cover the practical cases:

* :class:`MemorySink` — bounded ring buffer, the default for tests and
  interactive inspection;
* :class:`JsonlSink` — one JSON object per line, the durable format every
  ``--trace`` flag writes and ``repro.obs.validate`` checks;
* :class:`LoggingSink` — bridges events onto stdlib :mod:`logging`
  (logger ``repro.obs``), for hosts that already aggregate logs.

A sink is anything with ``emit(event)`` and ``close()``; the tracer fans
out to every attached sink, so combinations (ring buffer *and* file) are
free.
"""

from __future__ import annotations

import json
import logging
from collections import deque
from pathlib import Path
from typing import IO

from repro.obs.events import TraceEvent

__all__ = ["Sink", "MemorySink", "JsonlSink", "LoggingSink", "read_jsonl"]


class Sink:
    """Sink interface; subclasses override :meth:`emit`."""

    def emit(self, event: TraceEvent) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def flush(self) -> None:
        """Push buffered data to durable storage (no-op by default).

        The parallel backend flushes every sink before forking workers so
        a child process never inherits (and later double-flushes) a
        parent's buffered bytes.
        """

    def close(self) -> None:
        """Flush and release resources (idempotent)."""


class MemorySink(Sink):
    """Ring buffer of the last ``capacity`` events."""

    def __init__(self, capacity: int = 10_000) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.events: deque[TraceEvent] = deque(maxlen=capacity)
        self.dropped = 0

    def emit(self, event: TraceEvent) -> None:
        if len(self.events) == self.events.maxlen:
            self.dropped += 1
        self.events.append(event)

    def by_kind(self, kind: str) -> list[TraceEvent]:
        """All buffered events of one kind, in emission order."""
        return [e for e in self.events if e.kind == kind]


class JsonlSink(Sink):
    """Append events to ``path``, one JSON object per line.

    With ``max_bytes`` set the sink performs size-capped rotation: when
    the live file exceeds the cap it is renamed to ``trace.1.jsonl``
    (older segments shift to ``.2``, ``.3``, … up to ``backups``, then
    fall off) and writing continues into a fresh ``trace.jsonl``.  Every
    segment stays ``repro.obs.validate``-clean on its own: the sink
    assigns per-segment sequence numbers and, at each rotation boundary,
    synthesizes balancing ``span_end`` records into the closing segment
    and matching ``span_start`` records (tagged ``rotated: true``) into
    the new one, so spans that straddle the boundary still nest properly
    in both files.  Without ``max_bytes`` (the default) the wire format
    is unchanged from previous releases.
    """

    def __init__(
        self,
        path: str | Path,
        *,
        max_bytes: int | None = None,
        backups: int = 3,
    ) -> None:
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError(f"max_bytes must be positive, got {max_bytes}")
        if backups < 1:
            raise ValueError(f"backups must be >= 1, got {backups}")
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh: IO[str] | None = self.path.open("w", encoding="utf-8")
        self.written = 0
        self.max_bytes = max_bytes
        self.backups = backups
        self.rotations = 0
        self._seq = 0
        self._bytes = 0
        self._last_ts = 0.0
        self._open_spans: list[dict] = []

    def emit(self, event: TraceEvent) -> None:
        if self._fh is None:
            raise ValueError(f"JsonlSink({self.path}) is closed")
        record = event.as_dict()
        if self.max_bytes is None:
            self._fh.write(json.dumps(record, separators=(",", ":")) + "\n")
            self.written += 1
            return
        self._last_ts = record["ts"]
        if record["kind"] == "span_start":
            self._open_spans.append(
                {
                    "name": record["name"],
                    "depth": record["depth"],
                    "ts": record["ts"],
                    "payload": dict(record["payload"]),
                }
            )
        elif record["kind"] == "span_end" and self._open_spans:
            self._open_spans.pop()
        self._write(record)
        if self._bytes >= self.max_bytes:
            self._rotate()

    def _write(self, record: dict) -> None:
        record["seq"] = self._seq
        line = json.dumps(record, separators=(",", ":")) + "\n"
        assert self._fh is not None
        self._fh.write(line)
        self._bytes += len(line)
        self._seq += 1
        self.written += 1

    def _segment_path(self, index: int) -> Path:
        return self.path.with_name(f"{self.path.stem}.{index}{self.path.suffix}")

    def _rotate(self) -> None:
        """Seal the current segment and start a fresh one (see class doc)."""
        from repro.obs.events import SCHEMA_VERSION

        for span in reversed(self._open_spans):
            self._write(
                {
                    "v": SCHEMA_VERSION,
                    "ts": self._last_ts,
                    "kind": "span_end",
                    "name": span["name"],
                    "depth": span["depth"],
                    "payload": {
                        **span["payload"],
                        "duration_s": max(0.0, self._last_ts - span["ts"]),
                        "rotated": True,
                    },
                }
            )
        assert self._fh is not None
        self._fh.close()
        self._fh = None
        oldest = self._segment_path(self.backups)
        if oldest.exists():
            oldest.unlink()
        for index in range(self.backups - 1, 0, -1):
            segment = self._segment_path(index)
            if segment.exists():
                segment.rename(self._segment_path(index + 1))
        self.path.rename(self._segment_path(1))
        self._fh = self.path.open("w", encoding="utf-8")
        self._seq = 0
        self._bytes = 0
        self.rotations += 1
        for span in self._open_spans:
            self._write(
                {
                    "v": SCHEMA_VERSION,
                    "ts": self._last_ts,
                    "kind": "span_start",
                    "name": span["name"],
                    "depth": span["depth"],
                    "payload": {**span["payload"], "rotated": True},
                }
            )

    def flush(self) -> None:
        if self._fh is not None:
            self._fh.flush()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def read_jsonl(path: str | Path) -> list[TraceEvent]:
    """Load a JSONL trace back into validated :class:`TraceEvent` objects."""
    events = []
    with Path(path).open(encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                events.append(TraceEvent.from_dict(json.loads(line)))
    return events


class LoggingSink(Sink):
    """Forward events to stdlib logging (stderr by default).

    Span ends and manifests log at INFO, everything else at DEBUG, so a
    default ``logging.basicConfig(level=logging.INFO)`` shows phase
    timings without drowning in per-dispatch noise.
    """

    def __init__(self, logger: logging.Logger | None = None) -> None:
        self.logger = logger or logging.getLogger("repro.obs")

    def emit(self, event: TraceEvent) -> None:
        level = logging.INFO if event.kind in ("span_end", "manifest") else logging.DEBUG
        if self.logger.isEnabledFor(level):
            self.logger.log(
                level,
                "%s %s seq=%d ts=%.6f %s",
                event.kind,
                event.name,
                event.seq,
                event.ts,
                json.dumps(event.payload, separators=(",", ":"), default=str),
            )
