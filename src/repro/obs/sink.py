"""Pluggable event sinks: where :class:`~repro.obs.events.TraceEvent`\\ s go.

Three zero-dependency sinks cover the practical cases:

* :class:`MemorySink` — bounded ring buffer, the default for tests and
  interactive inspection;
* :class:`JsonlSink` — one JSON object per line, the durable format every
  ``--trace`` flag writes and ``repro.obs.validate`` checks;
* :class:`LoggingSink` — bridges events onto stdlib :mod:`logging`
  (logger ``repro.obs``), for hosts that already aggregate logs.

A sink is anything with ``emit(event)`` and ``close()``; the tracer fans
out to every attached sink, so combinations (ring buffer *and* file) are
free.
"""

from __future__ import annotations

import json
import logging
from collections import deque
from pathlib import Path
from typing import IO

from repro.obs.events import TraceEvent

__all__ = ["Sink", "MemorySink", "JsonlSink", "LoggingSink", "read_jsonl"]


class Sink:
    """Sink interface; subclasses override :meth:`emit`."""

    def emit(self, event: TraceEvent) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def flush(self) -> None:
        """Push buffered data to durable storage (no-op by default).

        The parallel backend flushes every sink before forking workers so
        a child process never inherits (and later double-flushes) a
        parent's buffered bytes.
        """

    def close(self) -> None:
        """Flush and release resources (idempotent)."""


class MemorySink(Sink):
    """Ring buffer of the last ``capacity`` events."""

    def __init__(self, capacity: int = 10_000) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.events: deque[TraceEvent] = deque(maxlen=capacity)
        self.dropped = 0

    def emit(self, event: TraceEvent) -> None:
        if len(self.events) == self.events.maxlen:
            self.dropped += 1
        self.events.append(event)

    def by_kind(self, kind: str) -> list[TraceEvent]:
        """All buffered events of one kind, in emission order."""
        return [e for e in self.events if e.kind == kind]


class JsonlSink(Sink):
    """Append events to ``path``, one JSON object per line."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh: IO[str] | None = self.path.open("w", encoding="utf-8")
        self.written = 0

    def emit(self, event: TraceEvent) -> None:
        if self._fh is None:
            raise ValueError(f"JsonlSink({self.path}) is closed")
        self._fh.write(json.dumps(event.as_dict(), separators=(",", ":")) + "\n")
        self.written += 1

    def flush(self) -> None:
        if self._fh is not None:
            self._fh.flush()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def read_jsonl(path: str | Path) -> list[TraceEvent]:
    """Load a JSONL trace back into validated :class:`TraceEvent` objects."""
    events = []
    with Path(path).open(encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                events.append(TraceEvent.from_dict(json.loads(line)))
    return events


class LoggingSink(Sink):
    """Forward events to stdlib logging (stderr by default).

    Span ends and manifests log at INFO, everything else at DEBUG, so a
    default ``logging.basicConfig(level=logging.INFO)`` shows phase
    timings without drowning in per-dispatch noise.
    """

    def __init__(self, logger: logging.Logger | None = None) -> None:
        self.logger = logger or logging.getLogger("repro.obs")

    def emit(self, event: TraceEvent) -> None:
        level = logging.INFO if event.kind in ("span_end", "manifest") else logging.DEBUG
        if self.logger.isEnabledFor(level):
            self.logger.log(
                level,
                "%s %s seq=%d ts=%.6f %s",
                event.kind,
                event.name,
                event.seq,
                event.ts,
                json.dumps(event.payload, separators=(",", ":"), default=str),
            )
