"""OpenMetrics / Prometheus text exposition of the metrics registry.

One export format for every producer: ``repro sweep --metrics-out``
writes ``results/telemetry.prom`` from the live registry, ``repro obs
export trace.jsonl`` rebuilds a registry from a recorded trace and
exposes that, and the future service daemon (ROADMAP item 1) can serve
the same text over HTTP unchanged.

The output follows the OpenMetrics text format:

* counters as ``<name>_total``;
* gauges as plain samples;
* timers as **summary** families (``quantile`` labels carrying the
  histogram-estimated p50/p90/p99, plus ``_sum``/``_count``) — this is
  what puts the percentiles in the artifact — with an optional companion
  **histogram** family (``_bucket{le="..."}`` rows, cumulative, from the
  shared log-spaced :data:`~repro.obs.metrics.BUCKET_BOUNDS`);
* a final ``# EOF`` marker.

:func:`validate_exposition` is a small structural parser used by tests
and the CI observability job to assert the artifact stays machine-
readable without needing a Prometheus binary in the container.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Any

from repro.obs.metrics import BUCKET_BOUNDS, MetricsRegistry

__all__ = [
    "sanitize",
    "render_openmetrics",
    "registry_from_trace",
    "write_exposition",
    "validate_exposition",
]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^}]*\})?"
    r"\s+(?P<value>[^\s]+)\s*$"
)


def sanitize(name: str) -> str:
    """Map a dotted repro metric name onto the OpenMetrics charset."""
    cleaned = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    if not cleaned or not _NAME_RE.match(cleaned):
        cleaned = f"_{cleaned}"
    return cleaned


def _fmt(value: float) -> str:
    """Render a sample value (OpenMetrics wants plain decimal floats)."""
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def render_openmetrics(
    summary: dict[str, Any],
    *,
    prefix: str = "repro",
    histograms: bool = True,
) -> str:
    """Render a :meth:`MetricsRegistry.summary` dict as exposition text.

    Timers become summary families named ``<prefix>_<name>_seconds``;
    with ``histograms=True`` each also gets a distinct
    ``<prefix>_<name>_seconds_hist`` histogram family (OpenMetrics
    forbids one family carrying both quantiles and buckets).  Bucket rows
    cover the non-empty bounds plus the mandatory ``+Inf``, cumulative.
    """
    lines: list[str] = []
    for name, value in summary.get("counters", {}).items():
        metric = f"{prefix}_{sanitize(name)}"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric}_total {_fmt(float(value))}")
    for name, value in summary.get("gauges", {}).items():
        metric = f"{prefix}_{sanitize(name)}"
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_fmt(float(value))}")
    for name, stats in summary.get("timers", {}).items():
        metric = f"{prefix}_{sanitize(name)}_seconds"
        count = int(stats.get("count", 0))
        total = float(stats.get("total_s", 0.0))
        lines.append(f"# TYPE {metric} summary")
        for q, key in (("0.5", "p50_s"), ("0.9", "p90_s"), ("0.99", "p99_s")):
            lines.append(
                f'{metric}{{quantile="{q}"}} {_fmt(float(stats.get(key, 0.0)))}'
            )
        lines.append(f"{metric}_sum {_fmt(total)}")
        lines.append(f"{metric}_count {count}")
        buckets = stats.get("buckets")
        if histograms and buckets:
            hist = f"{metric}_hist"
            lines.append(f"# TYPE {hist} histogram")
            cumulative = 0
            for index in sorted(buckets, key=int):
                cumulative += int(buckets[index])
                bound = (
                    f"{BUCKET_BOUNDS[int(index)]:.9g}"
                    if int(index) < len(BUCKET_BOUNDS)
                    else "+Inf"
                )
                lines.append(f'{hist}_bucket{{le="{bound}"}} {cumulative}')
            if int(max(buckets, key=int)) < len(BUCKET_BOUNDS):
                lines.append(f'{hist}_bucket{{le="+Inf"}} {cumulative}')
            lines.append(f"{hist}_sum {_fmt(total)}")
            lines.append(f"{hist}_count {count}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def registry_from_trace(path: str | Path) -> MetricsRegistry:
    """Rebuild a registry from a recorded JSONL trace.

    Counters come from the ``counter`` snapshot records the tracer emits
    at shutdown; timers are re-observed from every ``span_end``'s
    ``duration_s`` (named ``span.<name>``, matching the live registry's
    convention).  Gauges are not recorded in traces and stay empty.
    """
    from repro.obs.sink import read_jsonl

    registry = MetricsRegistry()
    for event in read_jsonl(path):
        if event.kind == "counter":
            value = event.payload.get("value", 0)
            if isinstance(value, (int, float)):
                counter = registry.counter(event.name)
                counter.value = max(counter.value, int(value))
        elif event.kind == "span_end":
            duration = event.payload.get("duration_s")
            if isinstance(duration, (int, float)):
                registry.timer(f"span.{event.name}").observe(float(duration))
    return registry


def write_exposition(
    summary: dict[str, Any],
    path: str | Path,
    *,
    prefix: str = "repro",
    histograms: bool = True,
) -> Path:
    """Render and write exposition text; returns the written path."""
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    text = render_openmetrics(summary, prefix=prefix, histograms=histograms)
    out.write_text(text, encoding="utf-8")
    return out


def validate_exposition(text: str) -> tuple[dict[str, str], list[str]]:
    """Structurally check exposition text; returns ``(families, errors)``.

    ``families`` maps family name to declared type.  Checks: every sample
    parses, belongs to a declared family (counters via ``_total``,
    summaries/histograms via their suffixed samples), sample values are
    finite decimals, no family is declared twice, and the text ends with
    ``# EOF``.  Empty ``errors`` means the artifact is consumable.
    """
    families: dict[str, str] = {}
    errors: list[str] = []
    lines = text.splitlines()
    if not lines or lines[-1].strip() != "# EOF":
        errors.append("missing terminating '# EOF' line")
    for lineno, line in enumerate(lines, start=1):
        line = line.rstrip("\n")
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 2 and parts[1] == "EOF":
                if lineno != len(lines):
                    errors.append(f"line {lineno}: '# EOF' before end of text")
                continue
            if len(parts) == 4 and parts[1] == "TYPE":
                family, kind = parts[2], parts[3]
                if not _NAME_RE.match(family):
                    errors.append(f"line {lineno}: invalid family name {family!r}")
                if kind not in ("counter", "gauge", "summary", "histogram"):
                    errors.append(f"line {lineno}: unknown type {kind!r}")
                if family in families:
                    errors.append(f"line {lineno}: family {family!r} declared twice")
                families[family] = kind
                continue
            continue  # other comments (HELP, UNIT) pass through
        match = _SAMPLE_RE.match(line)
        if not match:
            errors.append(f"line {lineno}: unparseable sample {line!r}")
            continue
        name = match.group("name")
        try:
            float(match.group("value"))
        except ValueError:
            errors.append(f"line {lineno}: non-numeric value {match.group('value')!r}")
        base = name
        for suffix in ("_total", "_sum", "_count", "_bucket"):
            if name.endswith(suffix):
                base = name[: -len(suffix)]
                break
        if base not in families and name not in families:
            errors.append(f"line {lineno}: sample {name!r} has no TYPE declaration")
    return families, errors
