"""Named counters, gauges, and histogram timers.

A :class:`MetricsRegistry` is the numeric side of observability: the
tracer records *what happened when*, the registry records *how much and
how long*.  Zero dependencies, zero background threads — instruments are
plain objects the hot path mutates directly, so an increment is one
attribute add and the whole layer stays safe to leave compiled into the
simulator.

:class:`Timer` is a fixed-bucket duration histogram: every observation
lands in one of the log-spaced :data:`BUCKET_BOUNDS` buckets (four per
decade from 1 µs to 1000 s, plus overflow), so ``p50``/``p90``/``p99``
latency percentiles are available at any time and two timers merge by
adding bucket counts — the property the parallel grid backend relies on
to fold worker histograms into the parent *count-exactly*
(:mod:`repro.obs.merge`).

Naming convention (dots as namespaces, mirroring the span names):
``sim.dispatches``, ``sim.restarts``, ``grid.cell`` … — see the
auto-generated metrics reference in ``docs/observability.md``.
"""

from __future__ import annotations

import math
import time
from bisect import bisect_left
from collections.abc import Mapping, Sequence
from typing import Any

__all__ = ["BUCKET_BOUNDS", "Counter", "Gauge", "Timer", "MetricsRegistry"]

#: Upper bucket bounds in seconds, log-spaced four per decade over
#: [1 µs, 1000 s].  Fixed for every :class:`Timer` so any two histograms
#: are mergeable bucket-by-bucket; observations above the last bound land
#: in a final overflow bucket.
BUCKET_BOUNDS: tuple[float, ...] = tuple(10.0 ** (k / 4.0) for k in range(-24, 13))


class Counter:
    """A monotonically increasing integer (dispatches, completions, ...)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, delta: int = 1) -> None:
        self.value += delta


class Gauge:
    """A last-write-wins float (queue depth, idle fraction, ...)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class _TimerContext:
    __slots__ = ("_timer", "_start")

    def __init__(self, timer: "Timer") -> None:
        self._timer = timer
        self._start = 0.0

    def __enter__(self) -> "_TimerContext":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        self._timer.observe(time.perf_counter() - self._start)


class Timer:
    """A fixed-bucket duration histogram.

    Tracks count / total / min / max plus per-bucket observation counts
    over the shared log-spaced :data:`BUCKET_BOUNDS`, from which
    :meth:`percentile` (and the ``p50``/``p90``/``p99`` properties)
    estimates order statistics by linear interpolation inside the
    containing bucket, clamped to the observed ``[min, max]`` range.
    """

    __slots__ = ("name", "count", "total", "min", "max", "buckets")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = 0.0
        # len(BUCKET_BOUNDS) le-buckets plus one overflow bucket.
        self.buckets = [0] * (len(BUCKET_BOUNDS) + 1)

    def observe(self, seconds: float) -> None:
        self.count += 1
        self.total += seconds
        if seconds < self.min:
            self.min = seconds
        if seconds > self.max:
            self.max = seconds
        self.buckets[bisect_left(BUCKET_BOUNDS, seconds)] += 1

    def time(self) -> _TimerContext:
        """``with timer.time(): ...`` observes the block's wall time."""
        return _TimerContext(self)

    def merge(
        self,
        *,
        count: int,
        total: float,
        minimum: float,
        maximum: float,
        buckets: Sequence[int] | Mapping[str, int] | None = None,
    ) -> None:
        """Fold another timer's aggregate in (cross-process registry merge).

        ``buckets`` may be a dense sequence aligned to
        :data:`BUCKET_BOUNDS` (+1 overflow slot) or the sparse
        ``{str(index): count}`` mapping :meth:`MetricsRegistry.summary`
        emits.  Omitting it keeps the merge count-correct but leaves the
        merged observations out of the percentile estimate (pre-histogram
        worker summaries).
        """
        if count <= 0:
            return
        self.count += count
        self.total += total
        if minimum < self.min:
            self.min = minimum
        if maximum > self.max:
            self.max = maximum
        if buckets is None:
            return
        if isinstance(buckets, Mapping):
            for index, value in buckets.items():
                self.buckets[int(index)] += int(value)
        else:
            for index, value in enumerate(buckets):
                self.buckets[index] += int(value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Estimate the ``q``-quantile (``0 < q <= 1``) from the buckets.

        Nearest-rank over the bucket population with linear interpolation
        inside the containing bucket; the estimate is clamped to the
        observed ``[min, max]``, so single-observation timers report that
        observation for every quantile.  Returns :meth:`mean` when no
        bucketed observations exist (empty timer, or one built purely
        from legacy bucket-less merges).
        """
        if not 0.0 < q <= 1.0:
            raise ValueError(f"quantile must be in (0, 1], got {q}")
        population = sum(self.buckets)
        if population == 0:
            return self.mean
        rank = max(1, math.ceil(q * population))
        cumulative = 0
        for index, bucket_count in enumerate(self.buckets):
            if bucket_count == 0:
                continue
            if cumulative + bucket_count >= rank:
                lo = BUCKET_BOUNDS[index - 1] if index > 0 else 0.0
                hi = (
                    BUCKET_BOUNDS[index]
                    if index < len(BUCKET_BOUNDS)
                    else max(self.max, lo)
                )
                fraction = (rank - cumulative) / bucket_count
                estimate = lo + (hi - lo) * fraction
                return min(max(estimate, self.min), self.max)
            cumulative += bucket_count
        return self.max  # pragma: no cover — rank <= population always hits

    @property
    def p50(self) -> float:
        return self.percentile(0.50)

    @property
    def p90(self) -> float:
        return self.percentile(0.90)

    @property
    def p99(self) -> float:
        return self.percentile(0.99)

    def bucket_counts(self) -> dict[str, int]:
        """Sparse ``{str(index): count}`` form of the non-empty buckets."""
        return {str(i): c for i, c in enumerate(self.buckets) if c}


class MetricsRegistry:
    """Get-or-create store of named instruments.

    ``counter``/``gauge``/``timer`` return the existing instrument for a
    name or create it, so call sites never need registration boilerplate.
    """

    def __init__(self) -> None:
        self.counters: dict[str, Counter] = {}
        self.gauges: dict[str, Gauge] = {}
        self.timers: dict[str, Timer] = {}

    def counter(self, name: str) -> Counter:
        c = self.counters.get(name)
        if c is None:
            c = self.counters[name] = Counter(name)
        return c

    def gauge(self, name: str) -> Gauge:
        g = self.gauges.get(name)
        if g is None:
            g = self.gauges[name] = Gauge(name)
        return g

    def timer(self, name: str) -> Timer:
        t = self.timers.get(name)
        if t is None:
            t = self.timers[name] = Timer(name)
        return t

    def reset(self) -> None:
        """Drop every instrument (a fresh run starts from zero)."""
        self.counters.clear()
        self.gauges.clear()
        self.timers.clear()

    def summary(self) -> dict[str, Any]:
        """Nested dict snapshot, JSON-serializable."""
        return {
            "counters": {n: c.value for n, c in sorted(self.counters.items())},
            "gauges": {n: g.value for n, g in sorted(self.gauges.items())},
            "timers": {
                n: {
                    "count": t.count,
                    "total_s": t.total,
                    "mean_s": t.mean,
                    "min_s": t.min if t.count else 0.0,
                    "max_s": t.max,
                    "p50_s": t.p50,
                    "p90_s": t.p90,
                    "p99_s": t.p99,
                    "buckets": t.bucket_counts(),
                }
                for n, t in sorted(self.timers.items())
            },
        }

    def rows(self) -> list[dict[str, object]]:
        """Flat rows for :func:`repro.analysis.tables.format_table`.

        Every row carries the full column set (timers' latency columns
        are blank for counters and gauges) so table formatters that key
        off the first row render the percentiles.
        """
        blank = {
            "total s": "",
            "mean s": "",
            "p50 s": "",
            "p90 s": "",
            "p99 s": "",
            "max s": "",
        }
        out: list[dict[str, object]] = []
        for name, c in sorted(self.counters.items()):
            out.append({"metric": name, "type": "counter", "value": c.value, **blank})
        for name, g in sorted(self.gauges.items()):
            out.append({"metric": name, "type": "gauge", "value": g.value, **blank})
        for name, t in sorted(self.timers.items()):
            out.append(
                {
                    "metric": name,
                    "type": "timer",
                    "value": t.count,
                    "total s": t.total,
                    "mean s": t.mean,
                    "p50 s": t.p50,
                    "p90 s": t.p90,
                    "p99 s": t.p99,
                    "max s": t.max,
                }
            )
        return out
