"""Named counters, gauges, and histogram timers.

A :class:`MetricsRegistry` is the numeric side of observability: the
tracer records *what happened when*, the registry records *how much and
how long*.  Zero dependencies, zero background threads — instruments are
plain objects the hot path mutates directly, so an increment is one
attribute add and the whole layer stays safe to leave compiled into the
simulator.

Naming convention (dots as namespaces, mirroring the span names):
``sim.dispatches``, ``sim.restarts``, ``grid.cell`` … — see
``docs/observability.md`` for the full inventory.
"""

from __future__ import annotations

import math
import time
from typing import Any

__all__ = ["Counter", "Gauge", "Timer", "MetricsRegistry"]


class Counter:
    """A monotonically increasing integer (dispatches, completions, ...)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, delta: int = 1) -> None:
        self.value += delta


class Gauge:
    """A last-write-wins float (queue depth, idle fraction, ...)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class _TimerContext:
    __slots__ = ("_timer", "_start")

    def __init__(self, timer: "Timer") -> None:
        self._timer = timer
        self._start = 0.0

    def __enter__(self) -> "_TimerContext":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        self._timer.observe(time.perf_counter() - self._start)


class Timer:
    """A duration histogram: count / total / min / max of observations."""

    __slots__ = ("name", "count", "total", "min", "max")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = 0.0

    def observe(self, seconds: float) -> None:
        self.count += 1
        self.total += seconds
        if seconds < self.min:
            self.min = seconds
        if seconds > self.max:
            self.max = seconds

    def time(self) -> _TimerContext:
        """``with timer.time(): ...`` observes the block's wall time."""
        return _TimerContext(self)

    def merge(self, *, count: int, total: float, minimum: float, maximum: float) -> None:
        """Fold another timer's aggregate in (cross-process registry merge)."""
        if count <= 0:
            return
        self.count += count
        self.total += total
        if minimum < self.min:
            self.min = minimum
        if maximum > self.max:
            self.max = maximum

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class MetricsRegistry:
    """Get-or-create store of named instruments.

    ``counter``/``gauge``/``timer`` return the existing instrument for a
    name or create it, so call sites never need registration boilerplate.
    """

    def __init__(self) -> None:
        self.counters: dict[str, Counter] = {}
        self.gauges: dict[str, Gauge] = {}
        self.timers: dict[str, Timer] = {}

    def counter(self, name: str) -> Counter:
        c = self.counters.get(name)
        if c is None:
            c = self.counters[name] = Counter(name)
        return c

    def gauge(self, name: str) -> Gauge:
        g = self.gauges.get(name)
        if g is None:
            g = self.gauges[name] = Gauge(name)
        return g

    def timer(self, name: str) -> Timer:
        t = self.timers.get(name)
        if t is None:
            t = self.timers[name] = Timer(name)
        return t

    def reset(self) -> None:
        """Drop every instrument (a fresh run starts from zero)."""
        self.counters.clear()
        self.gauges.clear()
        self.timers.clear()

    def summary(self) -> dict[str, Any]:
        """Nested dict snapshot, JSON-serializable."""
        return {
            "counters": {n: c.value for n, c in sorted(self.counters.items())},
            "gauges": {n: g.value for n, g in sorted(self.gauges.items())},
            "timers": {
                n: {
                    "count": t.count,
                    "total_s": t.total,
                    "mean_s": t.mean,
                    "min_s": t.min if t.count else 0.0,
                    "max_s": t.max,
                }
                for n, t in sorted(self.timers.items())
            },
        }

    def rows(self) -> list[dict[str, object]]:
        """Flat rows for :func:`repro.analysis.tables.format_table`."""
        out: list[dict[str, object]] = []
        for name, c in sorted(self.counters.items()):
            out.append({"metric": name, "type": "counter", "value": c.value})
        for name, g in sorted(self.gauges.items()):
            out.append({"metric": name, "type": "gauge", "value": g.value})
        for name, t in sorted(self.timers.items()):
            out.append(
                {
                    "metric": name,
                    "type": "timer",
                    "value": t.count,
                    "total s": t.total,
                    "mean s": t.mean,
                    "max s": t.max,
                }
            )
        return out
