"""Branch-and-bound exact solver for :math:`P||C_{max}`.

The clairvoyant optimum :math:`C^*_{max}` appears in every competitive
ratio of the paper; to *measure* ratios we must compute it exactly on the
instances where that is feasible.  This solver handles the regime our
benches use (n ≲ 24, m ≲ 8) comfortably.

Search design (standard, but each piece matters for the tests):

* tasks are branched in non-increasing duration order (the most
  constraining first);
* the incumbent starts at the LPT makespan (a ``4/3``-approximation, so
  the gap to close is small);
* pruning uses ``max(load_i + remaining/m-ish bounds)``: a partial
  schedule is cut when ``max(current max load, (sum remaining + sum min
  loads)/m, best lower bound)`` reaches the incumbent;
* symmetry breaking: a task may open at most one currently-empty machine
  (all empty machines are interchangeable);
* dominance: skip machines with identical current load (placing the task
  on either yields isomorphic subtrees).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro._validation import check_machine_count, check_times
from repro.schedulers.lower_bounds import combined_lower_bound
from repro.schedulers.lpt import lpt_schedule

__all__ = ["BnBResult", "branch_and_bound"]


@dataclass(frozen=True)
class BnBResult:
    """Exact solver output.

    Attributes
    ----------
    makespan:
        The optimal makespan :math:`C^*_{max}`.
    assignment:
        An optimal assignment, task-id indexed.
    nodes:
        Number of search nodes explored (exposed for the performance
        benches and for regression-testing the pruning).
    optimal:
        Always ``True`` for this solver; present so the facade in
        :mod:`repro.exact.optimal` can return bound-only results with
        ``optimal=False`` on oversized instances.
    """

    makespan: float
    assignment: tuple[int, ...]
    nodes: int
    optimal: bool = True


def branch_and_bound(
    times: Sequence[float],
    m: int,
    *,
    node_limit: int = 20_000_000,
) -> BnBResult:
    """Solve :math:`P||C_{max}` exactly.

    Raises ``RuntimeError`` if ``node_limit`` is exhausted — callers that
    want graceful degradation should use
    :func:`repro.exact.optimal.optimal_makespan`.
    """
    ts = check_times(times)
    check_machine_count(m)
    n = len(ts)

    if m >= n:
        # One task per machine is optimal.
        return BnBResult(max(ts), tuple(range(n)), nodes=1)
    if m == 1:
        return BnBResult(sum(ts), tuple(0 for _ in ts), nodes=1)

    order = sorted(range(n), key=lambda j: (-ts[j], j))
    sorted_times = [ts[j] for j in order]
    # Suffix sums of remaining work after position pos.
    suffix = [0.0] * (n + 1)
    for pos in range(n - 1, -1, -1):
        suffix[pos] = suffix[pos + 1] + sorted_times[pos]

    lb_root = combined_lower_bound(ts, m)
    lpt_res = lpt_schedule(ts, m)
    best_makespan = lpt_res.makespan
    best_assignment = list(lpt_res.assignment)  # aligned with lpt order
    best_by_task = [0] * n
    for pos, j in enumerate(lpt_res.order):
        best_by_task[j] = lpt_res.assignment[pos]

    if best_makespan <= lb_root * (1.0 + 1e-12):
        return BnBResult(best_makespan, tuple(best_by_task), nodes=1)

    loads = [0.0] * m
    current = [0] * n  # machine per *position* in sorted order
    nodes = 0
    # Small absolute tolerance so equal-to-incumbent branches are pruned.
    tol = 1e-12 * max(1.0, best_makespan)

    def rec(pos: int, max_load: float) -> None:
        nonlocal nodes, best_makespan, best_by_task, tol
        nodes += 1
        if nodes > node_limit:
            raise RuntimeError(
                f"branch_and_bound exceeded node_limit={node_limit} "
                f"(n={n}, m={m}); use optimal_makespan() for graceful fallback"
            )
        if pos == n:
            if max_load < best_makespan - tol:
                best_makespan = max_load
                for p in range(n):
                    best_by_task[order[p]] = current[p]
                tol = 1e-12 * max(1.0, best_makespan)
            return
        # Bound: even perfectly balancing the rest cannot beat this.
        balance_lb = (suffix[pos] + sum(loads)) / m
        if max(max_load, balance_lb, lb_root) >= best_makespan - tol:
            return
        t = sorted_times[pos]
        seen_loads: set[float] = set()
        opened_empty = False
        for i in range(m):
            li = loads[i]
            if li in seen_loads:
                continue  # dominance: identical load ⇒ isomorphic subtree
            if li == 0.0:
                if opened_empty:
                    continue  # symmetry: one empty machine suffices
                opened_empty = True
            seen_loads.add(li)
            new_load = li + t
            if new_load >= best_makespan - tol:
                continue
            loads[i] = new_load
            current[pos] = i
            rec(pos + 1, max(max_load, new_load))
            loads[i] = li

    rec(0, 0.0)
    return BnBResult(best_makespan, tuple(best_by_task), nodes=nodes)
