"""Dynamic-programming exact solvers for :math:`P||C_{max}`.

Two complementary DPs, both exact:

``dp_two_machines``
    For ``m == 2`` the problem is PARTITION: minimize the larger side.
    A subset-sum bitset DP over scaled-integer durations runs in
    ``O(n * S)`` bit-operations (``S`` = scaled total) and handles hundreds
    of tasks, far beyond the branch-and-bound.

``dp_load_vector``
    For general ``m``: enumerate reachable *sorted* load vectors after
    each task (state = non-decreasing tuple of machine loads).  Sorting
    collapses machine symmetry; dominance pruning (a vector dominated
    component-wise by another is dropped) keeps the frontier small for the
    tiny instances the property tests use for cross-validation against the
    branch-and-bound.
"""

from __future__ import annotations

from collections.abc import Sequence
from fractions import Fraction

from repro._validation import check_machine_count, check_times

__all__ = ["dp_two_machines", "dp_load_vector", "scale_to_integers"]


def scale_to_integers(times: Sequence[float], *, max_denominator: int = 10**6) -> list[int]:
    """Scale float durations to exact integers via rational reconstruction.

    Durations produced by our workload generators are floats; to run an
    integer DP soundly we reconstruct each as a fraction (bounded
    denominator), put all on the common denominator, and return integer
    numerators.  Raises if the scale blows past ``10**9`` per task, which
    signals the durations are not "nice" enough for the bitset DP.
    """
    fracs = [Fraction(t).limit_denominator(max_denominator) for t in times]
    denom = 1
    for f in fracs:
        denom = denom * f.denominator // _gcd(denom, f.denominator)
    scaled = [int(f * denom) for f in fracs]
    if any(s > 10**9 for s in scaled):
        raise ValueError(
            "durations do not admit a small common denominator; "
            "use branch_and_bound instead of the integer DP"
        )
    for t, f in zip(times, fracs):
        if abs(float(f) - t) > 1e-9 * max(abs(t), 1.0):
            raise ValueError(
                f"duration {t} is not rational within tolerance; "
                "integer DP would silently change the instance"
            )
    return scaled


def _gcd(a: int, b: int) -> int:
    while b:
        a, b = b, a % b
    return a


def dp_two_machines(times: Sequence[float]) -> float:
    """Exact two-machine makespan via bitset subset-sum.

    The optimal two-machine makespan is ``total - best`` where ``best`` is
    the largest achievable subset sum that is ≤ ``total/2``.
    """
    ts = check_times(times)
    scaled = scale_to_integers(ts)
    total = sum(scaled)
    half = total // 2
    reachable = 1  # bit s set <=> subset sum s is achievable
    for v in scaled:
        reachable |= reachable << v
    mask = (1 << (half + 1)) - 1
    reachable &= mask
    best = reachable.bit_length() - 1
    scale = total / sum(ts)
    return (total - best) / scale


def dp_load_vector(times: Sequence[float], m: int, *, state_limit: int = 2_000_000) -> float:
    """Exact makespan by frontier search over sorted load vectors.

    Works on float durations directly.  States are the sorted tuples of
    machine loads reachable after placing a prefix of the tasks (largest
    first); dominated states are pruned.  ``state_limit`` caps the frontier
    to keep the solver honest about its applicable range.
    """
    ts = check_times(times)
    check_machine_count(m)
    if m == 1:
        return sum(ts)
    if m >= len(ts):
        return max(ts)
    order = sorted(ts, reverse=True)
    frontier: set[tuple[float, ...]] = {tuple([0.0] * m)}
    for t in order:
        nxt: set[tuple[float, ...]] = set()
        for state in frontier:
            prev = None
            for i in range(m):
                if state[i] == prev:
                    continue  # identical load ⇒ same child
                prev = state[i]
                child = sorted(state[:i] + (state[i] + t,) + state[i + 1:])
                nxt.add(tuple(child))
        frontier = _prune_dominated(nxt)
        if len(frontier) > state_limit:
            raise RuntimeError(
                f"dp_load_vector frontier exceeded {state_limit} states "
                f"(n={len(ts)}, m={m}); use branch_and_bound"
            )
    return min(max(state) for state in frontier)


def _prune_dominated(states: set[tuple[float, ...]]) -> set[tuple[float, ...]]:
    """Drop states dominated component-wise by another state.

    Sorted load vectors compare meaningfully component-wise: if
    ``a[i] <= b[i]`` for all ``i`` then any completion of ``b`` is matched
    or beaten by the same completion of ``a``.
    """
    ordered = sorted(states)  # lexicographic; a dominator sorts earlier
    kept: list[tuple[float, ...]] = []
    for s in ordered:
        if not any(all(k[i] <= s[i] for i in range(len(s))) for k in kept):
            kept.append(s)
    return set(kept)
