"""Exact clairvoyant-optimum solvers (B&B, DP) and the graceful facade."""

from repro.exact.bnb import BnBResult, branch_and_bound
from repro.exact.dp import dp_load_vector, dp_two_machines, scale_to_integers
from repro.exact.milp import milp_makespan
from repro.exact.optimal import OptimalValue, optimal_makespan

__all__ = [
    "branch_and_bound",
    "BnBResult",
    "dp_two_machines",
    "dp_load_vector",
    "scale_to_integers",
    "milp_makespan",
    "optimal_makespan",
    "OptimalValue",
]
