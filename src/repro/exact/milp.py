"""Mixed-integer programming solver for :math:`P||C_{max}` (scipy/HiGHS).

An independent exact reference for the branch-and-bound and DP solvers:
the classical assignment formulation

.. math::

    \\min C \\quad \\text{s.t.} \\quad
    \\sum_i x_{ij} = 1 \\;\\forall j, \\qquad
    \\sum_j p_j x_{ij} \\le C \\;\\forall i, \\qquad
    x_{ij} \\in \\{0, 1\\}

solved by HiGHS through :func:`scipy.optimize.milp`.  Slower than the
dedicated branch-and-bound on our instance sizes but implemented from an
entirely different angle, which is exactly what a cross-validation oracle
should be (the test suite asserts all three exact solvers agree).

Variables are laid out ``[x_00, x_01, ..., x_0(n-1), x_10, ..., C]``
(machine-major), with symmetry-breaking cuts ``load_i >= load_{i+1}``
optionally added to help HiGHS prune machine permutations.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np
from scipy.optimize import Bounds, LinearConstraint, milp
from scipy.sparse import lil_matrix

from repro._validation import check_machine_count, check_times
from repro.exact.bnb import BnBResult

__all__ = ["milp_makespan"]


def milp_makespan(
    times: Sequence[float],
    m: int,
    *,
    symmetry_breaking: bool = True,
    time_limit: float = 60.0,
) -> BnBResult:
    """Solve :math:`P||C_{max}` exactly via MILP.

    Returns a :class:`~repro.exact.bnb.BnBResult` (with ``nodes = -1``
    since HiGHS does not expose its node count through scipy).  Raises
    ``RuntimeError`` if the solver fails or times out without proving
    optimality.
    """
    ts = check_times(times)
    check_machine_count(m)
    n = len(ts)

    if m == 1:
        return BnBResult(sum(ts), tuple(0 for _ in ts), nodes=-1)
    if m >= n:
        return BnBResult(max(ts), tuple(range(n)), nodes=-1)

    n_vars = n * m + 1  # x_{ij} machine-major, then C
    c_idx = n * m
    objective = np.zeros(n_vars)
    objective[c_idx] = 1.0

    n_rows = n + m + (m - 1 if symmetry_breaking else 0)
    a = lil_matrix((n_rows, n_vars))
    lb = np.empty(n_rows)
    ub = np.empty(n_rows)
    row = 0
    # Each task on exactly one machine.
    for j in range(n):
        for i in range(m):
            a[row, i * n + j] = 1.0
        lb[row] = 1.0
        ub[row] = 1.0
        row += 1
    # Machine loads below C.
    for i in range(m):
        for j in range(n):
            a[row, i * n + j] = ts[j]
        a[row, c_idx] = -1.0
        lb[row] = -np.inf
        ub[row] = 0.0
        row += 1
    # Symmetry breaking: load_i >= load_{i+1}.
    if symmetry_breaking:
        for i in range(m - 1):
            for j in range(n):
                a[row, i * n + j] = ts[j]
                a[row, (i + 1) * n + j] = -ts[j]
            lb[row] = 0.0
            ub[row] = np.inf
            row += 1

    integrality = np.ones(n_vars)
    integrality[c_idx] = 0.0
    bounds = Bounds(
        lb=np.concatenate([np.zeros(n * m), [0.0]]),
        ub=np.concatenate([np.ones(n * m), [float(sum(ts))]]),
    )
    result = milp(
        objective,
        constraints=LinearConstraint(a.tocsr(), lb, ub),
        integrality=integrality,
        bounds=bounds,
        # HiGHS's default relative MIP gap (1e-4) would let it stop at a
        # provably-near-optimal incumbent; as an exactness oracle we need
        # the true optimum.
        options={"time_limit": time_limit, "mip_rel_gap": 0.0},
    )
    if not result.success or result.status != 0:
        raise RuntimeError(
            f"MILP solver failed (status={result.status}): {result.message}"
        )

    x = result.x[: n * m].reshape(m, n)
    assignment = [int(np.argmax(x[:, j])) for j in range(n)]
    loads = [0.0] * m
    for j, i in enumerate(assignment):
        loads[i] += ts[j]
    return BnBResult(max(loads), tuple(assignment), nodes=-1)
