"""Facade for computing (or soundly bounding) the clairvoyant optimum.

Every measured competitive ratio in this library divides a strategy's
makespan by :math:`C^*_{max}`.  :func:`optimal_makespan` picks the
strongest affordable method:

1. trivial cases (``m == 1``, ``n <= m``) in closed form;
2. the PARTITION bitset DP for ``m == 2`` with nice durations;
3. branch-and-bound while the instance is within ``exact_limit``;
4. the MILP solver (HiGHS) with a short time budget while the instance is
   within ``milp_limit``;
5. otherwise the best combined lower bound, flagged ``optimal=False``.

Dividing by a *lower* bound over-estimates the ratio, so
"measured ratio ≤ theoretical guarantee" checks remain sound even in the
fallback regime; :class:`OptimalValue` carries the flag so reports can say
which regime each number came from.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro._validation import check_machine_count, check_non_negative_int, check_times
from repro.exact.bnb import branch_and_bound
from repro.exact.dp import dp_two_machines
from repro.schedulers.lower_bounds import combined_lower_bound

__all__ = ["OptimalValue", "optimal_makespan"]


@dataclass(frozen=True)
class OptimalValue:
    """The optimum (or a certified lower bound on it).

    ``value`` is :math:`C^*_{max}` exactly when ``optimal`` is True, and a
    lower bound on it otherwise.  ``method`` records how it was obtained
    (``"closed_form"``, ``"partition_dp"``, ``"bnb"``, ``"lower_bound"``).
    """

    value: float
    optimal: bool
    method: str


def optimal_makespan(
    times: Sequence[float],
    m: int,
    *,
    exact_limit: int = 22,
    node_limit: int = 5_000_000,
    milp_limit: int = 0,
    milp_time_limit: float = 5.0,
) -> OptimalValue:
    """Best affordable estimate of the clairvoyant optimum.

    Parameters
    ----------
    times:
        Actual processing times :math:`p_j`.
    m:
        Machine count.
    exact_limit:
        Largest ``n`` for which branch-and-bound is attempted.
    node_limit:
        Node budget handed to the branch-and-bound; if exceeded the result
        degrades to the next method rather than raising.
    milp_limit:
        Largest ``n`` for which the MILP solver is attempted after the
        branch-and-bound regime (``0`` disables — the default, since the
        MILP can spend its full ``milp_time_limit`` on hard instances and
        harness loops prefer the instant lower bound).
    milp_time_limit:
        Wall-clock budget (seconds) for one MILP attempt.
    """
    ts = check_times(times)
    check_machine_count(m)
    check_non_negative_int(exact_limit, "exact_limit")
    check_non_negative_int(milp_limit, "milp_limit")
    n = len(ts)

    if m == 1:
        return OptimalValue(sum(ts), True, "closed_form")
    if n <= m:
        return OptimalValue(max(ts), True, "closed_form")
    if m == 2:
        try:
            return OptimalValue(dp_two_machines(ts), True, "partition_dp")
        except ValueError:
            pass  # durations not nicely rational — fall through to B&B
    if n <= exact_limit:
        try:
            res = branch_and_bound(ts, m, node_limit=node_limit)
            return OptimalValue(res.makespan, True, "bnb")
        except RuntimeError:
            pass
    if n <= milp_limit:
        from repro.exact.milp import milp_makespan

        try:
            res = milp_makespan(ts, m, time_limit=milp_time_limit)
            return OptimalValue(res.makespan, True, "milp")
        except RuntimeError:
            pass
    return OptimalValue(combined_lower_bound(ts, m), False, "lower_bound")
