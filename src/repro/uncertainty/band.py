"""The multiplicative uncertainty band of Eq. (1).

The paper models inaccuracy of processing-time estimates as a known
multiplicative factor :math:`\\alpha`: the actual time of task :math:`j`
lies in :math:`[\\tilde p_j / \\alpha,\\ \\alpha \\tilde p_j]`.  The class
here wraps that band with the small algebra the algorithms and the
adversaries need (clamping, interval conversion, composition).

Two facts from the paper are worth restating because the code relies on
them:

* any *interval* estimate ``[lo, hi]`` can be converted into a point
  estimate with a multiplicative error: take
  :math:`\\tilde p = \\sqrt{lo \\cdot hi}` and
  :math:`\\alpha = \\sqrt{hi / lo}`;
* a throughput (speed) inaccuracy of factor :math:`\\alpha` on the machine
  translates to the same multiplicative band on task durations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro._validation import check_alpha, check_positive_float

__all__ = ["UncertaintyBand", "band_from_interval"]


@dataclass(frozen=True, slots=True)
class UncertaintyBand:
    """A multiplicative band ``[estimate/alpha, estimate*alpha]``.

    ``alpha = 1`` degenerates to certainty (the clairvoyant case); all the
    paper's ratios then collapse to the classical LS/LPT guarantees.
    """

    alpha: float

    def __post_init__(self) -> None:
        check_alpha(self.alpha)

    # -- interval views ------------------------------------------------------
    def low(self, estimate: float) -> float:
        """Smallest admissible actual time for ``estimate``."""
        return check_positive_float(estimate, "estimate") / self.alpha

    def high(self, estimate: float) -> float:
        """Largest admissible actual time for ``estimate``."""
        return check_positive_float(estimate, "estimate") * self.alpha

    def interval(self, estimate: float) -> tuple[float, float]:
        """The closed interval of admissible actual times."""
        e = check_positive_float(estimate, "estimate")
        return (e / self.alpha, e * self.alpha)

    def width_ratio(self) -> float:
        """``high/low`` of any task's interval, i.e. :math:`\\alpha^2`.

        :math:`\\alpha^2` is *the* quantity that appears in every guarantee
        of the paper, because the adversary can move one task up by
        :math:`\\alpha` and another down by :math:`1/\\alpha`.
        """
        return self.alpha * self.alpha

    # -- membership / projection --------------------------------------------
    def contains(self, estimate: float, actual: float, *, rel_tol: float = 1e-9) -> bool:
        """Whether ``actual`` is admissible for ``estimate``."""
        lo, hi = self.interval(estimate)
        return lo * (1.0 - rel_tol) <= actual <= hi * (1.0 + rel_tol)

    def clamp(self, estimate: float, actual: float) -> float:
        """Project ``actual`` onto the admissible interval of ``estimate``."""
        lo, hi = self.interval(estimate)
        return min(max(actual, lo), hi)

    def clamp_factor(self, factor: float) -> float:
        """Project a multiplicative factor onto ``[1/alpha, alpha]``."""
        return min(max(factor, 1.0 / self.alpha), self.alpha)

    # -- composition ----------------------------------------------------------
    def compose(self, other: "UncertaintyBand") -> "UncertaintyBand":
        """Band of a two-stage estimate (errors multiply)."""
        return UncertaintyBand(self.alpha * other.alpha)

    def is_certain(self, *, tol: float = 0.0) -> bool:
        """Whether this band carries no uncertainty (``alpha == 1``)."""
        return self.alpha <= 1.0 + tol


def band_from_interval(lo: float, hi: float) -> tuple[float, UncertaintyBand]:
    """Convert an interval estimate into ``(point_estimate, band)``.

    Given a confidence interval ``[lo, hi]`` for a task's runtime, returns
    the geometric-mean point estimate and the tightest multiplicative band
    containing the interval, per the paper's remark that "any interval of
    confidence of a runtime can be transformed into a value and a
    multiplicative error".
    """
    lo_f = check_positive_float(lo, "lo")
    hi_f = check_positive_float(hi, "hi")
    if hi_f < lo_f:
        raise ValueError(f"interval upper bound must be >= lower bound, got [{lo_f}, {hi_f}]")
    estimate = math.sqrt(lo_f * hi_f)
    alpha = math.sqrt(hi_f / lo_f)
    return estimate, UncertaintyBand(max(alpha, 1.0))
