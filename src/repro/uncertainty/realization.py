"""Realizations: the actual processing times of an instance.

A :class:`Realization` fixes the actual time :math:`p_j` of every task of an
:class:`~repro.core.model.Instance`.  Phase-2 simulation consumes a
realization but only *reveals* each value when the task completes — the
semi-clairvoyant information model of the paper is enforced by the
simulator, not here.

Realizations validate the multiplicative band (Eq. 1) on construction, so an
inadmissible adversary is impossible to express by accident.
"""

from __future__ import annotations

import math
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

from repro._validation import check_positive_float
from repro.core.model import Instance

__all__ = ["Realization", "factors_realization", "truthful_realization"]


@dataclass(frozen=True)
class Realization:
    """Actual processing times for one instance.

    Attributes
    ----------
    instance:
        The instance these actuals belong to.
    actuals:
        ``actuals[j]`` is :math:`p_j`.  Must respect
        :math:`\\tilde p_j/\\alpha \\le p_j \\le \\alpha\\tilde p_j`.
    label:
        Free-form description used in experiment reports
        (e.g. ``"adversarial"``, ``"uniform(seed=3)"``).
    """

    instance: Instance
    actuals: tuple[float, ...]
    label: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        inst = self.instance
        if len(self.actuals) != inst.n:
            raise ValueError(
                f"realization must cover all {inst.n} tasks, got {len(self.actuals)} values"
            )
        for j, p in enumerate(self.actuals):
            check_positive_float(p, f"actuals[{j}]")
            if not inst.tasks[j].admits(p, inst.alpha):
                lo, hi = inst.tasks[j].bounds(inst.alpha)
                raise ValueError(
                    f"actuals[{j}]={p} violates the alpha-band "
                    f"[{lo}, {hi}] of estimate {inst.tasks[j].estimate} "
                    f"(alpha={inst.alpha})"
                )

    # -- accessors -------------------------------------------------------------
    def actual(self, tid: int) -> float:
        """Actual processing time of task ``tid``."""
        return self.actuals[tid]

    def __getitem__(self, tid: int) -> float:
        return self.actuals[tid]

    def __len__(self) -> int:
        return len(self.actuals)

    @property
    def total(self) -> float:
        """:math:`\\sum_j p_j` — the total actual work."""
        return math.fsum(self.actuals)

    @property
    def max(self) -> float:
        """:math:`\\max_j p_j` — a universal makespan lower bound."""
        return max(self.actuals)

    def average_load(self) -> float:
        """:math:`\\sum_j p_j / m` — the average-load makespan lower bound."""
        return self.total / self.instance.m

    def factor(self, tid: int) -> float:
        """The realized multiplier ``p_j / p̃_j`` of task ``tid``."""
        return self.actuals[tid] / self.instance.tasks[tid].estimate

    def factors(self) -> tuple[float, ...]:
        """All realized multipliers, in task order."""
        return tuple(self.factor(j) for j in range(len(self.actuals)))

    # -- derivation --------------------------------------------------------------
    def map_factors(self, fn: Callable[[int, float], float], label: str = "") -> "Realization":
        """A new realization with per-task multipliers ``fn(tid, old_factor)``.

        The returned multipliers are *not* clamped: an out-of-band result
        raises, which is the desired behaviour for catching buggy adversaries.
        """
        inst = self.instance
        actuals = tuple(
            inst.tasks[j].estimate * fn(j, self.factor(j)) for j in range(inst.n)
        )
        return Realization(inst, actuals, label=label or self.label)


def truthful_realization(instance: Instance, label: str = "truthful") -> Realization:
    """The realization where every estimate is exact (:math:`p_j = \\tilde p_j`)."""
    return Realization(instance, instance.estimates, label=label)


def factors_realization(
    instance: Instance,
    factors: Sequence[float],
    label: str = "",
) -> Realization:
    """Build a realization from per-task multiplicative factors.

    ``factors[j]`` must lie in ``[1/alpha, alpha]``; the actual time becomes
    ``estimate[j] * factors[j]``.
    """
    if len(factors) != instance.n:
        raise ValueError(
            f"factors must cover all {instance.n} tasks, got {len(factors)}"
        )
    actuals = tuple(
        instance.tasks[j].estimate * float(factors[j]) for j in range(instance.n)
    )
    return Realization(instance, actuals, label=label)
