"""Stochastic realization models.

The paper's analysis is worst-case, but its empirical companion (our
benches E1/E2) needs random realizations that respect the band.  All
models here draw a multiplicative factor per task inside
``[1/alpha, alpha]`` and are fully deterministic given a seed
(``numpy.random.default_rng``).

Models
------
``uniform_factors``
    Factor uniform on ``[1/alpha, alpha]``.  Skews upward in expectation
    (the interval is asymmetric around 1 in log space for this sampling).
``log_uniform_factors``
    ``exp(U[-ln alpha, +ln alpha])`` — symmetric in log space; the natural
    "neutral" model for multiplicative error.
``lognormal_factors``
    Clipped lognormal: factor ``exp(N(0, sigma_frac * ln alpha))`` clamped
    to the band.  Models mostly-accurate estimates with rare large misses.
``bimodal_extreme_factors``
    Each task independently takes factor ``alpha`` with probability ``p_up``
    else ``1/alpha``.  The distributional cousin of the proofs' adversary,
    which only ever uses the two extreme factors.
``beta_factors``
    ``exp(ln alpha * (2*Beta(a,b) - 1))`` — tunable skew inside the band.
"""

from __future__ import annotations

import numpy as np

from repro._validation import check_fraction, check_positive_float
from repro.core.model import Instance
from repro.uncertainty.realization import Realization, factors_realization

__all__ = [
    "uniform_factors",
    "log_uniform_factors",
    "lognormal_factors",
    "bimodal_extreme_factors",
    "beta_factors",
    "STOCHASTIC_MODELS",
    "sample_realization",
]


def _rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def uniform_factors(instance: Instance, seed: int | np.random.Generator | None = 0) -> Realization:
    """Factors drawn uniformly on ``[1/alpha, alpha]``."""
    rng = _rng(seed)
    a = instance.alpha
    factors = rng.uniform(1.0 / a, a, size=instance.n)
    return factors_realization(instance, factors.tolist(), label="uniform")


def log_uniform_factors(
    instance: Instance, seed: int | np.random.Generator | None = 0
) -> Realization:
    """Factors log-uniform on ``[1/alpha, alpha]`` (symmetric in log space)."""
    rng = _rng(seed)
    log_a = np.log(instance.alpha)
    factors = np.exp(rng.uniform(-log_a, log_a, size=instance.n)) if log_a > 0 else np.ones(
        instance.n
    )
    return factors_realization(instance, factors.tolist(), label="log_uniform")


def lognormal_factors(
    instance: Instance,
    seed: int | np.random.Generator | None = 0,
    *,
    sigma_frac: float = 0.5,
) -> Realization:
    """Clipped lognormal factors.

    ``sigma_frac`` scales the log-standard-deviation relative to
    ``ln alpha``; draws outside the band are clamped to its edges.
    """
    check_positive_float(sigma_frac, "sigma_frac")
    rng = _rng(seed)
    a = instance.alpha
    log_a = np.log(a)
    if log_a == 0.0:
        factors = np.ones(instance.n)
    else:
        factors = np.exp(rng.normal(0.0, sigma_frac * log_a, size=instance.n))
        factors = np.clip(factors, 1.0 / a, a)
    return factors_realization(instance, factors.tolist(), label="lognormal")


def bimodal_extreme_factors(
    instance: Instance,
    seed: int | np.random.Generator | None = 0,
    *,
    p_up: float = 0.5,
) -> Realization:
    """Each factor is ``alpha`` w.p. ``p_up`` else ``1/alpha``.

    This is the stochastic analogue of the adversary in Theorem 1, which
    only ever uses the extreme factors; it tends to produce the largest
    empirical ratios among the random models.
    """
    check_fraction(p_up, "p_up")
    rng = _rng(seed)
    a = instance.alpha
    ups = rng.random(instance.n) < p_up
    factors = np.where(ups, a, 1.0 / a)
    return factors_realization(instance, factors.tolist(), label="bimodal_extreme")


def beta_factors(
    instance: Instance,
    seed: int | np.random.Generator | None = 0,
    *,
    a: float = 2.0,
    b: float = 2.0,
) -> Realization:
    """Factors ``exp(ln alpha * (2*Beta(a,b) - 1))`` — tunable skew.

    ``a = b`` is symmetric; ``a > b`` skews toward overruns
    (factors above 1), ``a < b`` toward underruns.
    """
    check_positive_float(a, "a")
    check_positive_float(b, "b")
    rng = _rng(seed)
    log_alpha = np.log(instance.alpha)
    u = rng.beta(a, b, size=instance.n)
    factors = np.exp(log_alpha * (2.0 * u - 1.0))
    return factors_realization(instance, factors.tolist(), label=f"beta({a},{b})")


#: Registry of named stochastic models with default parameters, used by the
#: experiment harness to sweep realization models by name.
STOCHASTIC_MODELS = {
    "uniform": uniform_factors,
    "log_uniform": log_uniform_factors,
    "lognormal": lognormal_factors,
    "bimodal_extreme": bimodal_extreme_factors,
    "beta": beta_factors,
}


def sample_realization(
    instance: Instance,
    model: str,
    seed: int | np.random.Generator | None = 0,
    **kwargs: float,
) -> Realization:
    """Draw a realization from a named stochastic model.

    Parameters
    ----------
    model:
        One of :data:`STOCHASTIC_MODELS` (e.g. ``"log_uniform"``).
    seed:
        Seed or generator; identical seeds give identical realizations.
    kwargs:
        Model-specific parameters (e.g. ``p_up`` for ``bimodal_extreme``).
    """
    try:
        fn = STOCHASTIC_MODELS[model]
    except KeyError:
        raise ValueError(
            f"unknown stochastic model {model!r}; known: {sorted(STOCHASTIC_MODELS)}"
        ) from None
    return fn(instance, seed, **kwargs)
