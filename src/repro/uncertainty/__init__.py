"""Uncertainty models: the α-band, realizations, stochastic and correlated errors."""

from repro.uncertainty.band import UncertaintyBand, band_from_interval
from repro.uncertainty.correlated import (
    clustered_factors,
    size_correlated_factors,
    trending_factors,
)
from repro.uncertainty.realization import (
    Realization,
    factors_realization,
    truthful_realization,
)
from repro.uncertainty.stochastic import (
    STOCHASTIC_MODELS,
    beta_factors,
    bimodal_extreme_factors,
    log_uniform_factors,
    lognormal_factors,
    sample_realization,
    uniform_factors,
)

__all__ = [
    "UncertaintyBand",
    "band_from_interval",
    "Realization",
    "truthful_realization",
    "factors_realization",
    "uniform_factors",
    "log_uniform_factors",
    "lognormal_factors",
    "bimodal_extreme_factors",
    "beta_factors",
    "sample_realization",
    "STOCHASTIC_MODELS",
    "clustered_factors",
    "trending_factors",
    "size_correlated_factors",
]
