"""Correlated realization models.

The independent per-task models in :mod:`repro.uncertainty.stochastic`
assume every estimate errs independently.  In real systems errors are often
*shared*: a slow machine inflates every task it runs, a mis-modelled kernel
inflates every task of that kind.  These models stress the strategies in a
structured way that the worst-case analysis does not distinguish but that
matters empirically (bench E1 sweeps them).

Note that a *machine*-correlated model can only be expressed relative to an
assignment: the same task would have run faster elsewhere.  We express it
as a factor per (task, machine-class) where the class is derived from the
task id hash, which preserves the paper's model (the realization is fixed
before Phase 2 observes anything) while still producing clustered errors.
"""

from __future__ import annotations

import numpy as np

from repro._validation import check_fraction, check_positive_int
from repro.core.model import Instance
from repro.uncertainty.realization import Realization, factors_realization

__all__ = [
    "clustered_factors",
    "trending_factors",
    "size_correlated_factors",
]


def _rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def clustered_factors(
    instance: Instance,
    seed: int | np.random.Generator | None = 0,
    *,
    clusters: int = 4,
) -> Realization:
    """Tasks fall into ``clusters`` kinds; each kind shares one factor.

    Models "the estimate model was wrong for this *kind* of task" (e.g. all
    sparse-matrix-vector tasks were underestimated).  The shared factor is
    drawn log-uniform in the band; cluster membership is round-robin on
    task id so regenerating with a different n keeps memberships stable.
    """
    check_positive_int(clusters, "clusters")
    rng = _rng(seed)
    a = instance.alpha
    log_a = np.log(a)
    cluster_factor = (
        np.exp(rng.uniform(-log_a, log_a, size=clusters)) if log_a > 0 else np.ones(clusters)
    )
    factors = [float(cluster_factor[j % clusters]) for j in range(instance.n)]
    return factors_realization(instance, factors, label=f"clustered({clusters})")


def trending_factors(
    instance: Instance,
    seed: int | np.random.Generator | None = 0,
    *,
    drift: float = 1.0,
) -> Realization:
    """Factors drift monotonically from ``1/alpha``-ish to ``alpha``-ish.

    Models estimation error that grows over the batch (e.g. estimates were
    calibrated on the first tasks).  ``drift`` in ``[0, 1]`` scales how far
    the ramp reaches toward the band edges; small log-uniform noise is
    superimposed and the result clamped to the band.
    """
    check_fraction(drift, "drift")
    rng = _rng(seed)
    a = instance.alpha
    log_a = np.log(a)
    n = instance.n
    if log_a == 0.0:
        return factors_realization(instance, [1.0] * n, label="trending")
    ramp = np.linspace(-drift * log_a, drift * log_a, num=n)
    noise = rng.uniform(-0.1 * log_a, 0.1 * log_a, size=n)
    factors = np.exp(np.clip(ramp + noise, -log_a, log_a))
    return factors_realization(instance, factors.tolist(), label="trending")


def size_correlated_factors(
    instance: Instance,
    seed: int | np.random.Generator | None = 0,
    *,
    direction: int = +1,
) -> Realization:
    """Error correlates with estimated size: big tasks err most.

    ``direction=+1`` inflates the biggest tasks toward ``alpha`` (big tasks
    underestimated — the classic tail-at-risk case for LPT-style
    placements); ``direction=-1`` deflates them.  Factors interpolate in
    log space between 1 (smallest task) and the band edge (largest task),
    with small noise.
    """
    if direction not in (+1, -1):
        raise ValueError(f"direction must be +1 or -1, got {direction}")
    rng = _rng(seed)
    a = instance.alpha
    log_a = np.log(a)
    ests = np.asarray(instance.estimates)
    if log_a == 0.0 or np.ptp(ests) == 0.0:
        rel = np.full(instance.n, 0.5)
    else:
        rel = (ests - ests.min()) / np.ptp(ests)
    target = direction * rel * log_a
    noise = rng.uniform(-0.05 * log_a, 0.05 * log_a, size=instance.n) if log_a > 0 else 0.0
    factors = np.exp(np.clip(target + noise, -log_a, log_a))
    return factors_realization(
        instance, np.atleast_1d(factors).tolist(), label=f"size_correlated({direction:+d})"
    )
