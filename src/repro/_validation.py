"""Shared argument-validation helpers.

Every public entry point of :mod:`repro` validates its arguments eagerly so
that errors surface at the API boundary with a clear message instead of deep
inside a simulation loop.  The helpers here centralize the checks (positive
counts, probability-like floats, uncertainty factors, ...) so the rest of
the code base stays terse and the error messages stay uniform.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence
from typing import Any

__all__ = [
    "check_positive_int",
    "check_non_negative_int",
    "check_positive_float",
    "check_non_negative_float",
    "check_alpha",
    "check_fraction",
    "check_delta",
    "check_machine_count",
    "check_group_count",
    "check_times",
    "check_sizes",
    "check_finite",
    "check_in_range",
]


def check_finite(value: float, name: str) -> float:
    """Return ``value`` as a float, rejecting NaN and infinities."""
    out = float(value)
    if math.isnan(out) or math.isinf(out):
        raise ValueError(f"{name} must be finite, got {value!r}")
    return out


def _coerce_int(value: Any, name: str) -> int:
    """Coerce to int, accepting numpy integers via ``__index__`` but not bools."""
    if isinstance(value, bool):
        raise TypeError(f"{name} must be an integer, got bool")
    if not isinstance(value, int):
        try:
            value = value.__index__()
        except AttributeError:
            raise TypeError(f"{name} must be an integer, got {type(value).__name__}") from None
    return int(value)


def check_positive_int(value: Any, name: str) -> int:
    """Return ``value`` as an int, requiring it to be >= 1."""
    out = _coerce_int(value, name)
    if out < 1:
        raise ValueError(f"{name} must be >= 1, got {out}")
    return out


def check_non_negative_int(value: Any, name: str) -> int:
    """Return ``value`` as an int, requiring it to be >= 0."""
    out = _coerce_int(value, name)
    if out < 0:
        raise ValueError(f"{name} must be >= 0, got {out}")
    return out


def check_positive_float(value: Any, name: str) -> float:
    """Return ``value`` as a float, requiring it to be finite and > 0."""
    out = check_finite(value, name)
    if out <= 0.0:
        raise ValueError(f"{name} must be > 0, got {out}")
    return out


def check_non_negative_float(value: Any, name: str) -> float:
    """Return ``value`` as a float, requiring it to be finite and >= 0."""
    out = check_finite(value, name)
    if out < 0.0:
        raise ValueError(f"{name} must be >= 0, got {out}")
    return out


def check_alpha(alpha: Any) -> float:
    """Validate an uncertainty factor.

    The paper's model (Eq. 1) requires ``p̃/α <= p <= α·p̃`` which only makes
    sense for ``α >= 1``; ``α = 1`` is the certain (clairvoyant) special
    case.
    """
    out = check_finite(alpha, "alpha")
    if out < 1.0:
        raise ValueError(f"alpha must be >= 1 (alpha=1 means no uncertainty), got {out}")
    return out


def check_fraction(value: Any, name: str) -> float:
    """Return ``value`` as a float in the closed interval [0, 1]."""
    out = check_finite(value, name)
    if not 0.0 <= out <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {out}")
    return out


def check_delta(delta: Any) -> float:
    """Validate the Δ threshold used by the memory-aware algorithms.

    Δ trades makespan guarantee against memory guarantee; both families of
    bounds ((1+Δ)·α²ρ₁ and (1+1/Δ)·ρ₂) require Δ > 0.
    """
    out = check_finite(delta, "delta")
    if out <= 0.0:
        raise ValueError(f"delta must be > 0, got {out}")
    return out


def check_machine_count(m: Any) -> int:
    """Validate a machine count (m >= 1)."""
    return check_positive_int(m, "m (machine count)")


def check_group_count(k: Any, m: int) -> int:
    """Validate a group count for the LS-Group strategy.

    The paper assumes ``k`` divides ``m`` so every group has exactly ``m/k``
    machines; we enforce the same for the faithful strategy (a relaxed
    variant lives in :mod:`repro.core.strategies.ls_group`).
    """
    kk = check_positive_int(k, "k (group count)")
    if kk > m:
        raise ValueError(f"k (group count) must be <= m, got k={kk} > m={m}")
    if m % kk != 0:
        raise ValueError(
            f"k must divide m for equal-size groups (paper assumption), got m={m}, k={kk}"
        )
    return kk


def check_times(times: Iterable[Any], name: str = "processing times") -> list[float]:
    """Validate a sequence of processing times: non-empty, finite, > 0."""
    out = [check_finite(t, f"{name}[{i}]") for i, t in enumerate(times)]
    if not out:
        raise ValueError(f"{name} must be non-empty")
    for i, t in enumerate(out):
        if t <= 0.0:
            raise ValueError(f"{name}[{i}] must be > 0, got {t}")
    return out


def check_sizes(sizes: Sequence[Any], n: int, name: str = "sizes") -> list[float]:
    """Validate a sequence of task sizes: length ``n``, finite, >= 0."""
    out = [check_finite(s, f"{name}[{i}]") for i, s in enumerate(sizes)]
    if len(out) != n:
        raise ValueError(f"{name} must have length {n}, got {len(out)}")
    for i, s in enumerate(out):
        if s < 0.0:
            raise ValueError(f"{name}[{i}] must be >= 0, got {s}")
    return out


def check_in_range(value: Any, lo: float, hi: float, name: str) -> float:
    """Return ``value`` as a float, requiring ``lo <= value <= hi``."""
    out = check_finite(value, name)
    if not lo <= out <= hi:
        raise ValueError(f"{name} must be in [{lo}, {hi}], got {out}")
    return out
