"""Capability flags: what a registered strategy can structurally handle.

The paper's strategies differ not only in guarantees but in which model
*extensions* their Phase-2 policies understand: a pinned-aware dispatch
that never consults ``SchedulerView.is_released`` cannot be trusted under
release times, and a policy without abort-epoch handling cannot be trusted
under fault injection.  :class:`Capabilities` states those facts
declaratively on each registry entry, and the simulation engine turns
them into hard :class:`CapabilityError`\\ s instead of silent misbehavior
(see ``simulate(capabilities=...)``).

``replication_factor`` is a descriptive tag (``"none"``, ``"full"``,
``"group"``, ``"selective"``, ``"budgeted"``, ``"inherited"``) used by the
catalog and the capability queries — the *measured* replication of a run
still comes from the placement itself.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

__all__ = ["Capabilities", "CapabilityError"]


class CapabilityError(TypeError):
    """A strategy was asked to run under a model feature it does not support.

    Raised by :func:`repro.simulation.engine.simulate` (and the harness
    entry points that forward to it) when the declared
    :class:`Capabilities` of the strategy exclude a requested feature —
    e.g. a fault-incapable policy under a
    :class:`~repro.faults.plan.FaultPlan`.  A typed error, so harness
    layers that convert :class:`~repro.simulation.engine.SimulationError`
    into "did not survive" records never swallow a plain misuse.
    """


@dataclass(frozen=True)
class Capabilities:
    """Declared abilities of one strategy family.

    Attributes
    ----------
    supports_faults:
        The Phase-2 policy stays correct under the fault extension
        (task aborts / machine recoveries / degraded speeds): it either
        tracks ``SchedulerView.abort_epoch`` or re-scans non-destructively
        every call.  This is about *policy correctness*, not about
        surviving data loss — an unreplicated placement may still die
        when its machine crashes, which is the measured availability
        tradeoff, not a capability violation.
    supports_releases:
        The policy consults ``SchedulerView.is_released`` and therefore
        behaves under non-zero release times.
    supports_hetero:
        Phase 1 can exploit a per-task uncertainty profile
        (:class:`~repro.hetero.uncertainty.HeteroUncertainty`).
    memory_aware:
        Phase 1 reads task *sizes* (the Section-6 memory model), not just
        time estimates.
    supports_batch:
        The fault-free run of this strategy compiles to one of the batch
        backend's plan tiers (:mod:`repro.simulation.batch`): a fully
        vectorized completion sweep for partition-structured fixed
        orders, a phase-split sweep for barrier-free ABO, or a
        structured replay for overlapping ranges and pinned-aware
        policies — all bit-identical to the event kernel.  The flag is a
        *claim*, not a bypass: ``build_plan`` re-verifies the structure
        and raises ``BatchUnsupported`` for configurations it cannot
        replay (e.g. the ABO barrier ablation), which fall back to the
        per-event :class:`~repro.simulation.kernel.EventKernel`.
    online_placement:
        Phase 1 is greedy least-estimated-load assignment over an
        equal-group machine partition, so the service daemon
        (:mod:`repro.service.placement`) can run it *incrementally* in
        arrival order and reproduce the offline placement bit for bit.
        Strictly narrower than ``supports_batch``: many batchable
        placements (memory-balanced pinning, selective replication,
        budgeted caps) depend on seeing the whole task set and cannot be
        kept online.
    replication_factor:
        Descriptive placement shape tag for catalogs and queries.
    """

    supports_faults: bool = True
    supports_releases: bool = True
    supports_hetero: bool = False
    memory_aware: bool = False
    supports_batch: bool = False
    online_placement: bool = False
    replication_factor: str = "none"

    def as_dict(self) -> dict[str, object]:
        """JSON-ready form for manifests and the catalog generator."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def flags(self) -> tuple[str, ...]:
        """Names of the boolean capabilities that are set, declaration order."""
        return tuple(
            f.name
            for f in fields(self)
            if f.type == "bool" and getattr(self, f.name)
        )
