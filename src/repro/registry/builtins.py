"""Load (import) every built-in strategy family so its entries register.

The registry core imports nothing from the families — *they* decorate
themselves into it — so something must import the family modules before
the first query.  The public API in :mod:`repro.registry` calls
:func:`load` lazily on first use, which keeps ``import repro.registry``
cycle-free and cheap while guaranteeing a fully-populated table by the
time anyone parses a spec.

Import order here is deterministic and fixed, which (together with the
explicit :class:`~repro.registry.entry.SweepRule` orders) keeps
``strategy_names`` output stable no matter which module a process
happened to import first.
"""

from __future__ import annotations

_loaded = False


def load() -> None:
    """Import all built-in families exactly once (reentrancy-safe)."""
    global _loaded
    if _loaded:
        return
    _loaded = True  # set first: family imports may themselves touch the API
    import repro.adaptive.refinement  # noqa: F401
    import repro.core.strategies  # noqa: F401
    import repro.hetero.strategies  # noqa: F401
    import repro.memory.abo  # noqa: F401
    import repro.memory.capped  # noqa: F401
    import repro.memory.sabo  # noqa: F401
    import repro.robust.placement  # noqa: F401
    import repro.schedulers.baselines  # noqa: F401
