"""Unified strategy-plugin registry: typed specs, capabilities, sweeps.

Every strategy family in the reproduction — the paper's core strategies,
the heterogeneous/memory/robust/adaptive extensions and the scheduler
baselines — registers itself here with a typed parameter schema and a set
of :class:`Capabilities`.  From that single declaration the package
derives:

* :func:`make_strategy` — spec-string parsing for *all* families (the
  regex parser it replaces knew only ``core/strategies``);
* :func:`describe_strategy` / :func:`canonical_spec` — canonical spec
  round-tripping (``parse(spec) -> strategy -> describe(strategy)``),
  which the cell cache fingerprints so ``selective[0.50]`` and
  ``selective[0.5]`` share an entry;
* :func:`capabilities_of` / :func:`select_strategies` — capability
  queries the engine enforces structurally (``CapabilityError``) and the
  CLI exposes (``repro strategies``);
* :func:`strategy_names` / :func:`full_sweep` — the Figure-3 sweep
  enumeration, now driven by per-entry :class:`SweepRule`\\ s;
* the generated ``docs/strategies.md`` catalog and the registry-driven
  ``unknown strategy spec`` help text.

The old ``repro.core.strategies.registry`` API remains as thin shims over
these functions.  Registration is decorator-driven::

    @register_strategy(
        "ls_group",
        params=(Int("k", ge=1),),
        capabilities=Capabilities(replication_factor="group"),
        family="core",
        theorem="Theorem 4",
    )
    class LSGroup(TwoPhaseStrategy): ...

Built-in families load lazily on first query, so importing this package
never drags the whole strategy tree in (and cannot cycle).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.registry import builtins as _builtins
from repro.registry import entry as _entry
from repro.registry.capabilities import Capabilities, CapabilityError
from repro.registry.entry import (
    StrategyEntry,
    SweepRule,
    UnrepresentableStrategy,
    register_strategy,
)
from repro.registry.params import REQUIRED, Choice, Flag, Float, Int, ParamSpec, StrategyRef

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.strategy import TwoPhaseStrategy

__all__ = [
    # registration
    "register_strategy",
    "StrategyEntry",
    "SweepRule",
    "Capabilities",
    "CapabilityError",
    "UnrepresentableStrategy",
    # param schema types
    "ParamSpec",
    "Int",
    "Float",
    "Choice",
    "Flag",
    "StrategyRef",
    "REQUIRED",
    # queries
    "make_strategy",
    "describe_strategy",
    "try_describe_strategy",
    "canonical_spec",
    "strategy_entries",
    "get_entry",
    "entry_for",
    "capabilities_of",
    "select_strategies",
    "strategy_names",
    "full_sweep",
    "spec_help",
]


def make_strategy(spec: str) -> "TwoPhaseStrategy":
    """Build any registered strategy from its spec string.

    Accepts every historical form (``"lpt_no_choice"``,
    ``"ls_group[k=3]"``, ``"selective[0.4,work]"`` ...) plus the
    previously spec-less families (``"sabo[delta=0.5]"``,
    ``"risk_aware[0.3]"``, ``"baseline[round_robin]"``,
    ``"refined[ls_group[k=3],eta=0.5]"`` ...).  Unknown or malformed
    specs raise ``ValueError`` starting with ``unknown strategy spec``
    and listing the registry-generated accepted forms.
    """
    _builtins.load()
    return _entry.build(spec)


def describe_strategy(strategy: Any) -> str:
    """Canonical spec of a strategy instance (raises if unrepresentable)."""
    _builtins.load()
    return _entry.describe(strategy)


def try_describe_strategy(strategy: Any) -> str | None:
    """:func:`describe_strategy`, or ``None`` when no spec can express it."""
    _builtins.load()
    return _entry.try_describe(strategy)


def canonical_spec(spec: str) -> str:
    """Canonicalize a spec string (``"selective[0.50]" -> "selective[0.5,count]"``)."""
    _builtins.load()
    return _entry.canonical(spec)


def strategy_entries() -> list[StrategyEntry]:
    """Every registered entry, stable order."""
    _builtins.load()
    return _entry.entries()


def get_entry(name: str) -> StrategyEntry:
    """Entry for a spec name (``KeyError`` when unknown)."""
    _builtins.load()
    return _entry.get_entry(name)


def entry_for(strategy_or_cls: Any) -> StrategyEntry | None:
    """Entry registered for an instance's exact class, or ``None``."""
    _builtins.load()
    return _entry.entry_for(strategy_or_cls)


def capabilities_of(strategy: Any) -> Capabilities | None:
    """Declared capabilities of an instance (``None`` if unregistered).

    Entries may specialize per instance (``refined[...]`` inherits its
    base strategy's flags); plain entries return their static set.
    """
    entry = entry_for(strategy)
    if entry is None:
        return None
    if entry.instance_capabilities is not None and not isinstance(strategy, type):
        return entry.instance_capabilities(strategy)
    return entry.capabilities


def select_strategies(
    *,
    supports_faults: bool | None = None,
    supports_releases: bool | None = None,
    supports_hetero: bool | None = None,
    memory_aware: bool | None = None,
    replication_factor: str | None = None,
    family: str | None = None,
) -> list[StrategyEntry]:
    """Capability query: entries matching every given filter (``None`` = any)."""
    selected = []
    for entry in strategy_entries():
        caps = entry.capabilities
        if supports_faults is not None and caps.supports_faults != supports_faults:
            continue
        if supports_releases is not None and caps.supports_releases != supports_releases:
            continue
        if supports_hetero is not None and caps.supports_hetero != supports_hetero:
            continue
        if memory_aware is not None and caps.memory_aware != memory_aware:
            continue
        if (
            replication_factor is not None
            and caps.replication_factor != replication_factor
        ):
            continue
        if family is not None and entry.family != family:
            continue
        selected.append(entry)
    return selected


def strategy_names(m: int, *, include_ablation: bool = False) -> list[str]:
    """The Figure-3 sweep specs for ``m`` machines, via the sweep rules.

    Entries without a :class:`SweepRule` (the extension families) do not
    appear — the sweep reproduces the paper's Figure 3, not the whole
    catalog.  Order follows each rule's declared ``order``, so output is
    independent of import order.  See ``docs/strategies.md`` for the
    intentional endpoint overlaps in the ablation sweep
    (``lpt_group[k=1]`` ≡ ``lpt_no_restriction``, ``lpt_group[k=m]`` ≡
    ``lpt_no_choice``).
    """
    ruled = sorted(
        (e for e in strategy_entries() if e.sweep is not None),
        key=lambda e: e.sweep.order,
    )
    names: list[str] = []
    for entry in ruled:
        if entry.sweep.ablation and not include_ablation:
            continue
        names.extend(entry.sweep.enumerate(m))
    return names


def full_sweep(m: int, *, include_ablation: bool = False) -> list["TwoPhaseStrategy"]:
    """Instantiate every sweep strategy applicable to ``m`` machines."""
    return [
        make_strategy(s) for s in strategy_names(m, include_ablation=include_ablation)
    ]


def spec_help() -> str:
    """Registry-generated accepted-forms list for error messages and docs."""
    _builtins.load()
    return _entry.spec_help()
