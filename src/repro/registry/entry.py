"""The strategy registry proper: entries, registration, parse/describe.

One insertion-ordered table maps spec names to :class:`StrategyEntry`
records.  Family modules register their classes with the
:func:`register_strategy` decorator; the registry derives from each entry

* the **parser** (``parse``/``build``) for that family's spec strings,
* the **canonical renderer** (``describe``/``canonical``) that
  round-trips ``parse(spec) -> strategy -> describe(strategy)``,
* the **generated help** listing every accepted spec form, and
* the **sweep enumeration** behind ``strategy_names``/``full_sweep``.

This module deliberately imports nothing from the strategy families —
they import *it* — so the registry can sit below every layer that names a
strategy.  Loading the built-in families is the caller's concern (see
:mod:`repro.registry.builtins`, triggered lazily by the public API in
:mod:`repro.registry`).
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.registry.capabilities import Capabilities
from repro.registry.params import REQUIRED, Flag, ParamSpec

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from repro.core.strategy import TwoPhaseStrategy

__all__ = [
    "StrategyEntry",
    "SweepRule",
    "UnrepresentableStrategy",
    "register_strategy",
    "entries",
    "get_entry",
    "entry_for",
    "parse",
    "build",
    "describe",
    "try_describe",
    "canonical",
    "split_spec",
    "spec_help",
    "unknown_spec_error",
]


class UnrepresentableStrategy(LookupError):
    """The strategy instance carries state its spec grammar cannot express.

    Raised by :func:`describe` when an entry's extractor declines —
    e.g. a :class:`~repro.hetero.strategies.RiskAwareReplication` built
    around an explicit per-task uncertainty profile.  Callers that only
    *prefer* canonical specs (the cell cache) catch this and fall back to
    their legacy identity key.
    """


@dataclass(frozen=True)
class SweepRule:
    """How (and whether) an entry appears in the Figure-3 strategy sweep.

    ``order`` fixes the position among sweep entries (registration order
    must not matter); ``enumerate`` maps a machine count ``m`` to the spec
    strings to run; ``ablation`` gates the entry behind
    ``include_ablation=True``.
    """

    order: int
    enumerate: Callable[[int], list[str]]
    ablation: bool = False


@dataclass(frozen=True)
class StrategyEntry:
    """Everything the registry knows about one strategy family.

    ``builder`` (default: the class itself) receives the parsed parameter
    values keyed by :attr:`ParamSpec.attr`; ``extract`` (default:
    per-parameter ``getattr`` on :attr:`ParamSpec.attr`) recovers those
    values from an instance for :func:`describe`;
    ``instance_capabilities`` optionally specializes the static
    :attr:`capabilities` per instance (delegating wrappers).
    """

    name: str
    cls: type
    params: tuple[ParamSpec, ...]
    capabilities: Capabilities
    family: str
    summary: str
    theorem: str | None = None
    builder: Callable[..., Any] | None = None
    extract: Callable[[Any], dict[str, Any]] | None = None
    instance_capabilities: Callable[[Any], Capabilities] | None = None
    sweep: SweepRule | None = None

    # -- spec rendering ----------------------------------------------------
    def render(self, values: dict[str, Any]) -> str:
        """The canonical spec for parameter ``values`` (keyed by spec key)."""
        parts: list[str] = []
        for param in self.params:
            value = values.get(param.key, param.default)
            if isinstance(param, Flag) and not value:
                continue
            if param.omit_default and not param.required and value == param.default:
                continue
            parts.append(param.render(value))
        return f"{self.name}[{','.join(parts)}]" if parts else self.name

    def template(self) -> str:
        """Accepted-form template for the generated help text."""
        parts = [p.template() for p in self.params]
        return f"{self.name}[{','.join(parts)}]" if parts else self.name

    def values_of(self, strategy: Any) -> dict[str, Any]:
        """Recover the spec parameter values from a built instance."""
        if self.extract is not None:
            return self.extract(strategy)
        return {p.key: getattr(strategy, p.attr) for p in self.params}

    def construct(self, values: dict[str, Any]) -> Any:
        """Instantiate the strategy from parsed values (keyed by spec key)."""
        kwargs = {}
        for param in self.params:
            value = values.get(param.key, param.default)
            if value is REQUIRED:  # pragma: no cover - guarded by parse
                raise ValueError(f"{param.key} is required")
            kwargs[param.attr] = value
        factory = self.builder if self.builder is not None else self.cls
        return factory(**kwargs)

#: name -> entry, in registration order (builtins load deterministically).
_ENTRIES: dict[str, StrategyEntry] = {}
#: exact class -> entry, for describe()/capability lookups.
_BY_CLASS: dict[type, StrategyEntry] = {}


def register_strategy(
    name: str,
    *,
    params: Sequence[ParamSpec] = (),
    capabilities: Capabilities = Capabilities(),
    family: str,
    theorem: str | None = None,
    builder: Callable[..., Any] | None = None,
    extract: Callable[[Any], dict[str, Any]] | None = None,
    instance_capabilities: Callable[[Any], Capabilities] | None = None,
    sweep: SweepRule | None = None,
) -> Callable[[type], type]:
    """Class decorator: declare a strategy family to the registry.

    The decorated class is returned unchanged (plus a
    ``__registry_name__`` marker the completeness check uses).  Duplicate
    names raise immediately — two families must never contest a spec.
    """

    def _register(cls: type) -> type:
        if name in _ENTRIES:
            raise ValueError(
                f"strategy name {name!r} already registered by "
                f"{_ENTRIES[name].cls.__qualname__}"
            )
        doc = (cls.__doc__ or "").strip().splitlines()
        entry = StrategyEntry(
            name=name,
            cls=cls,
            params=tuple(params),
            capabilities=capabilities,
            family=family,
            summary=doc[0] if doc else "",
            theorem=theorem,
            builder=builder,
            extract=extract,
            instance_capabilities=instance_capabilities,
            sweep=sweep,
        )
        _ENTRIES[name] = entry
        _BY_CLASS[cls] = entry
        cls.__registry_name__ = name
        return cls

    return _register


def entries() -> list[StrategyEntry]:
    """All registered entries, registration order."""
    return list(_ENTRIES.values())


def get_entry(name: str) -> StrategyEntry:
    """Entry for spec name ``name`` (raises ``KeyError`` when unknown)."""
    return _ENTRIES[name]


def entry_for(strategy_or_cls: Any) -> StrategyEntry | None:
    """Entry registered for an instance's exact class, or ``None``.

    Exact-type lookup on purpose: ``LPTGroup`` subclasses ``LSGroup`` but
    owns its own entry, and an *unregistered* subclass must not silently
    inherit its parent's spec.
    """
    cls = strategy_or_cls if isinstance(strategy_or_cls, type) else type(strategy_or_cls)
    return _BY_CLASS.get(cls)


# -- spec parsing ----------------------------------------------------------


def split_spec(spec: str) -> tuple[str, list[str]]:
    """Split ``name[a,b,...]`` into ``(name, args)``, depth-aware.

    Commas only separate at bracket depth 0, so nested specs like
    ``refined[ls_group[k=3],eta=0.5]`` keep their inner arguments intact.
    Malformed bracketing raises ``ValueError``.
    """
    if "[" not in spec:
        if "]" in spec:
            raise ValueError("unbalanced ']'")
        return spec, []
    open_at = spec.index("[")
    if not spec.endswith("]"):
        raise ValueError("expected spec to end with ']'")
    name, body = spec[:open_at], spec[open_at + 1 : -1]
    args: list[str] = []
    depth = 0
    current: list[str] = []
    for ch in body:
        if ch == "[":
            depth += 1
        elif ch == "]":
            depth -= 1
            if depth < 0:
                raise ValueError("unbalanced ']'")
        if ch == "," and depth == 0:
            args.append("".join(current))
            current = []
        else:
            current.append(ch)
    if depth != 0:
        raise ValueError("unbalanced '['")
    args.append("".join(current))
    return name, args


def _split_keyed(arg: str) -> tuple[str | None, str]:
    """``("k", "3")`` for ``k=3`` at depth 0, ``(None, arg)`` otherwise."""
    depth = 0
    for pos, ch in enumerate(arg):
        if ch == "[":
            depth += 1
        elif ch == "]":
            depth -= 1
        elif ch == "=" and depth == 0:
            return arg[:pos], arg[pos + 1 :]
    return None, arg


def parse(spec: str) -> tuple[StrategyEntry, dict[str, Any]]:
    """Parse a spec into its entry and parameter values (keyed by spec key).

    Every failure raises ``ValueError`` whose message starts with
    ``unknown strategy spec`` — the stable prefix callers and tests match
    on — followed by the specific reason and the generated accepted-forms
    list for unknown names.
    """
    try:
        name, args = split_spec(spec)
        entry = _ENTRIES.get(name)
        if entry is None:
            raise LookupError
        values = _bind(entry, args)
    except LookupError:
        raise ValueError(unknown_spec_error(spec)) from None
    except ValueError as exc:
        raise ValueError(f"unknown strategy spec {spec!r}: {exc}") from None
    return entry, values


def _bind(entry: StrategyEntry, args: list[str]) -> dict[str, Any]:
    """Bind raw spec arguments to the entry's parameters."""
    by_key = {p.key: p for p in entry.params}
    values: dict[str, Any] = {}
    positional = [p for p in entry.params if p.positional]
    for arg in args:
        key, text = _split_keyed(arg)
        if key is not None:
            param = by_key.get(key)
            if param is None:
                raise ValueError(
                    f"unknown parameter {key!r} (accepted: {entry.template()})"
                )
            if param.key in values:
                raise ValueError(f"duplicate parameter {param.key!r}")
            values[param.key] = param.parse(text)
            continue
        # Bare token: a Flag/Choice word, else the next unbound positional.
        token = arg
        bare = next(
            (
                p
                for p in entry.params
                if p.key not in values
                and not p.positional
                and p.accepts_token(token)
            ),
            None,
        )
        if bare is not None:
            values[bare.key] = (
                True if isinstance(bare, Flag) else bare.parse(token)
            )
            continue
        target = next((p for p in positional if p.key not in values), None)
        if target is None:
            raise ValueError(
                f"unexpected argument {token!r} (accepted: {entry.template()})"
            )
        values[target.key] = target.parse(token)
    missing = [p.key for p in entry.params if p.required and p.key not in values]
    if missing:
        raise ValueError(
            f"missing required parameter(s) {', '.join(missing)} "
            f"(accepted: {entry.template()})"
        )
    return values


def build(spec: str) -> "TwoPhaseStrategy":
    """Parse a spec and instantiate the strategy."""
    entry, values = parse(spec)
    return entry.construct(values)


def describe(strategy: Any) -> str:
    """The canonical spec of a built strategy instance.

    Raises :class:`UnrepresentableStrategy` when the instance's class is
    not registered or carries state the spec grammar cannot express.
    """
    entry = entry_for(strategy)
    if entry is None:
        raise UnrepresentableStrategy(
            f"{type(strategy).__qualname__} is not registered; "
            "add a @register_strategy decorator"
        )
    return entry.render(entry.values_of(strategy))


def try_describe(strategy: Any) -> str | None:
    """:func:`describe`, or ``None`` for unrepresentable instances."""
    try:
        return describe(strategy)
    except UnrepresentableStrategy:
        return None


def canonical(spec: str) -> str:
    """Canonicalize a spec without building the strategy.

    ``canonical("selective[0.50]") == "selective[0.5,count]"`` — the form
    the cell cache fingerprints, so non-canonical spellings share entries.
    """
    entry, values = parse(spec)
    return entry.render(values)


def spec_help() -> str:
    """Generated accepted-forms list, one template per registered entry."""
    return ", ".join(repr(e.template()) for e in _ENTRIES.values())


def unknown_spec_error(spec: str) -> str:
    """The full unknown-spec message (stable prefix + generated forms)."""
    return f"unknown strategy spec {spec!r}; expected one of: {spec_help()}"
