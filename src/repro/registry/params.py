"""Typed parameter schemas for strategy spec strings.

Every registered strategy declares its spec parameters as a tuple of
:class:`ParamSpec` objects; the registry derives the parser, the canonical
renderer, the generated help text, and the docs catalog from that one
declaration, so the grammar can never drift from the constructors again.

Spec grammar (shared by every family)::

    name                      # all parameters at their defaults
    name[k=3]                 # keyed value
    name[0.4]                 # positional value (Float/Int/StrategyRef)
    name[0.4,work]            # bare Choice token
    name[delta=1,barrier]     # bare Flag token
    refined[ls_group[k=3],eta=0.5]   # nested strategy spec (StrategyRef)

Commas and ``=`` only separate at bracket depth 0, so nested specs pass
through untouched.  Parsing errors raise :class:`ValueError` with a short
reason; the registry wraps them in the canonical ``unknown strategy
spec ...`` message.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = [
    "REQUIRED",
    "ParamSpec",
    "Int",
    "Float",
    "Choice",
    "Flag",
    "StrategyRef",
]


class _Required:
    """Sentinel: the parameter has no default and must appear in the spec."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<required>"


#: Default-value sentinel for mandatory parameters.
REQUIRED = _Required()


@dataclass(frozen=True)
class ParamSpec:
    """One declared spec parameter.

    Attributes
    ----------
    key:
        Name used in the spec string (``k`` in ``ls_group[k=3]``).
    attr:
        Constructor keyword / instance attribute (defaults to ``key``).
    default:
        Value assumed when the spec omits the parameter;
        :data:`REQUIRED` makes it mandatory.
    positional:
        Rendered and accepted as a bare value (``selective[0.4]``)
        instead of ``key=value``.
    omit_default:
        Leave the parameter out of the canonical spec when its value
        equals the default (keyed optional knobs); ``False`` keeps it
        explicit (parameters the display names always carry).
    doc:
        One-line description for the catalog and help text.
    """

    key: str
    attr: str = ""
    default: Any = REQUIRED
    positional: bool = False
    omit_default: bool = True
    doc: str = ""

    def __post_init__(self) -> None:
        if not self.attr:
            object.__setattr__(self, "attr", self.key)

    @property
    def required(self) -> bool:
        return self.default is REQUIRED

    # -- hooks subclasses implement ---------------------------------------
    def parse(self, text: str) -> Any:
        """Parse one spec token into a value (raises ``ValueError``)."""
        raise NotImplementedError

    def render(self, value: Any) -> str:
        """Render ``value`` as it appears inside the canonical spec."""
        text = self.format(value)
        return text if self.positional else f"{self.key}={text}"

    def format(self, value: Any) -> str:
        """Canonical text of ``value`` alone (no key)."""
        return str(value)

    def describe(self) -> str:
        """Human-readable type/range blurb for help text and the catalog."""
        return "value"

    def template(self) -> str:
        """How this parameter appears in the generated accepted-forms help."""
        body = f"<{self.describe()}>"
        return body if self.positional else f"{self.key}={body}"

    def accepts_token(self, token: str) -> bool:
        """Whether a bare (un-keyed) token can bind to this parameter."""
        return False


@dataclass(frozen=True)
class Int(ParamSpec):
    """An integer parameter with optional bounds."""

    ge: int | None = None
    le: int | None = None

    def parse(self, text: str) -> int:
        try:
            value = int(text)
        except ValueError:
            raise ValueError(f"{self.key}: expected an integer, got {text!r}") from None
        return self.validate(value)

    def validate(self, value: int) -> int:
        if self.ge is not None and value < self.ge:
            raise ValueError(f"{self.key}: must be >= {self.ge}, got {value}")
        if self.le is not None and value > self.le:
            raise ValueError(f"{self.key}: must be <= {self.le}, got {value}")
        return value

    def format(self, value: Any) -> str:
        return str(int(value))

    def describe(self) -> str:
        if self.ge is not None and self.le is not None:
            return f"int in [{self.ge},{self.le}]"
        if self.ge is not None:
            return f"int >= {self.ge}"
        if self.le is not None:
            return f"int <= {self.le}"
        return "int"


@dataclass(frozen=True)
class Float(ParamSpec):
    """A float parameter with optional open/closed bounds."""

    gt: float | None = None
    ge: float | None = None
    le: float | None = None

    def parse(self, text: str) -> float:
        try:
            value = float(text)
        except ValueError:
            raise ValueError(f"{self.key}: expected a number, got {text!r}") from None
        return self.validate(value)

    def validate(self, value: float) -> float:
        if self.gt is not None and not value > self.gt:
            raise ValueError(f"{self.key}: must be > {self.gt}, got {value}")
        if self.ge is not None and value < self.ge:
            raise ValueError(f"{self.key}: must be >= {self.ge}, got {value}")
        if self.le is not None and value > self.le:
            raise ValueError(f"{self.key}: must be <= {self.le}, got {value}")
        return value

    def format(self, value: Any) -> str:
        return f"{float(value):g}"

    def describe(self) -> str:
        if self.ge == 0 and self.le == 1:
            return "fraction in [0,1]"
        if self.gt is not None:
            return f"float > {self.gt:g}"
        return "float"


@dataclass(frozen=True)
class Choice(ParamSpec):
    """One of a fixed set of string tokens.

    ``bare=True`` (default) lets the value appear without its key
    (``selective[0.4,work]``); keyed form (``basis=work``) always works.
    """

    values: tuple[str, ...] = ()
    bare: bool = True

    def parse(self, text: str) -> str:
        if text not in self.values:
            raise ValueError(
                f"{self.key}: expected one of {'|'.join(self.values)}, got {text!r}"
            )
        return text

    def render(self, value: Any) -> str:
        return str(value) if self.bare else f"{self.key}={value}"

    def describe(self) -> str:
        return "|".join(self.values)

    def template(self) -> str:
        return self.describe() if self.bare else f"{self.key}={self.describe()}"

    def accepts_token(self, token: str) -> bool:
        return self.bare and token in self.values


@dataclass(frozen=True)
class Flag(ParamSpec):
    """A boolean switched on by its bare token (``abo[delta=1,barrier]``)."""

    default: Any = False

    def parse(self, text: str) -> bool:
        if text in ("true", "1"):
            return True
        if text in ("false", "0"):
            return False
        raise ValueError(f"{self.key}: expected true/false, got {text!r}")

    def render(self, value: Any) -> str:
        return self.key

    def describe(self) -> str:
        return "flag"

    def template(self) -> str:
        return self.key

    def accepts_token(self, token: str) -> bool:
        return token == self.key


@dataclass(frozen=True)
class StrategyRef(ParamSpec):
    """A nested strategy spec (``refined[ls_group[k=3],eta=0.5]``).

    Parses through the registry itself, so anything registered — including
    another nested spec — is a valid value; renders via the referenced
    strategy's canonical spec.
    """

    positional: bool = True

    def parse(self, text: str) -> Any:
        from repro.registry import entry as _entry

        return _entry.build(text)

    def format(self, value: Any) -> str:
        from repro.registry import entry as _entry

        return _entry.describe(value)

    def describe(self) -> str:
        return "strategy spec"

    def accepts_token(self, token: str) -> bool:
        # Any token that is not a bare Choice/Flag word can be a spec;
        # the registry tries StrategyRef last, so a failed parse still
        # produces that parameter's error.
        return True
