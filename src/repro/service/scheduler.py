"""The deterministic core of the placement service.

Everything stateful about the daemon lives here, synchronously, with no
I/O — the asyncio shell (:mod:`repro.service.daemon`) only translates
HTTP into these calls.  That split keeps the online scheduler testable
the same way the kernels are: feed admissions, pump events, assert the
trace.

The core replays the event kernel's discipline in **virtual time**:

* Admissions run Phase 1 immediately (:class:`~repro.service.placement.
  OnlinePlacer`), stamp the task with the current virtual clock, and
  dispatch it at once if a machine of its replica set is idle.
* Machine completions live in a :class:`~repro.simulation.events.
  EventQueue` keyed ``(time, kind, seq)``.  A completion at time *t*
  enqueues the machine's idle poll at the same *t*; because
  ``TASK_COMPLETION`` outranks ``MACHINE_IDLE``, *every* completion at an
  instant is revealed before *any* dispatch decision at that instant —
  the same same-instant contract :class:`~repro.simulation.kernel.
  EventKernel` enforces, and the semi-clairvoyant model's "durations are
  known once tasks complete".
* Phase-2 dispatch is List Scheduling in admission order: an idle
  machine takes the earliest admitted still-queued task whose replica
  set contains it (:class:`~repro.core.strategy.FixedOrderPolicy`
  semantics, including the low-water-mark scan).

Consequence, asserted by ``tests/test_service.py``: admitting a batch of
tasks and draining reproduces the offline
:func:`~repro.simulation.engine.simulate` run of the same strategy task
for task — machines, start times, completion times, makespan.

Actual durations are drawn per task from a seeded model inside the
α-band (hidden until completion, like the kernel's realization), keyed
by ``(seed, tid)`` so results do not depend on draw order.

The scheduler is also **failure-aware** (the chaos subsystem's
substrate, see ``docs/chaos.md``): :meth:`~ServiceScheduler.
inject_failure` schedules ``MACHINE_FAILURE``/``MACHINE_RECOVERY``
events with the same same-instant discipline as
:class:`~repro.simulation.kernel.FaultAwareKernel` — completions beat
failures, overlapping outages union via ``down_until`` tracking, and
attempt tokens invalidate completions of aborted attempts.  A task
running on a failing machine goes back to ``QUEUED`` and is re-placed
onto a surviving replica of its group (its data lives only on
:math:`M_j`); admissions whose every candidate group is fully down are
shed with a typed 503 instead of erroring.
"""

from __future__ import annotations

import math
from collections.abc import Iterable
from typing import Any

import numpy as np

from repro.obs import get_tracer
from repro.service.placement import OnlinePlacer
from repro.service.protocol import (
    DEFAULT_PAGE_LIMIT,
    MAX_PAGE_LIMIT,
    AdmissionError,
    TaskRecord,
    TaskState,
    encode_page_token,
)
from repro.simulation.events import EventKind, EventQueue

__all__ = ["ServiceScheduler", "DURATION_MODELS"]

#: Actual-duration models the service can draw from, all confined to the
#: α-band by construction.  ``truthful`` makes actuals equal estimates
#: (α plays no role), ``log_uniform`` matches the stochastic suite's
#: default shape, ``bimodal_extreme`` stresses the band's endpoints.
DURATION_MODELS = ("truthful", "log_uniform", "bimodal_extreme")


class ServiceScheduler:
    """Online admission + placement + dispatch over a simulated cluster.

    Parameters
    ----------
    strategy:
        Registry spec selecting the placement family (must be
        partition-structured; see :class:`~repro.service.placement.
        OnlinePlacer`).
    m:
        Machine count of the simulated cluster.
    alpha:
        Uncertainty factor; actual durations are drawn within
        :math:`[\\tilde p/\\alpha, \\alpha\\tilde p]`.
    model:
        One of :data:`DURATION_MODELS`.
    seed:
        Seed for the duration draws; ``(seed, tid)`` keys each task's
        draw, so identical admission sequences give identical runs.
    health:
        Optional health tracker (duck-typed to
        :class:`repro.chaos.policy.HealthTracker`): machine failures feed
        ``observe_failure``, completions feed ``observe_completion``, and
        every step ticks its clock — the policy engine sees the cluster
        without the scheduler importing it.
    """

    def __init__(
        self,
        strategy: str = "ls_group[k=2]",
        *,
        m: int = 8,
        alpha: float = 1.5,
        model: str = "log_uniform",
        seed: int = 0,
        health: Any | None = None,
    ) -> None:
        if alpha < 1.0:
            raise ValueError(f"alpha must be >= 1, got {alpha}")
        if model not in DURATION_MODELS:
            raise ValueError(
                f"unknown duration model {model!r}; known: {DURATION_MODELS}"
            )
        self.placer = OnlinePlacer(strategy, m)
        self.m = m
        self.alpha = float(alpha)
        self.model = model
        self.seed = int(seed)
        self.clock = 0.0
        self.records: list[TaskRecord] = []
        self.busy: dict[int, int] = {}  # machine -> running tid
        self.queue = EventQueue()
        self.completed = 0
        self.deduplicated = 0
        self.health = health
        # Chaos bookkeeping: machine -> down_until (inf = permanent), the
        # same union-of-outages discipline as FaultAwareKernel.
        self.down: dict[int, float] = {}
        self.shed = 0
        self.replaced = 0
        self.machine_failures = 0
        self.machine_recoveries = 0
        self._token: dict[int, int] = {}  # machine -> attempt token
        self._by_key: dict[str, int] = {}
        self._actuals: dict[int, float] = {}  # hidden until completion
        self._first_queued = 0  # low-water mark into self.records
        self._draining = False

    # -- admission (Phase 1) ----------------------------------------------
    def admit(
        self,
        tenant: str,
        estimate: float,
        *,
        size: float = 0.0,
        key: str | None = None,
    ) -> tuple[TaskRecord, bool]:
        """Admit one task; returns ``(record, created)``.

        ``created`` is ``False`` when ``key`` replays an earlier
        admission — the original record is returned unchanged and no new
        task exists (at-most-once admission for retrying clients).
        Raises :class:`AdmissionError` on invalid input or after
        :meth:`begin_drain`.
        """
        tracer = get_tracer()
        if key is not None:
            prior = self._by_key.get(key)
            if prior is not None:
                self.deduplicated += 1
                if tracer.enabled:
                    tracer.count("service.admissions_deduped")
                return self.records[prior], False
        if self._draining:
            raise AdmissionError(
                "draining", "the service is draining and admits no new tasks"
            )
        if not isinstance(estimate, (int, float)) or isinstance(estimate, bool):
            raise AdmissionError("bad_estimate", f"estimate must be a number, got {estimate!r}")
        estimate = float(estimate)
        if not math.isfinite(estimate) or estimate <= 0.0:
            raise AdmissionError(
                "bad_estimate", f"estimate must be finite and > 0, got {estimate}"
            )
        size = float(size)
        if not math.isfinite(size) or size < 0.0:
            raise AdmissionError("bad_size", f"size must be finite and >= 0, got {size}")

        tid = len(self.records)
        exclude: frozenset[int] = frozenset()
        if self.down:
            exclude = frozenset(self.degraded_groups())
            if len(exclude) >= self.placer.k:
                self.shed += 1
                if tracer.enabled:
                    tracer.count("service.admissions_shed")
                    tracer.event(
                        "service.shed",
                        tenant=str(tenant),
                        reason="degraded",
                        t=self.clock,
                    )
                raise AdmissionError(
                    "degraded",
                    "every placement group is fully down; admission shed",
                )
        group, machines = self.placer.assign(estimate, exclude=exclude)
        record = TaskRecord(
            tid=tid,
            tenant=str(tenant),
            key=key,
            estimate=estimate,
            size=size,
            group=group,
            machines=machines,
            admitted_at=self.clock,
        )
        self.records.append(record)
        if key is not None:
            self._by_key[key] = tid
        self._actuals[tid] = self._draw_actual(tid, estimate)
        if tracer.enabled:
            tracer.count("service.admissions")
            tracer.event(
                "service.admit",
                task=tid,
                tenant=record.tenant,
                group=group,
                replication=len(machines),
                t=self.clock,
            )
            tracer.registry.gauge("service.queue_depth").set(float(self.queued))
        # Work-conserving: an idle *live* replica holder takes the task now.
        for machine in machines:
            if machine not in self.busy and machine not in self.down:
                self._dispatch(tid, machine, self.clock)
                break
        return record, True

    def _draw_actual(self, tid: int, estimate: float) -> float:
        """Seeded duration inside the α-band, independent of draw order."""
        if self.model == "truthful" or self.alpha == 1.0:
            return estimate
        rng = np.random.default_rng([self.seed, tid])
        if self.model == "bimodal_extreme":
            factor = self.alpha if rng.random() < 0.5 else 1.0 / self.alpha
        else:  # log_uniform
            factor = float(self.alpha ** rng.uniform(-1.0, 1.0))
        return estimate * factor

    # -- Phase-2 dispatch --------------------------------------------------
    def _select(self, machine: int) -> int | None:
        """Earliest admitted queued task with a replica on ``machine``.

        The same scan as :class:`~repro.core.strategy.FixedOrderPolicy`
        over admission order, low-water mark included — Phase 2 is List
        Scheduling within the placement.
        """
        records = self.records
        while (
            self._first_queued < len(records)
            and records[self._first_queued].state is not TaskState.QUEUED
        ):
            self._first_queued += 1
        for pos in range(self._first_queued, len(records)):
            record = records[pos]
            if record.state is TaskState.QUEUED and machine in record.machines:
                return record.tid
        return None

    def _dispatch(self, tid: int, machine: int, now: float) -> None:
        record = self.records[tid]
        record.state = TaskState.RUNNING
        record.machine = machine
        record.started_at = now
        self.busy[machine] = tid
        # Attempt token: a failure-aborted attempt's completion event must
        # not fire when it surfaces (FaultAwareKernel's staleness idiom).
        token = self._token.get(machine, 0) + 1
        self._token[machine] = token
        # Unit-speed cluster: duration == actual, the kernel's p/1.0.
        self.queue.push(
            now + self._actuals[tid], EventKind.TASK_COMPLETION, (tid, machine, token)
        )
        tracer = get_tracer()
        if tracer.enabled:
            tracer.count("service.dispatches")
            tracer.event("service.dispatch", task=tid, machine=machine, t=now)
            tracer.registry.timer("service.task_wait").observe(now - record.admitted_at)

    # -- the event pump ----------------------------------------------------
    def step(self) -> dict[str, Any] | None:
        """Process one virtual-time event; ``None`` when nothing is queued.

        Returns a small description of what happened (for the daemon's
        pacing loop and for tests); the same-instant ordering guarantees
        are inherited from :class:`~repro.simulation.events.EventKind`.
        """
        if not self.queue:
            return None
        ev = self.queue.pop()
        self.clock = ev.time
        tracer = get_tracer()
        if self.health is not None:
            self.health.tick(ev.time)
        if ev.kind == EventKind.TASK_COMPLETION:
            tid, machine, token = ev.payload
            if self.busy.get(machine) != tid or self._token.get(machine) != token:
                # The attempt this event belongs to was aborted by a
                # machine failure; the rerun carries a fresh token.
                return {
                    "kind": "completion",
                    "task": tid,
                    "machine": machine,
                    "t": ev.time,
                    "stale": True,
                }
            record = self.records[tid]
            record.state = TaskState.DONE
            record.finished_at = ev.time
            record.actual = self._actuals.pop(tid)
            del self.busy[machine]
            self.completed += 1
            if self.health is not None:
                self.health.observe_completion(machine, ev.time)
            self.queue.push(ev.time, EventKind.MACHINE_IDLE, machine)
            if tracer.enabled:
                tracer.count("service.completions")
                tracer.event("service.complete", task=tid, machine=machine, t=ev.time)
                tracer.registry.timer("service.task_response").observe(
                    ev.time - record.admitted_at
                )
            return {"kind": "completion", "task": tid, "machine": machine, "t": ev.time}
        if ev.kind == EventKind.MACHINE_FAILURE:
            return self._on_failure(ev)
        if ev.kind == EventKind.MACHINE_RECOVERY:
            return self._on_recovery(ev)
        if ev.kind == EventKind.MACHINE_IDLE:
            machine = ev.payload
            if machine in self.busy or machine in self.down:
                return {"kind": "idle", "machine": machine, "t": ev.time, "stale": True}
            tid = self._select(machine)
            if tid is not None:
                self._dispatch(tid, machine, ev.time)
            if tracer.enabled:
                tracer.registry.gauge("service.queue_depth").set(float(self.queued))
            return {"kind": "idle", "machine": machine, "t": ev.time, "dispatched": tid}
        raise AssertionError(f"unexpected service event kind {ev.kind!r}")

    def _on_failure(self, ev) -> dict[str, Any]:
        """Process one ``MACHINE_FAILURE``: abort, re-place, schedule recovery."""
        machine, downtime = ev.payload
        until = ev.time + downtime if math.isfinite(downtime) else math.inf
        tracer = get_tracer()
        if machine in self.down:
            # Overlapping outage: union the windows (never shorten).
            if until > self.down[machine]:
                self.down[machine] = until
                if math.isfinite(until):
                    self.queue.push(until, EventKind.MACHINE_RECOVERY, machine)
            return {"kind": "failure", "machine": machine, "t": ev.time, "absorbed": True}
        self.down[machine] = until
        self.machine_failures += 1
        if self.health is not None:
            self.health.observe_failure(machine, ev.time)
        if math.isfinite(until):
            self.queue.push(until, EventKind.MACHINE_RECOVERY, machine)
        requeued: int | None = None
        tid = self.busy.pop(machine, None)
        if tid is not None:
            # Re-place onto a surviving replica: the task reverts to
            # QUEUED and any idle live member of its group re-selects it
            # (its data exists nowhere else).
            record = self.records[tid]
            record.state = TaskState.QUEUED
            record.machine = None
            record.started_at = None
            record.restarts += 1
            self.replaced += 1
            self._first_queued = min(self._first_queued, tid)
            requeued = tid
            for member in record.machines:
                if member not in self.busy and member not in self.down:
                    self.queue.push(ev.time, EventKind.MACHINE_IDLE, member)
            if tracer.enabled:
                tracer.count("chaos.tasks_replaced")
                tracer.event("service.replaced", task=tid, machine=machine, t=ev.time)
        if tracer.enabled:
            tracer.count("chaos.machine_failures")
            tracer.event("service.machine_failure", machine=machine, t=ev.time)
            tracer.registry.gauge("chaos.machines_down").set(float(len(self.down)))
            tracer.registry.gauge("chaos.groups_degraded").set(
                float(len(self.degraded_groups()))
            )
        return {"kind": "failure", "machine": machine, "t": ev.time, "requeued": requeued}

    def _on_recovery(self, ev) -> dict[str, Any]:
        """Process one ``MACHINE_RECOVERY``; superseded recoveries are stale."""
        machine = ev.payload
        until = self.down.get(machine)
        if until is None or ev.time < until:
            return {"kind": "recovery", "machine": machine, "t": ev.time, "stale": True}
        del self.down[machine]
        self.machine_recoveries += 1
        self.queue.push(ev.time, EventKind.MACHINE_IDLE, machine)
        tracer = get_tracer()
        if tracer.enabled:
            tracer.count("chaos.machine_recoveries")
            tracer.event("service.machine_recovery", machine=machine, t=ev.time)
            tracer.registry.gauge("chaos.machines_down").set(float(len(self.down)))
            tracer.registry.gauge("chaos.groups_degraded").set(
                float(len(self.degraded_groups()))
            )
        return {"kind": "recovery", "machine": machine, "t": ev.time}

    # -- chaos injection ---------------------------------------------------
    def inject_failure(
        self,
        machines: Iterable[int],
        *,
        at: float | None = None,
        downtime: float = math.inf,
    ) -> float:
        """Schedule a correlated failure of ``machines``; returns its instant.

        ``at`` defaults to the current virtual clock and may not lie in
        the past (events must be causally injectable).  ``downtime`` is
        shared by the group (``inf`` = permanent); the same-instant
        contract applies — tasks completing exactly at ``at`` complete.
        """
        when = self.clock if at is None else float(at)
        if when < self.clock:
            raise ValueError(
                f"cannot inject a failure at {when} before the clock ({self.clock})"
            )
        if not downtime > 0:
            raise ValueError(f"downtime must be > 0, got {downtime}")
        targets = [int(i) for i in machines]
        for machine in targets:
            if not 0 <= machine < self.m:
                raise ValueError(f"machine {machine} outside 0..{self.m - 1}")
        for machine in targets:
            self.queue.push(when, EventKind.MACHINE_FAILURE, (machine, float(downtime)))
        return when

    def inject_recovery(self, machines: Iterable[int], *, at: float | None = None) -> float:
        """Schedule an operator-forced recovery of ``machines``.

        Lowers each machine's ``down_until`` to the recovery instant so
        the pushed event is not treated as superseded — an explicit
        recovery always wins over a longer scheduled outage.
        """
        when = self.clock if at is None else float(at)
        if when < self.clock:
            raise ValueError(
                f"cannot inject a recovery at {when} before the clock ({self.clock})"
            )
        for machine in machines:
            machine = int(machine)
            if not 0 <= machine < self.m:
                raise ValueError(f"machine {machine} outside 0..{self.m - 1}")
            if machine in self.down:
                self.down[machine] = min(self.down[machine], when)
                self.queue.push(when, EventKind.MACHINE_RECOVERY, machine)
        return when

    def degraded_groups(self) -> list[int]:
        """Groups with *no* live machine (cannot serve new admissions)."""
        return [
            g
            for g, members in enumerate(self.placer.groups)
            if all(machine in self.down for machine in members)
        ]

    def availability(self) -> float:
        """Fraction of placement groups with at least one live machine."""
        return 1.0 - len(self.degraded_groups()) / self.placer.k

    def drain(self) -> int:
        """Pump events until the cluster is quiet; returns events processed.

        Graceful-shutdown semantics: every admitted task completes (there
        is no drop path), so after ``drain`` the queue depth and the busy
        set are both empty.  The one exception is a *permanently* lost
        replica set: a queued task whose every group member is down with
        infinite downtime has no machine to run on, so ``drain`` returns
        with it still queued and ``stats()`` shows the stranding — the
        same data-loss regime :class:`~repro.simulation.kernel.
        FaultAwareKernel` reports as "lost to machine failures".
        """
        steps = 0
        while self.step() is not None:
            steps += 1
        return steps

    def begin_drain(self) -> None:
        """Stop admitting; already-admitted tasks still run to completion."""
        self._draining = True

    # -- queries -----------------------------------------------------------
    @property
    def draining(self) -> bool:
        """Whether :meth:`begin_drain` was called."""
        return self._draining

    @property
    def queued(self) -> int:
        """Tasks admitted but not yet dispatched."""
        return len(self.records) - self.completed - len(self.busy)

    def get(self, tid: int) -> TaskRecord | None:
        """The record for ``tid``, or ``None``."""
        if 0 <= tid < len(self.records):
            return self.records[tid]
        return None

    def page(
        self, cursor: int = 0, limit: int | None = None
    ) -> tuple[list[TaskRecord], str | None]:
        """A stable listing page: records from ``cursor``, plus next token.

        Cursors are task ids, so concurrent admissions only ever append
        *after* an open cursor — a client walking pages sees each task
        exactly once.
        """
        if limit is None:
            limit = DEFAULT_PAGE_LIMIT
        limit = max(1, min(int(limit), MAX_PAGE_LIMIT))
        cursor = max(0, int(cursor))
        chunk = self.records[cursor : cursor + limit]
        next_token = (
            encode_page_token(cursor + limit)
            if cursor + limit < len(self.records)
            else None
        )
        return list(chunk), next_token

    def stats(self) -> dict[str, Any]:
        """Live counters for the status/queue endpoints."""
        return {
            "clock": self.clock,
            "strategy": self.placer.canonical_spec,
            "replication": self.placer.replication,
            "groups": self.placer.k,
            "machines": self.m,
            "alpha": self.alpha,
            "model": self.model,
            "seed": self.seed,
            "admitted": len(self.records),
            "deduplicated": self.deduplicated,
            "queued": self.queued,
            "running": len(self.busy),
            "done": self.completed,
            "draining": self._draining,
            "down": len(self.down),
            "degraded_groups": len(self.degraded_groups()),
            "availability": self.availability(),
            "shed": self.shed,
            "replaced": self.replaced,
            "machine_failures": self.machine_failures,
            "machine_recoveries": self.machine_recoveries,
        }
