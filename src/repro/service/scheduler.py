"""The deterministic core of the placement service.

Everything stateful about the daemon lives here, synchronously, with no
I/O — the asyncio shell (:mod:`repro.service.daemon`) only translates
HTTP into these calls.  That split keeps the online scheduler testable
the same way the kernels are: feed admissions, pump events, assert the
trace.

The core replays the event kernel's discipline in **virtual time**:

* Admissions run Phase 1 immediately (:class:`~repro.service.placement.
  OnlinePlacer`), stamp the task with the current virtual clock, and
  dispatch it at once if a machine of its replica set is idle.
* Machine completions live in a :class:`~repro.simulation.events.
  EventQueue` keyed ``(time, kind, seq)``.  A completion at time *t*
  enqueues the machine's idle poll at the same *t*; because
  ``TASK_COMPLETION`` outranks ``MACHINE_IDLE``, *every* completion at an
  instant is revealed before *any* dispatch decision at that instant —
  the same same-instant contract :class:`~repro.simulation.kernel.
  EventKernel` enforces, and the semi-clairvoyant model's "durations are
  known once tasks complete".
* Phase-2 dispatch is List Scheduling in admission order: an idle
  machine takes the earliest admitted still-queued task whose replica
  set contains it (:class:`~repro.core.strategy.FixedOrderPolicy`
  semantics, including the low-water-mark scan).

Consequence, asserted by ``tests/test_service.py``: admitting a batch of
tasks and draining reproduces the offline
:func:`~repro.simulation.engine.simulate` run of the same strategy task
for task — machines, start times, completion times, makespan.

Actual durations are drawn per task from a seeded model inside the
α-band (hidden until completion, like the kernel's realization), keyed
by ``(seed, tid)`` so results do not depend on draw order.
"""

from __future__ import annotations

import math
from typing import Any

import numpy as np

from repro.obs import get_tracer
from repro.service.placement import OnlinePlacer
from repro.service.protocol import (
    DEFAULT_PAGE_LIMIT,
    MAX_PAGE_LIMIT,
    AdmissionError,
    TaskRecord,
    TaskState,
    encode_page_token,
)
from repro.simulation.events import EventKind, EventQueue

__all__ = ["ServiceScheduler", "DURATION_MODELS"]

#: Actual-duration models the service can draw from, all confined to the
#: α-band by construction.  ``truthful`` makes actuals equal estimates
#: (α plays no role), ``log_uniform`` matches the stochastic suite's
#: default shape, ``bimodal_extreme`` stresses the band's endpoints.
DURATION_MODELS = ("truthful", "log_uniform", "bimodal_extreme")


class ServiceScheduler:
    """Online admission + placement + dispatch over a simulated cluster.

    Parameters
    ----------
    strategy:
        Registry spec selecting the placement family (must be
        partition-structured; see :class:`~repro.service.placement.
        OnlinePlacer`).
    m:
        Machine count of the simulated cluster.
    alpha:
        Uncertainty factor; actual durations are drawn within
        :math:`[\\tilde p/\\alpha, \\alpha\\tilde p]`.
    model:
        One of :data:`DURATION_MODELS`.
    seed:
        Seed for the duration draws; ``(seed, tid)`` keys each task's
        draw, so identical admission sequences give identical runs.
    """

    def __init__(
        self,
        strategy: str = "ls_group[k=2]",
        *,
        m: int = 8,
        alpha: float = 1.5,
        model: str = "log_uniform",
        seed: int = 0,
    ) -> None:
        if alpha < 1.0:
            raise ValueError(f"alpha must be >= 1, got {alpha}")
        if model not in DURATION_MODELS:
            raise ValueError(
                f"unknown duration model {model!r}; known: {DURATION_MODELS}"
            )
        self.placer = OnlinePlacer(strategy, m)
        self.m = m
        self.alpha = float(alpha)
        self.model = model
        self.seed = int(seed)
        self.clock = 0.0
        self.records: list[TaskRecord] = []
        self.busy: dict[int, int] = {}  # machine -> running tid
        self.queue = EventQueue()
        self.completed = 0
        self.deduplicated = 0
        self._by_key: dict[str, int] = {}
        self._actuals: dict[int, float] = {}  # hidden until completion
        self._first_queued = 0  # low-water mark into self.records
        self._draining = False

    # -- admission (Phase 1) ----------------------------------------------
    def admit(
        self,
        tenant: str,
        estimate: float,
        *,
        size: float = 0.0,
        key: str | None = None,
    ) -> tuple[TaskRecord, bool]:
        """Admit one task; returns ``(record, created)``.

        ``created`` is ``False`` when ``key`` replays an earlier
        admission — the original record is returned unchanged and no new
        task exists (at-most-once admission for retrying clients).
        Raises :class:`AdmissionError` on invalid input or after
        :meth:`begin_drain`.
        """
        tracer = get_tracer()
        if key is not None:
            prior = self._by_key.get(key)
            if prior is not None:
                self.deduplicated += 1
                if tracer.enabled:
                    tracer.count("service.admissions_deduped")
                return self.records[prior], False
        if self._draining:
            raise AdmissionError(
                "draining", "the service is draining and admits no new tasks"
            )
        if not isinstance(estimate, (int, float)) or isinstance(estimate, bool):
            raise AdmissionError("bad_estimate", f"estimate must be a number, got {estimate!r}")
        estimate = float(estimate)
        if not math.isfinite(estimate) or estimate <= 0.0:
            raise AdmissionError(
                "bad_estimate", f"estimate must be finite and > 0, got {estimate}"
            )
        size = float(size)
        if not math.isfinite(size) or size < 0.0:
            raise AdmissionError("bad_size", f"size must be finite and >= 0, got {size}")

        tid = len(self.records)
        group, machines = self.placer.assign(estimate)
        record = TaskRecord(
            tid=tid,
            tenant=str(tenant),
            key=key,
            estimate=estimate,
            size=size,
            group=group,
            machines=machines,
            admitted_at=self.clock,
        )
        self.records.append(record)
        if key is not None:
            self._by_key[key] = tid
        self._actuals[tid] = self._draw_actual(tid, estimate)
        if tracer.enabled:
            tracer.count("service.admissions")
            tracer.event(
                "service.admit",
                task=tid,
                tenant=record.tenant,
                group=group,
                replication=len(machines),
                t=self.clock,
            )
            tracer.registry.gauge("service.queue_depth").set(float(self.queued))
        # Work-conserving: an idle replica holder takes the task now.
        for machine in machines:
            if machine not in self.busy:
                self._dispatch(tid, machine, self.clock)
                break
        return record, True

    def _draw_actual(self, tid: int, estimate: float) -> float:
        """Seeded duration inside the α-band, independent of draw order."""
        if self.model == "truthful" or self.alpha == 1.0:
            return estimate
        rng = np.random.default_rng([self.seed, tid])
        if self.model == "bimodal_extreme":
            factor = self.alpha if rng.random() < 0.5 else 1.0 / self.alpha
        else:  # log_uniform
            factor = float(self.alpha ** rng.uniform(-1.0, 1.0))
        return estimate * factor

    # -- Phase-2 dispatch --------------------------------------------------
    def _select(self, machine: int) -> int | None:
        """Earliest admitted queued task with a replica on ``machine``.

        The same scan as :class:`~repro.core.strategy.FixedOrderPolicy`
        over admission order, low-water mark included — Phase 2 is List
        Scheduling within the placement.
        """
        records = self.records
        while (
            self._first_queued < len(records)
            and records[self._first_queued].state is not TaskState.QUEUED
        ):
            self._first_queued += 1
        for pos in range(self._first_queued, len(records)):
            record = records[pos]
            if record.state is TaskState.QUEUED and machine in record.machines:
                return record.tid
        return None

    def _dispatch(self, tid: int, machine: int, now: float) -> None:
        record = self.records[tid]
        record.state = TaskState.RUNNING
        record.machine = machine
        record.started_at = now
        self.busy[machine] = tid
        # Unit-speed cluster: duration == actual, the kernel's p/1.0.
        self.queue.push(now + self._actuals[tid], EventKind.TASK_COMPLETION, (tid, machine))
        tracer = get_tracer()
        if tracer.enabled:
            tracer.count("service.dispatches")
            tracer.event("service.dispatch", task=tid, machine=machine, t=now)
            tracer.registry.timer("service.task_wait").observe(now - record.admitted_at)

    # -- the event pump ----------------------------------------------------
    def step(self) -> dict[str, Any] | None:
        """Process one virtual-time event; ``None`` when nothing is queued.

        Returns a small description of what happened (for the daemon's
        pacing loop and for tests); the same-instant ordering guarantees
        are inherited from :class:`~repro.simulation.events.EventKind`.
        """
        if not self.queue:
            return None
        ev = self.queue.pop()
        self.clock = ev.time
        tracer = get_tracer()
        if ev.kind == EventKind.TASK_COMPLETION:
            tid, machine = ev.payload
            record = self.records[tid]
            record.state = TaskState.DONE
            record.finished_at = ev.time
            record.actual = self._actuals.pop(tid)
            del self.busy[machine]
            self.completed += 1
            self.queue.push(ev.time, EventKind.MACHINE_IDLE, machine)
            if tracer.enabled:
                tracer.count("service.completions")
                tracer.event("service.complete", task=tid, machine=machine, t=ev.time)
                tracer.registry.timer("service.task_response").observe(
                    ev.time - record.admitted_at
                )
            return {"kind": "completion", "task": tid, "machine": machine, "t": ev.time}
        if ev.kind == EventKind.MACHINE_IDLE:
            machine = ev.payload
            if machine in self.busy:
                return {"kind": "idle", "machine": machine, "t": ev.time, "stale": True}
            tid = self._select(machine)
            if tid is not None:
                self._dispatch(tid, machine, ev.time)
            if tracer.enabled:
                tracer.registry.gauge("service.queue_depth").set(float(self.queued))
            return {"kind": "idle", "machine": machine, "t": ev.time, "dispatched": tid}
        raise AssertionError(f"unexpected service event kind {ev.kind!r}")

    def drain(self) -> int:
        """Pump events until the cluster is quiet; returns events processed.

        Graceful-shutdown semantics: every admitted task completes (there
        is no drop path), so after ``drain`` the queue depth and the busy
        set are both empty.
        """
        steps = 0
        while self.step() is not None:
            steps += 1
        return steps

    def begin_drain(self) -> None:
        """Stop admitting; already-admitted tasks still run to completion."""
        self._draining = True

    # -- queries -----------------------------------------------------------
    @property
    def draining(self) -> bool:
        """Whether :meth:`begin_drain` was called."""
        return self._draining

    @property
    def queued(self) -> int:
        """Tasks admitted but not yet dispatched."""
        return len(self.records) - self.completed - len(self.busy)

    def get(self, tid: int) -> TaskRecord | None:
        """The record for ``tid``, or ``None``."""
        if 0 <= tid < len(self.records):
            return self.records[tid]
        return None

    def page(
        self, cursor: int = 0, limit: int | None = None
    ) -> tuple[list[TaskRecord], str | None]:
        """A stable listing page: records from ``cursor``, plus next token.

        Cursors are task ids, so concurrent admissions only ever append
        *after* an open cursor — a client walking pages sees each task
        exactly once.
        """
        if limit is None:
            limit = DEFAULT_PAGE_LIMIT
        limit = max(1, min(int(limit), MAX_PAGE_LIMIT))
        cursor = max(0, int(cursor))
        chunk = self.records[cursor : cursor + limit]
        next_token = (
            encode_page_token(cursor + limit)
            if cursor + limit < len(self.records)
            else None
        )
        return list(chunk), next_token

    def stats(self) -> dict[str, Any]:
        """Live counters for the status/queue endpoints."""
        return {
            "clock": self.clock,
            "strategy": self.placer.canonical_spec,
            "replication": self.placer.replication,
            "groups": self.placer.k,
            "machines": self.m,
            "alpha": self.alpha,
            "model": self.model,
            "seed": self.seed,
            "admitted": len(self.records),
            "deduplicated": self.deduplicated,
            "queued": self.queued,
            "running": len(self.busy),
            "done": self.completed,
            "draining": self._draining,
        }
