"""The asyncio daemon: placement-as-a-service over HTTP.

One process, one event loop, one :class:`~repro.service.scheduler.
ServiceScheduler`.  Route handlers are synchronous (the loop's
single-threadedness is the concurrency control — no handler ever
observes a half-applied admission), and a background *pump* coroutine
advances the scheduler's virtual clock between requests, so completions
stream in interleaved with admissions exactly as the paper's Phase 2
assumes.

Endpoints (full request/response reference in ``docs/service.md``):

======  ==================  ===========================================
POST    ``/v1/tasks``       admit a task (idempotency-key aware)
GET     ``/v1/tasks``       paginated listing (opaque ``page_token``)
GET     ``/v1/tasks/<id>``  one task's lifecycle record
GET     ``/v1/queue``       queue depth, per-group committed loads
GET     ``/v1/status``      configuration + live counters
GET     ``/metrics``        OpenMetrics exposition of the live registry
GET     ``/v1/slo``         evaluate SLO objectives against the registry
GET     ``/v1/health``      fleet health: availability, down machines,
                            degraded groups, policy/breaker/bulkhead state
POST    ``/v1/chaos``       inject machine failures/recoveries (chaos hooks)
POST    ``/v1/drain``       stop admitting, run the queue to empty
POST    ``/v1/shutdown``    drain, flush telemetry, stop the server
======  ==================  ===========================================

Resilience hooks (``docs/chaos.md``): an optional admission
:class:`~repro.chaos.policy.CircuitBreaker` fails fast once the service
starts shedding (the scheduler raising ``degraded``/``overloaded``
admission errors trips it), and an optional
:class:`~repro.chaos.policy.Bulkhead` caps the number of in-flight
(queued + running) tasks.  Both rejections map to HTTP 503 — the
retryable class — while client mistakes stay 400.

Transports: TCP (``--port``, ``0`` picks a free port) and/or a unix
domain socket (``--socket``).  Telemetry rides the existing global
:mod:`repro.obs` tracer — run under ``repro serve --trace`` for a
JSONL trace plus a live ``results/telemetry.prom`` exposition.
"""

from __future__ import annotations

import asyncio
import contextlib
import math
import time
from typing import Any

from repro.obs import evaluate_slo, get_tracer, render_openmetrics, run_manifest, write_exposition
from repro.service.http import (
    HttpError,
    Request,
    Response,
    error_response,
    json_response,
    read_request,
    write_response,
)
from repro.service.protocol import AdmissionError, decode_page_token
from repro.service.scheduler import ServiceScheduler

__all__ = ["ServiceDaemon", "DEFAULT_OBJECTIVES", "OPENMETRICS_CONTENT_TYPE"]

#: Objectives ``GET /v1/slo`` evaluates when the client sends none.
#: Fail-closed like everything in :mod:`repro.obs.slo`: an untraced
#: daemon fails them (no metrics recorded) rather than passing vacuously.
DEFAULT_OBJECTIVES = (
    "count(service.admissions) >= 1",
    "p99(service.request) < 250ms",
)

OPENMETRICS_CONTENT_TYPE = "application/openmetrics-text; version=1.0.0; charset=utf-8"

#: Admission request fields the strict decoder accepts.
_ADMIT_FIELDS = frozenset({"tenant", "estimate", "size", "idempotency_key"})


class ServiceDaemon:
    """The serving shell around one :class:`ServiceScheduler`.

    Parameters
    ----------
    scheduler:
        The deterministic core to serve.
    host, port:
        TCP listen address; ``port=None`` disables TCP, ``port=0`` binds
        a free port (recorded in :attr:`port` once serving).
    socket_path:
        Unix-domain socket path; ``None`` disables the unix transport.
    metrics_out:
        When set, the OpenMetrics exposition is rewritten here at most
        every ``flush_interval`` seconds and once at shutdown — point a
        scraper (or ``promtool``) at the file.
    pace:
        Virtual seconds advanced per real second by the pump; ``0``
        (default) runs the simulated cluster eagerly, i.e. completions
        land as soon as the loop is otherwise idle.
    breaker:
        Optional admission circuit breaker (duck-typed to
        :class:`repro.chaos.policy.CircuitBreaker`).  Shedding admissions
        (``degraded``/``overloaded``) count as failures; once open,
        admissions fail fast with 503 ``breaker_open`` until the cooldown
        elapses and a probe succeeds.
    bulkhead:
        Optional in-flight cap (duck-typed to
        :class:`repro.chaos.policy.Bulkhead`): an admission that would
        push queued + running past ``capacity`` is shed with 503
        ``overloaded`` before it reaches the placer.
    """

    def __init__(
        self,
        scheduler: ServiceScheduler,
        *,
        host: str = "127.0.0.1",
        port: int | None = 0,
        socket_path: str | None = None,
        metrics_out: str | None = None,
        pace: float = 0.0,
        flush_interval: float = 0.5,
        breaker: Any | None = None,
        bulkhead: Any | None = None,
    ) -> None:
        if port is None and socket_path is None:
            raise ValueError("daemon needs at least one transport (port or socket_path)")
        self.scheduler = scheduler
        self.breaker = breaker
        self.bulkhead = bulkhead
        self.host = host
        self.port = port
        self.socket_path = socket_path
        self.metrics_out = metrics_out
        self.pace = float(pace)
        self.flush_interval = float(flush_interval)
        self.started = asyncio.Event()
        self._stop = asyncio.Event()
        self._wake = asyncio.Event()
        self._last_flush = 0.0
        self._servers: list[asyncio.AbstractServer] = []
        self._pump_task: asyncio.Task[None] | None = None

    # -- lifecycle ---------------------------------------------------------
    async def serve(self) -> None:
        """Bind transports, pump events, serve until shutdown is requested.

        Returns after a ``POST /v1/shutdown`` (or :meth:`stop`) once the
        queue is drained, all transports are closed, and the final
        telemetry exposition is flushed.
        """
        tracer = get_tracer()
        if tracer.enabled:
            tracer.manifest(
                run_manifest("service", "daemon", params=self.scheduler.stats())
            )
        if self.port is not None:
            server = await asyncio.start_server(self._handle, self.host, self.port)
            self.port = server.sockets[0].getsockname()[1]
            self._servers.append(server)
        if self.socket_path is not None:
            server = await asyncio.start_unix_server(self._handle, path=self.socket_path)
            self._servers.append(server)
        self._pump_task = asyncio.create_task(self._pump())
        self.started.set()
        try:
            await self._stop.wait()
        finally:
            for server in self._servers:
                server.close()
                await server.wait_closed()
            self._servers.clear()
            if self._pump_task is not None:
                self._pump_task.cancel()
                with contextlib.suppress(asyncio.CancelledError):
                    await self._pump_task
            self.scheduler.begin_drain()
            self.scheduler.drain()
            self._flush_metrics(force=True)
            self.started.clear()

    def stop(self) -> None:
        """Ask :meth:`serve` to exit (used by ``/v1/shutdown`` and tests)."""
        self._stop.set()

    async def _pump(self) -> None:
        """Advance virtual time whenever the cluster has pending events.

        Eager mode (``pace == 0``) steps as fast as the loop allows,
        yielding every few steps so request handlers interleave; paced
        mode sleeps real ``(t_next - t_now) / pace`` seconds first, which
        makes the virtual cluster feel like a real one to a human
        watching ``/v1/queue``.
        """
        steps = 0
        while True:
            if not self.scheduler.queue:
                self._wake.clear()
                await self._wake.wait()
                continue
            if self.pace > 0:
                horizon = self.scheduler.queue.peek().time
                delay = max(0.0, horizon - self.scheduler.clock) / self.pace
                if delay:
                    await asyncio.sleep(delay)
            self.scheduler.step()
            steps += 1
            if self.pace == 0 and steps % 64 == 0:
                await asyncio.sleep(0)
            elif self.pace == 0:
                # A zero-sleep every step would thrash; yield only at the
                # batch boundary above or when the queue momentarily empties.
                continue

    def _kick(self) -> None:
        self._wake.set()

    # -- connection handling ----------------------------------------------
    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await read_request(reader)
                except HttpError as exc:
                    await write_response(
                        writer,
                        error_response(exc.status, exc.code, str(exc)),
                        keep_alive=False,
                    )
                    return
                except (asyncio.IncompleteReadError, ConnectionResetError):
                    return
                if request is None:
                    return
                tracer = get_tracer()
                if tracer.enabled:
                    with tracer.span(
                        "service.request", method=request.method, path=request.path
                    ):
                        response = self._route(request)
                else:
                    response = self._route(request)
                await write_response(writer, response, keep_alive=request.keep_alive)
                self._kick()
                self._flush_metrics()
                if not request.keep_alive:
                    return
        except (ConnectionResetError, BrokenPipeError):
            return
        finally:
            writer.close()
            # CancelledError included: server shutdown cancels handler
            # tasks mid-wait_closed; the connection is going away either
            # way, and letting the cancel escape here only logs noise.
            with contextlib.suppress(Exception, asyncio.CancelledError):
                await writer.wait_closed()

    # -- routing -----------------------------------------------------------
    def _route(self, request: Request) -> Response:
        """Dispatch one request; all handlers are synchronous on purpose."""
        try:
            return self._route_inner(request)
        except AdmissionError as exc:
            # Retryable service states are 503 (back off and retry);
            # client mistakes stay 400.
            retryable = {"draining", "degraded", "overloaded", "breaker_open"}
            status = 503 if exc.code in retryable else 400
            return error_response(status, exc.code, str(exc))
        except Exception as exc:  # pragma: no cover - defensive surface
            return error_response(500, "internal", f"{type(exc).__name__}: {exc}")

    def _route_inner(self, request: Request) -> Response:
        method, path = request.method, request.path.rstrip("/") or "/"
        if path == "/":
            return self._info()
        if path == "/v1/tasks":
            if method == "POST":
                return self._admit(request)
            if method == "GET":
                return self._list(request)
            return error_response(405, "method_not_allowed", f"{method} {path}")
        if path.startswith("/v1/tasks/"):
            if method != "GET":
                return error_response(405, "method_not_allowed", f"{method} {path}")
            return self._get_task(path.removeprefix("/v1/tasks/"))
        if path == "/v1/queue" and method == "GET":
            return self._queue()
        if path == "/v1/status" and method == "GET":
            return json_response(self.scheduler.stats())
        if path == "/metrics" and method == "GET":
            return self._metrics()
        if path == "/v1/slo" and method == "GET":
            return self._slo(request)
        if path == "/v1/health" and method == "GET":
            return self._health()
        if path == "/v1/chaos" and method == "POST":
            return self._chaos(request)
        if path == "/v1/drain" and method == "POST":
            return self._drain()
        if path == "/v1/shutdown" and method == "POST":
            return self._shutdown()
        return error_response(404, "not_found", f"no route for {method} {path}")

    def _info(self) -> Response:
        return json_response(
            {
                "service": "repro.service",
                "strategy": self.scheduler.placer.canonical_spec,
                "endpoints": [
                    "POST /v1/tasks",
                    "GET /v1/tasks",
                    "GET /v1/tasks/<id>",
                    "GET /v1/queue",
                    "GET /v1/status",
                    "GET /metrics",
                    "GET /v1/slo",
                    "GET /v1/health",
                    "POST /v1/chaos",
                    "POST /v1/drain",
                    "POST /v1/shutdown",
                ],
                "docs": "docs/service.md",
            }
        )

    def _admit(self, request: Request) -> Response:
        payload = request.json()
        unknown = set(payload) - _ADMIT_FIELDS
        if unknown:
            raise AdmissionError(
                "unknown_field", f"unknown admission fields: {sorted(unknown)}"
            )
        if "estimate" not in payload:
            raise AdmissionError("bad_estimate", "admission requires an 'estimate'")
        key = request.headers.get("idempotency-key") or payload.get("idempotency_key")
        if key is not None and not isinstance(key, str):
            raise AdmissionError("bad_key", f"idempotency key must be a string, got {key!r}")
        now = time.monotonic()
        if self.breaker is not None and not self.breaker.allow(now):
            raise AdmissionError(
                "breaker_open",
                "admission circuit breaker is open; retry after the cooldown",
            )
        if self.bulkhead is not None:
            in_flight = len(self.scheduler.records) - self.scheduler.completed
            if not self.bulkhead.check(in_flight):
                if self.breaker is not None:
                    self.breaker.record_failure(now)
                raise AdmissionError(
                    "overloaded",
                    f"bulkhead full: {in_flight} tasks in flight "
                    f"(capacity {self.bulkhead.capacity})",
                )
        try:
            record, created = self.scheduler.admit(
                payload.get("tenant", "default"),
                payload["estimate"],
                size=payload.get("size", 0.0),
                key=key,
            )
        except AdmissionError as exc:
            # Only service-health rejections trip the breaker; client
            # mistakes (bad estimates, key conflicts) say nothing about
            # the fleet.
            if self.breaker is not None and exc.code in ("degraded", "overloaded"):
                self.breaker.record_failure(now)
            raise
        if self.breaker is not None:
            self.breaker.record_success(now)
        body = record.as_dict()
        body["created"] = created
        return json_response(body, status=201 if created else 200)

    def _list(self, request: Request) -> Response:
        token = request.param("page_token")
        cursor = decode_page_token(token) if token else 0
        limit_text = request.param("limit")
        try:
            limit = int(limit_text) if limit_text else None
        except ValueError:
            raise AdmissionError("bad_limit", f"limit must be an integer, got {limit_text!r}") from None
        records, next_token = self.scheduler.page(cursor, limit)
        body: dict[str, Any] = {"tasks": [r.as_dict() for r in records]}
        if next_token is not None:
            body["next_page_token"] = next_token
        return json_response(body)

    def _get_task(self, raw_tid: str) -> Response:
        if not raw_tid.isdigit():
            return error_response(400, "bad_task_id", f"task id must be an integer, got {raw_tid!r}")
        record = self.scheduler.get(int(raw_tid))
        if record is None:
            return error_response(404, "not_found", f"no task {raw_tid}")
        return json_response(record.as_dict())

    def _queue(self) -> Response:
        sched = self.scheduler
        return json_response(
            {
                "clock": sched.clock,
                "queued": sched.queued,
                "running": len(sched.busy),
                "done": sched.completed,
                "draining": sched.draining,
                "group_loads": list(sched.placer.loads()),
                "busy_machines": sorted(sched.busy),
            }
        )

    def _metrics(self) -> Response:
        text = render_openmetrics(get_tracer().registry.summary())
        return Response(status=200, body=text.encode("utf-8"), content_type=OPENMETRICS_CONTENT_TYPE)

    def _slo(self, request: Request) -> Response:
        objectives = request.query.get("objective") or list(DEFAULT_OBJECTIVES)
        try:
            report = evaluate_slo(
                objectives,
                registry=get_tracer().registry,
                extras={
                    "queue_depth": float(self.scheduler.queued),
                    "tasks_done": float(self.scheduler.completed),
                    "tasks_admitted": float(len(self.scheduler.records)),
                },
            )
        except ValueError as exc:
            raise AdmissionError("bad_objective", str(exc)) from None
        return json_response(report.as_dict())

    def _health(self) -> Response:
        """Fleet-health snapshot: the chaos harness's sampling endpoint."""
        sched = self.scheduler
        body: dict[str, Any] = {
            "clock": sched.clock,
            "machines": sched.placer.m,
            "groups": sched.placer.k,
            "availability": sched.availability(),
            "down": sorted(sched.down),
            "degraded_groups": sched.degraded_groups(),
            "admitted": len(sched.records),
            "queued": sched.queued,
            "running": len(sched.busy),
            "done": sched.completed,
            "shed": sched.shed,
            "replaced": sched.replaced,
            "machine_failures": sched.machine_failures,
            "machine_recoveries": sched.machine_recoveries,
        }
        if sched.health is not None:
            body["policy"] = {
                "states": {str(k): v.value for k, v in sched.health.states().items()},
                "counts": sched.health.counts(),
            }
        if self.breaker is not None:
            body["breaker"] = self.breaker.as_dict()
        if self.bulkhead is not None:
            body["bulkhead"] = self.bulkhead.as_dict()
        return json_response(body)

    def _chaos(self, request: Request) -> Response:
        """Inject failures/recoveries into the simulated fleet.

        Body: ``{"fail": [machine, ...], "downtime": seconds | null,
        "recover": [machine, ...]}`` — ``downtime`` of ``null`` (or
        absent) means the failure is permanent until an explicit
        recover.  Validation mistakes are 400 ``bad_chaos``.
        """
        payload = request.json()
        unknown = set(payload) - {"fail", "recover", "downtime"}
        if unknown:
            raise AdmissionError("bad_chaos", f"unknown chaos fields: {sorted(unknown)}")
        if not payload:
            raise AdmissionError("bad_chaos", "chaos request needs 'fail' and/or 'recover'")
        downtime = payload.get("downtime")
        if downtime is not None and (
            not isinstance(downtime, (int, float)) or isinstance(downtime, bool)
        ):
            raise AdmissionError("bad_chaos", f"downtime must be a number, got {downtime!r}")
        body: dict[str, Any] = {}
        try:
            if "fail" in payload:
                machines = self._chaos_machines(payload["fail"], "fail")
                at = self.scheduler.inject_failure(
                    machines,
                    downtime=math.inf if downtime is None else float(downtime),
                )
                tracer = get_tracer()
                if tracer.enabled:
                    tracer.event(
                        "chaos.inject",
                        machines=list(machines),
                        downtime=downtime,
                        t=at,
                    )
                body["failed"] = list(machines)
                body["failed_at"] = at
            if "recover" in payload:
                machines = self._chaos_machines(payload["recover"], "recover")
                at = self.scheduler.inject_recovery(machines)
                body["recovered"] = list(machines)
                body["recovered_at"] = at
        except ValueError as exc:
            if isinstance(exc, AdmissionError):
                raise
            raise AdmissionError("bad_chaos", str(exc)) from None
        body["availability"] = self.scheduler.availability()
        body["degraded_groups"] = self.scheduler.degraded_groups()
        return json_response(body)

    @staticmethod
    def _chaos_machines(raw: Any, field: str) -> tuple[int, ...]:
        if not isinstance(raw, list) or not raw or not all(
            isinstance(v, int) and not isinstance(v, bool) for v in raw
        ):
            raise AdmissionError(
                "bad_chaos", f"{field!r} must be a non-empty list of machine ids"
            )
        return tuple(raw)

    def _drain(self) -> Response:
        self.scheduler.begin_drain()
        steps = self.scheduler.drain()
        self._flush_metrics(force=True)
        body = self.scheduler.stats()
        body["drain_steps"] = steps
        return json_response(body)

    def _shutdown(self) -> Response:
        response = self._drain()
        self.stop()
        return response

    def _flush_metrics(self, force: bool = False) -> None:
        """Rewrite the exposition file, throttled to ``flush_interval``."""
        if not self.metrics_out:
            return
        now = time.monotonic()
        if not force and now - self._last_flush < self.flush_interval:
            return
        self._last_flush = now
        write_exposition(get_tracer().registry.summary(), self.metrics_out)
