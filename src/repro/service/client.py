"""A small asyncio client for the placement daemon.

One :class:`ServiceClient` is one keep-alive connection (TCP or unix
socket) speaking the JSON protocol of :mod:`repro.service.daemon`.  It
is the substrate for :mod:`repro.service.loadgen` and for tests; humans
can use ``curl`` instead (examples in ``docs/service.md``).

The client is strict about failures: any non-2xx status raises
:class:`ServiceError` carrying the server's machine-readable error code,
so callers branch on ``exc.code`` rather than parsing prose.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(Exception):
    """A non-2xx response from the daemon."""

    def __init__(self, status: int, code: str, message: str) -> None:
        super().__init__(f"[{status} {code}] {message}")
        self.status = status
        self.code = code


class ServiceClient:
    """One keep-alive connection to the daemon.

    Construct with either ``host``/``port`` or ``socket_path``; use as an
    async context manager (the connection opens lazily on first request
    either way)::

        async with ServiceClient(port=daemon.port) as client:
            task = await client.submit("tenant-0", 3.5, key="t0-0")
    """

    def __init__(
        self,
        *,
        host: str = "127.0.0.1",
        port: int | None = None,
        socket_path: str | None = None,
    ) -> None:
        if (port is None) == (socket_path is None):
            raise ValueError("pass exactly one of port= or socket_path=")
        self.host = host
        self.port = port
        self.socket_path = socket_path
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None

    async def __aenter__(self) -> "ServiceClient":
        return self

    async def __aexit__(self, *exc: object) -> None:
        await self.close()

    async def _connect(self) -> None:
        if self._writer is not None:
            return
        if self.socket_path is not None:
            self._reader, self._writer = await asyncio.open_unix_connection(self.socket_path)
        else:
            assert self.port is not None
            self._reader, self._writer = await asyncio.open_connection(self.host, self.port)

    async def close(self) -> None:
        """Close the underlying connection (safe to call repeatedly)."""
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._reader = self._writer = None

    async def request(
        self,
        method: str,
        path: str,
        payload: dict[str, Any] | None = None,
        headers: dict[str, str] | None = None,
    ) -> tuple[int, dict[str, Any] | str]:
        """One round-trip; returns ``(status, body)``.

        JSON bodies decode to dicts; anything else (``/metrics``) comes
        back as text.  Does *not* raise on error statuses — that is
        :meth:`_checked`'s job — so probes can inspect failures.
        """
        await self._connect()
        assert self._reader is not None and self._writer is not None
        body = b""
        if payload is not None:
            body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
        head = [
            f"{method} {path} HTTP/1.1",
            "Host: repro-service",
            f"Content-Length: {len(body)}",
            "Content-Type: application/json",
        ]
        for name, value in (headers or {}).items():
            head.append(f"{name}: {value}")
        self._writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + body)
        await self._writer.drain()

        status_line = await self._reader.readline()
        if not status_line:
            raise ConnectionError("daemon closed the connection")
        status = int(status_line.split()[1])
        response_headers: dict[str, str] = {}
        while True:
            raw = await self._reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            name, _, value = raw.decode("latin-1").partition(":")
            response_headers[name.strip().lower()] = value.strip()
        length = int(response_headers.get("content-length", "0"))
        raw_body = await self._reader.readexactly(length) if length else b""
        if response_headers.get("connection", "").lower() == "close":
            await self.close()
        text = raw_body.decode("utf-8")
        if response_headers.get("content-type", "").startswith("application/json"):
            return status, (json.loads(text) if text else {})
        return status, text

    async def _checked(
        self,
        method: str,
        path: str,
        payload: dict[str, Any] | None = None,
        headers: dict[str, str] | None = None,
    ) -> dict[str, Any]:
        status, body = await self.request(method, path, payload, headers)
        if status >= 300:
            if isinstance(body, dict) and "error" in body:
                err = body["error"]
                raise ServiceError(status, err.get("code", "unknown"), err.get("message", ""))
            raise ServiceError(status, "unknown", str(body))
        assert isinstance(body, dict)
        return body

    # -- typed wrappers ----------------------------------------------------
    async def submit(
        self,
        tenant: str,
        estimate: float,
        *,
        size: float = 0.0,
        key: str | None = None,
    ) -> dict[str, Any]:
        """Admit one task; the response dict includes ``created``."""
        headers = {"Idempotency-Key": key} if key is not None else None
        return await self._checked(
            "POST",
            "/v1/tasks",
            {"tenant": tenant, "estimate": estimate, "size": size},
            headers,
        )

    async def get_task(self, tid: int) -> dict[str, Any]:
        """One task's current lifecycle record."""
        return await self._checked("GET", f"/v1/tasks/{tid}")

    async def list_tasks(
        self, *, page_token: str | None = None, limit: int | None = None
    ) -> dict[str, Any]:
        """One listing page (``tasks`` + optional ``next_page_token``)."""
        params = []
        if page_token:
            params.append(f"page_token={page_token}")
        if limit is not None:
            params.append(f"limit={limit}")
        query = ("?" + "&".join(params)) if params else ""
        return await self._checked("GET", f"/v1/tasks{query}")

    async def status(self) -> dict[str, Any]:
        """``GET /v1/status``."""
        return await self._checked("GET", "/v1/status")

    async def queue(self) -> dict[str, Any]:
        """``GET /v1/queue``."""
        return await self._checked("GET", "/v1/queue")

    async def metrics(self) -> str:
        """The raw OpenMetrics exposition text."""
        status, body = await self.request("GET", "/metrics")
        if status != 200:
            raise ServiceError(status, "metrics", str(body))
        assert isinstance(body, str)
        return body

    async def slo(self, objectives: list[str] | None = None) -> dict[str, Any]:
        """Evaluate SLO objectives server-side (defaults when ``None``)."""
        query = ""
        if objectives:
            from urllib.parse import quote

            query = "?" + "&".join(f"objective={quote(o)}" for o in objectives)
        return await self._checked("GET", f"/v1/slo{query}")

    async def health(self) -> dict[str, Any]:
        """``GET /v1/health`` — availability, down machines, policy state."""
        return await self._checked("GET", "/v1/health")

    async def chaos(
        self,
        *,
        fail: list[int] | None = None,
        recover: list[int] | None = None,
        downtime: float | None = None,
    ) -> dict[str, Any]:
        """``POST /v1/chaos`` — inject failures and/or recoveries.

        ``downtime=None`` makes the failure permanent until an explicit
        ``recover`` (the daemon's convention).
        """
        payload: dict[str, Any] = {}
        if fail is not None:
            payload["fail"] = list(fail)
        if recover is not None:
            payload["recover"] = list(recover)
        if downtime is not None:
            payload["downtime"] = downtime
        return await self._checked("POST", "/v1/chaos", payload)

    async def drain(self) -> dict[str, Any]:
        """Stop admissions and run the queue dry; returns final stats."""
        return await self._checked("POST", "/v1/drain")

    async def shutdown(self) -> dict[str, Any]:
        """Drain, flush telemetry, and stop the daemon; returns stats."""
        return await self._checked("POST", "/v1/shutdown")
