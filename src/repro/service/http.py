"""A minimal HTTP/1.1 layer over asyncio streams.

The daemon deliberately does not depend on an HTTP framework — the repo's
no-new-dependencies rule is a feature here, because the protocol surface
the service needs is tiny: JSON request/response bodies, a handful of
routes, keep-alive, and both TCP and ``AF_UNIX`` transports.  This
module is that surface and nothing more: request parsing
(:func:`read_request`), response writing (:func:`write_response`), and
the small value types the daemon's route handlers exchange.

It is intentionally not a general server: no chunked encoding, no
pipelining guarantees beyond serial keep-alive, bounded header and body
sizes (oversized requests are a 413, not a memory hazard).
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Any
from urllib.parse import parse_qs, urlsplit

from repro.service.protocol import AdmissionError

__all__ = [
    "HttpError",
    "Request",
    "Response",
    "read_request",
    "write_response",
    "json_response",
    "error_response",
    "MAX_BODY_BYTES",
]

#: Request bodies above this are rejected with 413 (a task admission is
#: a few hundred bytes; anything larger is a client bug).
MAX_BODY_BYTES = 1 << 20
_MAX_HEADER_LINE = 16 * 1024
_MAX_HEADERS = 64


class HttpError(Exception):
    """A protocol-level failure mapped straight to a status code."""

    def __init__(self, status: int, code: str, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.code = code


@dataclass
class Request:
    """One parsed request: method, split path, query, headers, raw body."""

    method: str
    path: str
    query: dict[str, list[str]]
    headers: dict[str, str]
    body: bytes
    keep_alive: bool = True

    def json(self) -> dict[str, Any]:
        """Decode the body as a JSON object (strictly: top level must be
        an object).  Raises :class:`AdmissionError` on malformed input so
        handlers surface a uniform 400."""
        if not self.body:
            return {}
        try:
            payload = json.loads(self.body.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise AdmissionError("bad_json", f"request body is not valid JSON: {exc}") from None
        if not isinstance(payload, dict):
            raise AdmissionError("bad_json", "request body must be a JSON object")
        return payload

    def param(self, name: str, default: str | None = None) -> str | None:
        """Last value of query parameter ``name`` (or ``default``)."""
        values = self.query.get(name)
        return values[-1] if values else default


@dataclass
class Response:
    """One response: status, headers, body bytes (already encoded)."""

    status: int
    body: bytes = b""
    content_type: str = "application/json"
    headers: dict[str, str] = field(default_factory=dict)


_REASONS = {
    200: "OK",
    201: "Created",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


def json_response(payload: dict[str, Any], status: int = 200) -> Response:
    """A JSON response (compact separators, trailing newline for curl)."""
    body = (json.dumps(payload, separators=(",", ":"), sort_keys=True) + "\n").encode("utf-8")
    return Response(status=status, body=body)


def error_response(status: int, code: str, message: str) -> Response:
    """The uniform error envelope: ``{"error": {"code", "message"}}``."""
    return json_response({"error": {"code": code, "message": message}}, status=status)


async def read_request(reader: asyncio.StreamReader) -> Request | None:
    """Parse one request off the stream; ``None`` on clean EOF.

    Raises :class:`HttpError` for malformed or oversized requests — the
    caller answers with the error and closes the connection.
    """
    try:
        line = await reader.readline()
    except (ConnectionError, asyncio.LimitOverrunError):
        return None
    if not line:
        return None
    if len(line) > _MAX_HEADER_LINE:
        raise HttpError(400, "bad_request", "request line too long")
    parts = line.decode("latin-1").strip().split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise HttpError(400, "bad_request", f"malformed request line {line!r}")
    method, target, version = parts
    headers: dict[str, str] = {}
    while True:
        raw = await reader.readline()
        if raw in (b"\r\n", b"\n", b""):
            break
        if len(raw) > _MAX_HEADER_LINE or len(headers) >= _MAX_HEADERS:
            raise HttpError(400, "bad_request", "headers too large")
        name, sep, value = raw.decode("latin-1").partition(":")
        if not sep:
            raise HttpError(400, "bad_request", f"malformed header {raw!r}")
        headers[name.strip().lower()] = value.strip()
    length_text = headers.get("content-length", "0")
    try:
        length = int(length_text)
    except ValueError:
        raise HttpError(400, "bad_request", f"bad Content-Length {length_text!r}") from None
    if length < 0 or length > MAX_BODY_BYTES:
        raise HttpError(413, "too_large", f"body of {length} bytes refused")
    body = await reader.readexactly(length) if length else b""
    split = urlsplit(target)
    connection = headers.get("connection", "").lower()
    keep_alive = connection != "close" and version != "HTTP/1.0"
    return Request(
        method=method.upper(),
        path=split.path,
        query=parse_qs(split.query),
        headers=headers,
        body=body,
        keep_alive=keep_alive,
    )


async def write_response(
    writer: asyncio.StreamWriter, response: Response, *, keep_alive: bool
) -> None:
    """Serialize ``response`` and flush it to the peer."""
    reason = _REASONS.get(response.status, "Unknown")
    head = [
        f"HTTP/1.1 {response.status} {reason}",
        f"Content-Type: {response.content_type}",
        f"Content-Length: {len(response.body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in response.headers.items():
        head.append(f"{name}: {value}")
    writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1"))
    writer.write(response.body)
    await writer.drain()
