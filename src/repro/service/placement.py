"""Phase 1, made incremental: online placement from a registry spec.

The paper's Phase-1 algorithms place a *known set* of tasks; a service
only ever sees the prefix that has arrived.  The bridge is the structure
the equal-group families share (declared by the ``online_placement``
capability, a strict subset of what the batch backend compiles): machines are
partitioned into equal groups, every task is replicated across exactly
one group, and Phase 1 is greedy least-estimated-load assignment over
groups.  Applied in *arrival order* that greedy rule is List Scheduling
— i.e. the online service runs ``ls_group``'s Phase 1 literally, and the
other families are its endpoints:

===================  =========================  =======================
registry spec        groups                     replica set per task
===================  =========================  =======================
``lpt_no_choice``    ``m`` singletons           one machine
``ls_group[k=g]``    ``g`` groups of ``m/g``    its group (``m/g``)
``lpt_group[k=g]``   ``g`` groups of ``m/g``    its group (``m/g``)
``lpt_no_restriction``  one group of ``m``      all machines
===================  =========================  =======================

(The LPT variants sort by estimate before assigning — impossible online,
so the daemon degrades them to arrival order and says so in its status
endpoint; ``docs/service.md`` discusses the guarantee implications.)

Strategy selection goes through :mod:`repro.registry` — specs are parsed
and validated there, capability checks reject families whose placements
are not partition-structured (``CapabilityError``, same as the engine),
and the canonical spec lands in the daemon's status output and run
manifest.  Tie-breaking matches :func:`~repro.schedulers.list_scheduling.
greedy_assign_heap` (least load, then lowest group id) so a batch of
admissions reproduces the offline placement bit for bit — the
equivalence tests in ``tests/test_service.py`` assert it.
"""

from __future__ import annotations

import heapq

from repro.registry import CapabilityError, capabilities_of, describe_strategy, make_strategy

__all__ = ["OnlinePlacer"]


class OnlinePlacer:
    """Incremental least-loaded group assignment for one daemon lifetime.

    Parameters
    ----------
    spec:
        A registry strategy spec (e.g. ``"ls_group[k=2]"``).  Must name a
        family with the ``online_placement`` capability — the flag that
        certifies greedy least-load Phase 1 over an equal-group machine
        partition, which is exactly the structure an online admission
        path can keep incrementally.  (``supports_batch`` is no longer a
        usable proxy: the batch compiler now also replays placements —
        memory-balanced pinning, selective replication — that need the
        whole task set up front and cannot be hosted online.)
    m:
        Machine count of the cluster the daemon simulates.
    """

    def __init__(self, spec: str, m: int) -> None:
        if m < 1:
            raise ValueError(f"m must be >= 1, got {m}")
        strategy = make_strategy(spec)
        caps = capabilities_of(strategy)
        if caps is None or not caps.online_placement:
            raise CapabilityError(
                f"strategy {spec!r} cannot drive the online service: its "
                "placement cannot be kept incrementally in arrival order "
                "(requires the online_placement capability; use "
                "lpt_no_choice, lpt_no_restriction, ls_group[k=...] or "
                "lpt_group[k=...])"
            )
        self.spec = spec
        self.canonical_spec = describe_strategy(strategy)
        self.capabilities = caps
        self.m = m
        if caps.replication_factor == "none":
            k = m
        elif caps.replication_factor == "full":
            k = 1
        else:  # "group"
            k = int(strategy.k)
            if m % k != 0:
                raise ValueError(
                    f"group count k={k} must divide the machine count m={m}"
                )
        size = m // k
        self.k = k
        self.groups: tuple[tuple[int, ...], ...] = tuple(
            tuple(range(g * size, (g + 1) * size)) for g in range(k)
        )
        self._loads = [0.0] * k
        # Same heap discipline as greedy_assign_heap: (load, group id),
        # ties broken by the lower group id.  Keeping the identical
        # arithmetic (one float add per assignment, heap order) is what
        # makes a batch of admissions bit-equal to the offline Phase 1.
        self._heap: list[tuple[float, int]] = [(0.0, g) for g in range(k)]
        heapq.heapify(self._heap)

    @property
    def replication(self) -> int:
        """Replica count per task, :math:`|M_j| = m/k`."""
        return self.m // self.k

    def assign(
        self, estimate: float, *, exclude: frozenset[int] = frozenset()
    ) -> tuple[int, tuple[int, ...]]:
        """Place one arriving task; returns ``(group, machines)``.

        Greedy least-estimated-committed-load over groups — the paper's
        Phase 1 in arrival order.  Committed load counts every admitted
        task's estimate regardless of completion state, matching the
        offline algorithms (they, too, never subtract finished work).

        ``exclude`` names groups the assignment must avoid (degraded
        mode: a group whose machines are all down cannot serve new
        data).  The least-loaded *surviving* group wins, with the same
        tie-break; excluded groups keep their heap position untouched,
        so once they recover the healthy arithmetic is bit-identical to
        a never-degraded run with the same assignments.  Raises
        ``ValueError`` when every group is excluded — the caller sheds.
        """
        if not exclude:
            load, group = heapq.heappop(self._heap)
            heapq.heappush(self._heap, (load + estimate, group))
            self._loads[group] = load + estimate
            return group, self.groups[group]
        if len(exclude) >= self.k:
            raise ValueError("every placement group is excluded; nothing can serve")
        skipped: list[tuple[float, int]] = []
        while True:
            load, group = heapq.heappop(self._heap)
            if group in exclude:
                skipped.append((load, group))
                continue
            break
        heapq.heappush(self._heap, (load + estimate, group))
        for item in skipped:
            heapq.heappush(self._heap, item)
        self._loads[group] = load + estimate
        return group, self.groups[group]

    def loads(self) -> tuple[float, ...]:
        """Committed estimated load per group (diagnostics/status)."""
        return tuple(self._loads)
